//! Property-based tests: every generated topology, for any scenario, size
//! and seed, satisfies all structural invariants; the valley-free
//! machinery agrees with basic graph facts.

use bgpscale_topology::valley::valley_free_distances;
use bgpscale_topology::validate::validate;
use bgpscale_topology::{generate, AsId, GrowthScenario, NodeType};
use proptest::prelude::*;

fn scenario_strategy() -> impl Strategy<Value = GrowthScenario> {
    prop::sample::select(GrowthScenario::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline invariant: any (scenario, n, seed) yields a topology
    /// that passes the full structural validator.
    #[test]
    fn any_generated_topology_validates(
        scenario in scenario_strategy(),
        n in 60usize..400,
        seed in any::<u64>(),
    ) {
        let g = generate(scenario, n, seed);
        prop_assert_eq!(g.len(), n);
        if let Err(violations) = validate(&g) {
            prop_assert!(false, "{scenario} n={n} seed={seed}: {} violations, first: {}",
                violations.len(), violations[0]);
        }
    }

    /// Generation is a pure function of its inputs.
    #[test]
    fn generation_is_deterministic(
        scenario in scenario_strategy(),
        n in 60usize..200,
        seed in any::<u64>(),
    ) {
        let a = generate(scenario, n, seed);
        let b = generate(scenario, n, seed);
        for id in a.node_ids() {
            prop_assert_eq!(a.neighbors(id), b.neighbors(id));
        }
    }

    /// Valley-free distances: 0 at the source, and each neighbor is
    /// within 1 hop of the triangle bound |d(u) − d(v)| ≤ 1 *when both
    /// are reachable through an unrestricted hop* — we check the weaker,
    /// always-true direction: a provider of the source is at distance 1.
    #[test]
    fn valley_distances_basic_facts(n in 60usize..200, seed in any::<u64>()) {
        let g = generate(GrowthScenario::Baseline, n, seed);
        let src = g.node_ids().find(|&id| g.node_type(id) == NodeType::C).unwrap();
        let d = valley_free_distances(&g, src);
        prop_assert_eq!(d[src.index()], Some(0));
        for p in g.providers(src) {
            prop_assert_eq!(d[p.index()], Some(1), "provider not at distance 1");
        }
        // Everything is reachable in a validated topology.
        prop_assert!(d.iter().all(|x| x.is_some()));
        // No distance exceeds a loose diameter bound.
        prop_assert!(d.iter().flatten().all(|&h| h < n as u32));
    }

    /// The customer-tree membership test agrees with the enumerated tree.
    #[test]
    fn customer_tree_consistency(n in 60usize..200, seed in any::<u64>()) {
        let g = generate(GrowthScenario::Baseline, n, seed);
        // Check the largest T node's tree (the most interesting one).
        let root = g.nodes_of_type(NodeType::T)
            .into_iter()
            .max_by_key(|&t| g.degree(t))
            .unwrap();
        let tree: std::collections::BTreeSet<AsId> =
            g.customer_tree(root).into_iter().collect();
        for id in g.node_ids() {
            prop_assert_eq!(
                tree.contains(&id),
                g.in_customer_tree(root, id),
                "membership disagrees for {}", id
            );
        }
    }

    /// Degree bookkeeping: cached per-relation tallies equal recounts.
    #[test]
    fn degree_caches_match_adjacency(
        scenario in scenario_strategy(),
        n in 60usize..150,
        seed in any::<u64>(),
    ) {
        let g = generate(scenario, n, seed);
        for id in g.node_ids() {
            let customers = g.customers(id).count();
            let peers = g.peers(id).count();
            let providers = g.providers(id).count();
            prop_assert_eq!(g.multihoming_degree(id), providers);
            prop_assert_eq!(g.peering_degree(id), peers);
            prop_assert_eq!(g.transit_degree(id), customers + providers);
            prop_assert_eq!(g.degree(id), customers + peers + providers);
        }
    }

    /// The population mix always matches the requested parameters.
    #[test]
    fn population_matches_params(
        scenario in scenario_strategy(),
        n in 60usize..300,
        seed in any::<u64>(),
    ) {
        let p = scenario.params(n);
        let g = generate(scenario, n, seed);
        prop_assert_eq!(g.count_of_type(NodeType::T), p.n_t);
        prop_assert_eq!(g.count_of_type(NodeType::M), p.n_m);
        prop_assert_eq!(g.count_of_type(NodeType::Cp), p.n_cp);
        prop_assert_eq!(g.count_of_type(NodeType::C), p.n_c);
    }
}
