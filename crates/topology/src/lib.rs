//! # bgpscale-topology
//!
//! A controllable, business-relationship-annotated AS-level Internet
//! topology generator, reproducing §3 of *"On the scalability of BGP: the
//! roles of topology growth and update rate-limiting"* (CoNEXT 2008).
//!
//! The generator is deliberately **operational** rather than abstract: its
//! knobs are quantities a network operator would recognize — how many
//! providers a stub buys transit from, how likely a content provider is to
//! peer, what fraction of mid-tier ISPs buy transit directly from tier-1
//! networks — instead of graph-theoretic targets like assortativity.
//!
//! ## Node types
//!
//! * **T** (tier-1): no providers; all T nodes form a full peering clique.
//! * **M** (mid-level): one or more providers (T or M); may peer with M.
//! * **CP** (content provider / stub with peering): providers among T/M;
//!   may peer with M and CP nodes.
//! * **C** (customer stub): providers among T/M; never peers.
//!
//! ## The four stable properties
//!
//! Generated topologies preserve the four invariants the paper identifies
//! as stable across a decade of Internet growth, each verifiable with
//! [`metrics`]:
//!
//! 1. hierarchical structure (the provider relation is acyclic),
//! 2. power-law (truncated) degree distribution via preferential attachment,
//! 3. strong clustering (regions + the T clique),
//! 4. constant average path length (~4 AS hops) as the network grows.
//!
//! ## Example
//!
//! ```
//! use bgpscale_topology::{generate, GrowthScenario, validate::validate};
//!
//! let graph = generate(GrowthScenario::Baseline, 500, 42);
//! assert_eq!(graph.len(), 500);
//! validate(&graph).expect("all structural invariants hold");
//! ```

#![forbid(unsafe_code)]

pub mod generator;
pub mod graph;
pub mod metrics;
pub mod params;
pub mod scenario;
pub mod types;
pub mod validate;
pub mod valley;

pub use generator::generate;
pub use graph::{AsGraph, Neighbor};
pub use params::TopologyParams;
pub use scenario::GrowthScenario;
pub use types::{AsId, NodeType, RegionSet, Relationship};
