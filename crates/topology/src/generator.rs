//! Two-phase top-down topology construction (§3 of the paper).
//!
//! Phase 1 — nodes and transit links:
//!
//! 1. Create the tier-1 clique (T nodes, present in all regions, fully
//!    meshed with peering links).
//! 2. Add M nodes one at a time. Each draws a provider count uniform in
//!    `[1, 2·dM − 1]` (mean `dM`), fills each slot from the T pool with
//!    probability `tM` and from the already-added M pool otherwise, and
//!    selects within the pool by **preferential attachment** on transit
//!    degree. Only same-region candidates are eligible. Because an M node
//!    can only buy transit from *earlier* M nodes, the provider relation is
//!    acyclic by construction (the paper's "hierarchical structure").
//! 3. Add CP and C stubs the same way, with their own `d`/`t` knobs.
//!
//! Phase 2 — peering links:
//!
//! 4. Each M node draws `U[0, 2·pM]` peering links to other M nodes,
//!    selected by preferential attachment **on peering degree**.
//! 5. Each CP node draws `U[0, 2·pCP−M]` links to M nodes and
//!    `U[0, 2·pCP−CP]` links to other CP nodes, selected uniformly.
//!
//! Throughout phase 2 the generator enforces the paper's economic
//! invariant: a node never peers with a node in its own customer tree
//! (such a link would cannibalize its own transit revenue).

use bgpscale_simkernel::rng::{Rng, Xoshiro256StarStar};

use crate::graph::AsGraph;
use crate::params::TopologyParams;
use crate::scenario::GrowthScenario;
use crate::types::{AsId, NodeType, RegionSet};

/// Generates a topology for `scenario` at size `n` with the given seed.
///
/// Equal inputs produce bit-identical topologies.
pub fn generate(scenario: GrowthScenario, n: usize, seed: u64) -> AsGraph {
    generate_with_params(&scenario.params(n), seed)
}

/// Generates a topology from explicit parameters (the escape hatch for
/// custom what-if studies beyond the paper's scenarios).
///
/// # Panics
/// Panics if `params.check()` fails.
pub fn generate_with_params(params: &TopologyParams, seed: u64) -> AsGraph {
    params
        .check()
        .unwrap_or_else(|e| panic!("invalid topology parameters: {e}"));
    let mut b = Builder::new(params, seed);
    b.add_tier1_clique();
    b.add_m_nodes();
    b.add_stubs(NodeType::Cp);
    b.add_stubs(NodeType::C);
    b.add_m_peering();
    b.add_cp_peering();
    b.graph
}

struct Builder<'a> {
    p: &'a TopologyParams,
    rng: Xoshiro256StarStar,
    graph: AsGraph,
    t_nodes: Vec<AsId>,
    m_nodes: Vec<AsId>,
    cp_nodes: Vec<AsId>,
    /// Scratch buffer for weighted draws, reused to avoid per-draw
    /// allocation.
    weights: Vec<f64>,
}

impl<'a> Builder<'a> {
    fn new(p: &'a TopologyParams, seed: u64) -> Self {
        Builder {
            p,
            rng: Xoshiro256StarStar::new(seed),
            graph: AsGraph::with_capacity(p.n),
            t_nodes: Vec::with_capacity(p.n_t),
            m_nodes: Vec::with_capacity(p.n_m),
            cp_nodes: Vec::with_capacity(p.n_cp),
            weights: Vec::new(),
        }
    }

    /// Draws a region set: `two_region_frac` of nodes span two distinct
    /// regions, the rest one.
    fn draw_regions(&mut self, two_region_frac: f64) -> RegionSet {
        let r1 = self.rng.next_below(self.p.regions as u64) as usize;
        let mut set = RegionSet::single(r1);
        if self.p.regions > 1 && self.rng.chance(two_region_frac) {
            loop {
                let r2 = self.rng.next_below(self.p.regions as u64) as usize;
                if r2 != r1 {
                    set.insert(r2);
                    break;
                }
            }
        }
        set
    }

    /// Provider count: uniform in `[1, 2·mean − 1]`, stochastically
    /// rounded, so the expectation is exactly `mean` and the minimum is 1
    /// (every non-T node needs a provider).
    fn draw_provider_count(&mut self, mean: f64) -> usize {
        if mean <= 1.0 {
            return 1;
        }
        let x = self.rng.next_f64_range(1.0, 2.0 * mean - 1.0);
        (self.rng.round_stochastic(x) as usize).max(1)
    }

    /// Peering count: uniform in `[0, 2·mean]`, stochastically rounded
    /// (expectation exactly `mean`; zero is allowed).
    fn draw_peer_count(&mut self, mean: f64) -> usize {
        if mean <= 0.0 {
            return 0;
        }
        let x = self.rng.next_f64_range(0.0, 2.0 * mean);
        self.rng.round_stochastic(x) as usize
    }

    fn add_tier1_clique(&mut self) {
        let all_regions = RegionSet::all(self.p.regions);
        for _ in 0..self.p.n_t {
            let id = self.graph.add_node(NodeType::T, all_regions);
            self.t_nodes.push(id);
        }
        for i in 0..self.t_nodes.len() {
            for j in (i + 1)..self.t_nodes.len() {
                self.graph.add_peer_link(self.t_nodes[i], self.t_nodes[j]);
            }
        }
    }

    /// Weighted provider pick from `pool` by preferential attachment on
    /// transit degree (+1 smoothing so degree-zero candidates remain
    /// reachable). Region compatibility and already-chosen providers are
    /// excluded. Returns `None` if the pool has no eligible candidate.
    fn pick_provider(&mut self, me: AsId, pool: &[AsId], chosen: &[AsId]) -> Option<AsId> {
        let my_regions = self.graph.regions(me);
        self.weights.clear();
        let mut total = 0.0;
        for &cand in pool {
            let w = if cand == me
                || chosen.contains(&cand)
                || !self.graph.regions(cand).intersects(my_regions)
            {
                0.0
            } else {
                (self.graph.transit_degree(cand) + 1) as f64
            };
            self.weights.push(w);
            total += w;
        }
        if total <= 0.0 {
            return None;
        }
        Some(pool[self.rng.choose_weighted(&self.weights)])
    }

    /// Selects and wires the providers for one freshly added node.
    ///
    /// `t_prob` is the probability that a slot draws from the T pool;
    /// `m_pool` holds the eligible M candidates (nodes added earlier).
    /// The PREFER-* caps of §5.4 are applied here: when a pool's cap is
    /// reached (or the pool has no eligible candidate), the slot falls back
    /// to the other pool; if neither pool can serve, the slot is dropped.
    fn wire_providers(&mut self, me: AsId, count: usize, t_prob: f64, m_pool: &[AsId], is_m_node: bool) {
        let t_cap = if is_m_node {
            self.p.max_t_providers_for_m.unwrap_or(usize::MAX)
        } else {
            usize::MAX
        };
        let m_cap = self.p.max_m_providers.unwrap_or(usize::MAX);
        let mut chosen: Vec<AsId> = Vec::with_capacity(count);
        let mut t_used = 0usize;
        let mut m_used = 0usize;
        // Split into owned vec to satisfy the borrow checker on t_nodes.
        let t_pool: Vec<AsId> = self.t_nodes.clone();
        for _ in 0..count {
            let mut want_t = self.rng.chance(t_prob);
            if want_t && t_used >= t_cap {
                want_t = false;
            }
            if !want_t && m_used >= m_cap {
                want_t = true;
            }
            if want_t && t_used >= t_cap {
                break; // both pools capped
            }
            let provider = if want_t {
                self.pick_provider(me, &t_pool, &chosen).or_else(|| {
                    if m_used < m_cap {
                        self.pick_provider(me, m_pool, &chosen)
                    } else {
                        None
                    }
                })
            } else {
                self.pick_provider(me, m_pool, &chosen).or_else(|| {
                    if t_used < t_cap {
                        self.pick_provider(me, &t_pool, &chosen)
                    } else {
                        None
                    }
                })
            };
            let Some(provider) = provider else { break };
            if self.graph.node_type(provider) == NodeType::T {
                t_used += 1;
            } else {
                m_used += 1;
            }
            self.graph.add_transit_link(me, provider);
            chosen.push(provider);
        }
        debug_assert!(
            !chosen.is_empty(),
            "node {me} ended up with no provider (pool exhaustion should be impossible: T pool is global)"
        );
    }

    fn add_m_nodes(&mut self) {
        for _ in 0..self.p.n_m {
            let regions = self.draw_regions(self.p.m_two_region_frac);
            let id = self.graph.add_node(NodeType::M, regions);
            let count = self.draw_provider_count(self.p.d_m);
            // Pool = M nodes added before `id` only: keeps the provider
            // relation acyclic.
            let pool: Vec<AsId> = self.m_nodes.clone();
            self.wire_providers(id, count, self.p.t_m, &pool, true);
            self.m_nodes.push(id);
        }
    }

    fn add_stubs(&mut self, ty: NodeType) {
        let (count, two_region_frac, d, t_prob) = match ty {
            NodeType::Cp => (self.p.n_cp, self.p.cp_two_region_frac, self.p.d_cp, self.p.t_cp),
            NodeType::C => (self.p.n_c, 0.0, self.p.d_c, self.p.t_c),
            _ => unreachable!("add_stubs only handles stub types"),
        };
        let pool: Vec<AsId> = self.m_nodes.clone();
        for _ in 0..count {
            let regions = self.draw_regions(two_region_frac);
            let id = self.graph.add_node(ty, regions);
            let slots = self.draw_provider_count(d);
            self.wire_providers(id, slots, t_prob, &pool, false);
            if ty == NodeType::Cp {
                self.cp_nodes.push(id);
            }
        }
    }

    /// True if `a`–`b` is an acceptable peering link: not already adjacent
    /// and neither endpoint lies in the other's customer tree.
    fn peering_ok(&self, a: AsId, b: AsId) -> bool {
        a != b
            && !self.graph.has_link(a, b)
            && !self.graph.in_customer_tree(a, b)
            && !self.graph.in_customer_tree(b, a)
    }

    /// Weighted peer pick with an expensive validity predicate: weights are
    /// computed from cheap checks, and customer-tree validity is verified
    /// only on drawn candidates (zeroing and redrawing on failure), which
    /// avoids a BFS per candidate.
    fn pick_peer(
        &mut self,
        me: AsId,
        pool: &[AsId],
        preferential_on_peering_degree: bool,
    ) -> Option<AsId> {
        let my_regions = self.graph.regions(me);
        self.weights.clear();
        let mut total = 0.0;
        for &cand in pool {
            let w = if cand == me
                || !self.graph.regions(cand).intersects(my_regions)
                || self.graph.has_link(me, cand)
            {
                0.0
            } else if preferential_on_peering_degree {
                (self.graph.peering_degree(cand) + 1) as f64
            } else {
                1.0
            };
            self.weights.push(w);
            total += w;
        }
        while total > 0.0 {
            let idx = self.rng.choose_weighted(&self.weights);
            let cand = pool[idx];
            if self.peering_ok(me, cand) {
                return Some(cand);
            }
            total -= self.weights[idx];
            self.weights[idx] = 0.0;
        }
        None
    }

    fn add_m_peering(&mut self) {
        let pool: Vec<AsId> = self.m_nodes.clone();
        for i in 0..pool.len() {
            let me = pool[i];
            let count = self.draw_peer_count(self.p.p_m);
            for _ in 0..count {
                // Preferential attachment "considering only the peering
                // degree of each potential peer" (§3).
                match self.pick_peer(me, &pool, true) {
                    Some(peer) => self.graph.add_peer_link(me, peer),
                    None => break,
                }
            }
        }
    }

    fn add_cp_peering(&mut self) {
        let m_pool: Vec<AsId> = self.m_nodes.clone();
        let cp_pool: Vec<AsId> = self.cp_nodes.clone();
        for i in 0..cp_pool.len() {
            let me = cp_pool[i];
            let to_m = self.draw_peer_count(self.p.p_cp_m);
            for _ in 0..to_m {
                // CP nodes select peers uniformly within their region (§3).
                match self.pick_peer(me, &m_pool, false) {
                    Some(peer) => self.graph.add_peer_link(me, peer),
                    None => break,
                }
            }
            let to_cp = self.draw_peer_count(self.p.p_cp_cp);
            for _ in 0..to_cp {
                match self.pick_peer(me, &cp_pool, false) {
                    Some(peer) => self.graph.add_peer_link(me, peer),
                    None => break,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Relationship;

    fn baseline(n: usize, seed: u64) -> AsGraph {
        generate(GrowthScenario::Baseline, n, seed)
    }

    #[test]
    fn generates_requested_population() {
        let g = baseline(1_000, 1);
        let p = GrowthScenario::Baseline.params(1_000);
        assert_eq!(g.len(), 1_000);
        assert_eq!(g.count_of_type(NodeType::T), p.n_t);
        assert_eq!(g.count_of_type(NodeType::M), p.n_m);
        assert_eq!(g.count_of_type(NodeType::Cp), p.n_cp);
        assert_eq!(g.count_of_type(NodeType::C), p.n_c);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = baseline(500, 7);
        let b = baseline(500, 7);
        assert_eq!(a.link_count(), b.link_count());
        for id in a.node_ids() {
            assert_eq!(a.neighbors(id), b.neighbors(id), "adjacency differs at {id}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = baseline(500, 1);
        let b = baseline(500, 2);
        let differs = a
            .node_ids()
            .any(|id| a.neighbors(id) != b.neighbors(id));
        assert!(differs);
    }

    #[test]
    fn tier1_forms_full_clique() {
        let g = baseline(800, 3);
        let ts = g.nodes_of_type(NodeType::T);
        for (i, &a) in ts.iter().enumerate() {
            for &b in &ts[i + 1..] {
                assert_eq!(g.relationship(a, b), Some(Relationship::Peer), "{a}–{b}");
            }
        }
    }

    #[test]
    fn t_nodes_have_no_providers() {
        let g = baseline(800, 4);
        for t in g.nodes_of_type(NodeType::T) {
            assert_eq!(g.multihoming_degree(t), 0);
        }
    }

    #[test]
    fn every_non_t_node_has_a_provider() {
        let g = baseline(1_000, 5);
        for id in g.node_ids() {
            if g.node_type(id) != NodeType::T {
                assert!(g.multihoming_degree(id) >= 1, "{id} has no provider");
            }
        }
    }

    #[test]
    fn stubs_have_no_customers() {
        let g = baseline(1_000, 6);
        for id in g.node_ids() {
            if g.node_type(id).is_stub() {
                assert_eq!(g.degree_with_rel(id, Relationship::Customer), 0, "{id}");
            }
        }
    }

    #[test]
    fn c_nodes_never_peer() {
        let g = baseline(1_000, 7);
        for id in g.node_ids() {
            if g.node_type(id) == NodeType::C {
                assert_eq!(g.peering_degree(id), 0, "{id} has peer links");
            }
        }
    }

    #[test]
    fn mean_multihoming_degree_tracks_parameter() {
        let g = baseline(2_000, 8);
        let p = GrowthScenario::Baseline.params(2_000);
        let ms = g.nodes_of_type(NodeType::M);
        let mean_m: f64 =
            ms.iter().map(|&m| g.multihoming_degree(m) as f64).sum::<f64>() / ms.len() as f64;
        assert!(
            (mean_m - p.d_m).abs() < 0.35,
            "mean M multihoming {mean_m} vs target {}",
            p.d_m
        );
        let cs = g.nodes_of_type(NodeType::C);
        let mean_c: f64 =
            cs.iter().map(|&c| g.multihoming_degree(c) as f64).sum::<f64>() / cs.len() as f64;
        assert!(
            (mean_c - p.d_c).abs() < 0.1,
            "mean C multihoming {mean_c} vs target {}",
            p.d_c
        );
    }

    #[test]
    fn no_peering_scenario_has_only_clique_peering() {
        let g = generate(GrowthScenario::NoPeering, 1_000, 9);
        let p = GrowthScenario::NoPeering.params(1_000);
        let clique_links = p.n_t * (p.n_t - 1) / 2;
        assert_eq!(g.peer_link_count(), clique_links);
    }

    #[test]
    fn tree_scenario_gives_single_provider_everywhere() {
        let g = generate(GrowthScenario::Tree, 1_000, 10);
        for id in g.node_ids() {
            if g.node_type(id) != NodeType::T {
                assert_eq!(g.multihoming_degree(id), 1, "{id}");
            }
        }
    }

    #[test]
    fn prefer_middle_caps_t_providers_of_m() {
        let g = generate(GrowthScenario::PreferMiddle, 1_000, 11);
        for m in g.nodes_of_type(NodeType::M) {
            let t_providers = g
                .providers(m)
                .filter(|&p| g.node_type(p) == NodeType::T)
                .count();
            assert!(t_providers <= 1, "{m} has {t_providers} T providers");
        }
        // Stubs should buy from M nodes (t probabilities are zero); the T
        // fallback only triggers when a region has no M candidate.
        let stub_t_links: usize = g
            .node_ids()
            .filter(|&id| g.node_type(id).is_stub())
            .map(|id| g.providers(id).filter(|&p| g.node_type(p) == NodeType::T).count())
            .sum();
        let stub_links: usize = g
            .node_ids()
            .filter(|&id| g.node_type(id).is_stub())
            .map(|id| g.multihoming_degree(id))
            .sum();
        assert!(
            (stub_t_links as f64) < 0.05 * stub_links as f64,
            "{stub_t_links}/{stub_links} stub transit links go to T under PREFER-MIDDLE"
        );
    }

    #[test]
    fn prefer_top_caps_m_providers() {
        let g = generate(GrowthScenario::PreferTop, 1_000, 12);
        for id in g.node_ids() {
            if g.node_type(id) == NodeType::T {
                continue;
            }
            let m_providers = g
                .providers(id)
                .filter(|&p| g.node_type(p) == NodeType::M)
                .count();
            assert!(m_providers <= 1, "{id} has {m_providers} M providers");
        }
    }

    #[test]
    fn no_peer_link_inside_customer_tree() {
        let g = baseline(1_000, 13);
        for id in g.node_ids() {
            for peer in g.peers(id) {
                assert!(
                    !g.in_customer_tree(id, peer),
                    "{id} peers with its own customer {peer}"
                );
            }
        }
    }

    #[test]
    fn all_links_respect_regions() {
        let g = baseline(1_000, 14);
        for id in g.node_ids() {
            for n in g.neighbors(id) {
                assert!(g.regions(id).intersects(g.regions(n.id)));
            }
        }
    }

    #[test]
    fn transit_clique_has_no_m_nodes_and_many_t() {
        let g = generate(GrowthScenario::TransitClique, 600, 15);
        assert_eq!(g.count_of_type(NodeType::M), 0);
        assert_eq!(g.count_of_type(NodeType::T), 90);
    }

    #[test]
    fn peering_degree_preferential_attachment_concentrates() {
        // Under Baseline, M–M peering by preferential attachment should
        // produce a max peering degree well above the mean.
        let g = baseline(3_000, 16);
        let ms = g.nodes_of_type(NodeType::M);
        let degs: Vec<usize> = ms.iter().map(|&m| g.peering_degree(m)).collect();
        let mean = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
        let max = *degs.iter().max().unwrap();
        assert!(
            max as f64 > 3.0 * mean,
            "max peering degree {max} not heavy-tailed vs mean {mean}"
        );
    }

    #[test]
    #[should_panic(expected = "invalid topology parameters")]
    fn bad_params_rejected() {
        let mut p = GrowthScenario::Baseline.params(1_000);
        p.n_c += 5;
        let _ = generate_with_params(&p, 1);
    }
}
