//! Fundamental vocabulary types: AS identifiers, node types, business
//! relationships, and geographic regions.

use std::fmt;

/// Identifier of an autonomous system within a generated topology.
///
/// IDs are dense indices `0..n` assigned in creation order (tier-1 nodes
/// first, then mid-level, then stubs), which lets per-node state live in
/// flat vectors throughout the simulator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AsId(pub u32);

impl AsId {
    /// The dense index of this AS.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// The four AS classes of the paper's model (§3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NodeType {
    /// Tier-1 transit provider: no providers, full peering clique.
    T,
    /// Mid-level transit provider.
    M,
    /// Content provider stub: no customers, but may peer.
    Cp,
    /// Customer stub: no customers, never peers.
    C,
}

impl NodeType {
    /// All node types, in hierarchy order.
    pub const ALL: [NodeType; 4] = [NodeType::T, NodeType::M, NodeType::Cp, NodeType::C];

    /// True for the transit classes (T and M) that carry other ASes'
    /// traffic and therefore maintain full routing tables.
    pub fn is_transit(self) -> bool {
        matches!(self, NodeType::T | NodeType::M)
    }

    /// True for the stub classes (CP and C).
    pub fn is_stub(self) -> bool {
        !self.is_transit()
    }

    /// Short label used in reports ("T", "M", "CP", "C").
    pub fn label(self) -> &'static str {
        match self {
            NodeType::T => "T",
            NodeType::M => "M",
            NodeType::Cp => "CP",
            NodeType::C => "C",
        }
    }
}

impl fmt::Display for NodeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The business relationship a node has with one of its neighbors, from the
/// node's own perspective.
///
/// A single physical link appears twice, once in each endpoint's adjacency:
/// if X buys transit from Y, then X records Y as `Provider` and Y records X
/// as `Customer`; a settlement-free link is `Peer` on both sides.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Relationship {
    /// The neighbor is this node's customer (it pays us for transit).
    Customer,
    /// The neighbor is a settlement-free peer.
    Peer,
    /// The neighbor is this node's provider (we pay it for transit).
    Provider,
}

impl Relationship {
    /// The same link as seen from the other endpoint.
    pub fn reverse(self) -> Relationship {
        match self {
            Relationship::Customer => Relationship::Provider,
            Relationship::Provider => Relationship::Customer,
            Relationship::Peer => Relationship::Peer,
        }
    }

    /// All relationships, in the paper's preference order
    /// (customer > peer > provider).
    pub const ALL: [Relationship; 3] = [
        Relationship::Customer,
        Relationship::Peer,
        Relationship::Provider,
    ];

    /// Short label used in reports ("cust", "peer", "prov").
    pub fn label(self) -> &'static str {
        match self {
            Relationship::Customer => "cust",
            Relationship::Peer => "peer",
            Relationship::Provider => "prov",
        }
    }
}

impl fmt::Display for Relationship {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The set of geographic regions an AS is present in, as a bitset.
///
/// The paper uses 5 regions; up to 16 are supported. Two ASes may only
/// connect if their region sets intersect (tier-1 nodes are present in all
/// regions, so they can connect to anyone).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegionSet(u16);

impl RegionSet {
    /// Maximum number of distinct regions supported.
    pub const MAX_REGIONS: usize = 16;

    /// The empty region set (no presence anywhere). Only valid transiently
    /// during construction.
    pub const EMPTY: RegionSet = RegionSet(0);

    /// A set containing the single region `r`.
    ///
    /// # Panics
    /// Panics if `r >= MAX_REGIONS`.
    pub fn single(r: usize) -> RegionSet {
        assert!(r < Self::MAX_REGIONS, "region {r} out of range");
        RegionSet(1 << r)
    }

    /// The set of all of the first `count` regions (used for tier-1 nodes,
    /// which are present everywhere).
    ///
    /// # Panics
    /// Panics if `count` is zero or exceeds `MAX_REGIONS`.
    pub fn all(count: usize) -> RegionSet {
        assert!(
            count > 0 && count <= Self::MAX_REGIONS,
            "region count {count} out of range"
        );
        if count == Self::MAX_REGIONS {
            RegionSet(u16::MAX)
        } else {
            RegionSet((1u16 << count) - 1)
        }
    }

    /// Adds region `r` to the set.
    pub fn insert(&mut self, r: usize) {
        assert!(r < Self::MAX_REGIONS, "region {r} out of range");
        self.0 |= 1 << r;
    }

    /// True if the set contains region `r`.
    pub fn contains(self, r: usize) -> bool {
        r < Self::MAX_REGIONS && self.0 & (1 << r) != 0
    }

    /// True if the two sets share at least one region — the condition for
    /// two ASes being allowed to interconnect.
    pub fn intersects(self, other: RegionSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Number of regions in the set.
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the region indices in the set, ascending.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..Self::MAX_REGIONS).filter(move |&r| self.contains(r))
    }
}

impl fmt::Debug for RegionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Regions{{")?;
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_id_roundtrips_index() {
        assert_eq!(AsId(7).index(), 7);
        assert_eq!(format!("{}", AsId(3)), "AS3");
        assert_eq!(format!("{:?}", AsId(3)), "AS3");
    }

    #[test]
    fn node_type_classification() {
        assert!(NodeType::T.is_transit());
        assert!(NodeType::M.is_transit());
        assert!(NodeType::Cp.is_stub());
        assert!(NodeType::C.is_stub());
        assert_eq!(NodeType::Cp.label(), "CP");
    }

    #[test]
    fn relationship_reverse_is_involutive() {
        for rel in Relationship::ALL {
            assert_eq!(rel.reverse().reverse(), rel);
        }
        assert_eq!(Relationship::Customer.reverse(), Relationship::Provider);
        assert_eq!(Relationship::Peer.reverse(), Relationship::Peer);
    }

    #[test]
    fn region_single_and_contains() {
        let r = RegionSet::single(3);
        assert!(r.contains(3));
        assert!(!r.contains(2));
        assert_eq!(r.count(), 1);
    }

    #[test]
    fn region_all_covers_count() {
        let r = RegionSet::all(5);
        assert_eq!(r.count(), 5);
        for i in 0..5 {
            assert!(r.contains(i));
        }
        assert!(!r.contains(5));
        assert_eq!(RegionSet::all(16).count(), 16);
    }

    #[test]
    fn region_insert_accumulates() {
        let mut r = RegionSet::EMPTY;
        assert!(r.is_empty());
        r.insert(0);
        r.insert(4);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![0, 4]);
    }

    #[test]
    fn region_intersection_rules() {
        let a = RegionSet::single(1);
        let mut b = RegionSet::single(2);
        assert!(!a.intersects(b));
        b.insert(1);
        assert!(a.intersects(b));
        // Tier-1 (all regions) intersects everything non-empty.
        assert!(RegionSet::all(5).intersects(a));
        assert!(!RegionSet::all(5).intersects(RegionSet::EMPTY));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn region_single_bounds_checked() {
        let _ = RegionSet::single(16);
    }

    #[test]
    fn region_debug_formatting() {
        let mut r = RegionSet::single(0);
        r.insert(2);
        assert_eq!(format!("{r:?}"), "Regions{0,2}");
    }
}
