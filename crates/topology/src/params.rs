//! Topology parameters — the "knobs" of Table 1.
//!
//! A [`TopologyParams`] value fully describes one topology *instance* size:
//! the population mix, the mean multihoming and peering degrees, and the
//! provider-preference probabilities. The Baseline growth model of the paper
//! is a family of such values parameterized by the total node count `n`;
//! the deviations of §5 are transforms of the Baseline (see
//! [`crate::scenario::GrowthScenario`]).

/// All generator knobs, following Table 1 of the paper.
///
/// Population counts must satisfy `n_t + n_m + n_cp + n_c == n`.
#[derive(Clone, Debug, PartialEq)]
pub struct TopologyParams {
    /// Total number of nodes `n`.
    pub n: usize,
    /// Number of tier-1 (T) nodes.
    pub n_t: usize,
    /// Number of mid-level (M) nodes.
    pub n_m: usize,
    /// Number of content-provider (CP) stub nodes.
    pub n_cp: usize,
    /// Number of customer (C) stub nodes.
    pub n_c: usize,

    /// Mean multihoming degree of M nodes (`dM`).
    pub d_m: f64,
    /// Mean multihoming degree of CP nodes (`dCP`).
    pub d_cp: f64,
    /// Mean multihoming degree of C nodes (`dC`).
    pub d_c: f64,

    /// Mean number of M–M peering links added per M node (`pM`).
    pub p_m: f64,
    /// Mean number of CP–M peering links added per CP node (`pCP−M`).
    pub p_cp_m: f64,
    /// Mean number of CP–CP peering links added per CP node (`pCP−CP`).
    pub p_cp_cp: f64,

    /// Probability that an M node's provider slot is filled by a T node
    /// (`tM`); otherwise an M node is chosen.
    pub t_m: f64,
    /// Probability that a CP node's provider slot is filled by a T node
    /// (`tCP`).
    pub t_cp: f64,
    /// Probability that a C node's provider slot is filled by a T node
    /// (`tC`).
    pub t_c: f64,

    /// Number of geographic regions (5 in the Baseline model).
    pub regions: usize,
    /// Fraction of M nodes present in two regions (0.20 in the paper).
    pub m_two_region_frac: f64,
    /// Fraction of CP nodes present in two regions (0.05 in the paper).
    pub cp_two_region_frac: f64,

    /// Optional cap on the number of T providers an M node may have
    /// (PREFER-MIDDLE uses `Some(1)`).
    pub max_t_providers_for_m: Option<usize>,
    /// Optional cap on the number of M providers any node may have
    /// (PREFER-TOP uses `Some(1)`); further slots fall back to T nodes.
    pub max_m_providers: Option<usize>,
}

impl TopologyParams {
    /// The Baseline growth model of Table 1, evaluated at size `n`.
    ///
    /// Table 1 values:
    /// - `nT = 4–6` (grows slowly: 4 at n=1000, 6 at n=10000)
    /// - `nM = 0.15 n`, `nCP = 0.05 n`, `nC = 0.80 n`
    /// - `dM = 2 + 2.5 n / 10000`
    /// - `dCP = 2 + 1.5 n / 10000`
    /// - `dC = 1 + 5 n / 100000`
    /// - `pM = 1 + 2 n / 10000`
    /// - `pCP−M = 0.2 + 2 n / 10000`
    /// - `pCP−CP = 0.05 + 5 n / 100000`
    /// - `tM = tCP = 0.375`, `tC = 0.125`
    /// - 5 regions; 20% of M and 5% of CP nodes span two regions.
    ///
    /// # Panics
    /// Panics if `n` is too small to accommodate the minimum population
    /// (fewer than ~20 nodes).
    pub fn baseline(n: usize) -> TopologyParams {
        let nf = n as f64;
        let n_t = baseline_tier1_count(n);
        let n_m = (0.15 * nf).round() as usize;
        let n_cp = (0.05 * nf).round() as usize;
        assert!(
            n >= 20 && n_t + n_m + n_cp < n,
            "n = {n} too small for the Baseline population mix"
        );
        let n_c = n - n_t - n_m - n_cp;
        TopologyParams {
            n,
            n_t,
            n_m,
            n_cp,
            n_c,
            d_m: 2.0 + 2.5 * nf / 10_000.0,
            d_cp: 2.0 + 1.5 * nf / 10_000.0,
            d_c: 1.0 + 5.0 * nf / 100_000.0,
            p_m: 1.0 + 2.0 * nf / 10_000.0,
            p_cp_m: 0.2 + 2.0 * nf / 10_000.0,
            p_cp_cp: 0.05 + 5.0 * nf / 100_000.0,
            t_m: 0.375,
            t_cp: 0.375,
            t_c: 0.125,
            regions: 5,
            m_two_region_frac: 0.20,
            cp_two_region_frac: 0.05,
            max_t_providers_for_m: None,
            max_m_providers: None,
        }
    }

    /// Redistributes the stub population so that `n_cp + n_c` fills
    /// everything not taken by `n_t + n_m`, preserving the Baseline
    /// CP:C ratio (0.05 : 0.80).
    ///
    /// Used by the population-mix deviations of §5.1.
    pub fn rebalance_stubs(&mut self) {
        let stubs = self
            .n
            .checked_sub(self.n_t + self.n_m)
            .expect("transit population exceeds n");
        // Baseline CP share among stubs: 0.05 / 0.85.
        let cp_share = 0.05 / 0.85;
        self.n_cp = (stubs as f64 * cp_share).round() as usize;
        self.n_c = stubs - self.n_cp;
    }

    /// Checks internal consistency; called by the generator before use.
    ///
    /// # Errors
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn check(&self) -> Result<(), String> {
        if self.n_t + self.n_m + self.n_cp + self.n_c != self.n {
            return Err(format!(
                "population mix {}+{}+{}+{} != n = {}",
                self.n_t, self.n_m, self.n_cp, self.n_c, self.n
            ));
        }
        if self.n_t < 2 {
            return Err(format!("need at least 2 tier-1 nodes, got {}", self.n_t));
        }
        if self.regions == 0 || self.regions > crate::types::RegionSet::MAX_REGIONS {
            return Err(format!("region count {} out of range", self.regions));
        }
        for (name, v) in [
            ("dM", self.d_m),
            ("dCP", self.d_cp),
            ("dC", self.d_c),
        ] {
            if !v.is_finite() || v < 1.0 {
                return Err(format!("{name} = {v} must be ≥ 1 (every non-T node needs a provider)"));
            }
        }
        for (name, v) in [
            ("pM", self.p_m),
            ("pCP-M", self.p_cp_m),
            ("pCP-CP", self.p_cp_cp),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} = {v} must be ≥ 0"));
            }
        }
        for (name, v) in [
            ("tM", self.t_m),
            ("tCP", self.t_cp),
            ("tC", self.t_c),
            ("m_two_region_frac", self.m_two_region_frac),
            ("cp_two_region_frac", self.cp_two_region_frac),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} = {v} must be a probability"));
            }
        }
        Ok(())
    }
}

/// The Baseline tier-1 population: "4–6", growing from 4 at n = 1000 to 6
/// at n = 10000 so that the peer count `mp,T = nT − 1` grows by the ≈1.7×
/// factor reported in §4.2.
pub fn baseline_tier1_count(n: usize) -> usize {
    4 + (2.0 * n as f64 / 10_000.0).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_one_at_n10000() {
        let p = TopologyParams::baseline(10_000);
        assert_eq!(p.n_t, 6);
        assert_eq!(p.n_m, 1_500);
        assert_eq!(p.n_cp, 500);
        assert_eq!(p.n_c, 10_000 - 6 - 1_500 - 500);
        assert!((p.d_m - 4.5).abs() < 1e-12);
        assert!((p.d_cp - 3.5).abs() < 1e-12);
        assert!((p.d_c - 1.5).abs() < 1e-12);
        assert!((p.p_m - 3.0).abs() < 1e-12);
        assert!((p.p_cp_m - 2.2).abs() < 1e-12);
        assert!((p.p_cp_cp - 0.55).abs() < 1e-12);
        assert_eq!(p.regions, 5);
        p.check().unwrap();
    }

    #[test]
    fn baseline_matches_table_one_at_n1000() {
        let p = TopologyParams::baseline(1_000);
        assert_eq!(p.n_t, 4);
        assert_eq!(p.n_m, 150);
        assert_eq!(p.n_cp, 50);
        assert!((p.d_m - 2.25).abs() < 1e-12);
        assert!((p.d_c - 1.05).abs() < 1e-12);
        p.check().unwrap();
    }

    #[test]
    fn tier1_count_grows_from_4_to_6() {
        assert_eq!(baseline_tier1_count(1_000), 4);
        assert_eq!(baseline_tier1_count(5_000), 5);
        assert_eq!(baseline_tier1_count(10_000), 6);
    }

    #[test]
    fn population_mix_sums_to_n_across_sizes() {
        for n in (1_000..=10_000).step_by(500) {
            let p = TopologyParams::baseline(n);
            assert_eq!(p.n_t + p.n_m + p.n_cp + p.n_c, n, "mismatch at n={n}");
            p.check().unwrap();
        }
    }

    #[test]
    fn rebalance_preserves_total_and_ratio() {
        let mut p = TopologyParams::baseline(2_000);
        p.n_m = 0;
        p.rebalance_stubs();
        assert_eq!(p.n_t + p.n_m + p.n_cp + p.n_c, 2_000);
        let ratio = p.n_cp as f64 / (p.n_cp + p.n_c) as f64;
        assert!((ratio - 0.05 / 0.85).abs() < 0.01, "CP share {ratio}");
        p.check().unwrap();
    }

    #[test]
    fn check_rejects_bad_mix() {
        let mut p = TopologyParams::baseline(1_000);
        p.n_c += 1;
        assert!(p.check().unwrap_err().contains("population mix"));
    }

    #[test]
    fn check_rejects_sub_one_multihoming() {
        let mut p = TopologyParams::baseline(1_000);
        p.d_c = 0.5;
        assert!(p.check().unwrap_err().contains("dC"));
    }

    #[test]
    fn check_rejects_bad_probability() {
        let mut p = TopologyParams::baseline(1_000);
        p.t_m = 1.5;
        assert!(p.check().unwrap_err().contains("tM"));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_n_rejected() {
        let _ = TopologyParams::baseline(10);
    }
}
