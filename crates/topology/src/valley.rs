//! Valley-free (policy-compliant) path machinery.
//!
//! Under the paper's "no-valley" export policies, a permissible AS path has
//! the shape **up\* (peer)? down\***: zero or more customer→provider hops,
//! at most one peering hop, then zero or more provider→customer hops.
//!
//! [`valley_free_distances`] computes the shortest policy-compliant hop
//! count from a source to every node with the classic three-phase
//! decomposition (an uphill BFS, a single optional peering step, and a
//! downhill Dijkstra seeded with the uphill/peering labels). The result is
//! used by [`crate::metrics`] to verify the paper's "constant ≈4-hop path
//! length" property, and by tests as an oracle for what the BGP simulator
//! should converge to.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::AsGraph;
use crate::types::{AsId, Relationship};

/// Shortest valley-free distance (in AS hops) from `src` to every node.
///
/// Returns a vector indexed by [`AsId`]; `None` means no policy-compliant
/// path exists (impossible in a validated topology, where everyone reaches
/// the tier-1 clique, but kept honest for hand-built graphs).
pub fn valley_free_distances(g: &AsGraph, src: AsId) -> Vec<Option<u32>> {
    let n = g.len();
    const INF: u32 = u32::MAX;

    // Phase 1: uphill BFS along provider links (customer → provider).
    let mut up = vec![INF; n];
    up[src.index()] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = up[u.index()];
        for p in g.providers(u) {
            if up[p.index()] == INF {
                up[p.index()] = du + 1;
                queue.push_back(p);
            }
        }
    }

    // Phase 2: at most one peering hop from any uphill-reachable node.
    // `entry[v]` is the best known distance at which v can be reached in a
    // state that still permits going downhill.
    let mut entry = up.clone();
    for u in g.node_ids() {
        if up[u.index()] == INF {
            continue;
        }
        let du = up[u.index()];
        for p in g.peers(u) {
            if du + 1 < entry[p.index()] {
                entry[p.index()] = du + 1;
            }
        }
    }

    // Phase 3: downhill Dijkstra along customer links (provider →
    // customer), seeded with every uphill/peering label. Seeds have
    // heterogeneous distances, so a priority queue (not plain BFS) is
    // needed for correctness.
    let mut dist = entry.clone();
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = dist
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != INF)
        .map(|(i, &d)| Reverse((d, i as u32)))
        .collect();
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        for c in g.customers(AsId(u)) {
            let nd = d + 1;
            if nd < dist[c.index()] {
                dist[c.index()] = nd;
                heap.push(Reverse((nd, c.0)));
            }
        }
    }

    dist.into_iter()
        .map(|d| if d == INF { None } else { Some(d) })
        .collect()
}

/// True if every node can reach every other node over a valley-free path.
///
/// Quadratic in the worst case; intended for validation of small graphs.
/// For generated topologies a single-source check from one stub suffices in
/// practice (everything funnels through the T clique), which is what
/// [`crate::validate`] uses.
pub fn fully_valley_free_connected(g: &AsGraph) -> bool {
    g.node_ids().all(|src| {
        valley_free_distances(g, src)
            .iter()
            .all(|d| d.is_some())
    })
}

/// The number of *policy-compliant simple paths* between `src` and `dst`
/// would be exponential to enumerate; instead this returns the count of
/// **distinct first-hop choices** at `src` that lie on at least one
/// valley-free path to `dst` — the quantity that drives path exploration
/// (how many alternatives a node can try when a route is withdrawn).
pub fn valley_free_first_hops(g: &AsGraph, src: AsId, dst: AsId) -> usize {
    if src == dst {
        return 0;
    }
    g.neighbors(src)
        .iter()
        .filter(|nb| {
            // A first hop to neighbor `nb` is usable if from `nb` there is a
            // valley-free path to dst whose shape composes with the first
            // hop: going *up* keeps all options; a *peer* hop or *down* hop
            // restricts the remainder to downhill-only.
            let dists = valley_free_distances(g, nb.id);
            match nb.rel {
                Relationship::Provider => dists[dst.index()].is_some(),
                Relationship::Peer | Relationship::Customer => {
                    downhill_reaches(g, nb.id, dst)
                }
            }
        })
        .count()
}

/// True if `dst` is reachable from `from` using only provider→customer
/// (downhill) hops, including `from == dst`.
fn downhill_reaches(g: &AsGraph, from: AsId, dst: AsId) -> bool {
    from == dst || g.in_customer_tree(from, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{NodeType, RegionSet};

    /// Fixture:
    ///
    /// ```text
    ///   T0 ──peer── T1
    ///   │            │
    ///   M2          M3
    ///   │            │
    ///   C4          C5
    /// ```
    fn chain() -> (AsGraph, [AsId; 6]) {
        let mut g = AsGraph::new();
        let r = RegionSet::all(1);
        let t0 = g.add_node(NodeType::T, r);
        let t1 = g.add_node(NodeType::T, r);
        let m2 = g.add_node(NodeType::M, r);
        let m3 = g.add_node(NodeType::M, r);
        let c4 = g.add_node(NodeType::C, r);
        let c5 = g.add_node(NodeType::C, r);
        g.add_peer_link(t0, t1);
        g.add_transit_link(m2, t0);
        g.add_transit_link(m3, t1);
        g.add_transit_link(c4, m2);
        g.add_transit_link(c5, m3);
        (g, [t0, t1, m2, m3, c4, c5])
    }

    #[test]
    fn distances_follow_up_peer_down() {
        let (g, ids) = chain();
        let d = valley_free_distances(&g, ids[4]); // from C4
        assert_eq!(d[ids[4].index()], Some(0));
        assert_eq!(d[ids[2].index()], Some(1)); // up to M2
        assert_eq!(d[ids[0].index()], Some(2)); // up to T0
        assert_eq!(d[ids[1].index()], Some(3)); // peer to T1
        assert_eq!(d[ids[3].index()], Some(4)); // down to M3
        assert_eq!(d[ids[5].index()], Some(5)); // down to C5
    }

    #[test]
    fn peer_then_up_is_forbidden() {
        // C below a peer of the source's provider must NOT be reachable
        // via peer→up.
        //
        //   T0 ── T1        (peers)
        //   M2 ── M3        (peers)  M2→T0, M3→T1 transit
        //   src C4 under M2; dst C5 under M3.
        //
        // Valid shortest path: C4 up M2, peer M3, down C5 — up, one peer,
        // down = 3 hops. (The longer C4-M2-T0-T1-M3-C5 route also exists.)
        let mut g = AsGraph::new();
        let r = RegionSet::all(1);
        let t0 = g.add_node(NodeType::T, r);
        let t1 = g.add_node(NodeType::T, r);
        let m2 = g.add_node(NodeType::M, r);
        let m3 = g.add_node(NodeType::M, r);
        let c4 = g.add_node(NodeType::C, r);
        let c5 = g.add_node(NodeType::C, r);
        g.add_peer_link(t0, t1);
        g.add_transit_link(m2, t0);
        g.add_transit_link(m3, t1);
        g.add_peer_link(m2, m3);
        g.add_transit_link(c4, m2);
        g.add_transit_link(c5, m3);
        let d = valley_free_distances(&g, c4);
        assert_eq!(d[c5.index()], Some(3), "up-peer-down path");
        // T1 is reachable up-up-peer (3 hops); up-peer-up via M3 would
        // also be 3 hops but is invalid — either way the reported length
        // is 3, via the valid route.
        assert_eq!(d[t1.index()], Some(3));
    }

    #[test]
    fn two_peer_hops_are_forbidden() {
        // src — P1 — P2 all peers in a row: src can reach P1 (1 hop) but
        // not P2 (two consecutive peering hops are not valley-free).
        let mut g = AsGraph::new();
        let r = RegionSet::all(1);
        let a = g.add_node(NodeType::M, r);
        let b = g.add_node(NodeType::M, r);
        let c = g.add_node(NodeType::M, r);
        g.add_peer_link(a, b);
        g.add_peer_link(b, c);
        let d = valley_free_distances(&g, a);
        assert_eq!(d[b.index()], Some(1));
        assert_eq!(d[c.index()], None);
    }

    #[test]
    fn down_then_up_is_forbidden() {
        // Provider P with customers A and B: A reaches B via P (up, down)
        // — 2 hops. But from P, reaching a *provider* of one of its
        // customers' other providers must not pass through the customer.
        //
        //   P1   P2
        //    \   /
        //     \ /
        //      C
        // From P1: C at 1 hop (down); P2 must be unreachable (down-up).
        let mut g = AsGraph::new();
        let r = RegionSet::all(1);
        let p1 = g.add_node(NodeType::M, r);
        let p2 = g.add_node(NodeType::M, r);
        let c = g.add_node(NodeType::C, r);
        g.add_transit_link(c, p1);
        g.add_transit_link(c, p2);
        let d = valley_free_distances(&g, p1);
        assert_eq!(d[c.index()], Some(1));
        assert_eq!(d[p2.index()], None, "down-up valley must be rejected");
    }

    #[test]
    fn generated_topologies_are_valley_free_connected_from_stubs() {
        let g = crate::generate(crate::GrowthScenario::Baseline, 400, 99);
        let stub = g
            .node_ids()
            .find(|&id| g.node_type(id) == NodeType::C)
            .unwrap();
        let d = valley_free_distances(&g, stub);
        assert!(d.iter().all(|x| x.is_some()), "stub cannot reach everyone");
    }

    #[test]
    fn first_hop_count_matches_multihoming_for_stub_to_far_dst() {
        // A dual-homed stub whose providers both reach the destination has
        // two usable first hops.
        let (g, ids) = chain();
        let mut g = g;
        let extra = g.add_node(NodeType::M, RegionSet::all(1));
        g.add_transit_link(extra, ids[0]);
        g.add_transit_link(ids[4], extra); // C4 now dual-homed: M2 + extra
        let hops = valley_free_first_hops(&g, ids[4], ids[5]);
        assert_eq!(hops, 2);
    }

    #[test]
    fn full_connectivity_check_on_small_graph() {
        let (g, _) = chain();
        assert!(fully_valley_free_connected(&g));
    }

    #[test]
    fn disconnected_pair_detected() {
        let mut g = AsGraph::new();
        let r = RegionSet::all(1);
        let a = g.add_node(NodeType::M, r);
        let b = g.add_node(NodeType::M, r);
        let c = g.add_node(NodeType::C, r);
        g.add_transit_link(c, a);
        let d = valley_free_distances(&g, c);
        assert_eq!(d[b.index()], None);
        assert!(!fully_valley_free_connected(&g));
        let _ = (a, b);
    }
}
