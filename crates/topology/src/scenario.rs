//! The topology growth scenarios of §5 — the Baseline model plus thirteen
//! single-dimensional "what-if" deviations.
//!
//! Each scenario is a transform of the Baseline [`TopologyParams`] at a
//! given size `n`. The four groups mirror the paper's subsections:
//!
//! * §5.1 population mix: [`NoMiddle`], [`RichMiddle`], [`StaticMiddle`],
//!   [`TransitClique`]
//! * §5.2 multihoming degree: [`DenseCore`], [`DenseEdge`], [`Tree`],
//!   [`ConstantMhd`]
//! * §5.3 peering: [`NoPeering`], [`StrongCorePeering`],
//!   [`StrongEdgePeering`]
//! * §5.4 provider preference: [`PreferMiddle`], [`PreferTop`]
//!
//! [`NoMiddle`]: GrowthScenario::NoMiddle
//! [`RichMiddle`]: GrowthScenario::RichMiddle
//! [`StaticMiddle`]: GrowthScenario::StaticMiddle
//! [`TransitClique`]: GrowthScenario::TransitClique
//! [`DenseCore`]: GrowthScenario::DenseCore
//! [`DenseEdge`]: GrowthScenario::DenseEdge
//! [`Tree`]: GrowthScenario::Tree
//! [`ConstantMhd`]: GrowthScenario::ConstantMhd
//! [`NoPeering`]: GrowthScenario::NoPeering
//! [`StrongCorePeering`]: GrowthScenario::StrongCorePeering
//! [`StrongEdgePeering`]: GrowthScenario::StrongEdgePeering
//! [`PreferMiddle`]: GrowthScenario::PreferMiddle
//! [`PreferTop`]: GrowthScenario::PreferTop

use std::fmt;

use crate::params::TopologyParams;

/// The size at which STATIC-MIDDLE freezes the transit population (the
/// smallest size in the paper's sweeps).
const STATIC_MIDDLE_FREEZE_N: usize = 1_000;

/// One of the paper's topology growth models.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum GrowthScenario {
    /// The Baseline model of Table 1, resembling the Internet's growth over
    /// the decade before the paper.
    Baseline,
    /// §5.1: no M nodes at all — tier-1 transit is so cheap that regional
    /// providers have left the market.
    NoMiddle,
    /// §5.1: a booming ISP market: `nM = 0.45 n` (3× Baseline).
    RichMiddle,
    /// §5.1: the transit population (T and M counts) is frozen at its
    /// n = 1000 value; all growth happens at the edge.
    StaticMiddle,
    /// §5.1: every transit node joins the top clique: `nT = 0.15 n, nM = 0`.
    TransitClique,
    /// §5.2: much stronger multihoming in the core: `dM × 3`.
    DenseCore,
    /// §5.2: densification at the edge: `dC × 3, dCP × 3`.
    DenseEdge,
    /// §5.2: a tree-like graph: every non-T node has exactly one provider.
    Tree,
    /// §5.2: multihoming degrees keep their n = 0 intercepts (no growth
    /// with n).
    ConstantMhd,
    /// §5.3: no peering links outside the T clique.
    NoPeering,
    /// §5.3: core densification through peering: `pM × 2`.
    StrongCorePeering,
    /// §5.3: edge densification through peering: `pCP−M × 3, pCP−CP × 3`.
    StrongEdgePeering,
    /// §5.4: nodes prefer M providers: `tCP = tC = 0` (stubs never buy
    /// from tier-1) and M nodes may have at most one T provider.
    PreferMiddle,
    /// §5.4: nodes prefer T providers: any node may have at most one M
    /// provider.
    PreferTop,
}

impl GrowthScenario {
    /// All scenarios, Baseline first, in the paper's presentation order.
    pub const ALL: [GrowthScenario; 14] = [
        GrowthScenario::Baseline,
        GrowthScenario::NoMiddle,
        GrowthScenario::RichMiddle,
        GrowthScenario::StaticMiddle,
        GrowthScenario::TransitClique,
        GrowthScenario::DenseCore,
        GrowthScenario::DenseEdge,
        GrowthScenario::Tree,
        GrowthScenario::ConstantMhd,
        GrowthScenario::NoPeering,
        GrowthScenario::StrongCorePeering,
        GrowthScenario::StrongEdgePeering,
        GrowthScenario::PreferMiddle,
        GrowthScenario::PreferTop,
    ];

    /// The paper's name for the scenario (e.g. `"DENSE-CORE"`).
    pub fn name(self) -> &'static str {
        match self {
            GrowthScenario::Baseline => "BASELINE",
            GrowthScenario::NoMiddle => "NO-MIDDLE",
            GrowthScenario::RichMiddle => "RICH-MIDDLE",
            GrowthScenario::StaticMiddle => "STATIC-MIDDLE",
            GrowthScenario::TransitClique => "TRANSIT-CLIQUE",
            GrowthScenario::DenseCore => "DENSE-CORE",
            GrowthScenario::DenseEdge => "DENSE-EDGE",
            GrowthScenario::Tree => "TREE",
            GrowthScenario::ConstantMhd => "CONSTANT-MHD",
            GrowthScenario::NoPeering => "NO-PEERING",
            GrowthScenario::StrongCorePeering => "STRONG-CORE-PEERING",
            GrowthScenario::StrongEdgePeering => "STRONG-EDGE-PEERING",
            GrowthScenario::PreferMiddle => "PREFER-MIDDLE",
            GrowthScenario::PreferTop => "PREFER-TOP",
        }
    }

    /// Parses a scenario from its paper name (case-insensitive; `_` and `-`
    /// are interchangeable).
    pub fn from_name(name: &str) -> Option<GrowthScenario> {
        let canon = name.trim().to_ascii_uppercase().replace('_', "-");
        Self::ALL.into_iter().find(|s| s.name() == canon)
    }

    /// Materializes the scenario's parameters at size `n`.
    pub fn params(self, n: usize) -> TopologyParams {
        let mut p = TopologyParams::baseline(n);
        match self {
            GrowthScenario::Baseline => {}
            GrowthScenario::NoMiddle => {
                p.n_m = 0;
                p.rebalance_stubs();
            }
            GrowthScenario::RichMiddle => {
                p.n_m = (0.45 * n as f64).round() as usize;
                p.rebalance_stubs();
            }
            GrowthScenario::StaticMiddle => {
                // Freeze the transit population at the n=1000 level (the
                // smallest size in the paper's sweeps); below that, the
                // scenario degenerates to the Baseline mix so it stays
                // well-defined at any size.
                let frozen = TopologyParams::baseline(STATIC_MIDDLE_FREEZE_N.min(n));
                p.n_t = frozen.n_t;
                p.n_m = frozen.n_m;
                p.rebalance_stubs();
            }
            GrowthScenario::TransitClique => {
                p.n_t = (0.15 * n as f64).round() as usize;
                p.n_m = 0;
                p.rebalance_stubs();
            }
            GrowthScenario::DenseCore => {
                p.d_m *= 3.0;
            }
            GrowthScenario::DenseEdge => {
                p.d_c *= 3.0;
                p.d_cp *= 3.0;
            }
            GrowthScenario::Tree => {
                p.d_m = 1.0;
                p.d_cp = 1.0;
                p.d_c = 1.0;
            }
            GrowthScenario::ConstantMhd => {
                // Keep the n-independent intercepts of Table 1.
                p.d_m = 2.0;
                p.d_cp = 2.0;
                p.d_c = 1.0;
            }
            GrowthScenario::NoPeering => {
                p.p_m = 0.0;
                p.p_cp_m = 0.0;
                p.p_cp_cp = 0.0;
            }
            GrowthScenario::StrongCorePeering => {
                p.p_m *= 2.0;
            }
            GrowthScenario::StrongEdgePeering => {
                p.p_cp_m *= 3.0;
                p.p_cp_cp *= 3.0;
            }
            GrowthScenario::PreferMiddle => {
                // §5.4: "setting tP = tC = 0, and limiting the number of T
                // providers for M nodes to one at most" — stubs never buy
                // transit from tier-1 directly; M nodes keep their Baseline
                // T-provider probability but at most one such link.
                p.t_cp = 0.0;
                p.t_c = 0.0;
                p.max_t_providers_for_m = Some(1);
            }
            GrowthScenario::PreferTop => {
                p.max_m_providers = Some(1);
            }
        }
        debug_assert!(p.check().is_ok(), "scenario produced bad params: {:?}", p.check());
        p
    }
}

impl fmt::Display for GrowthScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_produce_valid_params() {
        for s in GrowthScenario::ALL {
            for n in [1_000, 4_000, 10_000] {
                let p = s.params(n);
                p.check().unwrap_or_else(|e| panic!("{s} at n={n}: {e}"));
                assert_eq!(p.n, n);
            }
        }
    }

    #[test]
    fn names_roundtrip() {
        for s in GrowthScenario::ALL {
            assert_eq!(GrowthScenario::from_name(s.name()), Some(s));
        }
        assert_eq!(
            GrowthScenario::from_name("dense_core"),
            Some(GrowthScenario::DenseCore)
        );
        assert_eq!(GrowthScenario::from_name("no such"), None);
    }

    #[test]
    fn no_middle_removes_m_nodes() {
        let p = GrowthScenario::NoMiddle.params(2_000);
        assert_eq!(p.n_m, 0);
        assert_eq!(p.n_t + p.n_cp + p.n_c, 2_000);
    }

    #[test]
    fn rich_middle_triples_m_share() {
        let p = GrowthScenario::RichMiddle.params(2_000);
        assert_eq!(p.n_m, 900);
    }

    #[test]
    fn static_middle_freezes_transit_population() {
        let p5 = GrowthScenario::StaticMiddle.params(5_000);
        let p10 = GrowthScenario::StaticMiddle.params(10_000);
        assert_eq!(p5.n_t, 4);
        assert_eq!(p5.n_m, 150);
        assert_eq!(p10.n_t, 4);
        assert_eq!(p10.n_m, 150);
        assert!(p10.n_c > p5.n_c, "edge keeps growing");
    }

    #[test]
    fn transit_clique_moves_all_transit_to_t() {
        let p = GrowthScenario::TransitClique.params(2_000);
        assert_eq!(p.n_t, 300);
        assert_eq!(p.n_m, 0);
    }

    #[test]
    fn dense_core_triples_only_dm() {
        let b = GrowthScenario::Baseline.params(4_000);
        let p = GrowthScenario::DenseCore.params(4_000);
        assert!((p.d_m - 3.0 * b.d_m).abs() < 1e-12);
        assert_eq!(p.d_c, b.d_c);
        assert_eq!(p.d_cp, b.d_cp);
    }

    #[test]
    fn dense_edge_triples_stub_mhd() {
        let b = GrowthScenario::Baseline.params(4_000);
        let p = GrowthScenario::DenseEdge.params(4_000);
        assert!((p.d_c - 3.0 * b.d_c).abs() < 1e-12);
        assert!((p.d_cp - 3.0 * b.d_cp).abs() < 1e-12);
        assert_eq!(p.d_m, b.d_m);
    }

    #[test]
    fn tree_pins_every_mhd_to_one() {
        let p = GrowthScenario::Tree.params(3_000);
        assert_eq!(p.d_m, 1.0);
        assert_eq!(p.d_cp, 1.0);
        assert_eq!(p.d_c, 1.0);
    }

    #[test]
    fn constant_mhd_is_size_independent() {
        let a = GrowthScenario::ConstantMhd.params(1_000);
        let b = GrowthScenario::ConstantMhd.params(10_000);
        assert_eq!(a.d_m, b.d_m);
        assert_eq!(a.d_c, b.d_c);
        assert_eq!(a.d_cp, b.d_cp);
    }

    #[test]
    fn no_peering_zeroes_all_peering_knobs() {
        let p = GrowthScenario::NoPeering.params(2_000);
        assert_eq!(p.p_m, 0.0);
        assert_eq!(p.p_cp_m, 0.0);
        assert_eq!(p.p_cp_cp, 0.0);
    }

    #[test]
    fn peering_deviations_scale_the_right_knobs() {
        let b = GrowthScenario::Baseline.params(4_000);
        let core = GrowthScenario::StrongCorePeering.params(4_000);
        assert!((core.p_m - 2.0 * b.p_m).abs() < 1e-12);
        assert_eq!(core.p_cp_m, b.p_cp_m);
        let edge = GrowthScenario::StrongEdgePeering.params(4_000);
        assert!((edge.p_cp_m - 3.0 * b.p_cp_m).abs() < 1e-12);
        assert!((edge.p_cp_cp - 3.0 * b.p_cp_cp).abs() < 1e-12);
        assert_eq!(edge.p_m, b.p_m);
    }

    #[test]
    fn prefer_middle_zeroes_stub_t_probabilities_and_caps_t_providers() {
        let p = GrowthScenario::PreferMiddle.params(2_000);
        // The paper zeroes only the stub probabilities (tP = tC = 0); M
        // nodes keep tM but may have at most one T provider.
        assert_eq!(p.t_m, 0.375);
        assert_eq!(p.t_cp, 0.0);
        assert_eq!(p.t_c, 0.0);
        assert_eq!(p.max_t_providers_for_m, Some(1));
        assert_eq!(p.max_m_providers, None);
    }

    #[test]
    fn prefer_top_caps_m_providers() {
        let p = GrowthScenario::PreferTop.params(2_000);
        assert_eq!(p.max_m_providers, Some(1));
        // Baseline probabilities retained.
        assert_eq!(p.t_m, 0.375);
    }

    #[test]
    fn display_uses_paper_names() {
        assert_eq!(GrowthScenario::StrongCorePeering.to_string(), "STRONG-CORE-PEERING");
    }
}
