//! Graph metrics used to verify the paper's four "stable topological
//! properties" and to fill in the realized columns of Table 1.

use bgpscale_simkernel::rng::{Rng, Xoshiro256StarStar};

use crate::graph::AsGraph;
use crate::types::{AsId, NodeType};
use crate::valley::valley_free_distances;

/// Degree above which local clustering is estimated by sampling neighbor
/// pairs instead of examining all of them (keeps TRANSIT-CLIQUE tractable).
const CLUSTERING_EXACT_DEGREE_LIMIT: usize = 128;
/// Number of neighbor pairs sampled per high-degree node.
const CLUSTERING_SAMPLES: usize = 2_000;

/// A one-page quantitative summary of a topology instance: the realized
/// values behind Table 1 and the four stable properties.
#[derive(Clone, Debug)]
pub struct TopologySummary {
    /// Total nodes.
    pub n: usize,
    /// Population per type `[T, M, CP, C]`.
    pub population: [usize; 4],
    /// Transit links.
    pub transit_links: usize,
    /// Peering links.
    pub peer_links: usize,
    /// Mean multihoming degree per type `[T, M, CP, C]` (T is always 0).
    pub mean_mhd: [f64; 4],
    /// Mean peering degree per type `[T, M, CP, C]`.
    pub mean_peering: [f64; 4],
    /// Maximum total degree in the graph.
    pub max_degree: usize,
    /// Mean total degree.
    pub mean_degree: f64,
    /// Average local clustering coefficient.
    pub clustering: f64,
    /// Mean valley-free path length over sampled source nodes.
    pub avg_path_length: f64,
}

impl TopologySummary {
    /// Computes the summary. `seed` drives the sampling used for the
    /// clustering coefficient and path lengths.
    pub fn compute(g: &AsGraph, seed: u64) -> TopologySummary {
        let mut population = [0usize; 4];
        let mut mhd_sum = [0f64; 4];
        let mut peer_sum = [0f64; 4];
        for id in g.node_ids() {
            let slot = type_slot(g.node_type(id));
            population[slot] += 1;
            mhd_sum[slot] += g.multihoming_degree(id) as f64;
            peer_sum[slot] += g.peering_degree(id) as f64;
        }
        let mut mean_mhd = [0f64; 4];
        let mut mean_peering = [0f64; 4];
        for i in 0..4 {
            if population[i] > 0 {
                mean_mhd[i] = mhd_sum[i] / population[i] as f64;
                mean_peering[i] = peer_sum[i] / population[i] as f64;
            }
        }
        let degrees: Vec<usize> = g.node_ids().map(|id| g.degree(id)).collect();
        TopologySummary {
            n: g.len(),
            population,
            transit_links: g.transit_link_count(),
            peer_links: g.peer_link_count(),
            mean_mhd,
            mean_peering,
            max_degree: degrees.iter().copied().max().unwrap_or(0),
            mean_degree: degrees.iter().sum::<usize>() as f64 / g.len().max(1) as f64,
            clustering: clustering_coefficient(g, seed),
            avg_path_length: avg_valley_free_path_length(g, 30, seed),
        }
    }
}

fn type_slot(ty: NodeType) -> usize {
    match ty {
        NodeType::T => 0,
        NodeType::M => 1,
        NodeType::Cp => 2,
        NodeType::C => 3,
    }
}

/// The total-degree sequence, descending.
pub fn degree_sequence(g: &AsGraph) -> Vec<usize> {
    let mut d: Vec<usize> = g.node_ids().map(|id| g.degree(id)).collect();
    d.sort_unstable_by(|a, b| b.cmp(a));
    d
}

/// Complementary CDF of the degree distribution: for each distinct degree
/// `d` (ascending) the fraction of nodes with degree ≥ `d`. The paper's
/// power-law property shows up as an approximately straight line of these
/// points on log-log axes.
pub fn degree_ccdf(g: &AsGraph) -> Vec<(usize, f64)> {
    let mut degrees = degree_sequence(g);
    degrees.reverse(); // ascending
    let n = degrees.len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        let d = degrees[i];
        // Fraction of nodes with degree >= d.
        out.push((d, (n - i) as f64 / n as f64));
        while i < n && degrees[i] == d {
            i += 1;
        }
    }
    out
}

/// Average local clustering coefficient (Watts–Strogatz definition),
/// averaged over nodes of degree ≥ 2.
///
/// For nodes whose degree exceeds an internal threshold the local
/// coefficient is estimated from sampled neighbor pairs; `seed` makes the
/// estimate reproducible.
pub fn clustering_coefficient(g: &AsGraph, seed: u64) -> f64 {
    let mut rng = Xoshiro256StarStar::new(seed);
    let mut total = 0.0;
    let mut counted = 0usize;
    for id in g.node_ids() {
        let nbrs: Vec<AsId> = g.neighbors(id).iter().map(|n| n.id).collect();
        let k = nbrs.len();
        if k < 2 {
            continue;
        }
        let local = if k <= CLUSTERING_EXACT_DEGREE_LIMIT {
            let mut closed = 0usize;
            for i in 0..k {
                for j in (i + 1)..k {
                    if g.has_link(nbrs[i], nbrs[j]) {
                        closed += 1;
                    }
                }
            }
            closed as f64 / (k * (k - 1) / 2) as f64
        } else {
            let mut closed = 0usize;
            for _ in 0..CLUSTERING_SAMPLES {
                let i = rng.next_below(k as u64) as usize;
                let mut j = rng.next_below(k as u64 - 1) as usize;
                if j >= i {
                    j += 1;
                }
                if g.has_link(nbrs[i], nbrs[j]) {
                    closed += 1;
                }
            }
            closed as f64 / CLUSTERING_SAMPLES as f64
        };
        total += local;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Mean valley-free (policy-compliant) path length in AS hops, estimated
/// from `samples` random source nodes to all destinations.
///
/// This is the quantity the paper reports as "constant at about 4 hops".
pub fn avg_valley_free_path_length(g: &AsGraph, samples: usize, seed: u64) -> f64 {
    if g.len() < 2 {
        return 0.0;
    }
    let mut rng = Xoshiro256StarStar::new(seed ^ 0xA5A5_5A5A);
    let mut sum = 0u64;
    let mut pairs = 0u64;
    for _ in 0..samples {
        let src = AsId(rng.next_below(g.len() as u64) as u32);
        for (i, d) in valley_free_distances(g, src).iter().enumerate() {
            if i != src.index() {
                if let Some(hops) = d {
                    sum += *hops as u64;
                    pairs += 1;
                }
            }
        }
    }
    if pairs == 0 {
        0.0
    } else {
        sum as f64 / pairs as f64
    }
}

/// Mean undirected (policy-oblivious) path length over `samples` BFS
/// sources — a lower bound on the valley-free length, included for
/// comparison.
pub fn avg_bfs_path_length(g: &AsGraph, samples: usize, seed: u64) -> f64 {
    if g.len() < 2 {
        return 0.0;
    }
    let mut rng = Xoshiro256StarStar::new(seed ^ 0x5A5A_A5A5);
    let mut sum = 0u64;
    let mut pairs = 0u64;
    for _ in 0..samples {
        let src = AsId(rng.next_below(g.len() as u64) as u32);
        let mut dist = vec![u32::MAX; g.len()];
        dist[src.index()] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()];
            for nb in g.neighbors(u) {
                if dist[nb.id.index()] == u32::MAX {
                    dist[nb.id.index()] = du + 1;
                    queue.push_back(nb.id);
                }
            }
        }
        for (i, &d) in dist.iter().enumerate() {
            if i != src.index() && d != u32::MAX {
                sum += d as u64;
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        0.0
    } else {
        sum as f64 / pairs as f64
    }
}

/// Degree assortativity: the Pearson correlation of the degrees at the
/// two ends of each link. The AS-level Internet is famously
/// **disassortative** (high-degree providers connect to low-degree
/// stubs), so generated topologies should yield a clearly negative value
/// — another qualitative check on the generator.
pub fn degree_assortativity(g: &AsGraph) -> f64 {
    // Sum over each undirected edge once.
    let mut n = 0.0f64;
    let mut sum_xy = 0.0;
    let mut sum_x = 0.0;
    let mut sum_y = 0.0;
    let mut sum_x2 = 0.0;
    let mut sum_y2 = 0.0;
    for id in g.node_ids() {
        let dx = g.degree(id) as f64;
        for nb in g.neighbors(id) {
            if nb.id <= id {
                continue; // count each link once
            }
            let dy = g.degree(nb.id) as f64;
            // Symmetrize: include (x, y) and (y, x) so the correlation is
            // over unordered edge endpoints.
            for (a, b) in [(dx, dy), (dy, dx)] {
                n += 1.0;
                sum_xy += a * b;
                sum_x += a;
                sum_y += b;
                sum_x2 += a * a;
                sum_y2 += b * b;
            }
        }
    }
    if n < 2.0 {
        return 0.0;
    }
    let cov = sum_xy / n - (sum_x / n) * (sum_y / n);
    let var_x = sum_x2 / n - (sum_x / n).powi(2);
    let var_y = sum_y2 / n - (sum_y / n).powi(2);
    if var_x <= 0.0 || var_y <= 0.0 {
        0.0
    } else {
        cov / (var_x * var_y).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RegionSet;
    use crate::{generate, GrowthScenario};

    fn triangle_plus_tail() -> AsGraph {
        // M0–M1–M2 triangle of peers plus a customer C3 under M0.
        let mut g = AsGraph::new();
        let r = RegionSet::all(1);
        let m0 = g.add_node(NodeType::M, r);
        let m1 = g.add_node(NodeType::M, r);
        let m2 = g.add_node(NodeType::M, r);
        let c3 = g.add_node(NodeType::C, r);
        g.add_peer_link(m0, m1);
        g.add_peer_link(m1, m2);
        g.add_peer_link(m0, m2);
        g.add_transit_link(c3, m0);
        g
    }

    #[test]
    fn clustering_of_triangle_is_computed_exactly() {
        let g = triangle_plus_tail();
        // m1, m2: both neighbors connected → 1.0 each.
        // m0: neighbors {m1, m2, c3}; pairs: (m1,m2) closed, (m1,c3) open,
        // (m2,c3) open → 1/3. c3 has degree 1 → excluded.
        let c = clustering_coefficient(&g, 1);
        let expected = (1.0 + 1.0 + 1.0 / 3.0) / 3.0;
        assert!((c - expected).abs() < 1e-12, "{c} vs {expected}");
    }

    #[test]
    fn clustering_zero_for_star() {
        let mut g = AsGraph::new();
        let r = RegionSet::all(1);
        let hub = g.add_node(NodeType::M, r);
        for _ in 0..5 {
            let leaf = g.add_node(NodeType::C, r);
            g.add_transit_link(leaf, hub);
        }
        assert_eq!(clustering_coefficient(&g, 1), 0.0);
    }

    #[test]
    fn sampled_clustering_close_to_exact_on_clique() {
        // A clique larger than the exact-degree limit: every local
        // coefficient is exactly 1, and the sampled estimate must agree.
        let mut g = AsGraph::new();
        let r = RegionSet::all(1);
        let ids: Vec<AsId> = (0..150).map(|_| g.add_node(NodeType::T, r)).collect();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                g.add_peer_link(ids[i], ids[j]);
            }
        }
        let c = clustering_coefficient(&g, 3);
        assert!((c - 1.0).abs() < 1e-9, "clique clustering {c}");
    }

    #[test]
    fn degree_ccdf_is_monotone_and_anchored() {
        let g = generate(GrowthScenario::Baseline, 500, 5);
        let ccdf = degree_ccdf(&g);
        assert_eq!(ccdf.last().map(|&(_, f)| f > 0.0), Some(true));
        // First point covers all nodes.
        assert!((ccdf[0].1 - 1.0).abs() < 1e-12);
        for w in ccdf.windows(2) {
            assert!(w[0].0 < w[1].0, "degrees ascending");
            assert!(w[0].1 >= w[1].1, "ccdf non-increasing");
        }
    }

    #[test]
    fn baseline_shows_heavy_tailed_degrees() {
        let g = generate(GrowthScenario::Baseline, 2_000, 6);
        let seq = degree_sequence(&g);
        let mean = seq.iter().sum::<usize>() as f64 / seq.len() as f64;
        assert!(
            seq[0] as f64 > 10.0 * mean,
            "max degree {} not ≫ mean {mean}",
            seq[0]
        );
    }

    #[test]
    fn baseline_clustering_exceeds_random_graph_level() {
        let g = generate(GrowthScenario::Baseline, 1_500, 7);
        let c = clustering_coefficient(&g, 7);
        // A G(n, m) random graph with the same density would have
        // clustering ≈ mean_degree / n ≈ 0.003. The paper reports ≈0.15.
        let mean_degree =
            2.0 * g.link_count() as f64 / g.len() as f64;
        let random_level = mean_degree / g.len() as f64;
        assert!(
            c > 10.0 * random_level,
            "clustering {c} vs random level {random_level}"
        );
        assert!(c > 0.04, "clustering {c} unexpectedly low");
    }

    #[test]
    fn path_length_is_about_four_hops_and_stable() {
        let small = generate(GrowthScenario::Baseline, 1_000, 8);
        let big = generate(GrowthScenario::Baseline, 4_000, 8);
        let l_small = avg_valley_free_path_length(&small, 10, 8);
        let l_big = avg_valley_free_path_length(&big, 10, 8);
        assert!((2.5..=5.5).contains(&l_small), "small path length {l_small}");
        assert!((2.5..=5.5).contains(&l_big), "big path length {l_big}");
        assert!(
            (l_big - l_small).abs() < 1.0,
            "path length drifts: {l_small} → {l_big}"
        );
    }

    #[test]
    fn bfs_length_lower_bounds_valley_free() {
        let g = generate(GrowthScenario::Baseline, 800, 9);
        let bfs = avg_bfs_path_length(&g, 20, 9);
        let vf = avg_valley_free_path_length(&g, 20, 9);
        assert!(bfs <= vf + 1e-9, "bfs {bfs} > valley-free {vf}");
    }

    #[test]
    fn assortativity_of_star_is_negative() {
        // A star is maximally disassortative: every edge joins the hub
        // (high degree) to a leaf (degree 1).
        let mut g = AsGraph::new();
        let r = RegionSet::all(1);
        let hub = g.add_node(NodeType::T, r);
        for _ in 0..10 {
            let leaf = g.add_node(NodeType::C, r);
            g.add_transit_link(leaf, hub);
        }
        assert!(degree_assortativity(&g) < -0.99);
    }

    #[test]
    fn assortativity_of_regular_graph_is_degenerate_zero() {
        // A cycle: every endpoint has degree 2 → zero variance → defined
        // as 0 here.
        let mut g = AsGraph::new();
        let r = RegionSet::all(1);
        let ids: Vec<AsId> = (0..6).map(|_| g.add_node(NodeType::M, r)).collect();
        for i in 0..6 {
            g.add_peer_link(ids[i], ids[(i + 1) % 6]);
        }
        assert_eq!(degree_assortativity(&g), 0.0);
    }

    #[test]
    fn generated_topologies_are_disassortative() {
        let g = generate(GrowthScenario::Baseline, 1_500, 31);
        let r = degree_assortativity(&g);
        assert!(
            r < -0.1,
            "AS-like topologies must be disassortative, got {r}"
        );
    }

    #[test]
    fn summary_population_and_links_match_graph() {
        let g = generate(GrowthScenario::Baseline, 600, 10);
        let s = TopologySummary::compute(&g, 10);
        assert_eq!(s.n, 600);
        assert_eq!(s.population.iter().sum::<usize>(), 600);
        assert_eq!(s.transit_links, g.transit_link_count());
        assert_eq!(s.peer_links, g.peer_link_count());
        assert_eq!(s.mean_mhd[0], 0.0, "T nodes have no providers");
        assert!(s.mean_mhd[1] >= 1.0);
        assert!(s.max_degree >= s.mean_degree as usize);
    }
}
