//! Structural invariant validation.
//!
//! [`validate`] checks every property the generator promises; it is used by
//! tests, by the `inspect_topology` example, and as a guard before long
//! simulation runs (a corrupted topology would silently skew churn
//! numbers).

use std::collections::BTreeSet;
use std::fmt;

use crate::graph::AsGraph;
use crate::types::{AsId, NodeType, Relationship};
use crate::valley::valley_free_distances;

/// One violated invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which rule was broken.
    pub rule: Rule,
    /// Human-readable detail naming the offending nodes.
    pub detail: String,
}

/// The checkable invariant classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// The provider relation must be acyclic ("hierarchical structure").
    ProviderCycle,
    /// T nodes have no providers.
    TierOneHasProvider,
    /// T nodes form a complete peering clique.
    TierOneCliqueIncomplete,
    /// Every non-T node has at least one provider.
    MissingProvider,
    /// Stub nodes (CP, C) have no customers.
    StubHasCustomer,
    /// C nodes have no peering links.
    CustomerStubPeers,
    /// Adjacency relationships must mirror (`a` sees customer ⇔ `b` sees
    /// provider).
    AsymmetricLink,
    /// No node appears twice in an adjacency list.
    DuplicateLink,
    /// Linked nodes must share a region.
    RegionMismatch,
    /// A node must not peer with a member of its own customer tree.
    PeerInCustomerTree,
    /// Every node must reach every other node over a valley-free path.
    Disconnected,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.rule, self.detail)
    }
}

/// Validates every structural invariant, returning all violations found
/// (not just the first).
///
/// # Errors
/// A non-empty list of [`Violation`]s.
pub fn validate(g: &AsGraph) -> Result<(), Vec<Violation>> {
    let mut v = Vec::new();
    check_adjacency_consistency(g, &mut v);
    check_node_type_rules(g, &mut v);
    check_tier_one_clique(g, &mut v);
    check_provider_acyclicity(g, &mut v);
    check_regions(g, &mut v);
    check_peer_not_in_customer_tree(g, &mut v);
    check_connectivity(g, &mut v);
    if v.is_empty() {
        Ok(())
    } else {
        Err(v)
    }
}

fn check_adjacency_consistency(g: &AsGraph, out: &mut Vec<Violation>) {
    for id in g.node_ids() {
        let mut seen: BTreeSet<AsId> = BTreeSet::new();
        for n in g.neighbors(id) {
            if !seen.insert(n.id) {
                out.push(Violation {
                    rule: Rule::DuplicateLink,
                    detail: format!("{id} lists {} twice", n.id),
                });
            }
            match g.relationship(n.id, id) {
                Some(back) if back == n.rel.reverse() => {}
                other => out.push(Violation {
                    rule: Rule::AsymmetricLink,
                    detail: format!(
                        "{id} sees {} as {:?} but reverse is {other:?}",
                        n.id, n.rel
                    ),
                }),
            }
        }
    }
}

fn check_node_type_rules(g: &AsGraph, out: &mut Vec<Violation>) {
    for id in g.node_ids() {
        let ty = g.node_type(id);
        let providers = g.multihoming_degree(id);
        let customers = g.degree_with_rel(id, Relationship::Customer);
        match ty {
            NodeType::T => {
                if providers != 0 {
                    out.push(Violation {
                        rule: Rule::TierOneHasProvider,
                        detail: format!("{id} has {providers} providers"),
                    });
                }
            }
            NodeType::M => {
                if providers == 0 {
                    out.push(Violation {
                        rule: Rule::MissingProvider,
                        detail: format!("{id} (M) has no provider"),
                    });
                }
            }
            NodeType::Cp | NodeType::C => {
                if providers == 0 {
                    out.push(Violation {
                        rule: Rule::MissingProvider,
                        detail: format!("{id} ({ty}) has no provider"),
                    });
                }
                if customers != 0 {
                    out.push(Violation {
                        rule: Rule::StubHasCustomer,
                        detail: format!("{id} ({ty}) has {customers} customers"),
                    });
                }
                if ty == NodeType::C && g.peering_degree(id) != 0 {
                    out.push(Violation {
                        rule: Rule::CustomerStubPeers,
                        detail: format!("{id} (C) has peering links"),
                    });
                }
            }
        }
    }
}

fn check_tier_one_clique(g: &AsGraph, out: &mut Vec<Violation>) {
    let ts = g.nodes_of_type(NodeType::T);
    for (i, &a) in ts.iter().enumerate() {
        for &b in &ts[i + 1..] {
            if g.relationship(a, b) != Some(Relationship::Peer) {
                out.push(Violation {
                    rule: Rule::TierOneCliqueIncomplete,
                    detail: format!("{a} and {b} are not peers"),
                });
            }
        }
    }
}

fn check_provider_acyclicity(g: &AsGraph, out: &mut Vec<Violation>) {
    // Kahn's algorithm over the customer→provider DAG.
    let n = g.len();
    let mut indegree = vec![0usize; n]; // number of providers not yet removed
    for id in g.node_ids() {
        indegree[id.index()] = g.multihoming_degree(id);
    }
    // Process nodes whose providers are all removed: start from nodes with
    // zero providers (the T clique) and peel downward.
    let mut stack: Vec<AsId> = g
        .node_ids()
        .filter(|id| indegree[id.index()] == 0)
        .collect();
    let mut removed = 0usize;
    // Peeling direction: removing a node decrements its customers' count
    // of *remaining providers*... but indegree here counts providers, so
    // we peel from provider-less nodes downward through customer links.
    while let Some(u) = stack.pop() {
        removed += 1;
        for c in g.customers(u) {
            indegree[c.index()] -= 1;
            if indegree[c.index()] == 0 {
                stack.push(c);
            }
        }
    }
    if removed != n {
        out.push(Violation {
            rule: Rule::ProviderCycle,
            detail: format!("{} nodes participate in provider cycles", n - removed),
        });
    }
}

fn check_regions(g: &AsGraph, out: &mut Vec<Violation>) {
    for id in g.node_ids() {
        for nb in g.neighbors(id) {
            if id < nb.id && !g.regions(id).intersects(g.regions(nb.id)) {
                out.push(Violation {
                    rule: Rule::RegionMismatch,
                    detail: format!("{id}–{} share no region", nb.id),
                });
            }
        }
    }
}

fn check_peer_not_in_customer_tree(g: &AsGraph, out: &mut Vec<Violation>) {
    for id in g.node_ids() {
        for peer in g.peers(id) {
            if g.in_customer_tree(id, peer) {
                out.push(Violation {
                    rule: Rule::PeerInCustomerTree,
                    detail: format!("{id} peers with its customer-tree member {peer}"),
                });
            }
        }
    }
}

fn check_connectivity(g: &AsGraph, out: &mut Vec<Violation>) {
    if g.is_empty() {
        return;
    }
    // Valley-free reachability from node 0 (a T node in generated
    // topologies). Since valley-free paths compose through the T clique,
    // one source suffices to detect partition.
    let unreachable = valley_free_distances(g, AsId(0))
        .iter()
        .filter(|d| d.is_none())
        .count();
    if unreachable > 0 {
        out.push(Violation {
            rule: Rule::Disconnected,
            detail: format!("{unreachable} nodes unreachable from AS0"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RegionSet;
    use crate::{generate, GrowthScenario};

    #[test]
    fn generated_baseline_validates() {
        let g = generate(GrowthScenario::Baseline, 800, 21);
        validate(&g).unwrap();
    }

    #[test]
    fn all_scenarios_validate_at_small_size() {
        for s in GrowthScenario::ALL {
            let g = generate(s, 600, 22);
            validate(&g).unwrap_or_else(|v| {
                panic!("{s}: {} violations, first: {}", v.len(), v[0])
            });
        }
    }

    #[test]
    fn detects_missing_provider() {
        let mut g = AsGraph::new();
        let r = RegionSet::all(1);
        let _t = g.add_node(NodeType::T, r);
        let _orphan = g.add_node(NodeType::C, r);
        let errs = validate(&g).unwrap_err();
        assert!(errs.iter().any(|v| v.rule == Rule::MissingProvider));
        assert!(errs.iter().any(|v| v.rule == Rule::Disconnected));
    }

    #[test]
    fn detects_incomplete_tier_one_clique() {
        let mut g = AsGraph::new();
        let r = RegionSet::all(1);
        let t0 = g.add_node(NodeType::T, r);
        let t1 = g.add_node(NodeType::T, r);
        let t2 = g.add_node(NodeType::T, r);
        g.add_peer_link(t0, t1);
        g.add_peer_link(t0, t2);
        // t1–t2 missing.
        let errs = validate(&g).unwrap_err();
        assert!(errs.iter().any(|v| v.rule == Rule::TierOneCliqueIncomplete));
    }

    #[test]
    fn detects_provider_cycle() {
        // Build a cycle by hand: a→b→c→a through provider links. The graph
        // type allows it (it only checks per-link rules); the validator
        // must flag it.
        let mut g = AsGraph::new();
        let r = RegionSet::all(1);
        let t = g.add_node(NodeType::T, r);
        let a = g.add_node(NodeType::M, r);
        let b = g.add_node(NodeType::M, r);
        let c = g.add_node(NodeType::M, r);
        g.add_transit_link(a, t); // keep a rooted so other checks pass
        g.add_transit_link(a, b); // b provides a
        g.add_transit_link(b, c); // c provides b
        g.add_transit_link(c, a); // a provides c — cycle!
        let errs = validate(&g).unwrap_err();
        assert!(errs.iter().any(|v| v.rule == Rule::ProviderCycle), "{errs:?}");
    }

    #[test]
    fn detects_stub_with_customer() {
        let mut g = AsGraph::new();
        let r = RegionSet::all(1);
        let t = g.add_node(NodeType::T, r);
        let cp = g.add_node(NodeType::Cp, r);
        let c = g.add_node(NodeType::C, r);
        g.add_transit_link(cp, t);
        g.add_transit_link(c, cp); // stub CP acquires a customer
        let errs = validate(&g).unwrap_err();
        assert!(errs.iter().any(|v| v.rule == Rule::StubHasCustomer));
    }

    #[test]
    fn detects_peering_c_node() {
        let mut g = AsGraph::new();
        let r = RegionSet::all(1);
        let t = g.add_node(NodeType::T, r);
        let c1 = g.add_node(NodeType::C, r);
        let c2 = g.add_node(NodeType::C, r);
        g.add_transit_link(c1, t);
        g.add_transit_link(c2, t);
        g.add_peer_link(c1, c2);
        let errs = validate(&g).unwrap_err();
        assert!(errs.iter().any(|v| v.rule == Rule::CustomerStubPeers));
    }

    #[test]
    fn detects_peer_inside_customer_tree() {
        let mut g = AsGraph::new();
        let r = RegionSet::all(1);
        let t = g.add_node(NodeType::T, r);
        let m = g.add_node(NodeType::M, r);
        let cp = g.add_node(NodeType::Cp, r);
        g.add_transit_link(m, t);
        g.add_transit_link(cp, m);
        g.add_peer_link(cp, t); // t peers with cp, which sits in t's tree
        let errs = validate(&g).unwrap_err();
        assert!(errs.iter().any(|v| v.rule == Rule::PeerInCustomerTree));
    }

    #[test]
    fn violation_display_names_rule() {
        let v = Violation {
            rule: Rule::RegionMismatch,
            detail: "AS1–AS2 share no region".into(),
        };
        let s = v.to_string();
        assert!(s.contains("RegionMismatch"));
        assert!(s.contains("AS1"));
    }
}
