//! The annotated AS-level graph.
//!
//! [`AsGraph`] stores, per AS: its [`NodeType`], its [`RegionSet`], and an
//! adjacency list of [`Neighbor`]s annotated with the business
//! [`Relationship`] as seen from that AS. A physical link therefore appears
//! in both endpoints' adjacencies with mirrored relationships.
//!
//! The structure is append-only (nodes and links are added, never removed),
//! which matches how topologies are generated and lets all per-node lookup
//! tables in the simulator be flat vectors indexed by [`AsId`].

use std::collections::VecDeque;

use crate::types::{AsId, NodeType, RegionSet, Relationship};

/// One adjacency entry: a neighboring AS and our relationship to it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Neighbor {
    /// The neighboring AS.
    pub id: AsId,
    /// Our relationship to the neighbor (`Customer` means the neighbor pays
    /// us for transit).
    pub rel: Relationship,
}

/// Per-node record.
#[derive(Clone, Debug)]
struct NodeData {
    ty: NodeType,
    regions: RegionSet,
    neighbors: Vec<Neighbor>,
    /// Cached relationship tallies `[customers, peers, providers]`, kept in
    /// sync by `add_*_link` so degree queries are O(1).
    rel_counts: [u32; 3],
}

/// A business-relationship-annotated AS-level topology.
#[derive(Clone, Debug, Default)]
pub struct AsGraph {
    nodes: Vec<NodeData>,
    transit_links: usize,
    peer_links: usize,
}

fn rel_slot(rel: Relationship) -> usize {
    match rel {
        Relationship::Customer => 0,
        Relationship::Peer => 1,
        Relationship::Provider => 2,
    }
}

impl AsGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        AsGraph::default()
    }

    /// Creates an empty graph with room for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        AsGraph {
            nodes: Vec::with_capacity(n),
            transit_links: 0,
            peer_links: 0,
        }
    }

    /// Adds a node and returns its id.
    ///
    /// # Panics
    /// Panics if `regions` is empty — every AS must exist somewhere.
    pub fn add_node(&mut self, ty: NodeType, regions: RegionSet) -> AsId {
        assert!(!regions.is_empty(), "an AS must be present in ≥1 region");
        let id = AsId(u32::try_from(self.nodes.len()).expect("more than u32::MAX nodes"));
        self.nodes.push(NodeData {
            ty,
            regions,
            neighbors: Vec::new(),
            rel_counts: [0; 3],
        });
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of transit (customer–provider) links.
    pub fn transit_link_count(&self) -> usize {
        self.transit_links
    }

    /// Number of peering links.
    pub fn peer_link_count(&self) -> usize {
        self.peer_links
    }

    /// Total number of links.
    pub fn link_count(&self) -> usize {
        self.transit_links + self.peer_links
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = AsId> + '_ {
        (0..self.nodes.len() as u32).map(AsId)
    }

    /// The type of node `id`.
    pub fn node_type(&self, id: AsId) -> NodeType {
        self.nodes[id.index()].ty
    }

    /// The regions node `id` is present in.
    pub fn regions(&self, id: AsId) -> RegionSet {
        self.nodes[id.index()].regions
    }

    /// All ids of a given node type, ascending.
    pub fn nodes_of_type(&self, ty: NodeType) -> Vec<AsId> {
        self.node_ids().filter(|&id| self.node_type(id) == ty).collect()
    }

    /// Number of nodes of a given type.
    pub fn count_of_type(&self, ty: NodeType) -> usize {
        self.nodes.iter().filter(|n| n.ty == ty).count()
    }

    /// The adjacency list of `id` (creation order).
    pub fn neighbors(&self, id: AsId) -> &[Neighbor] {
        &self.nodes[id.index()].neighbors
    }

    /// Iterates over the neighbors of `id` with a given relationship.
    pub fn neighbors_with_rel(
        &self,
        id: AsId,
        rel: Relationship,
    ) -> impl Iterator<Item = AsId> + '_ {
        self.nodes[id.index()]
            .neighbors
            .iter()
            .filter(move |n| n.rel == rel)
            .map(|n| n.id)
    }

    /// This node's customers.
    pub fn customers(&self, id: AsId) -> impl Iterator<Item = AsId> + '_ {
        self.neighbors_with_rel(id, Relationship::Customer)
    }

    /// This node's peers.
    pub fn peers(&self, id: AsId) -> impl Iterator<Item = AsId> + '_ {
        self.neighbors_with_rel(id, Relationship::Peer)
    }

    /// This node's providers.
    pub fn providers(&self, id: AsId) -> impl Iterator<Item = AsId> + '_ {
        self.neighbors_with_rel(id, Relationship::Provider)
    }

    /// Total degree of `id`.
    pub fn degree(&self, id: AsId) -> usize {
        self.nodes[id.index()].neighbors.len()
    }

    /// Number of neighbors of `id` with relationship `rel` (O(1)).
    pub fn degree_with_rel(&self, id: AsId, rel: Relationship) -> usize {
        self.nodes[id.index()].rel_counts[rel_slot(rel)] as usize
    }

    /// Transit degree: customers + providers (excludes peering links).
    pub fn transit_degree(&self, id: AsId) -> usize {
        let c = &self.nodes[id.index()].rel_counts;
        (c[0] + c[2]) as usize
    }

    /// Peering degree.
    pub fn peering_degree(&self, id: AsId) -> usize {
        self.degree_with_rel(id, Relationship::Peer)
    }

    /// Multihoming degree: number of providers.
    pub fn multihoming_degree(&self, id: AsId) -> usize {
        self.degree_with_rel(id, Relationship::Provider)
    }

    /// The relationship of `a` toward `b`, or `None` if not adjacent.
    ///
    /// Linear in `a`'s degree; use the lower-degree endpoint when possible.
    pub fn relationship(&self, a: AsId, b: AsId) -> Option<Relationship> {
        self.nodes[a.index()]
            .neighbors
            .iter()
            .find(|n| n.id == b)
            .map(|n| n.rel)
    }

    /// True if `a` and `b` are directly connected.
    pub fn has_link(&self, a: AsId, b: AsId) -> bool {
        // Scan the smaller adjacency.
        let (x, y) = if self.degree(a) <= self.degree(b) { (a, b) } else { (b, a) };
        self.nodes[x.index()].neighbors.iter().any(|n| n.id == y)
    }

    fn assert_linkable(&self, a: AsId, b: AsId) {
        assert!(a != b, "self-link at {a}");
        assert!(
            a.index() < self.nodes.len() && b.index() < self.nodes.len(),
            "link endpoint out of range"
        );
        assert!(!self.has_link(a, b), "duplicate link {a}–{b}");
        assert!(
            self.regions(a).intersects(self.regions(b)),
            "link {a}–{b} crosses disjoint regions"
        );
    }

    fn push_neighbor(&mut self, at: AsId, id: AsId, rel: Relationship) {
        let node = &mut self.nodes[at.index()];
        node.neighbors.push(Neighbor { id, rel });
        node.rel_counts[rel_slot(rel)] += 1;
    }

    /// Adds a transit link: `customer` buys transit from `provider`.
    ///
    /// # Panics
    /// Panics on self-links, duplicate links, out-of-range ids, or
    /// region-incompatible endpoints.
    pub fn add_transit_link(&mut self, customer: AsId, provider: AsId) {
        self.assert_linkable(customer, provider);
        self.push_neighbor(customer, provider, Relationship::Provider);
        self.push_neighbor(provider, customer, Relationship::Customer);
        self.transit_links += 1;
    }

    /// Adds a settlement-free peering link between `a` and `b`.
    ///
    /// # Panics
    /// Same conditions as [`AsGraph::add_transit_link`].
    pub fn add_peer_link(&mut self, a: AsId, b: AsId) {
        self.assert_linkable(a, b);
        self.push_neighbor(a, b, Relationship::Peer);
        self.push_neighbor(b, a, Relationship::Peer);
        self.peer_links += 1;
    }

    /// Breadth-first enumeration of the customer tree of `root`:
    /// every AS reachable by repeatedly following customer links downward.
    /// `root` itself is **not** included.
    ///
    /// Despite the name (which follows the paper), the customer relation
    /// forms a DAG under multihoming; each AS is visited once.
    pub fn customer_tree(&self, root: AsId) -> Vec<AsId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut queue: VecDeque<AsId> = self.customers(root).collect();
        for &c in &queue {
            seen[c.index()] = true;
        }
        let mut out = Vec::new();
        while let Some(node) = queue.pop_front() {
            out.push(node);
            for c in self.customers(node) {
                if !seen[c.index()] {
                    seen[c.index()] = true;
                    queue.push_back(c);
                }
            }
        }
        out
    }

    /// True if `candidate` lies in the customer tree of `root`
    /// (i.e. strictly below it in the hierarchy).
    ///
    /// Early-exits as soon as `candidate` is found.
    pub fn in_customer_tree(&self, root: AsId, candidate: AsId) -> bool {
        if root == candidate {
            return false;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut queue: VecDeque<AsId> = VecDeque::new();
        for c in self.customers(root) {
            if c == candidate {
                return true;
            }
            seen[c.index()] = true;
            queue.push_back(c);
        }
        while let Some(node) = queue.pop_front() {
            for c in self.customers(node) {
                if c == candidate {
                    return true;
                }
                if !seen[c.index()] {
                    seen[c.index()] = true;
                    queue.push_back(c);
                }
            }
        }
        false
    }

    /// Size of the customer tree of `root` (number of ASes strictly below
    /// it).
    pub fn customer_tree_size(&self, root: AsId) -> usize {
        self.customer_tree(root).len()
    }

    /// Exports the topology as a flat undirected edge list: one
    /// `(endpoint, other, rel)` triple per physical link, where `rel` is
    /// the relationship as seen from `endpoint` (always `Provider` for
    /// transit links — i.e. listed from the customer side — and `Peer`
    /// from the lower-id side for peering links).
    ///
    /// This is an interop convenience for downstream users who want to
    /// feed the topology into an external graph toolbox; the simulator
    /// itself operates on [`AsGraph`] directly.
    pub fn edge_list(&self) -> Vec<(AsId, AsId, Relationship)> {
        let mut edges = Vec::with_capacity(self.link_count());
        for id in self.node_ids() {
            for n in self.neighbors(id) {
                // Each undirected link appears twice; list it from the
                // customer (or lower-id peer) side only.
                let add = match n.rel {
                    Relationship::Provider => true,
                    Relationship::Peer => id < n.id,
                    Relationship::Customer => false,
                };
                if add {
                    edges.push((id, n.id, n.rel));
                }
            }
        }
        edges
    }

    /// Renders the topology in Graphviz DOT format. Transit links are drawn
    /// as directed `customer -> provider` edges; peering links are dashed
    /// and undirected. Intended for small instances (Fig. 3-style sketches).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph topology {\n  rankdir=BT;\n");
        for id in self.node_ids() {
            let shape = match self.node_type(id) {
                NodeType::T => "doublecircle",
                NodeType::M => "circle",
                NodeType::Cp => "box",
                NodeType::C => "plaintext",
            };
            writeln!(
                out,
                "  n{} [label=\"{} ({})\", shape={shape}];",
                id.0,
                id,
                self.node_type(id)
            )
            .unwrap();
        }
        for id in self.node_ids() {
            for n in self.neighbors(id) {
                match n.rel {
                    Relationship::Provider => {
                        writeln!(out, "  n{} -> n{};", id.0, n.id.0).unwrap();
                    }
                    Relationship::Peer if id < n.id => {
                        writeln!(
                            out,
                            "  n{} -> n{} [dir=none, style=dashed];",
                            id.0, n.id.0
                        )
                        .unwrap();
                    }
                    _ => {}
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small fixture:
    ///
    /// ```text
    ///   T0 ==== T1          (peering clique)
    ///   |  \     |
    ///   M2  \    M3         (M2,M3 customers of T0/T1; M2--M3 peer)
    ///   |    \
    ///   C4    C5            (C4 customer of M2, C5 customer of T0)
    /// ```
    fn fixture() -> (AsGraph, Vec<AsId>) {
        let mut g = AsGraph::new();
        let all = RegionSet::all(1);
        let t0 = g.add_node(NodeType::T, all);
        let t1 = g.add_node(NodeType::T, all);
        let m2 = g.add_node(NodeType::M, all);
        let m3 = g.add_node(NodeType::M, all);
        let c4 = g.add_node(NodeType::C, all);
        let c5 = g.add_node(NodeType::C, all);
        g.add_peer_link(t0, t1);
        g.add_transit_link(m2, t0);
        g.add_transit_link(m3, t1);
        g.add_peer_link(m2, m3);
        g.add_transit_link(c4, m2);
        g.add_transit_link(c5, t0);
        (g, vec![t0, t1, m2, m3, c4, c5])
    }

    #[test]
    fn counts_and_degrees() {
        let (g, ids) = fixture();
        assert_eq!(g.len(), 6);
        assert_eq!(g.transit_link_count(), 4);
        assert_eq!(g.peer_link_count(), 2);
        assert_eq!(g.link_count(), 6);
        let t0 = ids[0];
        assert_eq!(g.degree(t0), 3);
        assert_eq!(g.degree_with_rel(t0, Relationship::Customer), 2);
        assert_eq!(g.peering_degree(t0), 1);
        assert_eq!(g.multihoming_degree(ids[2]), 1);
        assert_eq!(g.transit_degree(t0), 2);
        assert_eq!(g.transit_degree(ids[2]), 2); // one provider + one customer
    }

    #[test]
    fn relationships_are_mirrored() {
        let (g, ids) = fixture();
        let (t0, m2) = (ids[0], ids[2]);
        assert_eq!(g.relationship(t0, m2), Some(Relationship::Customer));
        assert_eq!(g.relationship(m2, t0), Some(Relationship::Provider));
        assert_eq!(g.relationship(ids[2], ids[3]), Some(Relationship::Peer));
        assert_eq!(g.relationship(ids[4], ids[5]), None);
    }

    #[test]
    fn neighbor_queries_by_relation() {
        let (g, ids) = fixture();
        let t0 = ids[0];
        let custs: Vec<_> = g.customers(t0).collect();
        assert_eq!(custs, vec![ids[2], ids[5]]);
        assert_eq!(g.peers(t0).collect::<Vec<_>>(), vec![ids[1]]);
        assert_eq!(g.providers(ids[4]).collect::<Vec<_>>(), vec![ids[2]]);
        assert!(g.providers(t0).next().is_none());
    }

    #[test]
    fn customer_tree_walks_down_only() {
        let (g, ids) = fixture();
        let mut tree = g.customer_tree(ids[0]);
        tree.sort();
        assert_eq!(tree, vec![ids[2], ids[4], ids[5]]);
        assert!(g.customer_tree(ids[4]).is_empty());
        // Peering does not extend the customer tree.
        assert_eq!(g.customer_tree(ids[3]), Vec::<AsId>::new());
    }

    #[test]
    fn in_customer_tree_matches_enumeration() {
        let (g, ids) = fixture();
        assert!(g.in_customer_tree(ids[0], ids[4]));
        assert!(!g.in_customer_tree(ids[4], ids[0]));
        assert!(!g.in_customer_tree(ids[0], ids[0])); // not below itself
        assert!(!g.in_customer_tree(ids[0], ids[3])); // via peer only
        assert_eq!(g.customer_tree_size(ids[0]), 3);
    }

    #[test]
    fn multihomed_customer_tree_visits_once() {
        let mut g = AsGraph::new();
        let r = RegionSet::all(1);
        let t = g.add_node(NodeType::T, r);
        let m1 = g.add_node(NodeType::M, r);
        let m2 = g.add_node(NodeType::M, r);
        let c = g.add_node(NodeType::C, r);
        g.add_transit_link(m1, t);
        g.add_transit_link(m2, t);
        g.add_transit_link(c, m1);
        g.add_transit_link(c, m2); // multihomed: two paths from t to c
        let tree = g.customer_tree(t);
        assert_eq!(tree.len(), 3, "c must be visited exactly once");
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn duplicate_links_rejected() {
        let (mut g, ids) = fixture();
        g.add_transit_link(ids[2], ids[0]);
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn duplicate_link_rejected_regardless_of_kind() {
        let (mut g, ids) = fixture();
        g.add_peer_link(ids[2], ids[0]); // already a transit link
    }

    #[test]
    #[should_panic(expected = "self-link")]
    fn self_links_rejected() {
        let (mut g, ids) = fixture();
        g.add_peer_link(ids[0], ids[0]);
    }

    #[test]
    #[should_panic(expected = "disjoint regions")]
    fn region_incompatible_links_rejected() {
        let mut g = AsGraph::new();
        let a = g.add_node(NodeType::C, RegionSet::single(0));
        let b = g.add_node(NodeType::C, RegionSet::single(1));
        g.add_transit_link(a, b);
    }

    #[test]
    #[should_panic(expected = "≥1 region")]
    fn empty_region_nodes_rejected() {
        let mut g = AsGraph::new();
        g.add_node(NodeType::C, RegionSet::EMPTY);
    }

    #[test]
    fn nodes_of_type_filters() {
        let (g, ids) = fixture();
        assert_eq!(g.nodes_of_type(NodeType::T), vec![ids[0], ids[1]]);
        assert_eq!(g.count_of_type(NodeType::M), 2);
        assert_eq!(g.count_of_type(NodeType::Cp), 0);
    }

    #[test]
    fn edge_list_export_preserves_shape() {
        let (g, _) = fixture();
        let edges = g.edge_list();
        // One entry per physical link, no duplicates in either direction.
        assert_eq!(edges.len(), g.link_count());
        let mut seen = std::collections::BTreeSet::new();
        for &(a, b, rel) in &edges {
            assert_ne!(rel, Relationship::Customer, "must list from customer side");
            assert!(seen.insert((a.min(b), a.max(b))), "duplicate link {a}-{b}");
        }
        // The listed edges connect all 6 nodes (union-find by repeated relabel).
        let mut label: Vec<usize> = (0..g.len()).collect();
        for _ in 0..g.len() {
            for &(a, b, _) in &edges {
                let m = label[a.index()].min(label[b.index()]);
                label[a.index()] = m;
                label[b.index()] = m;
            }
        }
        assert!(label.iter().all(|&l| l == 0), "edge list not connected");
    }

    #[test]
    fn dot_output_mentions_every_node_and_link() {
        let (g, _) = fixture();
        let dot = g.to_dot();
        assert!(dot.contains("digraph"));
        for i in 0..6 {
            assert!(dot.contains(&format!("n{i} ")), "node {i} missing");
        }
        // 4 transit edges + 2 dashed peer edges, one arrow each.
        assert_eq!(dot.matches("->").count(), 6);
        assert_eq!(dot.matches("style=dashed").count(), 2);
    }

    #[test]
    fn has_link_is_symmetric() {
        let (g, ids) = fixture();
        assert!(g.has_link(ids[0], ids[2]));
        assert!(g.has_link(ids[2], ids[0]));
        assert!(!g.has_link(ids[4], ids[5]));
    }
}
