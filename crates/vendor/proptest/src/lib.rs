//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The workspace's property tests were written against the real proptest
//! API, but this repository must build without network access to a crate
//! registry. This crate implements the (small) subset of that API the
//! tests actually use:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * [`Strategy`] with `prop_map`, plus strategies for ranges, tuples,
//!   `any::<T>()`, `prop::collection::vec`, `prop::sample::select` and
//!   `prop::option::of`.
//!
//! Differences from the real crate: case generation is seeded
//! deterministically from the test's module path and name (so failures are
//! exactly reproducible run-to-run), and there is **no shrinking** — a
//! failing case reports the formatted assertion message only.

use std::ops::Range;

/// Deterministic generator used to drive all strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator from an arbitrary byte string (test name).
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (modulo bias is irrelevant for tests).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The value-generation interface: a strategy produces one value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors proptest's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

// Strategies are used by shared reference inside the proptest! loop.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span.max(1)) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span.max(1)) as $t)
            }
        }
    )*};
}
signed_range_strategy!(i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, moderately sized values; tests never rely on NaN/inf.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

/// Strategy produced by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<A> {
    _marker: std::marker::PhantomData<A>,
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy: an unconstrained value of `T`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed set.
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "select() needs options");
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// `prop::sample::select(options)`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy wrapping another's values in `Option`.
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `prop::option::of(strategy)`: `None` ~25% of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Test-runner types (`proptest::test_runner`).
pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assumption failed; the case is skipped, not failed.
        Reject,
        /// An assertion failed with the given message.
        Fail(String),
    }

    /// Result type of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Per-block runner configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // The real default (256) is slow for simulation-heavy suites;
            // blocks that need a specific count set proptest_config.
            ProptestConfig { cases: 48 }
        }
    }
}

/// Runs the body of one `proptest!`-generated test function.
///
/// Not part of the public proptest API — the macro expansion calls it.
pub fn run_cases<F>(
    name: &str,
    config: test_runner::ProptestConfig,
    mut case: F,
) where
    F: FnMut(&mut TestRng) -> test_runner::TestCaseResult,
{
    let mut rng = TestRng::for_test(name);
    let mut passed = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(20).max(64);
    while passed < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "{name}: too many rejected cases ({passed}/{} passed after {attempts} attempts)",
            config.cases
        );
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(test_runner::TestCaseError::Reject) => continue,
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed after {passed} passing cases: {msg}")
            }
        }
    }
}

/// The property-test macro: each `fn name(pattern in strategy, ..) { .. }`
/// becomes a `#[test]` that generates inputs and checks the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        );
    };
}

/// Internal expansion helper for [`proptest!`]; do not use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                $config,
                |__proptest_rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

/// Asserts a condition inside a proptest body, failing the case (not
/// panicking) so the runner can report it.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = super::TestRng::for_test("x");
        let mut b = super::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            items in prop::collection::vec((0u32..5, any::<bool>()), 1..9),
        ) {
            prop_assert!(!items.is_empty() && items.len() < 9);
            for (v, _) in items {
                prop_assert!(v < 5);
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
