//! Property tests pinning the timing wheel to the binary-heap oracle.
//!
//! The artifact byte-identity contract rests on the two queue backends
//! delivering the *same* `(time, seq)` pop sequence for any trace. The
//! heap's order is easy to trust (it sorts by the key directly); these
//! properties drive both backends with identical workloads — including
//! deliberate same-time bursts and interleaved mid-drain schedules —
//! and require exact agreement, plus conservation of the wheel's own
//! op counters (`cascades` included).

use bgpscale_simkernel::rng::{Rng, Xoshiro256StarStar};
use bgpscale_simkernel::{EventQueue, QueueBackend, SimDuration};
use proptest::prelude::*;

/// Drives a wheel (with the given slot width) and a heap through the
/// same seeded workload, asserting pointwise pop equality throughout.
fn drive_pair(
    slot_bits: u32,
    seed: u64,
    script: &[bool],
    horizon: u64,
) -> (bgpscale_simkernel::QueueOpCounts, u64) {
    let mut g = Xoshiro256StarStar::new(seed);
    let mut wheel: EventQueue<u64> = EventQueue::with_backend(QueueBackend::Wheel { slot_bits });
    let mut heap: EventQueue<u64> = EventQueue::with_backend(QueueBackend::Heap);
    let mut scheduled = 0u64;
    for &do_pop in script {
        if do_pop {
            assert_eq!(wheel.pop(), heap.pop(), "mid-trace pop disagreement");
        } else {
            // Burst same-time events every few steps so FIFO tie-breaks
            // are exercised, not just distinct timestamps.
            let burst = 1 + g.next_below(3);
            let dt = SimDuration::from_micros(g.next_below(horizon));
            for _ in 0..burst {
                wheel.schedule(wheel.now() + dt, scheduled);
                heap.schedule(heap.now() + dt, scheduled);
                scheduled += 1;
            }
        }
        assert_eq!(wheel.len(), heap.len());
        assert_eq!(wheel.now(), heap.now());
    }
    loop {
        let (a, b) = (wheel.pop(), heap.pop());
        assert_eq!(a, b, "drain pop disagreement");
        if a.is_none() {
            break;
        }
    }
    (wheel.op_counts(), scheduled)
}

proptest! {
    /// Exact pop-order parity on random interleaved traces, across
    /// several slot widths (1 bit stresses cascading hardest; 8 is the
    /// production default).
    #[test]
    fn wheel_matches_heap_on_random_traces(
        seed in any::<u64>(),
        script in prop::collection::vec(any::<bool>(), 1..250),
        slot_bits in prop::sample::select(vec![1u32, 3, 8]),
    ) {
        drive_pair(slot_bits, seed, &script, 1_000_000);
    }

    /// Dense same-time collisions: a tiny horizon forces most events to
    /// share ticks, so parity here is parity of the FIFO tie-break.
    #[test]
    fn wheel_matches_heap_under_same_time_collisions(
        seed in any::<u64>(),
        script in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        drive_pair(8, seed, &script, 4);
    }

    /// Wheel-op counter conservation: every scheduled event is pushed
    /// exactly once and popped exactly once; insertion-sort moves never
    /// exceed their comparisons; and cascades are bounded by the number
    /// of levels an entry can descend through (levels × pushes).
    #[test]
    fn wheel_op_counters_are_conserved(
        seed in any::<u64>(),
        script in prop::collection::vec(any::<bool>(), 1..250),
        slot_bits in prop::sample::select(vec![1u32, 4, 8]),
    ) {
        let (ops, scheduled) = drive_pair(slot_bits, seed, &script, 1_000_000);
        prop_assert_eq!(ops.pushes, scheduled);
        prop_assert_eq!(ops.pops, scheduled, "the drain empties the queue");
        prop_assert!(ops.decreases <= ops.comparisons, "every due-list shift was paid for by a comparison");
        let levels = 64u64.div_ceil(slot_bits as u64);
        prop_assert!(
            ops.cascades <= levels * ops.pushes,
            "cascades {} exceed levels({levels}) × pushes({})",
            ops.cascades,
            ops.pushes
        );
    }

    /// The wheel's counters are a pure function of the trace: replays
    /// agree field-for-field, including `cascades`.
    #[test]
    fn wheel_op_counters_replay_identically(
        seed in any::<u64>(),
        script in prop::collection::vec(any::<bool>(), 1..150),
    ) {
        let (a, _) = drive_pair(8, seed, &script, 250_000);
        let (b, _) = drive_pair(8, seed, &script, 250_000);
        prop_assert_eq!(a, b);
    }
}

/// Far-future timers (MRAI-like, ~30 s ahead of a µs-scale cursor) land
/// many levels up; parity must survive the deep cascades down.
#[test]
fn wheel_matches_heap_on_mrai_like_load() {
    let mut g = Xoshiro256StarStar::new(0x2008_0612);
    let mut wheel: EventQueue<u64> = EventQueue::new();
    let mut heap: EventQueue<u64> = EventQueue::with_backend(QueueBackend::Heap);
    for i in 0..3_000u64 {
        // A mix of near deliveries (µs–ms) and far MRAI expiries (~30 s
        // with jitter), like the simulator's steady state.
        let dt = if g.next_below(4) == 0 {
            SimDuration::from_secs(30) + SimDuration::from_micros(g.next_below(7_500_000))
        } else {
            SimDuration::from_micros(1 + g.next_below(100_000))
        };
        wheel.schedule(wheel.now() + dt, i);
        heap.schedule(heap.now() + dt, i);
        if i % 2 == 0 {
            assert_eq!(wheel.pop(), heap.pop());
        }
    }
    loop {
        let (a, b) = (wheel.pop(), heap.pop());
        assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
    assert!(wheel.op_counts().cascades > 0, "far timers must cascade");
}
