//! Property-based tests for the counting event queue: delivery order
//! against a sorted oracle, and conservation of the op counters.

use bgpscale_simkernel::rng::{Rng, Xoshiro256StarStar};
use bgpscale_simkernel::{EventQueue, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// The pop sequence equals a stable sort of the scheduled
    /// `(time, insertion index)` pairs — the heap is just a lazy sorter.
    #[test]
    fn pop_order_matches_sorted_oracle(times in prop::collection::vec(0u64..500, 1..250)) {
        let mut q = EventQueue::new();
        let mut oracle: Vec<(SimTime, usize)> = Vec::with_capacity(times.len());
        for (idx, &t) in times.iter().enumerate() {
            let time = SimTime::from_micros(t);
            q.schedule(time, idx);
            oracle.push((time, idx));
        }
        // Stable by time; insertion index breaks ties, matching FIFO.
        oracle.sort_by_key(|&(time, idx)| (time, idx));
        let mut popped = Vec::with_capacity(oracle.len());
        while let Some(entry) = q.pop() {
            popped.push(entry);
        }
        prop_assert_eq!(popped, oracle);
    }

    /// Conservation: on a queue that is only pushed and popped,
    /// `pushes == pops + remaining` at every point in the workload.
    #[test]
    fn op_counters_are_conserved(
        seed in any::<u64>(),
        script in prop::collection::vec(any::<bool>(), 1..300),
    ) {
        let mut g = Xoshiro256StarStar::new(seed);
        let mut q = EventQueue::new();
        for do_pop in script {
            if do_pop {
                let _ = q.pop();
            } else {
                q.schedule(q.now() + SimDuration::from_micros(g.next_below(1_000)), ());
            }
            let ops = q.op_counts();
            prop_assert_eq!(
                ops.pushes,
                ops.pops + q.len() as u64,
                "pushes {} != pops {} + remaining {}",
                ops.pushes,
                ops.pops,
                q.len()
            );
        }
    }

    /// Comparison and sift-move counts are deterministic: replaying the
    /// same seeded workload yields identical tallies.
    #[test]
    fn op_counters_replay_identically(seed in any::<u64>(), n in 1usize..400) {
        let run = |seed: u64, n: usize| {
            let mut g = Xoshiro256StarStar::new(seed);
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule(q.now() + SimDuration::from_micros(g.next_below(5_000)), i);
                if g.next_below(4) == 0 {
                    let _ = q.pop();
                }
            }
            while q.pop().is_some() {}
            q.op_counts()
        };
        prop_assert_eq!(run(seed, n), run(seed, n));
    }

    /// The sift work is real but bounded: a heap of n elements does at
    /// most ~2·n·log2(n)+n comparisons over a full push/pop cycle.
    #[test]
    fn comparison_count_is_loglinear(times in prop::collection::vec(0u64..10_000, 2..500)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime::from_micros(t), ());
        }
        while q.pop().is_some() {}
        let ops = q.op_counts();
        let n = times.len() as u64;
        let log2n = 64 - n.leading_zeros() as u64;
        let bound = 4 * n * (log2n + 1);
        prop_assert!(
            ops.comparisons <= bound,
            "comparisons {} exceed 4·n·(log2(n)+1) = {bound} for n = {n}",
            ops.comparisons
        );
        prop_assert!(ops.decreases <= ops.comparisons, "every sift move was paid for by a comparison");
    }
}
