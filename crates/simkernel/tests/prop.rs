//! Property-based tests for the DES kernel.

use bgpscale_simkernel::rng::{hash64, Rng, SplitMix64, Xoshiro256StarStar};
use bgpscale_simkernel::{EventQueue, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Whatever is scheduled, pops come out in non-decreasing time order,
    /// and simultaneous events keep FIFO order.
    #[test]
    fn queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), seq);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, seq)) = q.pop() {
            if let Some((lt, lseq)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    prop_assert!(seq > lseq, "FIFO broken for simultaneous events");
                }
            }
            last = Some((t, seq));
        }
    }

    /// Interleaved schedule/pop sequences never violate monotonicity as
    /// long as new events are scheduled at or after `now`.
    #[test]
    fn queue_interleaved_operations(script in prop::collection::vec((0u64..50, any::<bool>()), 1..100)) {
        let mut q = EventQueue::new();
        let mut popped = Vec::new();
        for (delay, do_pop) in script {
            if do_pop {
                if let Some((t, ())) = q.pop() {
                    popped.push(t);
                }
            } else {
                q.schedule(q.now() + SimDuration::from_micros(delay), ());
            }
        }
        for w in popped.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// `next_below` respects its bound for any seed and bound.
    #[test]
    fn next_below_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut g = Xoshiro256StarStar::new(seed);
        for _ in 0..50 {
            prop_assert!(g.next_below(bound) < bound);
        }
    }

    /// `next_range_inclusive` stays within its closed range.
    #[test]
    fn range_inclusive_in_range(seed in any::<u64>(), lo in 0u64..1000, span in 0u64..1000) {
        let mut g = Xoshiro256StarStar::new(seed);
        let hi = lo + span;
        for _ in 0..20 {
            let x = g.next_range_inclusive(lo, hi);
            prop_assert!((lo..=hi).contains(&x));
        }
    }

    /// `next_f64` is always in [0, 1).
    #[test]
    fn unit_floats(seed in any::<u64>()) {
        let mut g = Xoshiro256StarStar::new(seed);
        for _ in 0..100 {
            let x = g.next_f64();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    /// Stochastic rounding only ever returns floor(x) or ceil(x).
    #[test]
    fn stochastic_round_adjacent(seed in any::<u64>(), x in 0.0f64..1e6) {
        let mut g = Xoshiro256StarStar::new(seed);
        let r = g.round_stochastic(x);
        prop_assert!(r == x.floor() as u64 || r == x.ceil() as u64, "x={x}, r={r}");
    }

    /// `choose_weighted` never selects a zero-weight index (when other
    /// positive weights exist).
    #[test]
    fn weighted_choice_skips_zero_weights(
        seed in any::<u64>(),
        weights in prop::collection::vec(0.0f64..10.0, 2..30),
    ) {
        prop_assume!(weights.iter().any(|&w| w > 0.0));
        let mut g = Xoshiro256StarStar::new(seed);
        for _ in 0..20 {
            let i = g.choose_weighted(&weights);
            prop_assert!(weights[i] > 0.0, "picked zero-weight index {i}");
        }
    }

    /// Shuffling preserves the multiset.
    #[test]
    fn shuffle_permutes(seed in any::<u64>(), mut items in prop::collection::vec(any::<u32>(), 0..100)) {
        let mut g = Xoshiro256StarStar::new(seed);
        let mut orig = items.clone();
        g.shuffle(&mut items);
        orig.sort_unstable();
        items.sort_unstable();
        prop_assert_eq!(orig, items);
    }

    /// hash64 is injective on small ranges in practice (no collisions in
    /// any window of 10k consecutive integers we test).
    #[test]
    fn hash64_no_adjacent_collisions(base in 0u64..u64::MAX - 10_000) {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..1_000 {
            prop_assert!(seen.insert(hash64(base + i)), "collision at offset {i}");
        }
    }

    /// SplitMix64 streams from different seeds differ somewhere early.
    #[test]
    fn splitmix_seed_sensitivity(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let mut ga = SplitMix64::new(a);
        let mut gb = SplitMix64::new(b);
        let differs = (0..16).any(|_| ga.next_u64() != gb.next_u64());
        prop_assert!(differs);
    }
}
