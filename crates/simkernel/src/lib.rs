//! # bgpscale-simkernel
//!
//! A small, fully deterministic discrete-event simulation (DES) kernel.
//!
//! This crate is the lowest substrate of the `bgpscale` workspace: the
//! event-driven BGP simulator from the CoNEXT 2008 paper *"On the scalability
//! of BGP: the roles of topology growth and update rate-limiting"* runs on
//! top of it. The kernel deliberately knows nothing about BGP — it provides
//! exactly three things:
//!
//! * **Simulated time** ([`SimTime`], [`SimDuration`]) with microsecond
//!   resolution. Wall-clock time never enters a simulation.
//! * **A deterministic event queue** ([`EventQueue`]) keyed by
//!   `(time, sequence number)` so that events scheduled for the same
//!   instant are delivered in scheduling order, making every run a pure
//!   function of its inputs. The default backend is a hierarchical
//!   timing wheel ([`wheel::TimingWheel`]); a binary heap is kept as a
//!   debug oracle ([`queue::QueueBackend::Heap`]) and both deliver the
//!   same byte-identical pop sequence.
//! * **Seeded PRNG streams** ([`rng::SplitMix64`], [`rng::Xoshiro256StarStar`])
//!   implemented locally so that results are bit-for-bit reproducible
//!   independent of external crate version churn.
//!
//! ## Example
//!
//! ```
//! use bgpscale_simkernel::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(30), "mrai expiry");
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(10), "delivery");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "delivery");
//! assert_eq!(t, SimTime::from_micros(10_000));
//! ```

// The counting global allocator (`alloc-count` feature) is the one place
// in the workspace that needs `unsafe` (the `GlobalAlloc` trait); every
// other configuration keeps the crate-wide forbid.
#![cfg_attr(not(feature = "alloc-count"), forbid(unsafe_code))]
#![cfg_attr(feature = "alloc-count", deny(unsafe_code))]

pub mod alloc;
pub mod pool;
pub mod queue;
pub mod rng;
pub mod rss;
pub mod time;
pub mod wheel;
pub mod wallclock; // detlint::allow(wall-clock, reason = "declares the one sanctioned wall-clock module; the module itself is exempt in detlint.toml")

pub use alloc::AllocSnapshot;
pub use pool::{effective_jobs, run_indexed};
pub use queue::{EventQueue, QueueBackend, QueueOpCounts};
pub use wheel::TimingWheel;
pub use rng::{hash64_bytes, hash64_pair, Rng, SplitMix64, Xoshiro256StarStar};
pub use rss::peak_rss_bytes;
pub use time::{SimDuration, SimTime};
pub use wallclock::Stopwatch; // detlint::allow(wall-clock, reason = "re-export of the sanctioned Stopwatch so callers need no extra path")
