//! Deterministic pseudo-random number generation.
//!
//! The simulator's results must be a pure function of `(inputs, seed)`; to
//! guarantee that across toolchain and dependency upgrades we implement the
//! generators locally instead of depending on an external crate whose value
//! stability policy has changed between releases.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixing generator. Used to
//!   fan a single master seed out into independent sub-seeds (one per
//!   concern: topology construction, service times, MRAI jitter, …) and as a
//!   stateless integer hash ([`hash64`]) for deterministic tie-breaking.
//! * [`Xoshiro256StarStar`] — Blackman & Vigna's general-purpose generator;
//!   the workhorse for all stochastic draws. Seeded from SplitMix64 output
//!   exactly as its authors recommend.
//!
//! Both implementations are validated against published reference vectors in
//! the test module.

/// Stateless SplitMix64 mixing function: maps any 64-bit value to a
/// well-mixed 64-bit value. This is the finalizer used inside
/// [`SplitMix64::next_u64`]; exposed separately because the BGP decision
/// process uses it as the "hashed value of the node IDs" tie-breaker.
#[inline]
pub fn hash64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines two 64-bit values into one well-mixed value.
///
/// Used to derive per-entity sub-seeds, e.g. `hash64_pair(run_seed, node_id)`.
#[inline]
pub fn hash64_pair(a: u64, b: u64) -> u64 {
    // Mix `a` first so that (a, b) and (b, a) produce different values.
    hash64(hash64(a) ^ b.rotate_left(32) ^ 0xA076_1D64_78BD_642F)
}

/// Hashes an arbitrary byte string to one well-mixed 64-bit value.
///
/// FNV-1a over the bytes (including the length, so `("a", "bc")` and
/// `("ab", "c")` concatenations cannot collide trivially at call sites
/// that chain with [`hash64_pair`]) with a SplitMix64 finalizer for
/// avalanche. Used for config fingerprints and artifact content hashes in
/// the run ledger — the value is part of the on-disk format, so it must
/// stay stable across releases like everything else in this module.
#[inline]
pub fn hash64_bytes(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    hash64_pair(h, bytes.len() as u64)
}

/// The SplitMix64 sequential generator.
///
/// Primarily used for seed derivation; each call advances an internal
/// counter and mixes it.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. All seeds, including zero, are valid.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Common interface for the crate's generators, plus derived draws
/// (floats, bounded integers, Bernoulli trials, distribution samplers).
pub trait Rng {
    /// Returns the next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits — the standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift method
    /// with rejection to remove modulo bias.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a positive bound");
        // Lemire 2019: unbiased bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    fn next_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty or not finite.
    fn next_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range [{lo}, {hi})");
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli trial: returns `true` with probability `p` (clamped to
    /// `[0, 1]`).
    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Rounds a non-negative real `x` to an integer stochastically:
    /// `floor(x)` or `ceil(x)` with probability proportional to the
    /// fractional part, so the expectation is exactly `x`.
    ///
    /// The topology generator uses this to realize fractional mean degrees
    /// (e.g. a mean multihoming degree of 2.25) without bias.
    fn round_stochastic(&mut self, x: f64) -> u64 {
        assert!(x >= 0.0 && x.is_finite(), "round_stochastic requires finite x >= 0");
        let floor = x.floor();
        let frac = x - floor;
        floor as u64 + u64::from(self.chance(frac))
    }

    /// Standard normal draw via the Box–Muller transform (one value per
    /// call; the antithetic value is discarded for simplicity).
    fn next_gaussian(&mut self) -> f64 {
        // Avoid ln(0) by drawing u1 from (0, 1].
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Chooses one index in `[0, weights.len())` with probability
    /// proportional to `weights[i]`. Used for preferential attachment.
    ///
    /// # Panics
    /// Panics if `weights` is empty or the total weight is not positive.
    fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0 && total.is_finite(),
            "choose_weighted requires positive finite total weight"
        );
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1 // floating-point slack: fall back to the last index
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

/// The xoshiro256** 1.0 generator (Blackman & Vigna, 2018).
///
/// Fast, 256-bit state, passes BigCrush; the recommended general-purpose
/// choice from the xoshiro family.
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator, expanding the seed through SplitMix64 as the
    /// algorithm's authors specify (this also makes an all-zero state
    /// unreachable).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Creates a generator from a raw 256-bit state.
    ///
    /// # Panics
    /// Panics if the state is all zeros (the one invalid state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro256** state must be non-zero");
        Xoshiro256StarStar { s }
    }
}

impl Rng for Xoshiro256StarStar {
    #[inline]
    // detflow::allow(panic-surface, reason = "s is a fixed [u64; 4] indexed only by the literal constants 0..=3")
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the SplitMix64 reference implementation
    /// (seed = 1234567).
    #[test]
    fn splitmix64_matches_reference_vector() {
        let mut g = SplitMix64::new(1234567);
        let expected: [u64; 5] = [
            6457827717110365317,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for &e in &expected {
            assert_eq!(g.next_u64(), e);
        }
    }

    /// Reference vector for xoshiro256** with state expanded from
    /// SplitMix64(0), cross-checked against the rand_xoshiro crate's
    /// documented behavior of seeding via SplitMix64.
    #[test]
    fn xoshiro_starts_from_splitmix_expansion() {
        let mut sm = SplitMix64::new(0);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        let mut a = Xoshiro256StarStar::new(0);
        let b = Xoshiro256StarStar::from_state(s);
        // Same construction path => same stream.
        let mut b = b;
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Reference vector from the xoshiro256** reference implementation with
    /// state {1, 2, 3, 4}.
    #[test]
    fn xoshiro_matches_reference_vector() {
        let mut g = Xoshiro256StarStar::from_state([1, 2, 3, 4]);
        let expected: [u64; 6] = [
            11520,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
            607988272756665600,
        ];
        for &e in &expected {
            assert_eq!(g.next_u64(), e);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn xoshiro_rejects_zero_state() {
        let _ = Xoshiro256StarStar::from_state([0; 4]);
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut g = Xoshiro256StarStar::new(42);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn next_f64_mean_is_near_half() {
        let mut g = Xoshiro256StarStar::new(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| g.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn next_below_is_unbiased_across_small_bound() {
        let mut g = Xoshiro256StarStar::new(99);
        let mut counts = [0u32; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[g.next_below(7) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = n as f64 / 7.0;
            assert!(
                (c as f64 - expected).abs() < expected * 0.05,
                "bucket {i} count {c} deviates from {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn next_below_rejects_zero() {
        let _ = Xoshiro256StarStar::new(1).next_below(0);
    }

    #[test]
    fn next_range_inclusive_covers_endpoints() {
        let mut g = Xoshiro256StarStar::new(3);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[(g.next_range_inclusive(10, 13) - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "endpoints or interior never drawn");
    }

    #[test]
    fn chance_handles_edge_probabilities() {
        let mut g = Xoshiro256StarStar::new(5);
        assert!(!g.chance(0.0));
        assert!(g.chance(1.0));
        assert!(!g.chance(-1.0));
        assert!(g.chance(2.0));
    }

    #[test]
    fn chance_matches_probability() {
        let mut g = Xoshiro256StarStar::new(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| g.chance(0.3)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.3).abs() < 0.01, "empirical {p} too far from 0.3");
    }

    #[test]
    fn round_stochastic_has_exact_expectation() {
        let mut g = Xoshiro256StarStar::new(21);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| g.round_stochastic(2.25) as f64).sum::<f64>() / n as f64;
        assert!((mean - 2.25).abs() < 0.01, "mean {mean} != 2.25");
        // Integers round exactly.
        assert_eq!(g.round_stochastic(3.0), 3);
        assert_eq!(g.round_stochastic(0.0), 0);
    }

    #[test]
    fn gaussian_has_unit_moments() {
        let mut g = Xoshiro256StarStar::new(13);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| g.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "gaussian mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "gaussian variance {var}");
    }

    #[test]
    fn choose_weighted_respects_weights() {
        let mut g = Xoshiro256StarStar::new(17);
        let weights = [1.0, 3.0, 6.0];
        let mut counts = [0u32; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[g.choose_weighted(&weights)] += 1;
        }
        let p1 = counts[1] as f64 / n as f64;
        let p2 = counts[2] as f64 / n as f64;
        assert!((p1 - 0.3).abs() < 0.01, "weight-3 share {p1}");
        assert!((p2 - 0.6).abs() < 0.01, "weight-6 share {p2}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = Xoshiro256StarStar::new(23);
        let mut v: Vec<u32> = (0..100).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn hash64_pair_is_order_sensitive() {
        assert_ne!(hash64_pair(1, 2), hash64_pair(2, 1));
        assert_eq!(hash64_pair(1, 2), hash64_pair(1, 2));
    }

    #[test]
    fn hash64_bytes_is_stable_and_content_sensitive() {
        assert_eq!(hash64_bytes(b"abc"), hash64_bytes(b"abc"));
        assert_ne!(hash64_bytes(b"abc"), hash64_bytes(b"abd"));
        assert_ne!(hash64_bytes(b"abc"), hash64_bytes(b"ab"));
        assert_ne!(hash64_bytes(b""), 0, "empty input still mixes");
        // The value is part of the ledger's on-disk format: pin one vector
        // so an accidental algorithm change fails loudly here instead of
        // silently invalidating every recorded fingerprint.
        assert_eq!(hash64_bytes(b"BASELINE"), {
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for &b in b"BASELINE" {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            hash64_pair(h, 8)
        });
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Xoshiro256StarStar::new(123);
        let mut b = Xoshiro256StarStar::new(123);
        for _ in 0..1_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256StarStar::new(123);
        let mut b = Xoshiro256StarStar::new(124);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
