//! A deterministic discrete-event queue.
//!
//! A thin wrapper around [`std::collections::BinaryHeap`] with two
//! guarantees the simulator depends on:
//!
//! 1. **Monotonic delivery** — events pop in non-decreasing time order, and
//!    scheduling an event in the past (before the last popped time) is a
//!    panic: it would mean the model violated causality.
//! 2. **Deterministic tie-breaking** — events scheduled for the same instant
//!    pop in the order they were scheduled (FIFO), via a monotonically
//!    increasing sequence number. Binary heaps are otherwise unstable, which
//!    would make runs irreproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// One scheduled entry: ordered by `(time, seq)`.
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// A future-event list keyed by simulated time.
///
/// `E` is the caller's event payload; the queue is agnostic to it.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    /// Time of the most recently popped event; new events may not be
    /// scheduled before it.
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped so far (a cheap progress metric and
    /// runaway-simulation guard).
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is earlier than the current clock — the model would
    /// be violating causality.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: {time:?} < now {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    /// Returns `None` when the simulation has quiesced.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "heap returned a past event");
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// The timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Iterates over the pending events in **unspecified order** (heap
    /// order, not delivery order). Intended for diagnostics — counting
    /// pending events per kind for an error snapshot — where only
    /// order-insensitive aggregation is sound.
    pub fn iter_pending(&self) -> impl Iterator<Item = (SimTime, &E)> {
        self.heap.iter().map(|Reverse(e)| (e.time, &e.event))
    }

    /// Removes all pending events and resets the clock and counters.
    /// (Sequence numbering is *not* reset mid-run; a fresh queue should be
    /// used for a fresh run — this is for reusing allocations.)
    pub fn reset(&mut self) {
        self.heap.clear();
        self.now = SimTime::ZERO;
        self.popped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i, "FIFO order broken at {i}");
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(5));
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(4), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), 1);
        q.pop();
        q.schedule(SimTime::from_secs(5), 2); // same instant: fine
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn reset_clears_state() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.pop();
        q.schedule(SimTime::from_secs(2), ());
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.popped(), 0);
        q.schedule(SimTime::from_micros(1), ()); // past-check reset too
    }

    #[test]
    fn iter_pending_sees_every_event_once() {
        let mut q = EventQueue::new();
        for i in 0..5u64 {
            q.schedule(SimTime::from_micros(i), i);
        }
        q.pop();
        let mut pending: Vec<u64> = q.iter_pending().map(|(_, &e)| e).collect();
        pending.sort_unstable();
        assert_eq!(pending, vec![1, 2, 3, 4]);
    }

    #[test]
    fn popped_counts_events() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule(SimTime::from_micros(i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.popped(), 10);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        // Model a chain: each popped event schedules the next one later.
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 0u32);
        let mut seen = Vec::new();
        while let Some((t, hop)) = q.pop() {
            seen.push(hop);
            if hop < 5 {
                q.schedule(t + SimDuration::from_millis(10), hop + 1);
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(q.now(), SimTime::from_millis(50));
    }

    #[test]
    fn large_volume_stays_sorted() {
        use crate::rng::{Rng, Xoshiro256StarStar};
        let mut g = Xoshiro256StarStar::new(1);
        let mut q = EventQueue::with_capacity(10_000);
        for _ in 0..10_000 {
            q.schedule(SimTime::from_micros(g.next_below(1_000_000)), ());
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }
}
