//! A deterministic discrete-event queue with exact operation counting.
//!
//! A hand-rolled binary min-heap (array layout, `(time, seq)` keys) with
//! three guarantees the simulator depends on:
//!
//! 1. **Monotonic delivery** — events pop in non-decreasing time order, and
//!    scheduling an event in the past (before the last popped time) is a
//!    panic: it would mean the model violated causality.
//! 2. **Deterministic tie-breaking** — events scheduled for the same instant
//!    pop in the order they were scheduled (FIFO), via a monotonically
//!    increasing sequence number. Binary heaps are otherwise unstable, which
//!    would make runs irreproducible.
//! 3. **Exact operation counts** — every push, pop, key comparison and
//!    sift move is tallied in [`QueueOpCounts`]. Because delivery order is
//!    a total order over `(time, seq)`, these counts are a pure function
//!    of the schedule/pop trace: bit-identical across worker counts and
//!    machines, and therefore usable as CI perf-regression gates
//!    (see `obs::costmodel`).
//!
//! The heap is implemented directly on a `Vec` (instead of wrapping
//! `std::collections::BinaryHeap`) so the comparison and sift-move counts
//! are under our control rather than at the mercy of the standard
//! library's internal heapify strategy changing between toolchains.

use crate::time::SimTime;

/// One scheduled entry: ordered by `(time, seq)`.
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// Exact counts of the queue's heap operations. All fields are monotone
/// `u64` tallies over the queue's lifetime (they survive [`EventQueue::reset`],
/// like the sequence counter, so phase-boundary snapshots can be diffed).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueOpCounts {
    /// Events scheduled (heap insertions).
    pub pushes: u64,
    /// Events popped (heap removals).
    pub pops: u64,
    /// Element moves during sift-up/sift-down — the "decrease-key"-class
    /// restructuring work of the priority queue.
    pub decreases: u64,
    /// `(time, seq)` key comparisons.
    pub comparisons: u64,
}

/// A future-event list keyed by simulated time.
///
/// `E` is the caller's event payload; the queue is agnostic to it.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: Vec<Entry<E>>,
    next_seq: u64,
    /// Time of the most recently popped event; new events may not be
    /// scheduled before it.
    now: SimTime,
    popped: u64,
    ops: QueueOpCounts,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            ops: QueueOpCounts::default(),
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(cap),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            ops: QueueOpCounts::default(),
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped so far (a cheap progress metric and
    /// runaway-simulation guard).
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Exact heap-operation tallies since the queue was created. Monotone:
    /// [`EventQueue::reset`] does *not* clear them, so snapshots taken at
    /// phase boundaries can be subtracted to attribute work per phase.
    pub fn op_counts(&self) -> QueueOpCounts {
        self.ops
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is earlier than the current clock — the model would
    /// be violating causality.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: {time:?} < now {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.ops.pushes += 1;
        self.sift_up(self.heap.len() - 1);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    /// Returns `None` when the simulation has quiesced.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let entry = self.heap.pop()?;
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        debug_assert!(entry.time >= self.now, "heap returned a past event");
        self.now = entry.time;
        self.popped += 1;
        self.ops.pops += 1;
        Some((entry.time, entry.event))
    }

    /// The timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.time)
    }

    /// Iterates over the pending events in **unspecified order** (heap
    /// order, not delivery order). Intended for diagnostics — counting
    /// pending events per kind for an error snapshot — where only
    /// order-insensitive aggregation is sound.
    pub fn iter_pending(&self) -> impl Iterator<Item = (SimTime, &E)> {
        self.heap.iter().map(|e| (e.time, &e.event))
    }

    /// Removes all pending events and resets the clock and the `popped`
    /// counter. (Sequence numbering and [`QueueOpCounts`] are *not* reset
    /// mid-run; a fresh queue should be used for a fresh run — this is for
    /// reusing allocations.)
    pub fn reset(&mut self) {
        self.heap.clear();
        self.now = SimTime::ZERO;
        self.popped = 0;
    }

    /// Restores the heap invariant upward from `idx` after a push.
    // detflow::allow(panic-surface, reason = "binary-heap index arithmetic: idx starts in bounds and parent = (idx - 1) / 2 < idx")
    fn sift_up(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / 2;
            self.ops.comparisons += 1;
            if self.heap[idx].key() < self.heap[parent].key() {
                self.heap.swap(idx, parent);
                self.ops.decreases += 1;
                idx = parent;
            } else {
                break;
            }
        }
    }

    /// Restores the heap invariant downward from `idx` after a pop.
    // detflow::allow(panic-surface, reason = "binary-heap index arithmetic: children are indexed only after a `< len` check")
    fn sift_down(&mut self, mut idx: usize) {
        let len = self.heap.len();
        loop {
            let left = 2 * idx + 1;
            let right = left + 1;
            let mut smallest = idx;
            if left < len {
                self.ops.comparisons += 1;
                if self.heap[left].key() < self.heap[smallest].key() {
                    smallest = left;
                }
            }
            if right < len {
                self.ops.comparisons += 1;
                if self.heap[right].key() < self.heap[smallest].key() {
                    smallest = right;
                }
            }
            if smallest == idx {
                break;
            }
            self.heap.swap(idx, smallest);
            self.ops.decreases += 1;
            idx = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i, "FIFO order broken at {i}");
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(5));
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(4), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), 1);
        q.pop();
        q.schedule(SimTime::from_secs(5), 2); // same instant: fine
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn reset_clears_state() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.pop();
        q.schedule(SimTime::from_secs(2), ());
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.popped(), 0);
        q.schedule(SimTime::from_micros(1), ()); // past-check reset too
    }

    #[test]
    fn iter_pending_sees_every_event_once() {
        let mut q = EventQueue::new();
        for i in 0..5u64 {
            q.schedule(SimTime::from_micros(i), i);
        }
        q.pop();
        let mut pending: Vec<u64> = q.iter_pending().map(|(_, &e)| e).collect();
        pending.sort_unstable();
        assert_eq!(pending, vec![1, 2, 3, 4]);
    }

    #[test]
    fn popped_counts_events() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule(SimTime::from_micros(i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.popped(), 10);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        // Model a chain: each popped event schedules the next one later.
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 0u32);
        let mut seen = Vec::new();
        while let Some((t, hop)) = q.pop() {
            seen.push(hop);
            if hop < 5 {
                q.schedule(t + SimDuration::from_millis(10), hop + 1);
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(q.now(), SimTime::from_millis(50));
    }

    #[test]
    fn large_volume_stays_sorted() {
        use crate::rng::{Rng, Xoshiro256StarStar};
        let mut g = Xoshiro256StarStar::new(1);
        let mut q = EventQueue::with_capacity(10_000);
        for _ in 0..10_000 {
            q.schedule(SimTime::from_micros(g.next_below(1_000_000)), ());
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn op_counts_track_pushes_and_pops_exactly() {
        let mut q = EventQueue::new();
        for i in 0..50u64 {
            q.schedule(SimTime::from_micros(100 - i), i);
        }
        for _ in 0..20 {
            q.pop();
        }
        let ops = q.op_counts();
        assert_eq!(ops.pushes, 50);
        assert_eq!(ops.pops, 20);
        assert_eq!(ops.pushes, ops.pops + q.len() as u64, "conservation");
        assert!(ops.comparisons > 0, "heap work was counted");
    }

    #[test]
    fn op_counts_survive_reset() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.pop();
        let before = q.op_counts();
        q.reset();
        assert_eq!(q.op_counts(), before, "op tallies are monotone");
    }

    #[test]
    fn op_counts_are_a_pure_function_of_the_trace() {
        use crate::rng::{Rng, Xoshiro256StarStar};
        let run = || {
            let mut g = Xoshiro256StarStar::new(42);
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.schedule(q.now() + SimDuration::from_micros(g.next_below(10_000)), i);
                if i % 3 == 0 {
                    q.pop();
                }
            }
            while q.pop().is_some() {}
            q.op_counts()
        };
        assert_eq!(run(), run());
    }
}
