//! A deterministic discrete-event queue with exact operation counting.
//!
//! [`EventQueue`] fronts two interchangeable backends behind one
//! instrumented API:
//!
//! * a **hierarchical timing wheel** ([`crate::wheel::TimingWheel`]) —
//!   the default, with `O(1)` amortized scheduling for the
//!   MRAI/timer-dominated load, and
//! * a hand-rolled **binary min-heap** (array layout, `(time, seq)`
//!   keys) — kept as the debug oracle the wheel is property-tested
//!   against ([`QueueBackend::Heap`]).
//!
//! Both give the three guarantees the simulator depends on:
//!
//! 1. **Monotonic delivery** — events pop in non-decreasing time order, and
//!    scheduling an event in the past (before the last popped time) is a
//!    panic: it would mean the model violated causality.
//! 2. **Deterministic tie-breaking** — events scheduled for the same instant
//!    pop in the order they were scheduled (FIFO), via a monotonically
//!    increasing sequence number. The pop sequence is the total order over
//!    `(time, seq)`, so the two backends deliver *byte-identical* runs and
//!    the choice of backend is invisible to every artifact.
//! 3. **Exact operation counts** — every push, pop, key comparison, sift
//!    move and wheel cascade is tallied in [`QueueOpCounts`]. Because
//!    delivery order is a total order over `(time, seq)`, these counts are
//!    a pure function of the schedule/pop trace: bit-identical across
//!    worker counts and machines, and therefore usable as CI
//!    perf-regression gates (see `obs::costmodel`).
//!
//! The heap is implemented directly on a `Vec` (instead of wrapping
//! `std::collections::BinaryHeap`) so the comparison and sift-move counts
//! are under our control rather than at the mercy of the standard
//! library's internal heapify strategy changing between toolchains.

use crate::time::SimTime;
use crate::wheel::{TimingWheel, DEFAULT_SLOT_BITS};

/// One scheduled entry: ordered by `(time, seq)`. Shared by both
/// backends so the wheel and the heap file literally the same records.
#[derive(Debug)]
pub(crate) struct Entry<E> {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// Exact counts of the queue's operations. All fields are monotone
/// `u64` tallies over the queue's lifetime (they survive [`EventQueue::reset`],
/// like the sequence counter, so phase-boundary snapshots can be diffed).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueOpCounts {
    /// Events scheduled (insertions).
    pub pushes: u64,
    /// Events popped (removals).
    pub pops: u64,
    /// Element moves: sift-up/sift-down swaps on the heap backend, due-list
    /// insertion shifts on the wheel backend — the "decrease-key"-class
    /// restructuring work of the priority queue.
    pub decreases: u64,
    /// Ordering comparisons: `(time, seq)` key comparisons on the heap
    /// backend, seq comparisons of the due-list insertion sort on the wheel.
    pub comparisons: u64,
    /// Entries re-filed into finer wheel levels during cursor jumps.
    /// Always zero on the heap backend.
    pub cascades: u64,
}

impl QueueOpCounts {
    /// All tallies at zero. Preferred over `Default::default()` inside the
    /// queue backends so the hot construction path stays free of trait
    /// dispatch the determinism analyzers would have to resolve by name.
    pub const ZERO: QueueOpCounts = QueueOpCounts {
        pushes: 0,
        pops: 0,
        decreases: 0,
        comparisons: 0,
        cascades: 0,
    };
}

/// Which priority-queue implementation backs an [`EventQueue`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueBackend {
    /// Hierarchical timing wheel (the default). `slot_bits` is the
    /// radix width per level — the tick-granularity knob; 8 gives
    /// 256-slot levels.
    Wheel {
        /// Bits per wheel level, in `1..=16`.
        slot_bits: u32,
    },
    /// Binary min-heap: the debug oracle.
    Heap,
}

impl Default for QueueBackend {
    fn default() -> Self {
        QueueBackend::Wheel {
            slot_bits: DEFAULT_SLOT_BITS,
        }
    }
}

/// A future-event list keyed by simulated time.
///
/// `E` is the caller's event payload; the queue is agnostic to it.
#[derive(Debug)]
pub struct EventQueue<E> {
    inner: Inner<E>,
}

#[derive(Debug)]
enum Inner<E> {
    Heap(HeapQueue<E>),
    Wheel(TimingWheel<E>),
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue (default backend: the timing wheel) with
    /// the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::default())
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            inner: Inner::Wheel(TimingWheel::with_capacity(DEFAULT_SLOT_BITS, cap)),
        }
    }

    /// Creates an empty queue on an explicit backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        EventQueue {
            inner: match backend {
                QueueBackend::Heap => Inner::Heap(HeapQueue::new()),
                QueueBackend::Wheel { slot_bits } => Inner::Wheel(TimingWheel::new(slot_bits)),
            },
        }
    }

    /// The backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match &self.inner {
            Inner::Heap(_) => QueueBackend::Heap,
            Inner::Wheel(w) => QueueBackend::Wheel {
                slot_bits: w.slot_bits(),
            },
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        match &self.inner {
            Inner::Heap(h) => h.now,
            Inner::Wheel(w) => w.now(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Heap(h) => h.heap.len(),
            Inner::Wheel(w) => w.len(),
        }
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events popped so far (a cheap progress metric and
    /// runaway-simulation guard).
    pub fn popped(&self) -> u64 {
        match &self.inner {
            Inner::Heap(h) => h.popped,
            Inner::Wheel(w) => w.popped(),
        }
    }

    /// Exact operation tallies since the queue was created. Monotone:
    /// [`EventQueue::reset`] does *not* clear them, so snapshots taken at
    /// phase boundaries can be subtracted to attribute work per phase.
    pub fn op_counts(&self) -> QueueOpCounts {
        match &self.inner {
            Inner::Heap(h) => h.ops,
            Inner::Wheel(w) => w.op_counts(),
        }
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is earlier than the current clock — the model would
    /// be violating causality.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        match &mut self.inner {
            Inner::Heap(h) => h.schedule(time, event),
            Inner::Wheel(w) => w.schedule(time, event),
        }
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    /// Returns `None` when the simulation has quiesced.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.inner {
            Inner::Heap(h) => h.pop(),
            Inner::Wheel(w) => w.pop(),
        }
    }

    /// The timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.inner {
            Inner::Heap(h) => h.heap.first().map(|e| e.time),
            Inner::Wheel(w) => w.peek_time(),
        }
    }

    /// Iterates over the pending events in **unspecified order** (backend
    /// storage order, not delivery order). Intended for diagnostics —
    /// counting pending events per kind for an error snapshot — where only
    /// order-insensitive aggregation is sound.
    pub fn iter_pending(&self) -> impl Iterator<Item = (SimTime, &E)> {
        let it: Box<dyn Iterator<Item = (SimTime, &E)> + '_> = match &self.inner {
            Inner::Heap(h) => Box::new(h.heap.iter().map(|e| (e.time, &e.event))),
            Inner::Wheel(w) => Box::new(w.iter_pending()),
        };
        it
    }

    /// Removes all pending events and resets the clock and the `popped`
    /// counter. (Sequence numbering and [`QueueOpCounts`] are *not* reset
    /// mid-run; a fresh queue should be used for a fresh run — this is for
    /// reusing allocations.)
    pub fn reset(&mut self) {
        match &mut self.inner {
            Inner::Heap(h) => h.reset(),
            Inner::Wheel(w) => w.reset(),
        }
    }
}

/// The binary-heap backend (the debug oracle).
#[derive(Debug)]
struct HeapQueue<E> {
    heap: Vec<Entry<E>>,
    next_seq: u64,
    /// Time of the most recently popped event; new events may not be
    /// scheduled before it.
    now: SimTime,
    popped: u64,
    ops: QueueOpCounts,
}

impl<E> HeapQueue<E> {
    fn new() -> Self {
        HeapQueue {
            heap: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            ops: QueueOpCounts::ZERO,
        }
    }

    fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: {time:?} < now {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.ops.pushes += 1;
        self.sift_up(self.heap.len() - 1);
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let entry = self.heap.pop()?;
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        debug_assert!(entry.time >= self.now, "heap returned a past event");
        self.now = entry.time;
        self.popped += 1;
        self.ops.pops += 1;
        Some((entry.time, entry.event))
    }

    fn reset(&mut self) {
        self.heap.clear();
        self.now = SimTime::ZERO;
        self.popped = 0;
    }

    /// Restores the heap invariant upward from `idx` after a push.
    // detflow::allow(panic-surface, reason = "binary-heap index arithmetic: idx starts in bounds and parent = (idx - 1) / 2 < idx")
    fn sift_up(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / 2;
            self.ops.comparisons += 1;
            if self.heap[idx].key() < self.heap[parent].key() {
                self.heap.swap(idx, parent);
                self.ops.decreases += 1;
                idx = parent;
            } else {
                break;
            }
        }
    }

    /// Restores the heap invariant downward from `idx` after a pop.
    // detflow::allow(panic-surface, reason = "binary-heap index arithmetic: children are indexed only after a `< len` check")
    fn sift_down(&mut self, mut idx: usize) {
        let len = self.heap.len();
        loop {
            let left = 2 * idx + 1;
            let right = left + 1;
            let mut smallest = idx;
            if left < len {
                self.ops.comparisons += 1;
                if self.heap[left].key() < self.heap[smallest].key() {
                    smallest = left;
                }
            }
            if right < len {
                self.ops.comparisons += 1;
                if self.heap[right].key() < self.heap[smallest].key() {
                    smallest = right;
                }
            }
            if smallest == idx {
                break;
            }
            self.heap.swap(idx, smallest);
            self.ops.decreases += 1;
            idx = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Both backends, so every contract test below runs against each.
    fn backends() -> [QueueBackend; 2] {
        [QueueBackend::default(), QueueBackend::Heap]
    }

    #[test]
    fn default_backend_is_the_wheel() {
        let q: EventQueue<()> = EventQueue::new();
        assert_eq!(
            q.backend(),
            QueueBackend::Wheel {
                slot_bits: DEFAULT_SLOT_BITS
            }
        );
        let q: EventQueue<()> = EventQueue::with_capacity(64);
        assert!(matches!(q.backend(), QueueBackend::Wheel { .. }));
        let q: EventQueue<()> = EventQueue::with_backend(QueueBackend::Heap);
        assert_eq!(q.backend(), QueueBackend::Heap);
    }

    #[test]
    fn pops_in_time_order() {
        for b in backends() {
            let mut q = EventQueue::with_backend(b);
            q.schedule(SimTime::from_millis(30), "c");
            q.schedule(SimTime::from_millis(10), "a");
            q.schedule(SimTime::from_millis(20), "b");
            assert_eq!(q.pop().unwrap().1, "a");
            assert_eq!(q.pop().unwrap().1, "b");
            assert_eq!(q.pop().unwrap().1, "c");
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        for b in backends() {
            let mut q = EventQueue::with_backend(b);
            let t = SimTime::from_secs(1);
            for i in 0..100 {
                q.schedule(t, i);
            }
            for i in 0..100 {
                assert_eq!(q.pop().unwrap().1, i, "FIFO order broken at {i} ({b:?})");
            }
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        for b in backends() {
            let mut q = EventQueue::with_backend(b);
            q.schedule(SimTime::from_secs(5), ());
            assert_eq!(q.now(), SimTime::ZERO);
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, SimTime::from_secs(5));
            assert_eq!(q.now(), SimTime::from_secs(5));
        }
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(4), ());
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics_on_the_heap_too() {
        let mut q = EventQueue::with_backend(QueueBackend::Heap);
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(4), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        for b in backends() {
            let mut q = EventQueue::with_backend(b);
            q.schedule(SimTime::from_secs(5), 1);
            q.pop();
            q.schedule(SimTime::from_secs(5), 2); // same instant: fine
            assert_eq!(q.pop().unwrap().1, 2);
        }
    }

    #[test]
    fn peek_does_not_advance() {
        for b in backends() {
            let mut q = EventQueue::with_backend(b);
            q.schedule(SimTime::from_secs(2), ());
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
            assert_eq!(q.now(), SimTime::ZERO);
            assert_eq!(q.len(), 1);
        }
    }

    #[test]
    fn reset_clears_state() {
        for b in backends() {
            let mut q = EventQueue::with_backend(b);
            q.schedule(SimTime::from_secs(1), ());
            q.pop();
            q.schedule(SimTime::from_secs(2), ());
            q.reset();
            assert!(q.is_empty());
            assert_eq!(q.now(), SimTime::ZERO);
            assert_eq!(q.popped(), 0);
            q.schedule(SimTime::from_micros(1), ()); // past-check reset too
        }
    }

    #[test]
    fn iter_pending_sees_every_event_once() {
        for b in backends() {
            let mut q = EventQueue::with_backend(b);
            for i in 0..5u64 {
                q.schedule(SimTime::from_micros(i), i);
            }
            q.pop();
            let mut pending: Vec<u64> = q.iter_pending().map(|(_, &e)| e).collect();
            pending.sort_unstable();
            assert_eq!(pending, vec![1, 2, 3, 4]);
        }
    }

    #[test]
    fn popped_counts_events() {
        for b in backends() {
            let mut q = EventQueue::with_backend(b);
            for i in 0..10u64 {
                q.schedule(SimTime::from_micros(i), i);
            }
            while q.pop().is_some() {}
            assert_eq!(q.popped(), 10);
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        // Model a chain: each popped event schedules the next one later.
        for b in backends() {
            let mut q = EventQueue::with_backend(b);
            q.schedule(SimTime::ZERO, 0u32);
            let mut seen = Vec::new();
            while let Some((t, hop)) = q.pop() {
                seen.push(hop);
                if hop < 5 {
                    q.schedule(t + SimDuration::from_millis(10), hop + 1);
                }
            }
            assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
            assert_eq!(q.now(), SimTime::from_millis(50));
        }
    }

    #[test]
    fn large_volume_stays_sorted() {
        use crate::rng::{Rng, Xoshiro256StarStar};
        for b in backends() {
            let mut g = Xoshiro256StarStar::new(1);
            let mut q = EventQueue::with_backend(b);
            for _ in 0..10_000 {
                q.schedule(SimTime::from_micros(g.next_below(1_000_000)), ());
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                assert!(t >= last);
                last = t;
            }
        }
    }

    #[test]
    fn op_counts_track_pushes_and_pops_exactly() {
        for b in backends() {
            let mut q = EventQueue::with_backend(b);
            for i in 0..50u64 {
                q.schedule(SimTime::from_micros(100 - i), i);
            }
            for _ in 0..20 {
                q.pop();
            }
            let ops = q.op_counts();
            assert_eq!(ops.pushes, 50);
            assert_eq!(ops.pops, 20);
            assert_eq!(ops.pushes, ops.pops + q.len() as u64, "conservation");
        }
    }

    #[test]
    fn heap_backend_counts_sift_work_and_never_cascades() {
        let mut q = EventQueue::with_backend(QueueBackend::Heap);
        for i in 0..50u64 {
            q.schedule(SimTime::from_micros(100 - i), i);
        }
        while q.pop().is_some() {}
        let ops = q.op_counts();
        assert!(ops.comparisons > 0, "heap work was counted");
        assert_eq!(ops.cascades, 0, "the heap backend never cascades");
    }

    #[test]
    fn op_counts_survive_reset() {
        for b in backends() {
            let mut q = EventQueue::with_backend(b);
            q.schedule(SimTime::from_secs(1), ());
            q.pop();
            let before = q.op_counts();
            q.reset();
            assert_eq!(q.op_counts(), before, "op tallies are monotone");
        }
    }

    #[test]
    fn op_counts_are_a_pure_function_of_the_trace() {
        use crate::rng::{Rng, Xoshiro256StarStar};
        for b in backends() {
            let run = || {
                let mut g = Xoshiro256StarStar::new(42);
                let mut q = EventQueue::with_backend(b);
                for i in 0..1_000u64 {
                    q.schedule(q.now() + SimDuration::from_micros(g.next_below(10_000)), i);
                    if i % 3 == 0 {
                        q.pop();
                    }
                }
                while q.pop().is_some() {}
                q.op_counts()
            };
            assert_eq!(run(), run());
        }
    }

    #[test]
    fn wheel_and_heap_agree_on_a_random_trace() {
        use crate::rng::{Rng, Xoshiro256StarStar};
        let mut g = Xoshiro256StarStar::new(0xABCD);
        let mut wheel = EventQueue::new();
        let mut heap = EventQueue::with_backend(QueueBackend::Heap);
        for i in 0..2_000u64 {
            let dt = SimDuration::from_micros(g.next_below(500_000));
            wheel.schedule(wheel.now() + dt, i);
            heap.schedule(heap.now() + dt, i);
            if i % 4 == 0 {
                assert_eq!(wheel.pop(), heap.pop());
            }
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
