//! Optional allocation counting (feature `alloc-count`).
//!
//! When the `alloc-count` feature is enabled, [`CountingAlloc`] wraps the
//! system allocator and tallies allocation calls, bytes requested, and the
//! peak number of live heap bytes into process-global atomics. The `repro`
//! binary installs it as the `#[global_allocator]` so `repro bench` can
//! report per-cell allocation columns.
//!
//! **Allocation counts are wall-side telemetry, not deterministic
//! artifacts.** They vary with worker count (thread stacks, scratch
//! buffers) and allocator/library versions, so they are reported only in
//! `BENCH_harness.json` — never in `costmodel.json`, `metrics.json` or any
//! other byte-identity-gated file.
//!
//! Without the feature the module still compiles (so callers need no
//! `cfg`s): [`snapshot`] simply returns `None` and the crate keeps its
//! `#![forbid(unsafe_code)]`.

/// A point-in-time reading of the process-global allocation tallies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Number of allocation calls (`alloc` + `realloc`) so far.
    pub allocs: u64,
    /// Total bytes requested across those calls.
    pub bytes_allocated: u64,
    /// Live heap bytes right now (allocated minus freed).
    pub current_bytes: u64,
    /// High-water mark of live heap bytes.
    pub peak_bytes: u64,
}

impl AllocSnapshot {
    /// Allocation activity between `earlier` and `self` (call-count and
    /// byte deltas; `peak_bytes` is carried over as the later reading
    /// since a high-water mark cannot be meaningfully subtracted).
    ///
    /// Deliberately *not* named `since`: this module is wall-side, and
    /// `since` is the deterministic tier's delta-method name
    /// (`SimTime::since`, `OpCounts::since`). detflow's call graph
    /// resolves ambiguous method names to every workspace impl, so a
    /// shared name would make every deterministic `.since(..)` call
    /// look like a wall-side crossing.
    pub fn delta_since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes_allocated: self.bytes_allocated.saturating_sub(earlier.bytes_allocated),
            current_bytes: self.current_bytes,
            peak_bytes: self.peak_bytes,
        }
    }
}

/// Reads the current allocation tallies, or `None` when the crate was
/// built without the `alloc-count` feature (or the counting allocator was
/// not installed as the global allocator).
pub fn snapshot() -> Option<AllocSnapshot> {
    #[cfg(feature = "alloc-count")]
    {
        counting::snapshot_if_active()
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        None
    }
}

#[cfg(feature = "alloc-count")]
pub use counting::CountingAlloc;

#[cfg(feature = "alloc-count")]
mod counting {
    use super::AllocSnapshot;
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);
    static CURRENT_BYTES: AtomicU64 = AtomicU64::new(0);
    static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

    /// A system-allocator wrapper that tallies every allocation into
    /// process-global atomics. Install with:
    ///
    /// ```ignore
    /// #[global_allocator]
    /// static ALLOC: bgpscale_simkernel::alloc::CountingAlloc =
    ///     bgpscale_simkernel::alloc::CountingAlloc;
    /// ```
    pub struct CountingAlloc;

    fn record_alloc(size: usize) {
        ACTIVE.store(true, Ordering::Relaxed);
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(size as u64, Ordering::Relaxed);
        let live = CURRENT_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
        PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    }

    fn record_dealloc(size: usize) {
        // Saturate rather than wrap: allocations made before the statics
        // initialized can be freed after.
        let _ = CURRENT_BYTES.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |live| {
            Some(live.saturating_sub(size as u64))
        });
    }

    #[allow(unsafe_code)]
    // SAFETY: every call forwards verbatim to `System`, which upholds the
    // GlobalAlloc contract; the bookkeeping uses only atomics.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                record_alloc(layout.size());
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            record_dealloc(layout.size());
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                record_dealloc(layout.size());
                record_alloc(new_size);
            }
            p
        }
    }

    pub(super) fn snapshot_if_active() -> Option<AllocSnapshot> {
        if !ACTIVE.load(Ordering::Relaxed) {
            return None;
        }
        Some(AllocSnapshot {
            allocs: ALLOCS.load(Ordering::Relaxed),
            bytes_allocated: BYTES_ALLOCATED.load(Ordering::Relaxed),
            current_bytes: CURRENT_BYTES.load(Ordering::Relaxed),
            peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_since_subtracts_flow_counters() {
        let earlier = AllocSnapshot {
            allocs: 10,
            bytes_allocated: 1_000,
            current_bytes: 400,
            peak_bytes: 700,
        };
        let later = AllocSnapshot {
            allocs: 25,
            bytes_allocated: 3_000,
            current_bytes: 500,
            peak_bytes: 900,
        };
        let d = later.delta_since(&earlier);
        assert_eq!(d.allocs, 15);
        assert_eq!(d.bytes_allocated, 2_000);
        assert_eq!(d.peak_bytes, 900, "peak carries the later high-water mark");
    }

    #[cfg(not(feature = "alloc-count"))]
    #[test]
    fn snapshot_is_none_without_the_feature() {
        assert_eq!(snapshot(), None);
    }
}
