//! A minimal scoped-thread worker pool for deterministic fan-out.
//!
//! The experiment layers parallelize *independent* units of work — C-events
//! within one experiment, `(scenario, n, mode)` cells within one sweep —
//! whose results must be folded back **in index order** so that a parallel
//! run is bit-for-bit identical to a sequential one. This module provides
//! exactly that shape and nothing more: [`run_indexed`] evaluates
//! `f(0), f(1), …, f(count - 1)` on up to `jobs` worker threads and returns
//! the results ordered by index.
//!
//! Determinism contract:
//!
//! * `f` must be a pure function of its index (each unit derives its own
//!   seed; no shared mutable state), so scheduling order cannot influence
//!   any result.
//! * The returned `Vec` is always index-ordered, so any fold the caller
//!   performs over it is independent of which worker finished first.
//! * `jobs <= 1` (or building without the `parallel` feature) takes a plain
//!   sequential loop — the exact same code path a single worker would take,
//!   with no thread machinery at all.

// The one sanctioned home for thread spawning (mirrored by clippy.toml's
// disallowed-methods and detlint's thread-spawn exemption).
#![allow(clippy::disallowed_methods)]

#[cfg(feature = "parallel")]
use std::sync::atomic::{AtomicUsize, Ordering};
#[cfg(feature = "parallel")]
use std::sync::Mutex;

/// Resolves a `--jobs`-style request into a concrete worker count:
/// `0` means "use the machine" (`std::thread::available_parallelism`),
/// anything else is taken as-is. Without the `parallel` feature this
/// always returns 1.
pub fn effective_jobs(requested: usize) -> usize {
    #[cfg(feature = "parallel")]
    {
        if requested == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            requested
        }
    }
    #[cfg(not(feature = "parallel"))]
    {
        let _ = requested;
        1
    }
}

/// Evaluates `f(i)` for `i in 0..count` on up to `jobs` threads and
/// returns the results in index order.
///
/// Work is distributed dynamically (an atomic next-index counter), so
/// uneven unit costs — a C-event on a 9000-node topology next to one on a
/// 600-node topology — still load-balance. Ordering of the *returned*
/// results is unaffected by the dynamic schedule.
///
/// Panics in `f` propagate: the pool joins all workers and re-raises the
/// first panic rather than returning partial results.
pub fn run_indexed<T, F>(jobs: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    run_threaded(jobs.min(count), count, f)
}

#[cfg(feature = "parallel")]
fn run_threaded<T, F>(workers: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let value = f(i);
                    *slots[i].lock().expect("result slot poisoned") = Some(value);
                })
            })
            .collect();
        for h in handles {
            if let Err(panic) = h.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was claimed by a worker")
        })
        .collect()
}

#[cfg(not(feature = "parallel"))]
fn run_threaded<T, F>(_workers: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    (0..count).map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let work = |i: usize| {
            // A little arithmetic so the units have non-trivial cost.
            (0..1000u64).fold(i as u64, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
        };
        let seq = run_indexed(1, 64, work);
        for jobs in [2, 4, 8] {
            assert_eq!(seq, run_indexed(jobs, 64, work), "jobs={jobs}");
        }
    }

    #[test]
    fn results_are_index_ordered() {
        let out = run_indexed(4, 100, |i| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(run_indexed(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(8, 1, |i| i * 7), vec![0]);
    }

    #[test]
    fn effective_jobs_resolves_zero() {
        assert!(effective_jobs(0) >= 1);
        #[cfg(feature = "parallel")]
        assert_eq!(effective_jobs(5), 5);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            run_indexed(4, 16, |i| {
                if i == 7 {
                    panic!("unit 7 failed");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
