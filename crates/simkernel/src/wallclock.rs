//! Wall-clock timing utilities (host time, never simulated time).
//!
//! The kernel's simulated clock ([`crate::SimTime`]) is deterministic and
//! must stay free of host-time contamination; profiling, on the other
//! hand, needs real elapsed time. This module is the one sanctioned place
//! where `std::time::Instant` enters the workspace: span profiles
//! (`bgpscale-obs`) and the bench harness build on it, and nothing here
//! may feed back into simulation results.

// The one sanctioned home for host-clock reads (mirrored by clippy.toml's
// disallowed-methods and detlint's wall-clock exemption).
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

/// A started wall-clock stopwatch.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since start.
    pub fn elapsed_ns(&self) -> u128 {
        self.start.elapsed().as_nanos()
    }

    /// Elapsed time since start as a [`std::time::Duration`], for callers
    /// that do duration arithmetic (e.g. the bench harness budgets).
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }

    /// Seconds elapsed since start.
    pub fn elapsed_secs_f64(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

/// Times a closure, returning its result and the elapsed wall time in
/// nanoseconds.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, u128) {
    let sw = Stopwatch::start();
    let out = f();
    (out, sw.elapsed_ns())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_nonnegative_time() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
    }

    #[test]
    fn time_it_returns_result_and_duration() {
        let (value, ns) = time_it(|| (0..1000u64).sum::<u64>());
        assert_eq!(value, 499_500);
        // Duration is measured; zero is theoretically possible on coarse
        // clocks, so only assert it is not absurd.
        assert!(ns < 10_000_000_000);
    }
}
