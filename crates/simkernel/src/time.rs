//! Simulated time.
//!
//! Time is measured in integer **microseconds** since the start of the
//! simulation. Microsecond resolution comfortably covers the paper's time
//! scales (processing delays up to 100 ms, MRAI timers around 30 s) while a
//! `u64` tick counter still spans more than half a million simulated years,
//! so overflow is not a practical concern.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Constructs an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Constructs an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; a simulation clock never
    /// runs backwards, so this indicates a kernel bug.
    // detflow::allow(panic-surface, reason = "a backwards clock is a kernel bug and panicking is the documented contract (# Panics above); saturating_since is the non-panicking form")
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("simulated clock ran backwards"),
        )
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Constructs a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Constructs a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Constructs a duration from fractional seconds, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative, got {s}"
        );
        SimDuration((s * 1e6).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration in seconds, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the duration by a non-negative factor, rounding to the
    /// nearest microsecond. Used for MRAI jitter ([0.75, 1.0] × timer).
    ///
    /// # Panics
    /// Panics on negative or non-finite factors.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("negative SimDuration in subtraction"),
        )
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_micros(1_000_000));
        assert_eq!(SimDuration::from_millis(30_000), SimDuration::from_secs(30));
    }

    #[test]
    fn add_duration_advances_time() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
    }

    #[test]
    fn add_assign_advances_time() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_micros(42);
        assert_eq!(t.as_micros(), 42);
    }

    #[test]
    fn since_measures_elapsed() {
        let a = SimTime::from_secs(2);
        let b = SimTime::from_secs(5);
        assert_eq!(b.since(a), SimDuration::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "clock ran backwards")]
    fn since_panics_when_negative() {
        let _ = SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let d = SimTime::from_secs(1).saturating_since(SimTime::from_secs(2));
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_rounds_to_nearest_microsecond() {
        let d = SimDuration::from_secs(30).mul_f64(0.75);
        assert_eq!(d, SimDuration::from_millis(22_500));
        // Rounding, not truncation.
        let d = SimDuration::from_micros(3).mul_f64(0.5);
        assert_eq!(d.as_micros(), 2); // 1.5 rounds to 2
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn mul_f64_rejects_negative() {
        let _ = SimDuration::from_secs(1).mul_f64(-0.5);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0301).as_micros(), 30_100);
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(SimTime::from_millis(1_500).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_micros(7).to_string(), "0.000007s");
    }

    #[test]
    fn ordering_follows_ticks() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn duration_arithmetic() {
        let sum = SimDuration::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(sum.as_micros(), 1_500_000);
        let diff = sum - SimDuration::from_millis(400);
        assert_eq!(diff.as_micros(), 1_100_000);
        assert!(SimDuration::ZERO.is_zero());
        assert!(!sum.is_zero());
    }
}
