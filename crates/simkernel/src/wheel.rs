//! A hierarchical timing wheel with *exact* heap-order parity.
//!
//! The binary heap in [`crate::queue`] costs `O(log n)` counted key
//! comparisons and sift moves per operation, and at Internet scale
//! (tens of thousands of armed MRAI timers) that heap maintenance
//! dominates the per-event budget. The timing wheel replaces it with
//! `O(1)` amortized bucket appends: an event scheduled `d` ticks ahead
//! is filed under the highest radix digit in which `d` differs from the
//! current cursor, and is re-filed ("cascaded") into finer levels only
//! when the cursor enters its window — a classic hashed/hierarchical
//! timing wheel (Varghese & Lauck), specialized here for a simulator
//! that needs **bit-identical artifacts**.
//!
//! ## Exact order parity with the heap
//!
//! The queue contract is a strict total order over `(time, seq)`: pops
//! are sorted by timestamp, FIFO within a timestamp. The wheel
//! preserves that order *exactly* — not approximately, as
//! tick-rounding wheels do — because:
//!
//! 1. The tick is 1 µs, the full resolution of [`SimTime`], so no two
//!    distinct timestamps ever share a level-0 bucket.
//! 2. Levels partition the tick's bits: level `k` covers bit range
//!    `[k·B, (k+1)·B)` for `B = slot_bits`. An entry lives at the level
//!    of the *highest* bit in which its tick differs from the cursor,
//!    so every entry at level `k` agrees with the cursor on all bits
//!    `≥ (k+1)·B`. With equal upper bits, a bigger slot digit means a
//!    strictly later tick — so scanning slots upward from the cursor's
//!    digit visits pending ticks in increasing order, and every level-k
//!    entry precedes every level-(k+1) entry.
//! 3. Within a level-0 bucket all entries share one exact tick (all 64
//!    bits pinned), and buckets accumulate entries in increasing `seq`
//!    order, which the drain keeps; a counted insertion sort into the
//!    due list enforces the FIFO tie-break even so.
//!
//! The cursor only ever jumps to the window start of the first occupied
//! slot it finds (bottom level first), so no occupied slot is ever
//! skipped and `cursor == now` holds between operations. Together these
//! give the parity theorem the artifact byte-identity suite relies on:
//! **for any schedule/pop trace, the wheel's pop sequence equals the
//! heap's** (see the property tests in `tests/wheel_vs_heap.rs`).
//!
//! ## Operation counting
//!
//! The wheel tallies into the same [`QueueOpCounts`] as the heap:
//! `pushes`/`pops` count events, `comparisons`/`decreases` count the
//! seq-order insertion work of bucket drains, and `cascades` counts
//! re-filed entries during cursor jumps (always zero for the heap
//! backend). All are integer tallies over the `(time, seq)` trace, so
//! they remain a pure function of the trace — bit-identical across
//! worker counts and machines — exactly like the heap's counters.

use std::collections::VecDeque;

use crate::queue::{Entry, QueueOpCounts};
use crate::time::SimTime;

/// Default number of bits per wheel level (256 slots/level, 8 levels).
pub const DEFAULT_SLOT_BITS: u32 = 8;

/// One wheel level: `1 << slot_bits` buckets plus an occupancy bitmap
/// (one bit per bucket) so the next occupied slot is found by word
/// scans rather than walking empty buckets.
#[derive(Debug)]
struct Level<E> {
    buckets: Vec<Vec<Entry<E>>>,
    occ: Vec<u64>,
}

impl<E> Level<E> {
    fn new(slots: usize) -> Self {
        let mut buckets = Vec::with_capacity(slots);
        for _ in 0..slots {
            buckets.push(Vec::new());
        }
        Level {
            buckets,
            occ: vec![0u64; slots.div_ceil(64)],
        }
    }

    // detflow::allow(panic-surface, reason = "slot < buckets.len() = 1 << slot_bits by digit masking, and occ holds ceil(buckets/64) words, so slot >> 6 is in bounds")
    fn mark_occupied(&mut self, slot: usize) {
        self.occ[slot >> 6] |= 1u64 << (slot & 63);
    }

    // detflow::allow(panic-surface, reason = "slot < buckets.len() = 1 << slot_bits by digit masking, and occ holds ceil(buckets/64) words, so slot >> 6 is in bounds")
    fn mark_empty(&mut self, slot: usize) {
        self.occ[slot >> 6] &= !(1u64 << (slot & 63));
    }

    /// Index of the first occupied slot at or after `from`, scanning the
    /// occupancy bitmap one 64-bit word at a time.
    fn first_occupied_from(&self, from: usize) -> Option<usize> {
        let first_word = from >> 6;
        let mut words = self.occ.iter().enumerate().skip(first_word);
        if let Some((w, &bits)) = words.next() {
            let masked = bits & (!0u64 << (from & 63));
            if masked != 0 {
                return Some((w << 6) + masked.trailing_zeros() as usize);
            }
        }
        for (w, &bits) in words {
            if bits != 0 {
                return Some((w << 6) + bits.trailing_zeros() as usize);
            }
        }
        None
    }
}

/// A hierarchical timing wheel over the full 64-bit tick space.
///
/// `ceil(64 / slot_bits)` levels of `1 << slot_bits` slots each cover
/// every representable [`SimTime`], so there is no horizon/overflow
/// list. Pending same-tick entries ready for delivery sit in `due`,
/// sorted by sequence number.
#[derive(Debug)]
pub struct TimingWheel<E> {
    slot_bits: u32,
    /// `(1 << slot_bits) - 1`: mask extracting one level's digit.
    mask: u64,
    levels: Vec<Level<E>>,
    /// Entries at tick `due_tick`, in increasing `seq` order; the pop
    /// side drains this before consulting the wheel again.
    due: VecDeque<Entry<E>>,
    due_tick: u64,
    /// Lower bound on every pending tick; equals `now.as_micros()`
    /// between operations (it only runs ahead transiently inside
    /// `fill_due`).
    cursor: u64,
    len: usize,
    next_seq: u64,
    now: SimTime,
    popped: u64,
    ops: QueueOpCounts,
}

impl<E> TimingWheel<E> {
    /// Creates an empty wheel with `slot_bits` bits per level.
    ///
    /// # Panics
    /// Panics unless `1 <= slot_bits <= 16` (beyond 16 the per-level
    /// bucket array is pointlessly large).
    pub fn new(slot_bits: u32) -> Self {
        Self::with_capacity(slot_bits, 0)
    }

    /// Creates an empty wheel, pre-allocating the due list.
    pub fn with_capacity(slot_bits: u32, cap: usize) -> Self {
        assert!(
            (1..=16).contains(&slot_bits),
            "slot_bits must be in 1..=16, got {slot_bits}"
        );
        let slots = 1usize << slot_bits;
        let n_levels = 64usize.div_ceil(slot_bits as usize);
        let mut levels = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            levels.push(Level::new(slots));
        }
        TimingWheel {
            slot_bits,
            mask: (slots - 1) as u64,
            levels,
            due: VecDeque::with_capacity(cap),
            due_tick: 0,
            cursor: 0,
            len: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            ops: QueueOpCounts::ZERO,
        }
    }

    /// Bits per wheel level (the tick-granularity knob).
    pub fn slot_bits(&self) -> u32 {
        self.slot_bits
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events popped so far.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Exact operation tallies (monotone; survive [`TimingWheel::reset`]).
    pub fn op_counts(&self) -> QueueOpCounts {
        self.ops
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is earlier than the current clock.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: {time:?} < now {:?}",
            self.now
        );
        debug_assert_eq!(
            self.cursor,
            self.now.as_micros(),
            "cursor must equal now between operations"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.ops.pushes += 1;
        self.len += 1;
        self.insert_entry(Entry { time, seq, event });
    }

    /// Pops the earliest event (by `(time, seq)`), advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.due.is_empty() && !self.fill_due() {
            return None;
        }
        let entry = self.due.pop_front()?;
        debug_assert_eq!(entry.time.as_micros(), self.due_tick);
        self.now = entry.time;
        self.len -= 1;
        self.popped += 1;
        self.ops.pops += 1;
        Some((entry.time, entry.event))
    }

    /// The timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(front) = self.due.front() {
            return Some(front.time);
        }
        if self.len == 0 {
            return None;
        }
        // Level 0: the found slot pins the full tick.
        let c0 = (self.cursor & self.mask) as usize;
        if let Some(s) = self.levels[0].first_occupied_from(c0) {
            return Some(SimTime::from_micros((self.cursor & !self.mask) | s as u64));
        }
        // Higher levels: the first occupied slot at the lowest non-empty
        // level holds the globally earliest entries (levels are strictly
        // time-ordered); its minimum timestamp is the answer.
        for (k, level) in self.levels.iter().enumerate().skip(1) {
            let from = ((self.cursor >> (k as u32 * self.slot_bits)) & self.mask) as usize;
            if let Some(s) = level.first_occupied_from(from) {
                return level.buckets[s].iter().map(|e| e.time).min();
            }
        }
        unreachable!("timing wheel has {} pending events but no occupied slot", self.len)
    }

    /// Iterates over pending events in **unspecified order** (bucket
    /// order, not delivery order); for diagnostics only.
    pub fn iter_pending(&self) -> impl Iterator<Item = (SimTime, &E)> {
        self.due
            .iter()
            .chain(
                self.levels
                    .iter()
                    .flat_map(|l| l.buckets.iter().flat_map(|b| b.iter())),
            )
            .map(|e| (e.time, &e.event))
    }

    /// Removes all pending events and resets the clock and the `popped`
    /// counter; sequence numbering and op tallies are kept (matching
    /// the heap backend's reset semantics).
    pub fn reset(&mut self) {
        for level in &mut self.levels {
            for bucket in &mut level.buckets {
                bucket.clear();
            }
            for word in &mut level.occ {
                *word = 0;
            }
        }
        self.due.clear();
        self.due_tick = 0;
        self.cursor = 0;
        self.len = 0;
        self.now = SimTime::ZERO;
        self.popped = 0;
    }

    /// Level of the highest radix digit in which `tick` differs from
    /// the cursor (0 when equal).
    fn level_of(&self, tick: u64) -> usize {
        let diff = tick ^ self.cursor;
        if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / self.slot_bits) as usize
        }
    }

    /// Files an entry under its level/slot for the current cursor.
    // detflow::allow(panic-surface, reason = "level < levels.len() because level_of divides a bit index < 64 by slot_bits, and slot <= mask < buckets.len() by construction")
    fn insert_entry(&mut self, entry: Entry<E>) {
        let tick = entry.time.as_micros();
        debug_assert!(tick >= self.cursor, "entry behind the cursor");
        let level = self.level_of(tick);
        let slot = ((tick >> (level as u32 * self.slot_bits)) & self.mask) as usize;
        let l = &mut self.levels[level];
        l.buckets[slot].push(entry);
        l.mark_occupied(slot);
    }

    /// Advances the cursor to the earliest pending tick and moves that
    /// tick's entries into `due` (sorted by `seq`). Returns false iff
    /// nothing is pending.
    ///
    /// Scans bottom-up: a level-0 hit pins an exact tick; a hit at a
    /// higher level only narrows the window — the cursor jumps to the
    /// window start and the bucket cascades into finer levels.
    // detflow::allow(panic-surface, reason = "slot indices come from first_occupied_from over the occupancy bitmap (always in bounds); due[pos-1] is guarded by pos > 0; the final assert documents that len > 0 implies an occupied slot exists")
    fn fill_due(&mut self) -> bool {
        if self.len == 0 {
            return false;
        }
        loop {
            let c0 = (self.cursor & self.mask) as usize;
            if let Some(s) = self.levels[0].first_occupied_from(c0) {
                self.cursor = (self.cursor & !self.mask) | s as u64;
                self.due_tick = self.cursor;
                let mut bucket = std::mem::take(&mut self.levels[0].buckets[s]);
                self.levels[0].mark_empty(s);
                for entry in bucket.drain(..) {
                    debug_assert_eq!(entry.time.as_micros(), self.due_tick);
                    // Counted insertion sort by seq. Buckets accumulate
                    // in increasing seq order, so this is one comparison
                    // and zero moves per entry in practice, but the sort
                    // is what the FIFO tie-break contract rests on.
                    let mut pos = self.due.len();
                    while pos > 0 {
                        self.ops.comparisons += 1;
                        if self.due[pos - 1].seq <= entry.seq {
                            break;
                        }
                        pos -= 1;
                    }
                    self.ops.decreases += (self.due.len() - pos) as u64;
                    self.due.insert(pos, entry);
                }
                // Hand the emptied allocation back to the bucket.
                self.levels[0].buckets[s] = bucket;
                return true;
            }
            let mut advanced = false;
            for k in 1..self.levels.len() {
                let shift = k as u32 * self.slot_bits;
                let from = ((self.cursor >> shift) & self.mask) as usize;
                if let Some(s) = self.levels[k].first_occupied_from(from) {
                    debug_assert!(s > from, "cursor's own higher-level slot must be empty");
                    let mut bucket = std::mem::take(&mut self.levels[k].buckets[s]);
                    self.levels[k].mark_empty(s);
                    // Jump to the window start: digits above level k keep
                    // the cursor's value, level k takes the slot digit,
                    // everything below is zeroed.
                    let upper_shift = shift + self.slot_bits;
                    let upper = if upper_shift >= 64 {
                        0
                    } else {
                        (self.cursor >> upper_shift) << upper_shift
                    };
                    self.cursor = upper | ((s as u64) << shift);
                    for entry in bucket.drain(..) {
                        self.ops.cascades += 1;
                        self.insert_entry(entry);
                    }
                    self.levels[k].buckets[s] = bucket;
                    advanced = true;
                    break;
                }
            }
            assert!(
                advanced,
                "timing wheel invariant broken: {} pending events but no occupied slot",
                self.len
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order_across_levels() {
        let mut w = TimingWheel::new(2); // tiny slots force multi-level filing
        w.schedule(SimTime::from_micros(1_000_000), "far");
        w.schedule(SimTime::from_micros(3), "near");
        w.schedule(SimTime::from_micros(700), "mid");
        assert_eq!(w.pop().unwrap().1, "near");
        assert_eq!(w.pop().unwrap().1, "mid");
        assert_eq!(w.pop().unwrap().1, "far");
        assert!(w.pop().is_none());
        assert!(w.op_counts().cascades > 0, "multi-level pops must cascade");
    }

    #[test]
    fn same_tick_pops_fifo_even_when_scheduled_mid_drain() {
        let mut w = TimingWheel::new(8);
        let t = SimTime::from_millis(5);
        w.schedule(t, 0u32);
        w.schedule(t, 1);
        assert_eq!(w.pop().unwrap().1, 0);
        // Same-instant schedule while the due list is mid-drain: must
        // land after the already-queued seq 1.
        w.schedule(t, 2);
        assert_eq!(w.pop().unwrap().1, 1);
        assert_eq!(w.pop().unwrap().1, 2);
        assert!(w.pop().is_none());
    }

    #[test]
    fn peek_matches_pop_at_every_step() {
        use crate::rng::{Rng, Xoshiro256StarStar};
        let mut g = Xoshiro256StarStar::new(7);
        let mut w = TimingWheel::new(4);
        for i in 0..500u64 {
            w.schedule(SimTime::from_micros(g.next_below(100_000)), i);
        }
        while let Some(peeked) = w.peek_time() {
            let (t, _) = w.pop().expect("peek promised an event");
            assert_eq!(t, peeked);
        }
        assert_eq!(w.popped(), 500);
    }

    #[test]
    fn full_tick_range_is_representable() {
        let mut w = TimingWheel::new(8);
        w.schedule(SimTime::from_micros(u64::MAX), "heat death");
        w.schedule(SimTime::from_micros(0), "big bang");
        assert_eq!(w.pop().unwrap().1, "big bang");
        let (t, e) = w.pop().unwrap();
        assert_eq!(e, "heat death");
        assert_eq!(t.as_micros(), u64::MAX);
    }

    #[test]
    fn cascades_are_counted_and_conserved() {
        let mut w = TimingWheel::new(1); // 64 levels: maximum cascading
        for i in 0..64u64 {
            w.schedule(SimTime::from_micros(1 << i), i);
        }
        while w.pop().is_some() {}
        let ops = w.op_counts();
        assert_eq!(ops.pushes, 64);
        assert_eq!(ops.pops, 64);
        assert!(ops.cascades > 0);
        assert!(ops.decreases <= ops.comparisons, "sort work bound");
    }

    #[test]
    fn reset_keeps_tallies_and_seq_monotone() {
        let mut w = TimingWheel::new(8);
        w.schedule(SimTime::from_secs(1), ());
        w.pop();
        let before = w.op_counts();
        w.reset();
        assert!(w.is_empty());
        assert_eq!(w.now(), SimTime::ZERO);
        assert_eq!(w.popped(), 0);
        assert_eq!(w.op_counts(), before, "op tallies are monotone");
        w.schedule(SimTime::from_micros(1), ());
        assert_eq!(w.pop().unwrap().0, SimTime::from_micros(1));
    }

    #[test]
    fn interleaved_chain_advances_cleanly() {
        let mut w = TimingWheel::new(3);
        w.schedule(SimTime::ZERO, 0u32);
        let mut seen = Vec::new();
        while let Some((t, hop)) = w.pop() {
            seen.push(hop);
            if hop < 5 {
                w.schedule(t + SimDuration::from_millis(10), hop + 1);
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(w.now(), SimTime::from_millis(50));
    }

    #[test]
    #[should_panic(expected = "slot_bits must be in 1..=16")]
    fn zero_slot_bits_is_rejected() {
        let _ = TimingWheel::<()>::new(0);
    }
}
