//! Peak resident-set-size sampling (wall-side telemetry only).
//!
//! Reads the process high-water RSS mark (`VmHWM`) from
//! `/proc/self/status`. Like the wall-clock [`crate::Stopwatch`] and the
//! optional allocation counters, peak RSS is **never** allowed into a
//! deterministic artifact: it depends on the machine, the allocator and
//! the worker count, so it is reported only in `BENCH_harness.json` and
//! perf-baseline wall-side fields (which carry a tolerance band, not an
//! equality gate).

/// The process's peak resident set size in bytes, or `None` when the
/// platform does not expose it (non-Linux, or an unparsable
/// `/proc/self/status`).
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Extracts `VmHWM` (reported by the kernel in kibibytes) as bytes.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_typical_status_line() {
        let status = "Name:\trepro\nVmPeak:\t  123456 kB\nVmHWM:\t   20480 kB\nThreads:\t8\n";
        assert_eq!(parse_vm_hwm(status), Some(20480 * 1024));
    }

    #[test]
    fn missing_field_yields_none() {
        assert_eq!(parse_vm_hwm("Name:\trepro\nThreads:\t8\n"), None);
    }

    #[test]
    fn malformed_value_yields_none() {
        assert_eq!(parse_vm_hwm("VmHWM:\tnot-a-number kB\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_reading_is_positive_on_linux() {
        let rss = peak_rss_bytes().expect("linux exposes VmHWM");
        assert!(rss > 0);
    }
}
