//! Integration tests for simulator features beyond the basic C-event:
//! timelines, timed execution (`run_until`), MRAI scopes, and the
//! interaction of link events with WRATE and RFD.

use bgpscale_bgp::rfd::RfdConfig;
use bgpscale_bgp::{BgpConfig, MraiMode, MraiScope, Prefix};
use bgpscale_core::cevent::run_c_event;
use bgpscale_core::levent::run_l_event;
use bgpscale_core::Simulator;
use bgpscale_simkernel::{SimDuration, SimTime};
use bgpscale_topology::{generate, GrowthScenario, NodeType};

fn baseline_sim(n: usize, seed: u64, cfg: BgpConfig) -> (Simulator, bgpscale_topology::AsId) {
    let g = generate(GrowthScenario::Baseline, n, seed);
    let origin = g
        .node_ids()
        .find(|&id| g.node_type(id) == NodeType::C)
        .unwrap();
    (Simulator::new(g, cfg, seed ^ 0xFEED), origin)
}

#[test]
fn timeline_records_cevent_arrivals() {
    let (mut sim, origin) = baseline_sim(200, 1, BgpConfig::default());
    sim.originate(origin, Prefix(0));
    sim.run_to_quiescence().unwrap();
    let start = sim.now();
    sim.churn_mut().start_timeline(start, SimDuration::from_secs(1));
    let outcome = run_c_event(&mut sim, origin, Prefix(1)).unwrap();
    let tl = sim.churn_mut().take_timeline().unwrap();
    let binned: u64 = tl.counts().iter().map(|&c| c as u64).sum();
    assert_eq!(
        binned, outcome.total_updates,
        "every counted update must land in exactly one bin"
    );
    assert!(tl.peak() > 0);
    assert!(tl.peak_to_mean() >= 1.0);
}

#[test]
fn run_until_stops_at_the_deadline() {
    let (mut sim, origin) = baseline_sim(200, 2, BgpConfig::default());
    sim.originate(origin, Prefix(0));
    // Process only the first 50 ms of the announcement wave.
    sim.run_until(SimTime::from_millis(50)).unwrap();
    assert!(sim.now() <= SimTime::from_millis(50));
    let partial = sim.events_processed();
    assert!(partial > 0, "some events fit in the window");
    // The rest still runs to quiescence afterwards.
    sim.run_to_quiescence().unwrap();
    assert!(sim.events_processed() > partial);
    let unreachable = sim
        .graph()
        .node_ids()
        .filter(|&id| sim.node(id).best_route(Prefix(0)).is_none())
        .count();
    assert_eq!(unreachable, 0);
}

#[test]
fn run_until_is_idempotent_at_quiescence() {
    let (mut sim, origin) = baseline_sim(150, 3, BgpConfig::default());
    sim.originate(origin, Prefix(0));
    sim.run_to_quiescence().unwrap();
    let events = sim.events_processed();
    sim.run_until(sim.now() + SimDuration::from_secs(3600)).unwrap();
    assert_eq!(sim.events_processed(), events, "nothing left to do");
}

#[test]
fn per_prefix_scope_converges_and_counts_consistently() {
    let cfg = BgpConfig {
        mrai_scope: MraiScope::PerPrefix,
        ..BgpConfig::default()
    };
    let (mut sim, origin) = baseline_sim(250, 4, cfg);
    let outcome = run_c_event(&mut sim, origin, Prefix(0)).unwrap();
    assert!(outcome.total_updates > 0);
    for id in sim.graph().node_ids() {
        assert!(sim.node(id).best_route(Prefix(0)).is_some(), "{id}");
    }
}

#[test]
fn link_failure_under_wrate_still_converges() {
    let cfg = BgpConfig {
        mrai_mode: MraiMode::Wrate,
        ..BgpConfig::default()
    };
    let (mut sim, origin) = baseline_sim(200, 5, cfg);
    sim.originate(origin, Prefix(0));
    sim.run_to_quiescence().unwrap();
    let provider = sim.graph().providers(origin).next().unwrap();
    let outcome = run_l_event(&mut sim, origin, provider, Prefix(0)).unwrap();
    assert!(outcome.fail_updates > 0);
    let unreachable = sim
        .graph()
        .node_ids()
        .filter(|&id| sim.node(id).best_route(Prefix(0)).is_none())
        .count();
    assert_eq!(unreachable, 0, "recovery must restore universal reachability");
}

#[test]
fn link_failure_with_rfd_does_not_wedge_routing() {
    // A session reset clears damping state for that session; the network
    // must converge normally afterwards.
    let cfg = BgpConfig {
        rfd: Some(RfdConfig::default()),
        ..BgpConfig::default()
    };
    let (mut sim, origin) = baseline_sim(200, 6, cfg);
    sim.originate(origin, Prefix(0));
    sim.run_to_quiescence().unwrap();
    let provider = sim.graph().providers(origin).next().unwrap();
    // Two consecutive L-events would look like flapping to damping if the
    // session reset did not clear the per-session figures of merit.
    for _ in 0..2 {
        run_l_event(&mut sim, origin, provider, Prefix(0)).unwrap();
    }
    let unreachable = sim
        .graph()
        .node_ids()
        .filter(|&id| sim.node(id).best_route(Prefix(0)).is_none())
        .count();
    assert_eq!(unreachable, 0);
}

#[test]
fn per_prefix_and_per_interface_agree_on_fixpoint_with_many_prefixes() {
    // Even with concurrent multi-prefix events (where churn differs), the
    // final routing state must be identical: MRAI affects timing, never
    // the fixpoint.
    let g = generate(GrowthScenario::Baseline, 200, 7);
    let origins: Vec<_> = g
        .node_ids()
        .filter(|&id| g.node_type(id) == NodeType::C)
        .take(5)
        .collect();
    let mut fixpoints = Vec::new();
    for scope in [MraiScope::PerInterface, MraiScope::PerPrefix] {
        let cfg = BgpConfig {
            mrai_scope: scope,
            ..BgpConfig::default()
        };
        let mut sim = Simulator::new(g.clone(), cfg, 7);
        for (i, &o) in origins.iter().enumerate() {
            sim.originate(o, Prefix(i as u32));
        }
        sim.run_to_quiescence().unwrap();
        // Simultaneous withdraw + re-announce of everything.
        for (i, &o) in origins.iter().enumerate() {
            sim.withdraw(o, Prefix(i as u32));
        }
        sim.run_to_quiescence().unwrap();
        for (i, &o) in origins.iter().enumerate() {
            sim.originate(o, Prefix(i as u32));
        }
        sim.run_to_quiescence().unwrap();
        let state: Vec<_> = sim
            .graph()
            .node_ids()
            .flat_map(|id| {
                (0..origins.len() as u32).map(move |p| (id, Prefix(p)))
            })
            .map(|(id, p)| sim.node(id).best_route(p).map(|(nh, path)| (nh, path.clone())))
            .collect();
        fixpoints.push(state);
    }
    assert_eq!(fixpoints[0], fixpoints[1]);
}

#[test]
fn messages_dropped_only_with_link_failures() {
    let (mut sim, origin) = baseline_sim(150, 8, BgpConfig::default());
    run_c_event(&mut sim, origin, Prefix(0)).unwrap();
    assert_eq!(sim.messages_dropped(), 0);
}
