//! Property-based tests for the network simulator: safety and convergence
//! properties that must hold on *any* generated topology.

use bgpscale_bgp::{BgpConfig, MraiMode, MraiScope, Prefix};
use bgpscale_core::cevent::run_c_event;
use bgpscale_core::Simulator;
use bgpscale_topology::{generate, GrowthScenario, NodeType, Relationship};
use proptest::prelude::*;

fn any_mode() -> impl Strategy<Value = MraiMode> {
    prop::sample::select(vec![MraiMode::NoWrate, MraiMode::Wrate])
}

fn config(mode: MraiMode) -> BgpConfig {
    BgpConfig {
        mrai_mode: mode,
        ..BgpConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Safety: after convergence, every installed path is valley-free and
    /// ends at the origin, under either MRAI mode.
    #[test]
    fn converged_paths_are_valley_free(
        n in 60usize..180,
        seed in any::<u64>(),
        mode in any_mode(),
    ) {
        let g = generate(GrowthScenario::Baseline, n, seed);
        let origin = g.node_ids().find(|&id| g.node_type(id) == NodeType::C).unwrap();
        let mut sim = Simulator::new(g, config(mode), seed ^ 1);
        sim.originate(origin, Prefix(0));
        sim.run_to_quiescence().unwrap();
        let g = sim.graph();
        for id in g.node_ids() {
            let Some((_, path)) = sim.node(id).best_route(Prefix(0)) else {
                prop_assert!(false, "{} has no route after convergence", id);
                unreachable!();
            };
            prop_assert_eq!(*path.last().unwrap_or(&id), origin, "path does not end at origin");
            // Valley-free walk: up* (peer)? down*.
            let mut full = vec![id];
            full.extend_from_slice(path);
            let mut state = 0u8;
            for w in full.windows(2) {
                let rel = g.relationship(w[0], w[1]).expect("path uses real links");
                state = match (state, rel) {
                    (0, Relationship::Provider) => 0,
                    (0, Relationship::Peer) => 1,
                    (0..=2, Relationship::Customer) => 2,
                    (s, r) => {
                        prop_assert!(false, "valley in {:?}: state {s}, hop {:?}", full, r);
                        unreachable!();
                    }
                };
            }
            // No AS appears twice (loop freedom).
            let mut sorted = full.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), full.len(), "loop in {:?}", full);
        }
    }

    /// Liveness + self-stabilization: a full C-event returns the network
    /// to a fixpoint in which everyone routes the prefix again, and the
    /// fixpoint is independent of timing (service times and jitter draw
    /// from a different stream when the sim seed changes, yet routes
    /// agree).
    #[test]
    fn c_event_fixpoint_is_timing_independent(
        n in 60usize..150,
        topo_seed in any::<u64>(),
        sim_seed_a in any::<u64>(),
        sim_seed_b in any::<u64>(),
        mode in any_mode(),
    ) {
        let g = generate(GrowthScenario::Baseline, n, topo_seed);
        let origin = g.node_ids().find(|&id| g.node_type(id) == NodeType::C).unwrap();
        let mut routes = Vec::new();
        for sim_seed in [sim_seed_a, sim_seed_b] {
            let mut sim = Simulator::new(g.clone(), config(mode), sim_seed);
            run_c_event(&mut sim, origin, Prefix(0)).unwrap();
            routes.push(
                sim.graph()
                    .node_ids()
                    .map(|id| sim.node(id).best_route(Prefix(0)).map(|(nh, p)| (nh, p.clone())))
                    .collect::<Vec<_>>(),
            );
        }
        prop_assert_eq!(&routes[0], &routes[1], "fixpoint depends on message timing");
    }

    /// Churn accounting: Eq. 1 reconstructs every node's update total
    /// exactly, for any topology and mode.
    #[test]
    fn eq1_exact_per_node(
        n in 60usize..150,
        seed in any::<u64>(),
        mode in any_mode(),
    ) {
        let g = generate(GrowthScenario::Baseline, n, seed);
        let origin = g.node_ids().find(|&id| g.node_type(id) == NodeType::C).unwrap();
        let mut sim = Simulator::new(g, config(mode), seed ^ 2);
        run_c_event(&mut sim, origin, Prefix(0)).unwrap();
        let ids: Vec<_> = sim.graph().node_ids().collect();
        for id in ids {
            let f = bgpscale_core::factors::node_factors(&sim, id);
            prop_assert!(f.eq1_holds(), "Eq. 1 fails at {}: {:?}", id, f);
            prop_assert_eq!(f.total_updates(), sim.churn().node_total(id));
        }
    }

    /// For single-prefix workloads, per-prefix and per-interface MRAI
    /// scopes are *bit-identical*: there is only one prefix per session,
    /// so the timers coincide. (They separate only under concurrent
    /// multi-prefix events — extension E5.)
    #[test]
    fn mrai_scopes_identical_for_single_prefix(
        n in 60usize..140,
        seed in any::<u64>(),
        mode in any_mode(),
    ) {
        let g = generate(GrowthScenario::Baseline, n, seed);
        let origin = g.node_ids().find(|&id| g.node_type(id) == NodeType::C).unwrap();
        let mut totals = Vec::new();
        let mut times = Vec::new();
        for scope in [MraiScope::PerInterface, MraiScope::PerPrefix] {
            let cfg = BgpConfig {
                mrai_scope: scope,
                ..config(mode)
            };
            let mut sim = Simulator::new(g.clone(), cfg, seed ^ 5);
            let outcome = run_c_event(&mut sim, origin, Prefix(0)).unwrap();
            totals.push(outcome.total_updates);
            times.push((outcome.down_convergence, outcome.up_convergence));
        }
        prop_assert_eq!(totals[0], totals[1], "scopes must coincide for one prefix");
        prop_assert_eq!(times[0], times[1]);
    }

    /// WRATE does not reduce churn in aggregate. (Per-event strict
    /// dominance does NOT hold: a queued withdrawal can be absorbed by a
    /// later announcement and never transmitted, occasionally making a
    /// single WRATE event cheaper — so we compare sums over several
    /// originators with a safety margin. The systematic *increase* is
    /// what Fig. 12 shows at scale.)
    #[test]
    fn wrate_does_not_reduce_churn_in_aggregate(n in 80usize..140, seed in any::<u64>()) {
        let g = generate(GrowthScenario::Baseline, n, seed);
        let origins: Vec<_> = g
            .node_ids()
            .filter(|&id| g.node_type(id) == NodeType::C)
            .take(4)
            .collect();
        let mut totals = [0u64; 2];
        for (k, mode) in [MraiMode::NoWrate, MraiMode::Wrate].into_iter().enumerate() {
            let mut sim = Simulator::new(g.clone(), config(mode), seed ^ 3);
            for (i, &origin) in origins.iter().enumerate() {
                let outcome = run_c_event(&mut sim, origin, Prefix(i as u32)).unwrap();
                totals[k] += outcome.total_updates;
                sim.reset_routing();
                sim.churn_mut().reset();
            }
        }
        prop_assert!(
            totals[1] as f64 >= 0.8 * totals[0] as f64,
            "WRATE {} ≪ NO-WRATE {}",
            totals[1],
            totals[0]
        );
    }
}
