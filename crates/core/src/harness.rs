//! The experiment harness: many C-events, averaged.
//!
//! The paper's procedure (§4): *"The experiment is repeated for 100
//! different C nodes …, and the number of received updates is measured at
//! every node in the network. We then average over all nodes of a given
//! type, and report this average."*
//!
//! [`run_experiment`] generates the topology, runs `events` C-events from
//! distinct C-type originators, folds each event's churn counters into the
//! m/q/e factor accumulator, and reports per-type means plus the raw
//! per-event series needed for confidence intervals.
//!
//! ## Determinism under parallelism
//!
//! Events are **independent by construction**: the topology is generated
//! once and shared read-only (`Arc<AsGraph>` inside a [`SimTemplate`]),
//! and event `k` runs on a fresh simulator seeded with
//! `hash64_pair(sim_seed, k)` — no RNG stream, RIB state, or clock is
//! carried from one event to the next. [`run_experiment_jobs`] therefore
//! fans events out across a worker pool and folds the per-event
//! measurements back **in event-index order**, so the report is
//! bit-for-bit identical for any job count (f64 accumulation order never
//! changes). `jobs = 1` takes a plain sequential loop over the identical
//! per-event code.

use std::sync::Arc;

use bgpscale_bgp::{BgpConfig, Prefix};
use bgpscale_obs::costmodel::{CostModel, PhaseCosts};
use bgpscale_obs::{
    MetricsRegistry, Recorder, RecorderOptions, SimObserver, TimeSeries, TimeSeriesSpec,
    TraceRecord,
};
use bgpscale_simkernel::pool::run_indexed;
use bgpscale_simkernel::rng::{hash64_pair, Rng, Xoshiro256StarStar};
use bgpscale_topology::{generate, AsId, GrowthScenario, NodeType, Relationship};

use crate::cevent::run_c_event;
use crate::factors::{node_factors, type_index, FactorAccumulator, FactorMeans};
use crate::sim::SimTemplate;

/// Everything needed to reproduce one experiment cell.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// The topology growth model.
    pub scenario: GrowthScenario,
    /// Network size.
    pub n: usize,
    /// Number of C-event originators (the paper uses 100).
    pub events: usize,
    /// Master seed; fans out into topology / simulation / sampling
    /// streams.
    pub seed: u64,
    /// Protocol configuration (MRAI mode etc.).
    pub bgp: BgpConfig,
    /// Per-phase simulator event budget override; `None` keeps the
    /// simulator's (huge) default. Small budgets exercise the structured
    /// failure path: the harness panics with the budget snapshot, which
    /// `repro profile` catches and renders.
    pub event_limit: Option<u64>,
    /// Timing-wheel slot-granularity override (bits per wheel level);
    /// `None` keeps the simkernel default. Results are backend-invariant,
    /// so this only moves the op-count mix — which is exactly what the
    /// perf mutation gate (`repro perf --wheel-bits`) perturbs to prove
    /// the gate bites.
    pub wheel_slot_bits: Option<u32>,
}

/// Churn summary for one node type.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TypeChurn {
    /// Number of nodes of this type in the topology.
    pub node_count: usize,
    /// Mean updates received per node per C-event — the paper's `U(X)`.
    pub u_total: f64,
    /// Factor means per relationship class (customer, peer, provider).
    pub factors: [FactorMeans; 3],
    /// Per-event means of `U(X)` (length = number of events), for
    /// variance and confidence intervals.
    pub per_event_u: Vec<f64>,
}

/// The result of [`run_experiment`].
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnReport {
    /// The configuration that produced this report.
    pub scenario: GrowthScenario,
    /// Network size.
    pub n: usize,
    /// Events actually run (may be fewer than requested if the topology
    /// has fewer C nodes).
    pub events: usize,
    /// Per-type summaries indexed by [`type_index`].
    pub types: [TypeChurn; 4],
    /// Mean network-wide updates per C-event.
    pub mean_total_updates: f64,
    /// Mean simulated DOWN-phase convergence time (seconds).
    pub mean_down_convergence_s: f64,
    /// Mean simulated UP-phase convergence time (seconds).
    pub mean_up_convergence_s: f64,
}

impl ChurnReport {
    /// The summary for one node type.
    pub fn by_type(&self, ty: NodeType) -> &TypeChurn {
        &self.types[type_index(ty)]
    }

    /// Convenience: `U_y(X)` — mean updates a node of type `ty` receives
    /// from neighbors of class `rel` per C-event (e.g. `Uc(T)`).
    pub fn u(&self, ty: NodeType, rel: Relationship) -> f64 {
        self.by_type(ty).factors[crate::factors::rel_index(rel)].u
    }

    /// Convenience: the factor means for `(type, relationship)`.
    pub fn factor(&self, ty: NodeType, rel: Relationship) -> FactorMeans {
        self.by_type(ty).factors[crate::factors::rel_index(rel)]
    }
}

/// Everything one C-event contributes to the report: a partial factor
/// accumulator plus the event-level scalars. Computed independently per
/// event (possibly on a worker thread), folded in event-index order.
struct EventMeasurement {
    acc: FactorAccumulator,
    /// Per-type mean `U(X)` for this event, `None` when the topology has
    /// no observing node of the type.
    event_u: [Option<f64>; 4],
    total_updates: f64,
    down_s: f64,
    up_s: f64,
    /// Exact per-phase op counts of this event — integer-only, merged
    /// into the [`CostModel`] in event-index order.
    phase_costs: PhaseCosts,
}

/// Runs C-event `k` from `origin` on a fresh simulator stamped from the
/// shared template, and measures it. Pure function of its arguments —
/// the property the parallel fan-out relies on.
fn measure_event(
    cfg: &ExperimentConfig,
    template: &SimTemplate,
    node_types: &[NodeType],
    origin: AsId,
    k: usize,
    sim_seed: u64,
) -> EventMeasurement {
    measure_event_observed(
        cfg,
        template,
        node_types,
        origin,
        k,
        sim_seed,
        bgpscale_obs::NoopObserver,
    )
    .0
}

/// [`measure_event`] with an attached observer, returned alongside the
/// measurement so the caller can fold telemetry in event-index order.
#[allow(clippy::too_many_arguments)]
fn measure_event_observed<O: SimObserver>(
    cfg: &ExperimentConfig,
    template: &SimTemplate,
    node_types: &[NodeType],
    origin: AsId,
    k: usize,
    sim_seed: u64,
    obs: O,
) -> (EventMeasurement, O) {
    let mut sim = template.instantiate_observed(hash64_pair(sim_seed, k as u64), obs);
    if let Some(limit) = cfg.event_limit {
        sim.set_event_limit(limit);
    }
    let outcome = run_c_event(&mut sim, origin, Prefix(k as u32))
        .unwrap_or_else(|e| panic!("{} n={} event {k}: {e}", cfg.scenario, cfg.n));

    let mut acc = FactorAccumulator::new();
    let mut event_u_sum = [0.0f64; 4];
    let mut event_u_cnt = [0u64; 4];
    for (id, &ty) in node_types.iter().enumerate() {
        let node = AsId(id as u32);
        if node == origin {
            continue; // the originator causes the event, it does not observe it
        }
        let f = node_factors(&sim, node);
        let t = type_index(ty);
        acc.add(ty, &f);
        event_u_sum[t] += f.total_updates() as f64;
        event_u_cnt[t] += 1;
    }
    let mut event_u = [None; 4];
    for t in 0..4 {
        if event_u_cnt[t] > 0 {
            event_u[t] = Some(event_u_sum[t] / event_u_cnt[t] as f64);
        }
    }
    let m = EventMeasurement {
        acc,
        event_u,
        total_updates: outcome.total_updates as f64,
        down_s: outcome.down_convergence.as_secs_f64(),
        up_s: outcome.up_convergence.as_secs_f64(),
        phase_costs: outcome.phase_costs,
    };
    (m, sim.into_observer())
}

/// Runs the full averaged C-event experiment for one configuration.
///
/// Deterministic: equal configs produce equal reports. Equivalent to
/// [`run_experiment_jobs`] with `jobs = 1`.
///
/// # Panics
/// Panics if the topology contains no C nodes (every paper scenario has
/// them) or if a phase exceeds the simulator's event budget.
pub fn run_experiment(cfg: &ExperimentConfig) -> ChurnReport {
    run_experiment_jobs(cfg, 1)
}

/// Runs the experiment with up to `jobs` C-events in flight at once.
///
/// The report is **bit-for-bit identical for every `jobs` value**
/// (including 1): the topology is generated once, event `k` always runs
/// on a fresh simulator seeded `hash64_pair(sim_seed, k)`, and per-event
/// measurements are folded in event-index order regardless of which
/// worker finishes first. `jobs = 1` executes a plain sequential loop —
/// no threads are spawned.
///
/// # Panics
/// As [`run_experiment`].
pub fn run_experiment_jobs(cfg: &ExperimentConfig, jobs: usize) -> ChurnReport {
    let setup = ExperimentSetup::build(cfg);
    let measurements: Vec<EventMeasurement> = {
        let _span = bgpscale_obs::span!("run_events");
        run_indexed(jobs, setup.c_nodes.len(), |k| {
            measure_event(
                cfg,
                &setup.template,
                &setup.node_types,
                setup.c_nodes[k],
                k,
                setup.sim_seed,
            )
        })
    };
    fold_measurements(cfg, &setup, &measurements)
}

/// [`run_experiment_jobs`] plus the per-event [`CostModel`]: exact
/// operation counts attributed to each C-event's warm-up/DOWN/UP phases.
///
/// The counts are integer-only and computed per event on a fresh
/// simulator, then pushed into the model **in event-index order**, so
/// `CostModel::to_json()` is byte-identical for every `jobs` value —
/// the same contract the churn report and the telemetry artifacts obey.
///
/// # Panics
/// As [`run_experiment`].
pub fn run_experiment_with_cost(cfg: &ExperimentConfig, jobs: usize) -> (ChurnReport, CostModel) {
    let setup = ExperimentSetup::build(cfg);
    let measurements: Vec<EventMeasurement> = {
        let _span = bgpscale_obs::span!("run_events");
        run_indexed(jobs, setup.c_nodes.len(), |k| {
            measure_event(
                cfg,
                &setup.template,
                &setup.node_types,
                setup.c_nodes[k],
                k,
                setup.sim_seed,
            )
        })
    };
    let mut cost = CostModel::new();
    for m in &measurements {
        cost.push_event(m.phase_costs);
    }
    (fold_measurements(cfg, &setup, &measurements), cost)
}

/// What telemetry [`run_experiment_observed_with`] should collect beyond
/// the always-on metric counters.
#[derive(Clone, Debug, Default)]
pub struct ObserveOptions {
    /// Keep 1-in-`n` trace records when `Some(n)` (`Some(1)` keeps all).
    pub trace_sample: Option<u64>,
    /// Record a simulated-time series with the given bin width
    /// (microseconds of simulated time) when `Some`.
    pub timeseries_bin_us: Option<u64>,
}

/// The churn report plus the deterministic telemetry of the run.
#[derive(Clone, Debug)]
pub struct ObservedReport {
    /// The usual churn report (bit-identical to the unobserved run).
    pub report: ChurnReport,
    /// Merged metrics of all C-events, folded in event-index order.
    pub metrics: MetricsRegistry,
    /// Trace records of all C-events, concatenated in event-index order
    /// (empty unless a trace sample rate was requested).
    pub trace: Vec<TraceRecord>,
    /// Per-event time series merged in event-index order (`None` unless
    /// [`ObserveOptions::timeseries_bin_us`] was set). Bins overlay across
    /// events — every event's clock starts at zero, so bin `i` aggregates
    /// the interval `[i·bin_us, (i+1)·bin_us)` of *every* C-event: counts
    /// add, peaks take the max.
    pub timeseries: Option<TimeSeries>,
    /// Per-event, per-phase exact operation counts, pushed in event-index
    /// order (always collected — the counters are free-running integers).
    pub cost: CostModel,
}

/// Runs the experiment with a [`Recorder`] attached to every C-event's
/// simulator, merging per-event metrics (and, when `trace_sample` is
/// `Some(n)`, 1-in-`n` sampled trace records) in event-index order.
///
/// All collected telemetry is a pure function of the simulated
/// trajectories, so — like the report itself — `metrics.to_json()` and the
/// trace stream are **byte-identical for every `jobs` value**.
///
/// # Panics
/// As [`run_experiment`].
pub fn run_experiment_observed(
    cfg: &ExperimentConfig,
    jobs: usize,
    trace_sample: Option<u64>,
) -> ObservedReport {
    run_experiment_observed_with(
        cfg,
        jobs,
        &ObserveOptions {
            trace_sample,
            timeseries_bin_us: None,
        },
    )
}

/// [`run_experiment_observed`] with the full option set: optional trace
/// sampling plus the simulated-time series recorder. The time series is
/// integer-only and merged in event-index order, so its JSON rendering is
/// byte-identical for every `jobs` value, exactly like the metrics.
///
/// # Panics
/// As [`run_experiment`].
pub fn run_experiment_observed_with(
    cfg: &ExperimentConfig,
    jobs: usize,
    opts: &ObserveOptions,
) -> ObservedReport {
    let setup = ExperimentSetup::build(cfg);
    // One shared spec: every event's recorder bins against the same node
    //-type table (Arc-shared, never copied per event).
    let spec = opts.timeseries_bin_us.map(|bin_us| TimeSeriesSpec {
        bin_us,
        node_types: Arc::from(setup.node_types.as_slice()),
    });
    let observed: Vec<(EventMeasurement, Recorder)> = {
        let _span = bgpscale_obs::span!("run_events");
        run_indexed(jobs, setup.c_nodes.len(), |k| {
            measure_event_observed(
                cfg,
                &setup.template,
                &setup.node_types,
                setup.c_nodes[k],
                k,
                setup.sim_seed,
                Recorder::with_options(
                    k as u32,
                    RecorderOptions {
                        trace_sample: opts.trace_sample,
                        timeseries: spec.clone(),
                    },
                ),
            )
        })
    };

    let _span = bgpscale_obs::span!("fold_telemetry");
    let mut metrics = MetricsRegistry::new();
    let mut trace = Vec::new();
    let mut timeseries: Option<TimeSeries> = None;
    let mut cost = CostModel::new();
    let mut measurements = Vec::with_capacity(observed.len());
    for (m, recorder) in observed {
        metrics.merge(&recorder.registry());
        let (records, ts) = recorder.into_parts();
        trace.extend(records);
        if let Some(ts) = ts {
            match timeseries.as_mut() {
                None => timeseries = Some(ts),
                Some(total) => total.merge(&ts),
            }
        }
        cost.push_event(m.phase_costs);
        measurements.push(m);
    }
    metrics.inc("experiment.events", measurements.len() as u64);
    let report = fold_measurements(cfg, &setup, &measurements);
    ObservedReport {
        report,
        metrics,
        trace,
        timeseries,
        cost,
    }
}

/// The per-cell state both experiment flavors share: generated topology,
/// chosen originators, and the pristine simulator template.
struct ExperimentSetup {
    node_counts: [usize; 4],
    node_types: Vec<NodeType>,
    c_nodes: Vec<AsId>,
    template: SimTemplate,
    sim_seed: u64,
}

impl ExperimentSetup {
    fn build(cfg: &ExperimentConfig) -> ExperimentSetup {
        let topo_seed = hash64_pair(cfg.seed, 0x7090);
        let sim_seed = hash64_pair(cfg.seed, 0x51B);
        let pick_seed = hash64_pair(cfg.seed, 0x0121);

        let graph = {
            let _span = bgpscale_obs::span!("generate_topology");
            Arc::new(generate(cfg.scenario, cfg.n, topo_seed))
        };
        let node_counts: [usize; 4] = [
            graph.count_of_type(NodeType::T),
            graph.count_of_type(NodeType::M),
            graph.count_of_type(NodeType::Cp),
            graph.count_of_type(NodeType::C),
        ];
        let node_types: Vec<NodeType> = graph.node_ids().map(|id| graph.node_type(id)).collect();

        // Choose distinct C-type originators.
        let mut c_nodes = graph.nodes_of_type(NodeType::C);
        assert!(!c_nodes.is_empty(), "{} at n={} has no C nodes", cfg.scenario, cfg.n);
        let mut pick_rng = Xoshiro256StarStar::new(pick_seed);
        pick_rng.shuffle(&mut c_nodes);
        c_nodes.truncate(cfg.events.max(1));

        // Build the clean simulator blueprint once; every event (on any
        // worker) stamps its own instance from it.
        let template = {
            let _span = bgpscale_obs::span!("build_template");
            let mut t = SimTemplate::new(Arc::clone(&graph), cfg.bgp.clone());
            t.set_wheel_slot_bits(cfg.wheel_slot_bits);
            t
        };

        ExperimentSetup {
            node_counts,
            node_types,
            c_nodes,
            template,
            sim_seed,
        }
    }
}

/// Folds per-event measurements into the report. Event-index order fixes
/// the f64 accumulation order, which is what makes the report bit-stable
/// across job counts.
fn fold_measurements(
    cfg: &ExperimentConfig,
    setup: &ExperimentSetup,
    measurements: &[EventMeasurement],
) -> ChurnReport {
    let _span = bgpscale_obs::span!("fold_measurements");
    let node_counts = setup.node_counts;
    let c_nodes = &setup.c_nodes;
    let mut acc = FactorAccumulator::new();
    let mut per_event_u: [Vec<f64>; 4] = Default::default();
    let mut total_updates_sum = 0.0;
    let mut down_sum = 0.0;
    let mut up_sum = 0.0;
    for m in measurements {
        acc.merge(&m.acc);
        for (series, u) in per_event_u.iter_mut().zip(&m.event_u) {
            if let Some(u) = u {
                series.push(*u);
            }
        }
        total_updates_sum += m.total_updates;
        down_sum += m.down_s;
        up_sum += m.up_s;
    }

    let events = c_nodes.len();
    let mut types: [TypeChurn; 4] = Default::default();
    for (t, ty) in [NodeType::T, NodeType::M, NodeType::Cp, NodeType::C]
        .into_iter()
        .enumerate()
    {
        types[t] = TypeChurn {
            node_count: node_counts[t],
            u_total: acc.mean_total(ty),
            factors: [
                acc.means(ty, Relationship::Customer),
                acc.means(ty, Relationship::Peer),
                acc.means(ty, Relationship::Provider),
            ],
            per_event_u: std::mem::take(&mut per_event_u[t]),
        };
    }

    ChurnReport {
        scenario: cfg.scenario,
        n: cfg.n,
        events,
        types,
        mean_total_updates: total_updates_sum / events as f64,
        mean_down_convergence_s: down_sum / events as f64,
        mean_up_convergence_s: up_sum / events as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(scenario: GrowthScenario, n: usize, events: usize, seed: u64) -> ChurnReport {
        run_experiment(&ExperimentConfig {
            scenario,
            n,
            events,
            seed,
            bgp: BgpConfig::default(),
            event_limit: None,
            wheel_slot_bits: None,
        })
    }

    #[test]
    fn report_is_deterministic() {
        let a = quick(GrowthScenario::Baseline, 200, 3, 11);
        let b = quick(GrowthScenario::Baseline, 200, 3, 11);
        assert_eq!(a.mean_total_updates, b.mean_total_updates);
        assert_eq!(a.by_type(NodeType::T).u_total, b.by_type(NodeType::T).u_total);
    }

    /// The parallel-engine regression test: any job count yields the
    /// bit-identical report, down to the raw per-event series.
    #[test]
    fn parallel_jobs_are_bit_identical_to_sequential() {
        let cfg = ExperimentConfig {
            scenario: GrowthScenario::Baseline,
            n: 200,
            events: 6,
            seed: 0xDE7,
            bgp: BgpConfig::default(),
            event_limit: None,
            wheel_slot_bits: None,
        };
        let sequential = run_experiment_jobs(&cfg, 1);
        for jobs in [4, 8] {
            let parallel = run_experiment_jobs(&cfg, jobs);
            assert_eq!(sequential, parallel, "jobs={jobs} diverged from sequential");
            for t in 0..4 {
                assert_eq!(
                    sequential.types[t].per_event_u, parallel.types[t].per_event_u,
                    "per-event series diverged for type {t} at jobs={jobs}"
                );
            }
        }
    }

    /// The observability determinism regression: the serialized metrics
    /// and the trace stream are byte-identical for jobs = 1, 4, 8.
    #[test]
    fn observed_metrics_and_trace_are_byte_identical_across_jobs() {
        let cfg = ExperimentConfig {
            scenario: GrowthScenario::Baseline,
            n: 200,
            events: 6,
            seed: 0xDE7,
            bgp: BgpConfig::default(),
            event_limit: None,
            wheel_slot_bits: None,
        };
        let base = run_experiment_observed(&cfg, 1, Some(5));
        let base_json = base.metrics.to_json();
        let base_trace: String = base
            .trace
            .iter()
            .map(|r| r.to_json_line() + "\n")
            .collect();
        assert!(base.metrics.counter("events.total") > 0);
        assert!(!base.trace.is_empty(), "sampled trace should have records");
        for jobs in [4, 8] {
            let other = run_experiment_observed(&cfg, jobs, Some(5));
            assert_eq!(
                base_json,
                other.metrics.to_json(),
                "metrics.json diverged at jobs={jobs}"
            );
            let other_trace: String = other
                .trace
                .iter()
                .map(|r| r.to_json_line() + "\n")
                .collect();
            assert_eq!(base_trace, other_trace, "trace diverged at jobs={jobs}");
            assert_eq!(base.report, other.report, "report diverged at jobs={jobs}");
        }
    }

    /// Satellite of the provenance PR: `timeseries.json` and the
    /// provenance counters are byte-identical for jobs = 1, 4, 8.
    #[test]
    fn timeseries_and_provenance_are_byte_identical_across_jobs() {
        let cfg = ExperimentConfig {
            scenario: GrowthScenario::Baseline,
            n: 200,
            events: 6,
            seed: 0xDE7,
            bgp: BgpConfig::default(),
            event_limit: None,
            wheel_slot_bits: None,
        };
        let opts = ObserveOptions {
            trace_sample: None,
            timeseries_bin_us: Some(100_000),
        };
        let base = run_experiment_observed_with(&cfg, 1, &opts);
        let base_ts = base.timeseries.as_ref().expect("time series requested");
        let base_ts_json = base_ts.to_json();
        assert_eq!(base_ts.events, cfg.events as u32);
        assert!(base_ts.total_updates() > 0, "bins must see traffic");
        assert!(base.metrics.counter("provenance.stamped") > 0);
        assert_eq!(
            base.metrics.counter("provenance.unstamped"),
            0,
            "every delivery must carry a root-cause stamp"
        );
        let prov_counters = |r: &ObservedReport| {
            [
                r.metrics.counter("provenance.stamped"),
                r.metrics.counter("provenance.coalesced"),
                r.metrics.counter("provenance.depth_sum"),
                r.metrics.counter("provenance.to_customer"),
                r.metrics.counter("provenance.to_peer"),
                r.metrics.counter("provenance.to_provider"),
                r.metrics.counter("provenance.roots"),
            ]
        };
        for jobs in [4, 8] {
            let other = run_experiment_observed_with(&cfg, jobs, &opts);
            assert_eq!(
                base_ts_json,
                other.timeseries.as_ref().unwrap().to_json(),
                "timeseries.json diverged at jobs={jobs}"
            );
            assert_eq!(
                prov_counters(&base),
                prov_counters(&other),
                "provenance counters diverged at jobs={jobs}"
            );
            assert_eq!(base.report, other.report, "report diverged at jobs={jobs}");
        }
    }

    /// Tentpole of the cost-model PR: `costmodel.json` is byte-identical
    /// for jobs = 1, 4, 8, and the observed and plain flavors agree.
    #[test]
    fn costmodel_is_byte_identical_across_jobs() {
        let cfg = ExperimentConfig {
            scenario: GrowthScenario::Baseline,
            n: 200,
            events: 6,
            seed: 0xDE7,
            bgp: BgpConfig::default(),
            event_limit: None,
            wheel_slot_bits: None,
        };
        let (base_report, base_cost) = run_experiment_with_cost(&cfg, 1);
        let base_json = base_cost.to_json();
        assert_eq!(base_cost.events(), cfg.events);
        assert!(base_cost.total().grand_total() > 0, "counters must see work");
        // Measured phases do real per-class work.
        let totals = base_cost.phase_totals();
        for phase in &totals {
            assert!(phase.deliveries > 0);
            assert!(phase.decision_runs > 0);
            assert!(phase.queue_pushes > 0);
        }
        for jobs in [4, 8] {
            let (report, cost) = run_experiment_with_cost(&cfg, jobs);
            assert_eq!(base_json, cost.to_json(), "costmodel.json diverged at jobs={jobs}");
            assert_eq!(base_report, report, "report diverged at jobs={jobs}");
        }
        // The observed flavor collects the identical model.
        let observed = run_experiment_observed(&cfg, 4, None);
        assert_eq!(base_json, observed.cost.to_json(), "observed cost diverged");
    }

    /// Satellite of the memory-layout PR: a wheel-granularity override
    /// keeps every deterministic artifact byte-identical for
    /// jobs = 1, 4, 8, and the churn report equal to the
    /// default-granularity run — only the queue op-count mix may move.
    #[test]
    fn wheel_backed_run_is_byte_identical_across_jobs() {
        let mut cfg = ExperimentConfig {
            scenario: GrowthScenario::Baseline,
            n: 200,
            events: 6,
            seed: 0xDE7,
            bgp: BgpConfig::default(),
            event_limit: None,
            wheel_slot_bits: Some(6),
        };
        let base = run_experiment_observed(&cfg, 1, Some(5));
        let base_json = base.metrics.to_json();
        let base_cost = base.cost.to_json();
        let base_trace: String = base
            .trace
            .iter()
            .map(|r| r.to_json_line() + "\n")
            .collect();
        assert!(!base.trace.is_empty(), "sampled trace should have records");
        for jobs in [4, 8] {
            let other = run_experiment_observed(&cfg, jobs, Some(5));
            assert_eq!(base_json, other.metrics.to_json(), "metrics diverged at jobs={jobs}");
            assert_eq!(base_cost, other.cost.to_json(), "costmodel diverged at jobs={jobs}");
            let other_trace: String = other
                .trace
                .iter()
                .map(|r| r.to_json_line() + "\n")
                .collect();
            assert_eq!(base_trace, other_trace, "trace diverged at jobs={jobs}");
            assert_eq!(base.report, other.report, "report diverged at jobs={jobs}");
        }
        // Pop order is granularity-invariant: the simulated outcome of
        // the overridden run equals the default-granularity run.
        cfg.wheel_slot_bits = None;
        let default_run = run_experiment_jobs(&cfg, 1);
        assert_eq!(
            base.report, default_run,
            "slot-granularity override changed simulated results"
        );
    }

    /// Provenance-enabled runs leave the churn report unchanged: stamps
    /// are telemetry riding along the messages, never protocol input.
    #[test]
    fn timeseries_recording_leaves_the_report_unchanged() {
        let cfg = ExperimentConfig {
            scenario: GrowthScenario::Baseline,
            n: 200,
            events: 4,
            seed: 21,
            bgp: BgpConfig::default(),
            event_limit: None,
            wheel_slot_bits: None,
        };
        let plain = run_experiment_jobs(&cfg, 1);
        let observed = run_experiment_observed_with(
            &cfg,
            2,
            &ObserveOptions {
                trace_sample: Some(7),
                timeseries_bin_us: Some(50_000),
            },
        );
        assert_eq!(plain, observed.report);
        let ts = observed.timeseries.expect("time series requested");
        // The time series and the churn counters watched the same world:
        // both count exactly the delivered updates of the measured phases
        // plus the (uncounted) warm-up announcements.
        assert_eq!(
            ts.total_updates(),
            observed.metrics.counter("events.deliver"),
            "binned updates must equal delivered updates"
        );
        assert!(!ts.convergence_durations_us().is_empty());
    }

    /// Attaching a recorder must not perturb the simulation itself.
    #[test]
    fn observed_report_matches_unobserved_report() {
        let cfg = ExperimentConfig {
            scenario: GrowthScenario::Baseline,
            n: 200,
            events: 4,
            seed: 21,
            bgp: BgpConfig::default(),
            event_limit: None,
            wheel_slot_bits: None,
        };
        let plain = run_experiment_jobs(&cfg, 1);
        let observed = run_experiment_observed(&cfg, 1, None);
        assert_eq!(plain, observed.report);
        assert!(observed.trace.is_empty(), "no trace requested");
        // The recorder saw the same world the churn counters did: every
        // delivered update is one unit of churn, summed over DOWN+UP.
        let events = plain.events as f64;
        let mean_from_metrics =
            observed.metrics.counter("events.deliver") as f64 / events;
        assert!(
            mean_from_metrics >= plain.mean_total_updates,
            "deliveries ({mean_from_metrics}) must cover counted churn ({})",
            plain.mean_total_updates
        );
        assert_eq!(observed.metrics.counter("experiment.events"), plain.events as u64);
    }

    #[test]
    fn every_type_hears_about_c_events() {
        let r = quick(GrowthScenario::Baseline, 250, 4, 12);
        for ty in [NodeType::T, NodeType::M, NodeType::Cp, NodeType::C] {
            assert!(
                r.by_type(ty).u_total >= 1.0,
                "{ty}: {} updates",
                r.by_type(ty).u_total
            );
        }
        assert_eq!(r.events, 4);
        assert!(r.mean_total_updates > 0.0);
        assert!(r.mean_down_convergence_s > 0.0);
    }

    #[test]
    fn tier1_hears_more_than_stubs() {
        // The paper's Fig. 4 ordering: U(T) > U(C).
        let r = quick(GrowthScenario::Baseline, 400, 5, 13);
        assert!(
            r.by_type(NodeType::T).u_total > r.by_type(NodeType::C).u_total,
            "U(T)={} vs U(C)={}",
            r.by_type(NodeType::T).u_total,
            r.by_type(NodeType::C).u_total
        );
    }

    #[test]
    fn tree_scenario_pins_tier1_churn_at_two() {
        // §5.2: in TREE, every T node receives exactly 2 updates per
        // C-event (one DOWN, one UP).
        let r = quick(GrowthScenario::Tree, 300, 5, 14);
        let u = r.by_type(NodeType::T).u_total;
        assert!(
            (u - 2.0).abs() < 1e-9,
            "TREE must give exactly 2 updates at T nodes, got {u}"
        );
    }

    #[test]
    fn m_factor_matches_topology_degrees() {
        let r = quick(GrowthScenario::Baseline, 300, 2, 15);
        // T nodes' peer count is nT − 1 exactly.
        let m_peer = r.factor(NodeType::T, Relationship::Peer).m;
        let n_t = r.by_type(NodeType::T).node_count;
        assert!(
            (m_peer - (n_t as f64 - 1.0)).abs() < 1e-9,
            "mp,T = {m_peer}, nT = {n_t}"
        );
    }

    #[test]
    fn q_of_provider_class_is_near_one_for_m_nodes() {
        // §4.2: "qd,M is almost constant, and always larger than 0.99" —
        // providers almost always notify their customers.
        let r = quick(GrowthScenario::Baseline, 400, 5, 16);
        let q = r.factor(NodeType::M, Relationship::Provider).q;
        assert!(q > 0.9, "qd,M = {q}");
    }

    #[test]
    fn eq1_reconstructs_total_updates() {
        let r = quick(GrowthScenario::Baseline, 300, 3, 17);
        for ty in [NodeType::T, NodeType::M, NodeType::Cp, NodeType::C] {
            let reconstructed: f64 = Relationship::ALL
                .into_iter()
                .map(|rel| r.u(ty, rel))
                .sum();
            let direct = r.by_type(ty).u_total;
            assert!(
                (reconstructed - direct).abs() < 1e-6,
                "{ty}: Σ U_y = {reconstructed} vs U = {direct}"
            );
        }
    }

    #[test]
    fn truncates_events_to_available_c_nodes() {
        let r = quick(GrowthScenario::Baseline, 100, 10_000, 18);
        assert!(r.events < 10_000);
        assert_eq!(r.by_type(NodeType::C).per_event_u.len(), r.events);
    }

    #[test]
    fn no_wrate_means_no_path_exploration_e_near_one() {
        // §4: with NO-WRATE "the u factors stay close to the minimum 2
        // updates" per event — i.e. e ≈ 2 per active neighbor over
        // DOWN+UP (1 withdrawal + 1 announcement).
        let r = quick(GrowthScenario::Baseline, 300, 4, 19);
        let e = r.factor(NodeType::M, Relationship::Provider).e;
        assert!(
            (1.5..=3.5).contains(&e),
            "ed,M = {e} should be near 2 under NO-WRATE"
        );
    }
}
