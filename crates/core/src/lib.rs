//! # bgpscale-core
//!
//! The event-driven interdomain routing simulator and churn-analysis
//! framework of the CoNEXT 2008 paper *"On the scalability of BGP: the
//! roles of topology growth and update rate-limiting"*.
//!
//! This crate wires the substrates together: it places one
//! [`bgpscale_bgp::BgpNode`] per AS of a [`bgpscale_topology::AsGraph`],
//! drives them with the deterministic event kernel from
//! `bgpscale-simkernel`, and measures **churn** — the number of UPDATE
//! messages each AS receives — during the paper's canonical routing event:
//!
//! > the **C-event**: withdraw a prefix owned by a customer stub, let the
//! > network converge, then re-announce it and converge again (§4).
//!
//! Modules:
//!
//! * [`sim`] — [`Simulator`]: per-node FIFO input queue, single processor
//!   with U(0, 100 ms) service time, link delivery, MRAI expiry events.
//! * [`churn`] — [`churn::ChurnCollector`]: per-(receiver, neighbor)
//!   update counters, toggled on around the measured phases.
//! * [`cevent`] — the C-event protocol (warm-up, DOWN, UP).
//! * [`levent`] — the L-event extension: link failure + recovery with
//!   session resets (the paper's "more complex events" future work).
//! * [`flapstorm`] — a persistently flapping origin, with or without
//!   Route Flap Damping (another future-work item).
//! * [`factors`] — the m/q/e decomposition of the paper's Eq. 1:
//!   `U(X) = Σ_y m_{y,X} · q_{y,X} · e_{y,X}` over neighbor classes
//!   y ∈ {customer, peer, provider}.
//! * [`harness`] — [`harness::run_experiment`]: average over many C-events
//!   from distinct originators, producing a [`harness::ChurnReport`].
//!
//! ## Example
//!
//! ```
//! use bgpscale_core::harness::{run_experiment, ExperimentConfig};
//! use bgpscale_topology::{GrowthScenario, NodeType};
//!
//! let report = run_experiment(&ExperimentConfig {
//!     scenario: GrowthScenario::Baseline,
//!     n: 300,
//!     events: 3,
//!     seed: 7,
//!     bgp: Default::default(),
//!     event_limit: None,
//!     wheel_slot_bits: None,
//! });
//! // Tier-1 nodes hear about every C-event at least twice (DOWN + UP).
//! assert!(report.by_type(NodeType::T).u_total >= 2.0);
//! ```

#![forbid(unsafe_code)]

pub mod cevent;
pub mod churn;
pub mod factors;
pub mod flapstorm;
pub mod harness;
pub mod levent;
pub mod sim;

pub use harness::{
    run_experiment, run_experiment_jobs, run_experiment_observed, run_experiment_observed_with,
    run_experiment_with_cost, ChurnReport, ExperimentConfig, ObserveOptions, ObservedReport,
};
pub use sim::{BudgetSnapshot, SimTemplate, Simulator};
