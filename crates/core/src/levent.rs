//! The L-event: a link failure followed by recovery.
//!
//! The paper's future work calls for "more complex events than the
//! C-event"; the L-event is the natural next step (and the event class
//! studied by Zhao et al., whose "edge events affect more nodes than core
//! events" result the paper cites). A transit or peering link fails — both
//! BGP sessions drop, each side invalidates everything learned from the
//! other — the network re-converges around it, then the link comes back
//! and the sessions exchange full tables again.
//!
//! Unlike a C-event, an L-event need not make the prefix unreachable: if
//! alternate policy-compliant paths exist, routing heals around the
//! failure.

use bgpscale_bgp::Prefix;
use bgpscale_simkernel::SimDuration;
use bgpscale_topology::AsId;

use crate::sim::{EventBudgetExceeded, Simulator};

/// Aggregate measurements of one L-event for one monitored prefix.
#[derive(Clone, Copy, Debug)]
pub struct LEventOutcome {
    /// Updates delivered network-wide during the failure phase.
    pub fail_updates: u64,
    /// Updates delivered network-wide during the recovery phase.
    pub restore_updates: u64,
    /// Simulated convergence time of the failure phase.
    pub fail_convergence: SimDuration,
    /// Simulated convergence time of the recovery phase.
    pub restore_convergence: SimDuration,
    /// Number of nodes with no route to the monitored prefix while the
    /// link was down (0 when the topology healed around the failure).
    pub unreachable_during_outage: usize,
}

/// Runs one L-event on the `a`–`b` link while `prefix` (already announced
/// and converged — see [`crate::cevent::run_c_event`] or
/// [`Simulator::originate`]) is monitored.
///
/// On return the link is restored and the network converged; the churn
/// counters hold the combined fail+restore counts.
///
/// # Errors
/// Propagates [`EventBudgetExceeded`] from either phase.
///
/// # Panics
/// Panics if the link does not exist or is already down.
pub fn run_l_event<O: bgpscale_obs::SimObserver>(
    sim: &mut Simulator<O>,
    a: AsId,
    b: AsId,
    prefix: Prefix,
) -> Result<LEventOutcome, EventBudgetExceeded> {
    sim.churn_mut().reset();
    sim.churn_mut().set_enabled(true);

    let fail_start = sim.now();
    sim.fail_link(a, b);
    let fail_end = sim.run_to_quiescence()?;
    let fail_updates = sim.churn().total();

    let unreachable_during_outage = sim
        .graph()
        .node_ids()
        .filter(|&id| sim.node(id).best_route(prefix).is_none())
        .count();

    let restore_start = sim.now();
    sim.restore_link(a, b);
    let restore_end = sim.run_to_quiescence()?;
    let restore_updates = sim.churn().total() - fail_updates;

    sim.churn_mut().set_enabled(false);
    Ok(LEventOutcome {
        fail_updates,
        restore_updates,
        fail_convergence: fail_end.saturating_since(fail_start),
        restore_convergence: restore_end.saturating_since(restore_start),
        unreachable_during_outage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpscale_bgp::BgpConfig;
    use bgpscale_topology::{generate, GrowthScenario, NodeType, RegionSet};
    use bgpscale_topology::AsGraph;

    /// T0==T1; M2→T0, M3→T1; C4→{M2,M3} (dual-homed); C5→M3.
    fn dual_homed() -> (AsGraph, [AsId; 6]) {
        let mut g = AsGraph::new();
        let r = RegionSet::all(1);
        let t0 = g.add_node(NodeType::T, r);
        let t1 = g.add_node(NodeType::T, r);
        let m2 = g.add_node(NodeType::M, r);
        let m3 = g.add_node(NodeType::M, r);
        let c4 = g.add_node(NodeType::C, r);
        let c5 = g.add_node(NodeType::C, r);
        g.add_peer_link(t0, t1);
        g.add_transit_link(m2, t0);
        g.add_transit_link(m3, t1);
        g.add_transit_link(c4, m2);
        g.add_transit_link(c4, m3);
        g.add_transit_link(c5, m3);
        (g, [t0, t1, m2, m3, c4, c5])
    }

    #[test]
    fn failure_heals_around_multihomed_origin() {
        let (g, ids) = dual_homed();
        let mut sim = Simulator::new(g, BgpConfig::default(), 1);
        sim.originate(ids[4], Prefix(0));
        sim.run_to_quiescence().unwrap();
        // Fail C4–M2: C4 still reaches everyone via M3.
        let outcome = run_l_event(&mut sim, ids[4], ids[2], Prefix(0)).unwrap();
        assert_eq!(outcome.unreachable_during_outage, 0, "dual-homing must heal");
        assert!(outcome.fail_updates > 0);
        assert!(outcome.restore_updates > 0);
        // After restore, everyone routes again.
        for &id in &ids {
            assert!(sim.node(id).best_route(Prefix(0)).is_some(), "{id}");
        }
    }

    #[test]
    fn failure_of_only_link_blacks_out_the_prefix() {
        let (g, ids) = dual_homed();
        let mut sim = Simulator::new(g, BgpConfig::default(), 2);
        sim.originate(ids[5], Prefix(0)); // C5 is single-homed to M3
        sim.run_to_quiescence().unwrap();
        let outcome = run_l_event(&mut sim, ids[5], ids[3], Prefix(0)).unwrap();
        // During the outage nobody (except the origin) can reach it.
        assert_eq!(
            outcome.unreachable_during_outage,
            5,
            "all 5 non-origin nodes must lose the route"
        );
        // Recovery restores everyone.
        for &id in &ids {
            assert!(sim.node(id).best_route(Prefix(0)).is_some(), "{id}");
        }
    }

    #[test]
    fn routing_returns_to_the_original_fixpoint_after_restore() {
        let (g, ids) = dual_homed();
        let mut sim = Simulator::new(g, BgpConfig::default(), 3);
        sim.originate(ids[4], Prefix(0));
        sim.run_to_quiescence().unwrap();
        let before: Vec<_> = ids
            .iter()
            .map(|&id| sim.node(id).best_route(Prefix(0)).map(|(n, p)| (n, p.clone())))
            .collect();
        run_l_event(&mut sim, ids[4], ids[2], Prefix(0)).unwrap();
        let after: Vec<_> = ids
            .iter()
            .map(|&id| sim.node(id).best_route(Prefix(0)).map(|(n, p)| (n, p.clone())))
            .collect();
        assert_eq!(before, after, "restore must return to the same fixpoint");
    }

    #[test]
    fn core_link_failure_on_generated_topology() {
        let g = generate(GrowthScenario::Baseline, 200, 9);
        let origin = g
            .node_ids()
            .find(|&id| g.node_type(id) == NodeType::C)
            .unwrap();
        // Fail a transit link of the origin's provider (one hop up).
        let provider = g.providers(origin).next().unwrap();
        let upstream = g.providers(provider).next();
        let mut sim = Simulator::new(g, BgpConfig::default(), 9);
        sim.originate(origin, Prefix(0));
        sim.run_to_quiescence().unwrap();
        if let Some(upstream) = upstream {
            let outcome = run_l_event(&mut sim, provider, upstream, Prefix(0)).unwrap();
            assert!(outcome.fail_updates > 0);
            // Converged and consistent afterwards.
            let unreachable = sim
                .graph()
                .node_ids()
                .filter(|&id| sim.node(id).best_route(Prefix(0)).is_none())
                .count();
            assert_eq!(unreachable, 0);
        }
    }

    #[test]
    fn link_state_is_tracked() {
        let (g, ids) = dual_homed();
        let mut sim = Simulator::new(g, BgpConfig::default(), 4);
        assert!(!sim.link_down(ids[4], ids[2]));
        sim.fail_link(ids[4], ids[2]);
        assert!(sim.link_down(ids[4], ids[2]));
        assert!(sim.link_down(ids[2], ids[4]), "symmetric");
        sim.run_to_quiescence().unwrap();
        sim.restore_link(ids[4], ids[2]);
        assert!(!sim.link_down(ids[4], ids[2]));
        sim.run_to_quiescence().unwrap();
    }

    #[test]
    #[should_panic(expected = "already down")]
    fn double_failure_rejected() {
        let (g, ids) = dual_homed();
        let mut sim = Simulator::new(g, BgpConfig::default(), 5);
        sim.fail_link(ids[4], ids[2]);
        sim.fail_link(ids[2], ids[4]);
    }

    #[test]
    fn in_flight_messages_on_failed_link_are_dropped() {
        let (g, ids) = dual_homed();
        let mut sim = Simulator::new(g, BgpConfig::default(), 6);
        // Originate, then immediately fail the first-hop link while the
        // announcement is still in flight.
        sim.originate(ids[4], Prefix(0));
        sim.fail_link(ids[4], ids[2]);
        sim.run_to_quiescence().unwrap();
        assert!(sim.messages_dropped() > 0, "in-flight message must be lost");
        // The network still converges through the surviving link.
        assert!(sim.node(ids[0]).best_route(Prefix(0)).is_some());
    }
}
