//! The event-driven network simulator.
//!
//! One [`bgpscale_bgp::BgpNode`] per AS, connected according to an
//! [`AsGraph`], driven by the deterministic event queue of
//! `bgpscale-simkernel`. Three event kinds exist (the paper's Fig. 2):
//!
//! * **Deliver** — a message arrives at a node and joins its FIFO input
//!   queue; if the node's processor is idle, service begins.
//! * **ProcDone** — the processor finishes one message (service time drawn
//!   uniformly from `[0, proc_delay_max]`), the protocol machine runs, and
//!   resulting transmissions are scheduled after the link delay.
//! * **MraiExpire** — a neighbor session's MRAI timer fires; queued
//!   updates flush and the timer re-arms (jittered) iff something was
//!   sent.
//!
//! The simulation **quiesces** when the event queue empties: every RIB is
//! stable and every MRAI timer idle. All randomness (service times,
//! jitter) comes from one seeded stream, so runs are exactly repeatable.

use std::sync::Arc;

use bgpscale_bgp::node::Actions;
use bgpscale_bgp::{BgpConfig, BgpNode, Prefix, SessionSlab, Update};
use bgpscale_obs::{
    EventKind, NoopObserver, OpCounts, Provenance, RootCauseKind, SimObserver, UpdateClass,
};
use bgpscale_simkernel::rng::{Rng, Xoshiro256StarStar};
use bgpscale_simkernel::{EventQueue, QueueBackend, SimDuration, SimTime};
use bgpscale_topology::{AsGraph, AsId};

use crate::churn::ChurnCollector;

/// Hard ceiling on events processed in one [`Simulator::run_to_quiescence`]
/// call; BGP with Gao–Rexford policies always converges, so hitting this
/// indicates a model bug rather than a slow run.
const DEFAULT_EVENT_LIMIT: u64 = 2_000_000_000;

/// Simulator events.
#[derive(Clone, Debug)]
enum SimEvent {
    /// `update` sent by `from` reaches `to`'s input queue.
    Deliver { to: AsId, from: AsId, update: Update },
    /// `node`'s processor finishes the message at the head of its queue.
    ProcDone { node: AsId },
    /// An MRAI timer for `node`'s neighbor session `slot` expires:
    /// the session timer when `prefix` is `None` (per-interface scope),
    /// a per-prefix timer otherwise. `epoch` invalidates expiries that
    /// were scheduled before a session reset disarmed the queue.
    MraiExpire {
        node: AsId,
        slot: u32,
        epoch: u32,
        prefix: Option<Prefix>,
    },
    /// A Route-Flap-Damping reuse wake-up for `(node, slot, prefix)`.
    RfdReuse { node: AsId, slot: u32, prefix: Prefix },
}

impl SimEvent {
    fn kind(&self) -> EventKind {
        match self {
            SimEvent::Deliver { .. } => EventKind::Deliver,
            SimEvent::ProcDone { .. } => EventKind::ProcDone,
            SimEvent::MraiExpire { .. } => EventKind::MraiExpire,
            SimEvent::RfdReuse { .. } => EventKind::RfdReuse,
        }
    }
}

/// A diagnostic snapshot of simulator state at the moment a run exceeded
/// its event budget. Built only on the failure path (never in the event
/// loop), so the happy path pays nothing for it.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BudgetSnapshot {
    /// Simulated time when the budget ran out, in microseconds.
    pub sim_time_us: u64,
    /// Events still pending in the queue.
    pub queue_depth: u64,
    /// Pending events per kind, indexed by [`EventKind::index`]
    /// (deliver, proc_done, mrai_expire, rfd_reuse).
    pub pending_by_kind: [u64; 4],
    /// The node with the deepest input queue and that depth, if any
    /// inbox is non-empty (ties break toward the lowest node id).
    pub busiest_inbox: Option<(AsId, usize)>,
}

/// Error returned when a run exceeds its event budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventBudgetExceeded {
    /// Number of events processed before giving up.
    pub processed: u64,
    /// Where the simulation stood when it gave up.
    pub snapshot: BudgetSnapshot,
}

impl std::fmt::Display for EventBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = &self.snapshot;
        write!(
            f,
            "simulation did not quiesce within {} events (model bug?): \
             t={}us, {} pending (deliver {}, proc_done {}, mrai_expire {}, rfd_reuse {})",
            self.processed,
            s.sim_time_us,
            s.queue_depth,
            s.pending_by_kind[0],
            s.pending_by_kind[1],
            s.pending_by_kind[2],
            s.pending_by_kind[3],
        )?;
        if let Some((node, depth)) = s.busiest_inbox {
            write!(f, ", busiest inbox {node} with {depth} queued")?;
        }
        Ok(())
    }
}

impl std::error::Error for EventBudgetExceeded {}

/// The network simulator: topology + BGP speakers + event loop.
///
/// Generic over a [`SimObserver`] that receives telemetry hooks from the
/// event loop. The default is [`NoopObserver`], whose empty `#[inline]`
/// hook bodies are erased by the optimizer — plain `Simulator` compiles to
/// the same code as before observers existed, so existing callers neither
/// change nor pay. Pass a real observer (e.g. `bgpscale_obs::Recorder`)
/// via [`SimTemplate::instantiate_observed`] to collect metrics/traces.
pub struct Simulator<O: SimObserver = NoopObserver> {
    obs: O,
    graph: Arc<AsGraph>,
    cfg: BgpConfig,
    /// The session slab shared by every node (and by the template that
    /// stamped this simulator out). Owns the global session id space that
    /// flat per-session side tables like `mrai_epoch` index into.
    slab: Arc<SessionSlab>,
    nodes: Vec<BgpNode>,
    /// Per-node FIFO input queue: (sender, message).
    inbox: Vec<std::collections::VecDeque<(AsId, Update)>>,
    /// Per-node processor-busy flag.
    busy: Vec<bool>,
    queue: EventQueue<SimEvent>,
    rng: Xoshiro256StarStar,
    churn: ChurnCollector,
    /// Time of the most recent Deliver or ProcDone (i.e. of actual routing
    /// activity, excluding trailing no-op timer expiries).
    last_activity: SimTime,
    event_limit: u64,
    /// Per-(node, slot) MRAI epoch; bumped by session resets so stale
    /// expiry events can be recognized and dropped. One flat `u32` per
    /// session in the slab's global session id space, indexed by
    /// [`Simulator::session_ix`] — a single allocation instead of one
    /// `Vec` per node.
    mrai_epoch: Vec<u32>,
    /// Links currently failed, stored as `(min, max)` endpoint pairs.
    down_links: std::collections::BTreeSet<(AsId, AsId)>,
    /// Messages lost because their link failed while they were in flight.
    messages_dropped: u64,
    /// Next root-cause id for provenance stamps. Ids are allocated
    /// sequentially per simulator, so they double as indices into the
    /// observer's root table.
    next_root: u32,
    /// MRAI timers currently armed across all nodes (occupancy telemetry).
    /// Each armed timer corresponds to one outstanding valid expiry event.
    armed_timers: u64,
    /// Cost-model tally: messages actually delivered (after in-flight loss
    /// filtering). Monotone.
    deliveries: u64,
    /// Cost-model tally: MRAI timers armed over the run. Monotone.
    mrai_armed_total: u64,
    /// Cost-model tally: MRAI expiries that fired while still valid
    /// (stale-epoch expiries excluded). Monotone.
    mrai_fired: u64,
}

fn link_key(a: AsId, b: AsId) -> (AsId, AsId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// A pristine simulator blueprint: topology, protocol configuration, and
/// clean per-node state, all built once.
///
/// The experiment harness runs up to 100 independent C-events over the
/// *same* topology, each on a fresh simulator with its own derived seed.
/// Rebuilding the node array from the graph for each event repeats the
/// session/adjacency construction work; a template does it once and
/// [`SimTemplate::instantiate`] stamps out simulators by cloning the clean
/// nodes (cheap: pristine RIBs are empty, and the session slab — one
/// contiguous [`SessionSlab`] covering every node's adjacency — is shared
/// behind a single `Arc` by the template and every node of every
/// instantiation). Templates are `Send + Sync`, so one template can feed
/// every worker of a parallel fan-out.
#[derive(Clone)]
pub struct SimTemplate {
    graph: Arc<AsGraph>,
    cfg: BgpConfig,
    slab: Arc<SessionSlab>,
    nodes: Vec<BgpNode>,
    /// Timing-wheel slot-granularity override for stamped-out simulators;
    /// `None` keeps the simkernel default. Exists for the perf mutation
    /// gate (`repro perf --wheel-bits`), which perturbs the granularity
    /// and asserts the op-count gate catches the drift.
    wheel_slot_bits: Option<u32>,
}

impl SimTemplate {
    /// Builds the blueprint. Neighbor sessions take the adjacency order of
    /// the graph, which keeps everything deterministic: the whole
    /// topology's sessions land in one arena (`SessionSlab::build`), and
    /// each node holds a slab handle plus its index instead of a private
    /// session table.
    ///
    /// # Panics
    /// Panics if `cfg` fails validation.
    pub fn new(graph: Arc<AsGraph>, cfg: BgpConfig) -> SimTemplate {
        cfg.check()
            .unwrap_or_else(|e| panic!("invalid BGP config: {e}"));
        let ids: Vec<AsId> = graph.node_ids().collect();
        let sessions_of: Vec<Vec<bgpscale_bgp::node::Session>> = ids
            .iter()
            .map(|&id| {
                graph
                    .neighbors(id)
                    .iter()
                    .map(|nb| bgpscale_bgp::node::Session {
                        peer: nb.id,
                        rel: nb.rel,
                    })
                    .collect()
            })
            .collect();
        let slab = SessionSlab::build(ids.len(), |i| ids[i], &sessions_of);
        let nodes: Vec<BgpNode> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                let mut node = BgpNode::from_slab(id, Arc::clone(&slab), i as u32, cfg.mrai_mode);
                node.set_mrai_scope(cfg.mrai_scope);
                node.set_sender_side_loop_detection(cfg.sender_side_loop_detection);
                node.set_rfd(cfg.rfd.clone());
                node
            })
            .collect();
        SimTemplate {
            graph,
            cfg,
            slab,
            nodes,
            wheel_slot_bits: None,
        }
    }

    /// The topology this template simulates.
    pub fn graph(&self) -> &AsGraph {
        &self.graph
    }

    /// The shared session slab (global session id space).
    pub fn slab(&self) -> &Arc<SessionSlab> {
        &self.slab
    }

    /// Overrides the timing-wheel slot granularity of stamped-out
    /// simulators (`None` restores the default). Bits outside the wheel's
    /// accepted range will panic at instantiation, matching
    /// `TimingWheel::new`.
    pub fn set_wheel_slot_bits(&mut self, bits: Option<u32>) {
        self.wheel_slot_bits = bits;
    }

    /// Stamps out a fresh simulator with its own RNG stream.
    pub fn instantiate(&self, seed: u64) -> Simulator {
        self.instantiate_observed(seed, NoopObserver)
    }

    /// Like [`SimTemplate::instantiate`], but attaches `obs` to receive
    /// telemetry hooks from the event loop.
    pub fn instantiate_observed<O: SimObserver>(&self, seed: u64, obs: O) -> Simulator<O> {
        let n = self.graph.len();
        let churn = ChurnCollector::new(&self.graph);
        let mrai_epoch = vec![0u32; self.slab.total_sessions()];
        let queue = match self.wheel_slot_bits {
            Some(slot_bits) => EventQueue::with_backend(QueueBackend::Wheel { slot_bits }),
            None => EventQueue::with_capacity(1024),
        };
        Simulator {
            obs,
            graph: Arc::clone(&self.graph),
            cfg: self.cfg.clone(),
            slab: Arc::clone(&self.slab),
            nodes: self.nodes.clone(),
            inbox: vec![std::collections::VecDeque::new(); n],
            busy: vec![false; n],
            queue,
            rng: Xoshiro256StarStar::new(seed),
            churn,
            last_activity: SimTime::ZERO,
            event_limit: DEFAULT_EVENT_LIMIT,
            mrai_epoch,
            down_links: Default::default(),
            messages_dropped: 0,
            next_root: 0,
            armed_timers: 0,
            deliveries: 0,
            mrai_armed_total: 0,
            mrai_fired: 0,
        }
    }
}

impl Simulator {
    /// Builds a simulator over `graph`. Neighbor sessions take the
    /// adjacency order of the graph, which keeps everything deterministic.
    ///
    /// # Panics
    /// Panics if `cfg` fails validation.
    pub fn new(graph: AsGraph, cfg: BgpConfig, seed: u64) -> Simulator {
        Simulator::new_shared(Arc::new(graph), cfg, seed)
    }

    /// Like [`Simulator::new`], but shares an existing `Arc`-held topology
    /// instead of taking ownership — the form parallel workers use.
    pub fn new_shared(graph: Arc<AsGraph>, cfg: BgpConfig, seed: u64) -> Simulator {
        SimTemplate::new(graph, cfg).instantiate(seed)
    }
}

impl<O: SimObserver> Simulator<O> {
    /// Read access to the attached observer.
    pub fn observer(&self) -> &O {
        &self.obs
    }

    /// Mutable access to the attached observer.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.obs
    }

    /// Consumes the simulator, returning the observer with everything it
    /// collected. The idiomatic end of an observed run.
    pub fn into_observer(self) -> O {
        self.obs
    }

    /// The topology being simulated.
    pub fn graph(&self) -> &AsGraph {
        &self.graph
    }

    /// The protocol configuration.
    pub fn config(&self) -> &BgpConfig {
        &self.cfg
    }

    /// Read access to a node's protocol state.
    pub fn node(&self, id: AsId) -> &BgpNode {
        &self.nodes[id.index()]
    }

    /// The churn collector (counter read access).
    pub fn churn(&self) -> &ChurnCollector {
        &self.churn
    }

    /// Mutable churn collector access (enable/disable/reset).
    pub fn churn_mut(&mut self) -> &mut ChurnCollector {
        &mut self.churn
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Time of the last routing activity (message delivery or processing
    /// completion) — the convergence instant of the previous phase,
    /// excluding trailing idle MRAI expiries.
    pub fn last_activity(&self) -> SimTime {
        self.last_activity
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.queue.popped()
    }

    /// Overrides the per-run event budget (tests use small budgets to
    /// exercise the error path).
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Messages lost to links that failed while they were in flight.
    pub fn messages_dropped(&self) -> u64 {
        self.messages_dropped
    }

    /// Which priority-queue backend this simulator's event queue runs on.
    pub fn queue_backend(&self) -> QueueBackend {
        self.queue.backend()
    }

    /// Flat index of `(node, slot)` in the slab's global session id
    /// space — the row of `mrai_epoch` for that session. Node index and
    /// slab index coincide by construction ([`SimTemplate::new`] builds
    /// the slab from `graph.node_ids()` in order).
    fn session_ix(&self, node: AsId, slot: u32) -> usize {
        (self.slab.first_session(node.index() as u32) + slot) as usize
    }

    /// True if the `a`–`b` link is currently failed.
    pub fn link_down(&self, a: AsId, b: AsId) -> bool {
        self.down_links.contains(&link_key(a, b))
    }

    /// Allocates a fresh root-cause id for a workload action at `node`,
    /// notifies the observer, and returns the depth-0 provenance stamp
    /// every update caused by the action will carry (or derive from via
    /// [`Provenance::child`]).
    fn new_root(&mut self, kind: RootCauseKind, node: AsId) -> Provenance {
        let id = self.next_root;
        self.next_root += 1;
        self.obs.on_root_cause(id, kind, node, self.queue.now());
        Provenance::root(id)
    }

    /// Fails the `a`–`b` link (an "L-event"): both BGP sessions drop,
    /// each side invalidates everything learned from the other and
    /// notifies its remaining neighbors, and any in-flight messages on
    /// the link are lost.
    ///
    /// # Panics
    /// Panics if `a`–`b` is not a topology link or is already down.
    pub fn fail_link(&mut self, a: AsId, b: AsId) {
        assert!(
            self.graph.has_link(a, b),
            "fail_link on non-adjacent {a}–{b}"
        );
        assert!(
            self.down_links.insert(link_key(a, b)),
            "link {a}–{b} already down"
        );
        // One root cause covers both directions of the failure: churn on
        // either side is attributed to the same L-event.
        let cause = self.new_root(RootCauseKind::SessionDown, a);
        for (x, y) in [(a, b), (b, a)] {
            let slot = self.nodes[x.index()].slot_of(y).expect("adjacent");
            let epoch_ix = self.session_ix(x, slot);
            self.mrai_epoch[epoch_ix] += 1;
            // `session_down` force-resets the output queue, silently
            // disarming its timers; account for them before they vanish so
            // the occupancy gauge stays exact.
            let disarmed = u64::from(self.nodes[x.index()].armed_timer_count(slot));
            if disarmed > 0 {
                self.armed_timers -= disarmed;
                self.obs.on_timer_occupancy(self.armed_timers, self.queue.now());
            }
            let actions = self.nodes[x.index()].session_down_caused(slot, &cause);
            self.apply_actions(x, actions);
        }
    }

    /// Restores a previously failed link: both sessions re-establish and
    /// exchange their current tables.
    ///
    /// # Panics
    /// Panics if the link is not currently down.
    pub fn restore_link(&mut self, a: AsId, b: AsId) {
        assert!(
            self.down_links.remove(&link_key(a, b)),
            "link {a}–{b} is not down"
        );
        let cause = self.new_root(RootCauseKind::SessionUp, a);
        for (x, y) in [(a, b), (b, a)] {
            let slot = self.nodes[x.index()].slot_of(y).expect("adjacent");
            let actions = self.nodes[x.index()].session_up_caused(slot, &cause);
            self.apply_actions(x, actions);
        }
    }

    /// Node `origin` starts originating `prefix` (the "UP" action).
    // detflow::allow(panic-surface, reason = "origin is a graph node id and nodes is sized one entry per graph node at construction")
    pub fn originate(&mut self, origin: AsId, prefix: Prefix) {
        let cause = self.new_root(RootCauseKind::Originate, origin);
        let actions = self.nodes[origin.index()].originate_caused(prefix, &cause);
        self.apply_actions(origin, actions);
    }

    /// Node `origin` stops originating `prefix` (the "DOWN" action).
    // detflow::allow(panic-surface, reason = "origin is a graph node id and nodes is sized one entry per graph node at construction")
    pub fn withdraw(&mut self, origin: AsId, prefix: Prefix) {
        let cause = self.new_root(RootCauseKind::WithdrawOrigin, origin);
        let actions = self.nodes[origin.index()].withdraw_origin_caused(prefix, &cause);
        self.apply_actions(origin, actions);
    }

    /// Processes events up to and including `deadline`, then stops (the
    /// queue may still hold later events). Used by timed workloads (flap
    /// storms) that inject actions mid-convergence.
    ///
    /// # Errors
    /// [`EventBudgetExceeded`] if the event budget is exhausted first.
    pub fn run_until(&mut self, deadline: SimTime) -> Result<(), EventBudgetExceeded> {
        let start = self.queue.popped();
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            let (time, event) = self.queue.pop().expect("peeked");
            self.dispatch(time, event);
            if self.queue.popped() - start > self.event_limit {
                return Err(self.budget_exceeded(start));
            }
        }
        Ok(())
    }

    /// Builds the budget-exhaustion error with a state snapshot — called
    /// only on the failure path, so the scans here cost nothing normally.
    // detflow::allow(panic-surface, reason = "pending_by_kind is a fixed [_; 4] indexed by the four EventKind variants")
    fn budget_exceeded(&self, start: u64) -> EventBudgetExceeded {
        let mut pending_by_kind = [0u64; 4];
        for (_, event) in self.queue.iter_pending() {
            pending_by_kind[event.kind().index()] += 1;
        }
        let busiest_inbox = self
            .inbox
            .iter()
            .enumerate()
            .filter(|(_, q)| !q.is_empty())
            .max_by_key(|(i, q)| (q.len(), std::cmp::Reverse(*i)))
            .map(|(i, q)| (AsId(i as u32), q.len()));
        EventBudgetExceeded {
            processed: self.queue.popped() - start,
            snapshot: BudgetSnapshot {
                sim_time_us: self.queue.now().as_micros(),
                queue_depth: self.queue.len() as u64,
                pending_by_kind,
                busiest_inbox,
            },
        }
    }

    /// Runs until the event queue is empty: all RIBs stable, all timers
    /// idle. Returns the time of the last routing activity.
    ///
    /// # Errors
    /// [`EventBudgetExceeded`] if the configured event budget is exhausted
    /// first.
    pub fn run_to_quiescence(&mut self) -> Result<SimTime, EventBudgetExceeded> {
        let start = self.queue.popped();
        while let Some((time, event)) = self.queue.pop() {
            self.dispatch(time, event);
            if self.queue.popped() - start > self.event_limit {
                return Err(self.budget_exceeded(start));
            }
        }
        self.obs
            .on_quiescence(self.last_activity, self.queue.popped());
        Ok(self.last_activity)
    }

    /// Clears all routing state (RIBs, Adj-RIB-outs, pending updates) on
    /// every node, keeping topology, clock and counters. Used between
    /// C-events so per-event state cannot accumulate.
    ///
    /// # Panics
    /// Panics if events are still pending — reset is only meaningful at
    /// quiescence.
    pub fn reset_routing(&mut self) {
        assert!(
            self.queue.is_empty(),
            "reset_routing while {} events are pending",
            self.queue.len()
        );
        for (i, node) in self.nodes.iter_mut().enumerate() {
            debug_assert!(self.inbox[i].is_empty() && !self.busy[i]);
            node.reset_routing();
        }
    }

    // detflow::allow(panic-surface, reason = "node ids index per-node vecs sized at construction; a Deliver from a non-neighbor and a ProcDone with an empty inbox are scheduling-invariant breaches that must abort the run, not be masked")
    fn dispatch(&mut self, now: SimTime, event: SimEvent) {
        self.obs.on_event(event.kind(), now);
        match event {
            SimEvent::Deliver { to, from, update } => {
                if self.down_links.contains(&link_key(from, to)) {
                    // The link failed while the message was in flight.
                    self.messages_dropped += 1;
                    return;
                }
                self.last_activity = now;
                self.deliveries += 1;
                let slot = self.nodes[to.index()]
                    .slot_of(from)
                    .expect("delivery from non-neighbor");
                self.churn.record(to, slot, update.kind.is_withdraw(), now);
                // Depth the arriving message will reach once enqueued —
                // the receiver-side backlog signal.
                let inbox_depth = self.inbox[to.index()].len() as u32 + 1;
                self.obs.on_message(
                    from,
                    to,
                    self.nodes[to.index()].sessions()[slot as usize].rel,
                    if update.kind.is_withdraw() {
                        UpdateClass::Withdraw
                    } else {
                        UpdateClass::Announce
                    },
                    update.prefix.0,
                    update.kind.path().map(|p| p.len() as u32),
                    &update.provenance,
                    inbox_depth,
                    now,
                );
                self.inbox[to.index()].push_back((from, update));
                if !self.busy[to.index()] {
                    self.busy[to.index()] = true;
                    let service = self.draw_service_time();
                    self.queue
                        .schedule(now + service, SimEvent::ProcDone { node: to });
                }
            }
            SimEvent::ProcDone { node } => {
                self.last_activity = now;
                let (from, update) = self.inbox[node.index()]
                    .pop_front()
                    .expect("ProcDone with empty input queue");
                let actions = self.nodes[node.index()].handle_update_at(from, update, now);
                self.obs.on_decision_run(node, now);
                self.apply_actions(node, actions);
                if self.inbox[node.index()].is_empty() {
                    self.busy[node.index()] = false;
                } else {
                    let service = self.draw_service_time();
                    self.queue
                        .schedule(now + service, SimEvent::ProcDone { node });
                }
            }
            SimEvent::MraiExpire {
                node,
                slot,
                epoch,
                prefix,
            } => {
                if epoch != self.mrai_epoch[self.session_ix(node, slot)] {
                    return; // stale expiry from before a session reset
                }
                // A valid expiry consumes one armed timer; a rearm in the
                // resulting actions re-adds it in `apply_actions`.
                self.armed_timers -= 1;
                self.mrai_fired += 1;
                self.obs.on_timer_occupancy(self.armed_timers, now);
                let actions = match prefix {
                    None => self.nodes[node.index()].mrai_expired(slot),
                    Some(p) => self.nodes[node.index()].mrai_prefix_expired(slot, p),
                };
                self.obs
                    .on_mrai_flush(node, actions.sends.len() as u32, now);
                self.apply_actions(node, actions);
            }
            SimEvent::RfdReuse { node, slot, prefix } => {
                let cause = self.new_root(RootCauseKind::RfdReuse, node);
                let actions = self.nodes[node.index()].rfd_reuse_caused(slot, prefix, now, &cause);
                self.apply_actions(node, actions);
            }
        }
    }

    /// Schedules the transmissions and timer arms a protocol step produced.
    // detflow::allow(panic-surface, reason = "node ids and session slots index vecs sized at construction (nodes, mrai_epoch, per-session rows)")
    fn apply_actions(&mut self, node: AsId, actions: Actions) {
        let now = self.queue.now();
        let armed_delta = (actions.arm_timers.len() + actions.arm_prefix_timers.len()) as u64;
        for (slot, update) in actions.sends {
            let to = self.nodes[node.index()].sessions()[slot as usize].peer;
            self.queue.schedule(
                now + self.cfg.link_delay,
                SimEvent::Deliver {
                    to,
                    from: node,
                    update,
                },
            );
        }
        for slot in actions.arm_timers {
            let delay = self.draw_mrai_interval();
            let epoch = self.mrai_epoch[self.session_ix(node, slot)];
            self.queue.schedule(
                now + delay,
                SimEvent::MraiExpire {
                    node,
                    slot,
                    epoch,
                    prefix: None,
                },
            );
        }
        for (slot, prefix) in actions.arm_prefix_timers {
            let delay = self.draw_mrai_interval();
            let epoch = self.mrai_epoch[self.session_ix(node, slot)];
            self.queue.schedule(
                now + delay,
                SimEvent::MraiExpire {
                    node,
                    slot,
                    epoch,
                    prefix: Some(prefix),
                },
            );
        }
        for (slot, prefix, at) in actions.rfd_wakeups {
            debug_assert!(at >= now, "reuse time in the past");
            self.queue
                .schedule(at.max(now), SimEvent::RfdReuse { node, slot, prefix });
        }
        if armed_delta > 0 {
            self.armed_timers += armed_delta;
            self.mrai_armed_total += armed_delta;
            self.obs.on_timer_occupancy(self.armed_timers, now);
        }
    }

    /// The current cost-model snapshot: event-queue op tallies plus every
    /// node's decision/path/RIB counters plus the simulator's own
    /// delivery and MRAI counters, folded into one [`OpCounts`]. All
    /// constituents are monotone within a C-event — `arena_bytes_reserved`
    /// is a footprint gauge, but arenas only grow until the inter-event
    /// [`Simulator::reset_routing`] — so two snapshots can be subtracted
    /// to attribute work to the interval between them (see
    /// [`bgpscale_obs::costmodel`]).
    pub fn cost_counts(&self) -> OpCounts {
        let q = self.queue.op_counts();
        let mut c = OpCounts {
            queue_pushes: q.pushes,
            queue_pops: q.pops,
            queue_decreases: q.decreases,
            queue_comparisons: q.comparisons,
            queue_cascades: q.cascades,
            deliveries: self.deliveries,
            mrai_armed: self.mrai_armed_total,
            mrai_fired: self.mrai_fired,
            // The slab is immutable and shared; count it once, not per
            // node. Per-node tables are added below.
            arena_bytes_reserved: self.slab.arena_bytes(),
            ..OpCounts::default()
        };
        for node in &self.nodes {
            let n = node.cost_counters();
            c.decision_runs += n.decision_runs;
            c.route_comparisons += n.route_comparisons;
            c.rib_out_writes += n.rib_out_writes;
            c.path_intern_hits += n.path_intern_hits;
            c.path_intern_misses += n.path_intern_misses;
            c.mrai_coalesced += n.mrai_coalesced;
            c.arena_bytes_reserved += node.arena_bytes();
        }
        c
    }

    fn draw_service_time(&mut self) -> SimDuration {
        let us = self.cfg.proc_delay_max.as_micros();
        match self.cfg.service_model {
            // Uniform over (0, proc_delay_max]; never exactly zero so
            // that processing strictly follows arrival.
            bgpscale_bgp::config::ServiceTimeModel::Uniform => {
                SimDuration::from_micros(1 + self.rng.next_below(us.max(1)))
            }
            // Same mean as Uniform, no randomness.
            bgpscale_bgp::config::ServiceTimeModel::Constant => {
                SimDuration::from_micros((us / 2).max(1))
            }
        }
    }

    fn draw_mrai_interval(&mut self) -> SimDuration {
        let (lo, hi) = self.cfg.mrai_jitter;
        let factor = if lo >= hi { lo } else { self.rng.next_f64_range(lo, hi) };
        self.cfg.mrai.mul_f64(factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpscale_topology::{generate, GrowthScenario, NodeType, RegionSet, Relationship};

    const P: Prefix = Prefix(0);

    /// T0==T1 peering; M2→T0, M3→T1; C4→M2, C5→M3.
    fn chain_graph() -> (AsGraph, [AsId; 6]) {
        let mut g = AsGraph::new();
        let r = RegionSet::all(1);
        let t0 = g.add_node(NodeType::T, r);
        let t1 = g.add_node(NodeType::T, r);
        let m2 = g.add_node(NodeType::M, r);
        let m3 = g.add_node(NodeType::M, r);
        let c4 = g.add_node(NodeType::C, r);
        let c5 = g.add_node(NodeType::C, r);
        g.add_peer_link(t0, t1);
        g.add_transit_link(m2, t0);
        g.add_transit_link(m3, t1);
        g.add_transit_link(c4, m2);
        g.add_transit_link(c5, m3);
        (g, [t0, t1, m2, m3, c4, c5])
    }

    #[test]
    fn announcement_reaches_every_node() {
        let (g, ids) = chain_graph();
        let mut sim = Simulator::new(g, BgpConfig::default(), 1);
        sim.originate(ids[4], P);
        sim.run_to_quiescence().unwrap();
        for &id in &ids {
            assert!(
                sim.node(id).best_route(P).is_some(),
                "{id} has no route after convergence"
            );
        }
    }

    #[test]
    fn converged_paths_are_valley_free_shortest() {
        let (g, ids) = chain_graph();
        let mut sim = Simulator::new(g, BgpConfig::default(), 2);
        sim.originate(ids[4], P);
        sim.run_to_quiescence().unwrap();
        // C5's route: up M3, up T1, peer T0, down M2, down C4 = 5 hops.
        let (next, path) = sim.node(ids[5]).best_route(P).unwrap();
        assert_eq!(next, Some(ids[3]));
        assert_eq!(path.len(), 5);
        assert_eq!(*path.last().unwrap(), ids[4], "path ends at the origin");
    }

    #[test]
    fn withdraw_removes_all_routes() {
        let (g, ids) = chain_graph();
        let mut sim = Simulator::new(g, BgpConfig::default(), 3);
        sim.originate(ids[4], P);
        sim.run_to_quiescence().unwrap();
        sim.withdraw(ids[4], P);
        sim.run_to_quiescence().unwrap();
        for &id in &ids {
            if id != ids[4] {
                assert!(
                    sim.node(id).best_route(P).is_none(),
                    "{id} still routes a withdrawn prefix"
                );
            }
        }
    }

    #[test]
    fn reannouncement_restores_identical_routes() {
        let (g, ids) = chain_graph();
        let mut sim = Simulator::new(g, BgpConfig::default(), 4);
        sim.originate(ids[4], P);
        sim.run_to_quiescence().unwrap();
        let before: Vec<_> = ids
            .iter()
            .map(|&id| sim.node(id).best_route(P).map(|(n, p)| (n, p.clone())))
            .collect();
        sim.withdraw(ids[4], P);
        sim.run_to_quiescence().unwrap();
        sim.originate(ids[4], P);
        sim.run_to_quiescence().unwrap();
        let after: Vec<_> = ids
            .iter()
            .map(|&id| sim.node(id).best_route(P).map(|(n, p)| (n, p.clone())))
            .collect();
        assert_eq!(before, after, "routing must return to the same fixpoint");
    }

    #[test]
    fn same_seed_same_message_count() {
        let (g, ids) = chain_graph();
        let mut a = Simulator::new(g.clone(), BgpConfig::default(), 5);
        let mut b = Simulator::new(g, BgpConfig::default(), 5);
        for sim in [&mut a, &mut b] {
            sim.churn_mut().set_enabled(true);
            sim.originate(ids[4], P);
            sim.run_to_quiescence().unwrap();
        }
        assert_eq!(a.churn().total(), b.churn().total());
        assert_eq!(a.events_processed(), b.events_processed());
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn churn_counting_respects_enable_flag() {
        let (g, ids) = chain_graph();
        let mut sim = Simulator::new(g, BgpConfig::default(), 6);
        sim.originate(ids[4], P);
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.churn().total(), 0, "collector starts disabled");
        sim.churn_mut().set_enabled(true);
        sim.withdraw(ids[4], P);
        sim.run_to_quiescence().unwrap();
        assert!(sim.churn().total() > 0);
    }

    #[test]
    fn single_homed_chain_counts_minimal_updates() {
        // In a pure chain, each node hears exactly one withdrawal and one
        // announcement per C-event (the TREE result of §5.2).
        let (g, ids) = chain_graph();
        let mut sim = Simulator::new(g, BgpConfig::default(), 7);
        sim.originate(ids[4], P);
        sim.run_to_quiescence().unwrap();
        sim.churn_mut().set_enabled(true);
        sim.withdraw(ids[4], P);
        sim.run_to_quiescence().unwrap();
        sim.originate(ids[4], P);
        sim.run_to_quiescence().unwrap();
        for &id in &ids {
            if id == ids[4] {
                continue;
            }
            let got = sim.churn().node_total(id);
            assert_eq!(got, 2, "{id} expected exactly DOWN+UP, got {got}");
        }
    }

    #[test]
    fn wrate_generates_at_least_as_much_churn() {
        let g = generate(GrowthScenario::Baseline, 200, 42);
        let origin = g
            .node_ids()
            .find(|&id| g.node_type(id) == NodeType::C)
            .unwrap();
        let mut total = [0u64; 2];
        for (i, cfg) in [BgpConfig::no_wrate(), BgpConfig::wrate()].into_iter().enumerate() {
            let mut sim = Simulator::new(g.clone(), cfg, 8);
            sim.originate(origin, P);
            sim.run_to_quiescence().unwrap();
            sim.churn_mut().set_enabled(true);
            sim.withdraw(origin, P);
            sim.run_to_quiescence().unwrap();
            sim.originate(origin, P);
            sim.run_to_quiescence().unwrap();
            total[i] = sim.churn().total();
        }
        assert!(
            total[1] >= total[0],
            "WRATE ({}) produced less churn than NO-WRATE ({})",
            total[1],
            total[0]
        );
    }

    #[test]
    fn cost_counts_are_exactly_repeatable_and_monotone() {
        let (g, ids) = chain_graph();
        let run = || {
            let mut sim = Simulator::new(g.clone(), BgpConfig::default(), 21);
            sim.originate(ids[4], P);
            sim.run_to_quiescence().unwrap();
            let mid = sim.cost_counts();
            sim.withdraw(ids[4], P);
            sim.run_to_quiescence().unwrap();
            (mid, sim.cost_counts())
        };
        let (mid_a, end_a) = run();
        let (mid_b, end_b) = run();
        assert_eq!(mid_a, mid_b, "same seed, same op counts");
        assert_eq!(end_a, end_b);
        // Monotone: the DOWN phase only adds work.
        let delta = end_a.since(&mid_a);
        assert!(delta.deliveries > 0, "withdrawals were delivered");
        assert_eq!(end_a.since(&delta), mid_a);
        // Conservation at quiescence: every push was popped.
        assert_eq!(end_a.queue_pushes, end_a.queue_pops);
        assert!(end_a.decision_runs > 0);
        assert!(end_a.mrai_armed >= end_a.mrai_fired);
    }

    #[test]
    fn template_shares_one_session_slab_across_nodes_and_instances() {
        let (g, ids) = chain_graph();
        let template = SimTemplate::new(Arc::new(g), BgpConfig::default());
        let slab = Arc::clone(template.slab());
        assert_eq!(slab.len(), 6);
        assert_eq!(slab.total_sessions(), 10, "5 links, 2 sessions each");
        let mut a = template.instantiate(1);
        let b = template.instantiate(2);
        for sim in [&a, &b] {
            for &id in &ids {
                assert!(
                    Arc::ptr_eq(sim.node(id).slab(), &slab),
                    "{id} must borrow the template slab, not own a copy"
                );
            }
        }
        // The flat epoch table spans the global session id space and the
        // stamped-out simulator still converges.
        a.originate(ids[4], P);
        a.run_to_quiescence().unwrap();
        assert!(a.node(ids[0]).best_route(P).is_some());
    }

    #[test]
    fn wheel_slot_bits_override_changes_the_backend_not_the_results() {
        let (g, ids) = chain_graph();
        let g = Arc::new(g);
        let mut template = SimTemplate::new(Arc::clone(&g), BgpConfig::default());
        let run = |t: &SimTemplate| {
            let mut sim = t.instantiate(5);
            sim.churn_mut().set_enabled(true);
            sim.originate(ids[4], P);
            sim.run_to_quiescence().unwrap();
            (sim.queue_backend(), sim.churn().total(), sim.now())
        };
        let (default_backend, churn_default, now_default) = run(&template);
        assert!(matches!(default_backend, QueueBackend::Wheel { .. }));
        template.set_wheel_slot_bits(Some(4));
        let (coarse_backend, churn_coarse, now_coarse) = run(&template);
        assert_eq!(coarse_backend, QueueBackend::Wheel { slot_bits: 4 });
        // Pop order is backend-invariant, so the simulation results are
        // too — only the op-count mix (cascades vs comparisons) moves.
        assert_eq!(churn_default, churn_coarse);
        assert_eq!(now_default, now_coarse);
    }

    #[test]
    fn cost_counts_report_arena_footprint_and_cascades() {
        let (g, ids) = chain_graph();
        let template = SimTemplate::new(Arc::new(g), BgpConfig::default());
        let mut sim = template.instantiate(17);
        let empty = sim.cost_counts().arena_bytes_reserved;
        assert!(empty > 0, "the session slab alone reserves bytes");
        sim.originate(ids[4], P);
        sim.run_to_quiescence().unwrap();
        let routed = sim.cost_counts();
        assert!(
            routed.arena_bytes_reserved > empty,
            "prefix rows grew the arenas: {} !> {empty}",
            routed.arena_bytes_reserved
        );
        // The wheel cascades on long waits (MRAI expiries sit several
        // levels up); the counter must flow through to OpCounts.
        assert!(routed.queue_cascades > 0, "expected wheel cascades");
    }

    #[test]
    fn event_budget_error_path() {
        let (g, ids) = chain_graph();
        let mut sim = Simulator::new(g, BgpConfig::default(), 9);
        sim.set_event_limit(3);
        sim.originate(ids[4], P);
        let err = sim.run_to_quiescence().unwrap_err();
        assert!(err.processed > 3);
        assert!(err.to_string().contains("did not quiesce"));
    }

    #[test]
    fn reset_routing_allows_fresh_event() {
        let (g, ids) = chain_graph();
        let mut sim = Simulator::new(g, BgpConfig::default(), 10);
        sim.originate(ids[4], P);
        sim.run_to_quiescence().unwrap();
        sim.reset_routing();
        assert!(sim.node(ids[0]).best_route(P).is_none());
        // A second event from a different origin works on the clean state.
        sim.originate(ids[5], Prefix(1));
        sim.run_to_quiescence().unwrap();
        assert!(sim.node(ids[0]).best_route(Prefix(1)).is_some());
    }

    #[test]
    #[should_panic(expected = "reset_routing while")]
    fn reset_rejects_pending_events() {
        let (g, ids) = chain_graph();
        let mut sim = Simulator::new(g, BgpConfig::default(), 11);
        sim.originate(ids[4], P);
        sim.reset_routing();
    }

    #[test]
    fn last_activity_precedes_final_timer_drain() {
        let (g, ids) = chain_graph();
        let mut sim = Simulator::new(g, BgpConfig::default(), 12);
        sim.originate(ids[4], P);
        let converged = sim.run_to_quiescence().unwrap();
        // Routing activity finishes within a couple of seconds of simulated
        // time; the queue then drains idle 22.5–30 s MRAI expiries.
        assert!(converged < SimTime::from_secs(5), "activity until {converged}");
        assert!(sim.now() >= SimTime::from_secs(20), "clock at {}", sim.now());
    }

    #[test]
    fn relationships_notwithstanding_no_valley_leaks() {
        // After convergence on a generated graph, check a policy safety
        // property: a node's best route learned from a peer or provider is
        // never exported to another peer/provider — verified indirectly:
        // peers/providers of a node N hold no path through N unless the
        // route is in N's customer branch.
        let g = generate(GrowthScenario::Baseline, 150, 13);
        let origin = g
            .node_ids()
            .find(|&id| g.node_type(id) == NodeType::C)
            .unwrap();
        let mut sim = Simulator::new(g, BgpConfig::default(), 14);
        sim.originate(origin, P);
        sim.run_to_quiescence().unwrap();
        let g = sim.graph();
        for id in g.node_ids() {
            if let Some((_, path)) = sim.node(id).best_route(P) {
                // Walk the path and verify it is valley-free: shapes are
                // up* (peer)? down*.
                let mut full = vec![id];
                full.extend_from_slice(path);
                let mut state = 0; // 0 = climbing, 1 = peered, 2 = descending
                for w in full.windows(2) {
                    // Path direction is from `id` toward origin; traffic
                    // flows that way, so classify each hop.
                    let rel = g.relationship(w[0], w[1]).expect("path uses real links");
                    state = match (state, rel) {
                        (0, Relationship::Provider) => 0,
                        (0, Relationship::Peer) => 1,
                        (0 | 1, Relationship::Customer) => 2,
                        (2, Relationship::Customer) => 2,
                        (s, r) => panic!("valley in path {full:?}: state {s}, hop {r:?}"),
                    };
                }
            }
        }
    }
}
