//! The C-event: the paper's canonical routing event (§4).
//!
//! *"Our main metric is the number of updates received at a node after
//! withdrawing a prefix from a C-type node, letting the network converge,
//! and then re-announcing the prefix again."*
//!
//! [`run_c_event`] performs the full protocol:
//!
//! 1. **warm-up** — the originator announces the prefix; the network
//!    converges; nothing is counted (the initial announcement is not part
//!    of the metric);
//! 2. **DOWN** — counting on; the originator withdraws; converge;
//! 3. **UP** — the originator re-announces; converge; counting off.
//!
//! The simulator is left converged with the prefix announced, so callers
//! can chain further phases or reset.

use bgpscale_bgp::Prefix;
use bgpscale_obs::costmodel::{OpCounts, PhaseCosts, PHASES};
use bgpscale_simkernel::SimDuration;
use bgpscale_topology::AsId;

use crate::sim::{EventBudgetExceeded, Simulator};

/// Aggregate measurements of one C-event.
#[derive(Clone, Copy, Debug)]
pub struct CEventOutcome {
    /// Total updates delivered network-wide during DOWN + UP.
    pub total_updates: u64,
    /// Withdrawal messages among them.
    pub withdrawals: u64,
    /// Wall time (simulated) from the withdrawal until the last routing
    /// activity of the DOWN phase.
    pub down_convergence: SimDuration,
    /// Simulated time from the re-announcement until the last routing
    /// activity of the UP phase.
    pub up_convergence: SimDuration,
    /// Exact operation counts attributed to each phase (warm-up, DOWN,
    /// UP), diffed from the simulator's monotone cost tallies at the
    /// phase boundaries. Integer-only and deterministic.
    pub phase_costs: PhaseCosts,
}

/// Runs one full C-event from `origin` for `prefix`. On return the
/// simulator's churn counters hold exactly this event's DOWN+UP counts
/// (any previous counts are cleared by this function).
///
/// # Errors
/// Propagates [`EventBudgetExceeded`] if any phase fails to quiesce.
pub fn run_c_event<O: bgpscale_obs::SimObserver>(
    sim: &mut Simulator<O>,
    origin: AsId,
    prefix: Prefix,
) -> Result<CEventOutcome, EventBudgetExceeded> {
    let cost_base = sim.cost_counts();

    // Phase 0: warm-up announcement, uncounted.
    sim.churn_mut().set_enabled(false);
    sim.originate(origin, prefix);
    sim.run_to_quiescence()?;
    let cost_warm = sim.cost_counts();

    sim.churn_mut().reset();
    sim.churn_mut().set_enabled(true);

    // Phase 1: DOWN.
    let down_start = sim.now();
    sim.withdraw(origin, prefix);
    let down_end = sim.run_to_quiescence()?;
    let cost_down = sim.cost_counts();

    // Phase 2: UP.
    let up_start = sim.now();
    sim.originate(origin, prefix);
    let up_end = sim.run_to_quiescence()?;
    let cost_up = sim.cost_counts();

    sim.churn_mut().set_enabled(false);
    let phase_costs: [OpCounts; PHASES] = [
        cost_warm.since(&cost_base),
        cost_down.since(&cost_warm),
        cost_up.since(&cost_down),
    ];
    Ok(CEventOutcome {
        total_updates: sim.churn().total(),
        withdrawals: sim.churn().withdrawals(),
        down_convergence: down_end.saturating_since(down_start),
        up_convergence: up_end.saturating_since(up_start),
        phase_costs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpscale_bgp::BgpConfig;
    use bgpscale_topology::{generate, GrowthScenario, NodeType};

    fn baseline_sim(n: usize, seed: u64) -> (Simulator, AsId) {
        let g = generate(GrowthScenario::Baseline, n, seed);
        let origin = g
            .node_ids()
            .find(|&id| g.node_type(id) == NodeType::C)
            .expect("baseline always has C nodes");
        (Simulator::new(g, BgpConfig::default(), seed ^ 0xC0FFEE), origin)
    }

    #[test]
    fn c_event_counts_only_down_and_up() {
        let (mut sim, origin) = baseline_sim(150, 1);
        let outcome = run_c_event(&mut sim, origin, Prefix(0)).unwrap();
        assert!(outcome.total_updates > 0);
        assert_eq!(outcome.total_updates, sim.churn().total());
        // Under NO-WRATE the DOWN phase is all withdrawals, the UP phase
        // all announcements; both must be present.
        assert!(outcome.withdrawals > 0);
        assert!(outcome.withdrawals < outcome.total_updates);
    }

    #[test]
    fn network_is_converged_and_announced_after_event() {
        let (mut sim, origin) = baseline_sim(150, 2);
        run_c_event(&mut sim, origin, Prefix(0)).unwrap();
        // Every node routes the prefix again.
        let ids: Vec<_> = sim.graph().node_ids().collect();
        for id in ids {
            assert!(sim.node(id).best_route(Prefix(0)).is_some(), "{id}");
        }
    }

    #[test]
    fn convergence_times_are_positive_and_bounded() {
        let (mut sim, origin) = baseline_sim(150, 3);
        let o = run_c_event(&mut sim, origin, Prefix(0)).unwrap();
        assert!(!o.down_convergence.is_zero());
        assert!(!o.up_convergence.is_zero());
        // NO-WRATE: convergence takes well under a minute of simulated
        // time (withdrawals propagate at processing speed).
        assert!(o.down_convergence < SimDuration::from_secs(60));
        assert!(o.up_convergence < SimDuration::from_secs(60));
    }

    #[test]
    fn phase_costs_attribute_work_to_all_three_phases() {
        let (mut sim, origin) = baseline_sim(150, 5);
        let before = sim.cost_counts();
        let o = run_c_event(&mut sim, origin, Prefix(0)).unwrap();
        // Every phase does real work.
        for (i, phase) in o.phase_costs.iter().enumerate() {
            assert!(phase.deliveries > 0, "phase {i} delivered nothing");
            assert!(phase.decision_runs > 0, "phase {i} ran no decisions");
        }
        // The phases partition exactly the work done during the event.
        let mut sum = OpCounts::default();
        for phase in &o.phase_costs {
            sum.add(phase);
        }
        assert_eq!(sum, sim.cost_counts().since(&before));
        // DOWN+UP deliveries equal the churn counter's total.
        assert_eq!(
            o.phase_costs[1].deliveries + o.phase_costs[2].deliveries,
            o.total_updates
        );
    }

    #[test]
    fn repeated_events_after_reset_are_statistically_identical() {
        // The same originator after reset_routing produces the exact same
        // counts only if the RNG state is also identical — it is not
        // (service times advance the stream), so totals may differ
        // slightly; but the routing fixpoint must be identical.
        let (mut sim, origin) = baseline_sim(150, 4);
        run_c_event(&mut sim, origin, Prefix(0)).unwrap();
        let route_a: Vec<_> = sim
            .graph()
            .node_ids()
            .map(|id| sim.node(id).best_route(Prefix(0)).map(|(n, p)| (n, p.clone())))
            .collect();
        sim.reset_routing();
        sim.churn_mut().reset();
        run_c_event(&mut sim, origin, Prefix(1)).unwrap();
        let route_b: Vec<_> = sim
            .graph()
            .node_ids()
            .map(|id| sim.node(id).best_route(Prefix(1)).map(|(n, p)| (n, p.clone())))
            .collect();
        assert_eq!(route_a, route_b, "fixpoint must not depend on timing");
    }
}
