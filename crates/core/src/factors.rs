//! The m/q/e factor decomposition of the paper's Eq. 1.
//!
//! For a node X and a neighbor class y ∈ {customer, peer, provider}:
//!
//! * `m_{y,X}` — the number of neighbors of class y,
//! * `q_{y,X}` — the fraction of those that sent at least one update
//!   during the C-event ("active" neighbors),
//! * `e_{y,X}` — the mean number of updates per active neighbor,
//!
//! so that `U(X) = Σ_y m·q·e` holds **exactly** per node and per event.
//! The paper uses the growth of these factors with n to explain *why*
//! churn grows (Figs. 5–7, 11, 12).

use bgpscale_topology::{AsId, NodeType, Relationship};

use crate::sim::Simulator;

/// Index of a relationship in factor arrays: customer = 0, peer = 1,
/// provider = 2 (the paper's `c`, `p`, `d` subscripts).
pub fn rel_index(rel: Relationship) -> usize {
    match rel {
        Relationship::Customer => 0,
        Relationship::Peer => 1,
        Relationship::Provider => 2,
    }
}

/// Per-node raw factor measurements for one C-event.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeFactors {
    /// Neighbor count per relationship class.
    pub m: [u32; 3],
    /// Neighbors per class that sent ≥ 1 update.
    pub active: [u32; 3],
    /// Updates received per class.
    pub updates: [u64; 3],
}

impl NodeFactors {
    /// Total updates received (`U` for this node and event).
    pub fn total_updates(&self) -> u64 {
        self.updates.iter().sum()
    }

    /// `q` for one class, `None` when the node has no such neighbors.
    // detflow::allow(panic-surface, reason = "rel_index maps the three Relationship variants onto fixed [_; 3] arrays")
    pub fn q(&self, rel: Relationship) -> Option<f64> {
        let i = rel_index(rel);
        (self.m[i] > 0).then(|| self.active[i] as f64 / self.m[i] as f64)
    }

    /// `e` for one class, `None` when no neighbor of the class was active.
    // detflow::allow(panic-surface, reason = "rel_index maps the three Relationship variants onto fixed [_; 3] arrays")
    pub fn e(&self, rel: Relationship) -> Option<f64> {
        let i = rel_index(rel);
        (self.active[i] > 0).then(|| self.updates[i] as f64 / self.active[i] as f64)
    }

    /// Verifies Eq. 1: `Σ_y m·q·e == U` (trivially true by construction;
    /// exposed for tests and doc examples).
    pub fn eq1_holds(&self) -> bool {
        let mut sum = 0.0;
        for rel in Relationship::ALL {
            if let (Some(q), Some(e)) = (self.q(rel), self.e(rel)) {
                sum += self.m[rel_index(rel)] as f64 * q * e;
            }
        }
        (sum - self.total_updates() as f64).abs() < 1e-6
    }
}

/// Extracts the factors of `node` from the simulator's churn counters
/// (valid after a measured C-event, before the counters are reset).
pub fn node_factors<O: bgpscale_obs::SimObserver>(sim: &Simulator<O>, node: AsId) -> NodeFactors {
    let counts = sim.churn().node_counts(node);
    let sessions = sim.node(node).sessions();
    debug_assert_eq!(counts.len(), sessions.len());
    let mut f = NodeFactors::default();
    for (session, &count) in sessions.iter().zip(counts) {
        let i = rel_index(session.rel);
        f.m[i] += 1;
        if count > 0 {
            f.active[i] += 1;
            f.updates[i] += count as u64;
        }
    }
    f
}

/// Factor means for one node type, aggregated over nodes and events.
///
/// `m`, `q`, `e`, `u` are the quantities plotted in Figs. 5–7: per-node
/// values averaged over all `(node of this type, event)` pairs for which
/// they are defined (`q` needs `m > 0`; `e` needs an active neighbor).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FactorMeans {
    /// Mean neighbor count `m_{y,X}`.
    pub m: f64,
    /// Mean activation probability `q_{y,X}`.
    pub q: f64,
    /// Mean updates per active neighbor `e_{y,X}`.
    pub e: f64,
    /// Mean updates received from this class, `U_y(X) = mean(m·q·e)`.
    pub u: f64,
}

/// Accumulates per-node factors into per-type means across events.
#[derive(Clone, Debug)]
pub struct FactorAccumulator {
    /// Sums indexed `[node_type][rel]`.
    m_sum: [[f64; 3]; 4],
    m_cnt: [[u64; 3]; 4],
    q_sum: [[f64; 3]; 4],
    q_cnt: [[u64; 3]; 4],
    e_sum: [[f64; 3]; 4],
    e_cnt: [[u64; 3]; 4],
    u_sum: [[f64; 3]; 4],
    u_total_sum: [f64; 4],
    /// Number of (node, event) samples per type.
    samples: [u64; 4],
}

/// Index of a node type in aggregate arrays: T=0, M=1, CP=2, C=3.
pub fn type_index(ty: NodeType) -> usize {
    match ty {
        NodeType::T => 0,
        NodeType::M => 1,
        NodeType::Cp => 2,
        NodeType::C => 3,
    }
}

impl Default for FactorAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl FactorAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        FactorAccumulator {
            m_sum: Default::default(),
            m_cnt: Default::default(),
            q_sum: Default::default(),
            q_cnt: Default::default(),
            e_sum: Default::default(),
            e_cnt: Default::default(),
            u_sum: Default::default(),
            u_total_sum: Default::default(),
            samples: Default::default(),
        }
    }

    /// Folds in one node's factors for one event. The event originator
    /// itself should be excluded by the caller (it *causes* the event
    /// rather than observing it).
    // detflow::allow(panic-surface, reason = "type_index and rel_index map enum variants onto fixed [_; 4] / [_; 3] accumulator arrays")
    pub fn add(&mut self, ty: NodeType, f: &NodeFactors) {
        let t = type_index(ty);
        self.samples[t] += 1;
        self.u_total_sum[t] += f.total_updates() as f64;
        for rel in Relationship::ALL {
            let r = rel_index(rel);
            self.m_sum[t][r] += f.m[r] as f64;
            self.m_cnt[t][r] += 1;
            if let Some(q) = f.q(rel) {
                self.q_sum[t][r] += q;
                self.q_cnt[t][r] += 1;
            }
            if let Some(e) = f.e(rel) {
                self.e_sum[t][r] += e;
                self.e_cnt[t][r] += 1;
            }
            self.u_sum[t][r] += f.updates[r] as f64;
        }
    }

    /// Folds another accumulator's samples into this one.
    ///
    /// Used by the parallel harness: each C-event produces a partial
    /// accumulator, and the partials are merged **in event-index order**
    /// so that the final f64 sums are independent of worker scheduling.
    /// `merge` adds the partial's sums as-is, so
    /// `a.merge(&b)` after `b.add(..)` equals calling `a.add(..)` with the
    /// same samples only when each partial holds one event — which is
    /// exactly how the harness uses it.
    pub fn merge(&mut self, other: &FactorAccumulator) {
        for t in 0..4 {
            self.u_total_sum[t] += other.u_total_sum[t];
            self.samples[t] += other.samples[t];
            for r in 0..3 {
                self.m_sum[t][r] += other.m_sum[t][r];
                self.m_cnt[t][r] += other.m_cnt[t][r];
                self.q_sum[t][r] += other.q_sum[t][r];
                self.q_cnt[t][r] += other.q_cnt[t][r];
                self.e_sum[t][r] += other.e_sum[t][r];
                self.e_cnt[t][r] += other.e_cnt[t][r];
                self.u_sum[t][r] += other.u_sum[t][r];
            }
        }
    }

    /// Number of (node, event) samples folded for a type.
    pub fn samples(&self, ty: NodeType) -> u64 {
        self.samples[type_index(ty)]
    }

    /// Mean total updates `U(X)` for a type, or 0 with no samples.
    pub fn mean_total(&self, ty: NodeType) -> f64 {
        let t = type_index(ty);
        if self.samples[t] == 0 {
            0.0
        } else {
            self.u_total_sum[t] / self.samples[t] as f64
        }
    }

    /// The factor means for `(type, relationship)`.
    pub fn means(&self, ty: NodeType, rel: Relationship) -> FactorMeans {
        let t = type_index(ty);
        let r = rel_index(rel);
        let div = |sum: f64, cnt: u64| if cnt == 0 { 0.0 } else { sum / cnt as f64 };
        FactorMeans {
            m: div(self.m_sum[t][r], self.m_cnt[t][r]),
            q: div(self.q_sum[t][r], self.q_cnt[t][r]),
            e: div(self.e_sum[t][r], self.e_cnt[t][r]),
            u: div(self.u_sum[t][r], self.samples[t]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_and_type_indices_are_stable() {
        assert_eq!(rel_index(Relationship::Customer), 0);
        assert_eq!(rel_index(Relationship::Peer), 1);
        assert_eq!(rel_index(Relationship::Provider), 2);
        assert_eq!(type_index(NodeType::T), 0);
        assert_eq!(type_index(NodeType::C), 3);
    }

    #[test]
    fn node_factor_derivations() {
        let f = NodeFactors {
            m: [4, 2, 1],
            active: [2, 0, 1],
            updates: [6, 0, 3],
        };
        assert_eq!(f.total_updates(), 9);
        assert_eq!(f.q(Relationship::Customer), Some(0.5));
        assert_eq!(f.e(Relationship::Customer), Some(3.0));
        assert_eq!(f.q(Relationship::Peer), Some(0.0));
        assert_eq!(f.e(Relationship::Peer), None);
        assert_eq!(f.q(Relationship::Provider), Some(1.0));
        assert!(f.eq1_holds());
    }

    #[test]
    fn q_undefined_without_neighbors() {
        let f = NodeFactors::default();
        assert_eq!(f.q(Relationship::Customer), None);
        assert_eq!(f.total_updates(), 0);
        assert!(f.eq1_holds());
    }

    #[test]
    fn accumulator_averages_over_samples() {
        let mut acc = FactorAccumulator::new();
        acc.add(
            NodeType::T,
            &NodeFactors {
                m: [2, 0, 0],
                active: [2, 0, 0],
                updates: [4, 0, 0],
            },
        );
        acc.add(
            NodeType::T,
            &NodeFactors {
                m: [4, 0, 0],
                active: [1, 0, 0],
                updates: [2, 0, 0],
            },
        );
        assert_eq!(acc.samples(NodeType::T), 2);
        assert_eq!(acc.mean_total(NodeType::T), 3.0);
        let fm = acc.means(NodeType::T, Relationship::Customer);
        assert_eq!(fm.m, 3.0);
        assert_eq!(fm.q, (1.0 + 0.25) / 2.0);
        assert_eq!(fm.e, 2.0);
        assert_eq!(fm.u, 3.0);
        // No peer samples ever defined.
        let peer = acc.means(NodeType::T, Relationship::Peer);
        assert_eq!(peer.e, 0.0);
    }

    #[test]
    fn merge_of_singleton_partials_equals_direct_adds() {
        let samples = [
            NodeFactors { m: [2, 1, 0], active: [2, 0, 0], updates: [4, 0, 0] },
            NodeFactors { m: [4, 0, 2], active: [1, 0, 2], updates: [2, 0, 6] },
            NodeFactors { m: [1, 1, 1], active: [1, 1, 1], updates: [3, 1, 2] },
        ];
        let mut direct = FactorAccumulator::new();
        for f in &samples {
            direct.add(NodeType::M, f);
        }
        let mut merged = FactorAccumulator::new();
        for f in &samples {
            let mut partial = FactorAccumulator::new();
            partial.add(NodeType::M, f);
            merged.merge(&partial);
        }
        assert_eq!(merged.samples(NodeType::M), direct.samples(NodeType::M));
        assert_eq!(merged.mean_total(NodeType::M), direct.mean_total(NodeType::M));
        for rel in Relationship::ALL {
            assert_eq!(merged.means(NodeType::M, rel), direct.means(NodeType::M, rel));
        }
    }

    #[test]
    fn empty_type_reports_zero() {
        let acc = FactorAccumulator::new();
        assert_eq!(acc.mean_total(NodeType::M), 0.0);
        assert_eq!(acc.samples(NodeType::M), 0);
    }
}
