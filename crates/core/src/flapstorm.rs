//! Flap storms: a pathologically unstable origin.
//!
//! The earliest BGP instability studies (Labovitz et al., cited as \[20\])
//! found that a small set of persistently flapping prefixes generated
//! most Internet churn; Route Flap Damping (RFC 2439) was the response.
//! This workload drives an origin through `flaps` withdraw/re-announce
//! cycles at a fixed period and measures how far the instability
//! propagates — with and without damping ([`bgpscale_bgp::rfd`]).

use bgpscale_bgp::Prefix;
use bgpscale_simkernel::SimDuration;
use bgpscale_topology::AsId;

use crate::sim::{EventBudgetExceeded, Simulator};

/// Flap-storm shape.
#[derive(Clone, Copy, Debug)]
pub struct FlapStormConfig {
    /// Number of withdraw + re-announce cycles.
    pub flaps: usize,
    /// Time between consecutive flap actions (a withdrawal and the
    /// following re-announcement are one period apart).
    pub period: SimDuration,
}

impl Default for FlapStormConfig {
    fn default() -> Self {
        FlapStormConfig {
            flaps: 8,
            period: SimDuration::from_secs(40),
        }
    }
}

/// What a flap storm did to the network.
#[derive(Clone, Copy, Debug)]
pub struct FlapStormOutcome {
    /// Updates delivered network-wide during the storm (from the first
    /// withdrawal until the network converged after the storm).
    pub total_updates: u64,
    /// Nodes holding a damped (suppressed) copy of the prefix route at
    /// the end of the storm, before reuse timers fire.
    pub suppressed_nodes: usize,
    /// Nodes without a route right after the storm converged (damping
    /// can leave parts of the network routeless until reuse).
    pub unreachable_after_storm: usize,
    /// Nodes without a route after every damping reuse timer fired.
    pub unreachable_after_reuse: usize,
}

/// Runs a flap storm from `origin` for `prefix`. The prefix must not yet
/// be announced; the initial announcement and convergence are the
/// uncounted warm-up. On return the network is fully quiesced (all reuse
/// timers included) and the churn counters hold the storm's counts.
///
/// # Errors
/// Propagates [`EventBudgetExceeded`] from any phase.
pub fn run_flap_storm<O: bgpscale_obs::SimObserver>(
    sim: &mut Simulator<O>,
    origin: AsId,
    prefix: Prefix,
    cfg: &FlapStormConfig,
) -> Result<FlapStormOutcome, EventBudgetExceeded> {
    // Warm-up.
    sim.churn_mut().set_enabled(false);
    sim.originate(origin, prefix);
    sim.run_to_quiescence()?;
    sim.churn_mut().reset();
    sim.churn_mut().set_enabled(true);

    // The storm: withdraw / re-announce at the configured cadence,
    // letting the network process whatever fits into each period.
    for _ in 0..cfg.flaps {
        sim.withdraw(origin, prefix);
        let deadline = sim.now() + cfg.period;
        sim.run_until(deadline)?;
        sim.originate(origin, prefix);
        let deadline = sim.now() + cfg.period;
        sim.run_until(deadline)?;
    }
    // Let the network settle (MRAI drains; reuse timers may still be far
    // out, so measure suppression before draining them).
    sim.run_until(sim.now() + SimDuration::from_secs(120))?;

    let suppressed_nodes = count_suppressed(sim, prefix);
    let unreachable_after_storm = count_unreachable(sim, origin, prefix);

    // Drain everything, including damping reuse wake-ups (potentially
    // hours of simulated time — cheap in events).
    sim.run_to_quiescence()?;
    let unreachable_after_reuse = count_unreachable(sim, origin, prefix);

    sim.churn_mut().set_enabled(false);
    Ok(FlapStormOutcome {
        total_updates: sim.churn().total(),
        suppressed_nodes,
        unreachable_after_storm,
        unreachable_after_reuse,
    })
}

fn count_suppressed<O: bgpscale_obs::SimObserver>(sim: &Simulator<O>, prefix: Prefix) -> usize {
    sim.graph()
        .node_ids()
        .filter(|&id| {
            let node = sim.node(id);
            (0..node.sessions().len() as u32).any(|slot| node.is_suppressed(slot, prefix))
        })
        .count()
}

fn count_unreachable<O: bgpscale_obs::SimObserver>(sim: &Simulator<O>, origin: AsId, prefix: Prefix) -> usize {
    sim.graph()
        .node_ids()
        .filter(|&id| id != origin && sim.node(id).best_route(prefix).is_none())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpscale_bgp::rfd::RfdConfig;
    use bgpscale_bgp::BgpConfig;
    use bgpscale_topology::{generate, GrowthScenario, NodeType};

    fn storm(n: usize, seed: u64, rfd: bool) -> FlapStormOutcome {
        let g = generate(GrowthScenario::Baseline, n, seed);
        let origin = g
            .node_ids()
            .find(|&id| g.node_type(id) == NodeType::C)
            .unwrap();
        let bgp = BgpConfig {
            rfd: rfd.then(RfdConfig::default),
            ..BgpConfig::default()
        };
        let mut sim = Simulator::new(g, bgp, seed ^ 0xF1A9);
        run_flap_storm(&mut sim, origin, Prefix(0), &FlapStormConfig::default()).unwrap()
    }

    #[test]
    fn storm_without_damping_never_suppresses() {
        let o = storm(150, 1, false);
        assert_eq!(o.suppressed_nodes, 0);
        assert_eq!(o.unreachable_after_storm, 0, "no damping: converged UP");
        assert_eq!(o.unreachable_after_reuse, 0);
        assert!(o.total_updates > 0);
    }

    #[test]
    fn storm_with_damping_suppresses_and_recovers() {
        let o = storm(150, 1, true);
        assert!(
            o.suppressed_nodes > 0,
            "an 8-cycle storm must trip RFC 2439 thresholds somewhere"
        );
        assert_eq!(
            o.unreachable_after_reuse, 0,
            "after reuse timers fire everyone must route again"
        );
    }

    #[test]
    fn damping_reduces_storm_churn() {
        let plain = storm(150, 2, false);
        let damped = storm(150, 2, true);
        assert!(
            (damped.total_updates as f64) < 0.9 * plain.total_updates as f64,
            "RFD {} vs plain {}: damping must absorb flaps",
            damped.total_updates,
            plain.total_updates
        );
    }

    #[test]
    fn storm_is_deterministic() {
        let a = storm(120, 3, true);
        let b = storm(120, 3, true);
        assert_eq!(a.total_updates, b.total_updates);
        assert_eq!(a.suppressed_nodes, b.suppressed_nodes);
    }
}
