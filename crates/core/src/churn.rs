//! Churn accounting: who received how many updates from whom.
//!
//! The collector mirrors the paper's measurement methodology: every UPDATE
//! **received** counts one unit, attributed to the `(receiver, neighbor
//! session)` pair so that the m/q/e factors of Eq. 1 can be extracted
//! afterwards ([`crate::factors`]). Counting happens at delivery (arrival
//! in the input queue), matching "the number of routing updates received
//! by nodes" (§2).

use bgpscale_simkernel::{SimDuration, SimTime};
use bgpscale_topology::{AsGraph, AsId};

/// A binned time series of network-wide update arrivals, for burstiness
/// analysis (the paper's intro observes peak rates up to ~1000× daily
/// averages; this measures the analogous within-convergence peaks).
#[derive(Clone, Debug)]
pub struct Timeline {
    origin: SimTime,
    bin: SimDuration,
    counts: Vec<u32>,
}

impl Timeline {
    fn new(origin: SimTime, bin: SimDuration) -> Timeline {
        assert!(!bin.is_zero(), "timeline bin must be positive");
        Timeline {
            origin,
            bin,
            counts: Vec::new(),
        }
    }

    // detflow::allow(panic-surface, reason = "counts is resized to idx + 1 on the line before the index")
    fn record(&mut self, now: SimTime) {
        let idx = (now.saturating_since(self.origin).as_micros() / self.bin.as_micros()) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// The bin width.
    pub fn bin(&self) -> SimDuration {
        self.bin
    }

    /// Updates per bin, starting at the timeline origin.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// The busiest bin's count.
    pub fn peak(&self) -> u32 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Peak-to-mean ratio over non-empty time (0 if nothing recorded).
    pub fn peak_to_mean(&self) -> f64 { // detlint::allow(float-accum, reason = "display-only ratio derived from exact integer bins; not part of the serialized report")
        let total: u64 = self.counts.iter().map(|&c| c as u64).sum();
        if total == 0 || self.counts.is_empty() {
            return 0.0;
        }
        let mean = total as f64 / self.counts.len() as f64; // detlint::allow(float-accum, reason = "single division of exact integers at render time")
        self.peak() as f64 / mean // detlint::allow(float-accum, reason = "single division of exact integers at render time")
    }
}

/// Per-(receiver, neighbor-slot) update counters with a global toggle.
#[derive(Clone, Debug)]
pub struct ChurnCollector {
    enabled: bool,
    /// `per_edge[node][slot]` = updates received by `node` from the
    /// neighbor at `slot` while enabled.
    per_edge: Vec<Vec<u32>>,
    /// Withdrawals among those (announcements = total − withdrawals).
    withdrawals: u64,
    total: u64,
    /// Optional arrival-time histogram.
    timeline: Option<Timeline>,
}

impl ChurnCollector {
    /// Creates a disabled collector sized for `graph`.
    pub fn new(graph: &AsGraph) -> ChurnCollector {
        ChurnCollector {
            enabled: false,
            per_edge: graph
                .node_ids()
                .map(|id| vec![0u32; graph.degree(id)])
                .collect(),
            withdrawals: 0,
            total: 0,
            timeline: None,
        }
    }

    /// Enables or disables counting. Disabled deliveries are invisible.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// True while counting.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records one delivered update (called by the simulator).
    #[inline]
    // detflow::allow(panic-surface, reason = "per_edge is sized one row per node and one slot per neighbor at construction, and the simulator only passes slot_of-minted slots")
    pub fn record(&mut self, to: AsId, slot: u32, is_withdrawal: bool, now: SimTime) {
        if self.enabled {
            self.per_edge[to.index()][slot as usize] += 1;
            self.total += 1;
            self.withdrawals += u64::from(is_withdrawal);
            if let Some(tl) = &mut self.timeline {
                tl.record(now);
            }
        }
    }

    /// Starts recording a per-bin arrival timeline anchored at `origin`.
    /// Replaces any previous timeline.
    pub fn start_timeline(&mut self, origin: SimTime, bin: SimDuration) {
        self.timeline = Some(Timeline::new(origin, bin));
    }

    /// Stops timeline recording and returns it, if one was active.
    pub fn take_timeline(&mut self) -> Option<Timeline> {
        self.timeline.take()
    }

    /// The active timeline, if any.
    pub fn timeline(&self) -> Option<&Timeline> {
        self.timeline.as_ref()
    }

    /// Total updates recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Withdrawals among [`ChurnCollector::total`].
    pub fn withdrawals(&self) -> u64 {
        self.withdrawals
    }

    /// Announcements among [`ChurnCollector::total`].
    pub fn announcements(&self) -> u64 {
        self.total - self.withdrawals
    }

    /// Per-neighbor-slot counts for `node`, in session order.
    pub fn node_counts(&self, node: AsId) -> &[u32] {
        &self.per_edge[node.index()]
    }

    /// Total updates received by `node`.
    pub fn node_total(&self, node: AsId) -> u64 {
        self.per_edge[node.index()].iter().map(|&c| c as u64).sum()
    }

    /// Zeroes all counters (does not change the enabled flag).
    pub fn reset(&mut self) {
        for row in &mut self.per_edge {
            row.fill(0);
        }
        self.total = 0;
        self.withdrawals = 0;
        if let Some(tl) = &mut self.timeline {
            *tl = Timeline::new(tl.origin, tl.bin);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpscale_topology::{NodeType, RegionSet};

    fn tiny_graph() -> AsGraph {
        let mut g = AsGraph::new();
        let r = RegionSet::all(1);
        let t = g.add_node(NodeType::T, r);
        let c1 = g.add_node(NodeType::C, r);
        let c2 = g.add_node(NodeType::C, r);
        g.add_transit_link(c1, t);
        g.add_transit_link(c2, t);
        g
    }

    #[test]
    fn disabled_collector_ignores_records() {
        let g = tiny_graph();
        let mut c = ChurnCollector::new(&g);
        c.record(AsId(0), 0, false, SimTime::ZERO);
        assert_eq!(c.total(), 0);
        assert_eq!(c.node_total(AsId(0)), 0);
    }

    #[test]
    fn enabled_collector_attributes_per_slot() {
        let g = tiny_graph();
        let mut c = ChurnCollector::new(&g);
        c.set_enabled(true);
        c.record(AsId(0), 0, false, SimTime::ZERO);
        c.record(AsId(0), 0, true, SimTime::ZERO);
        c.record(AsId(0), 1, false, SimTime::ZERO);
        assert_eq!(c.total(), 3);
        assert_eq!(c.withdrawals(), 1);
        assert_eq!(c.announcements(), 2);
        assert_eq!(c.node_counts(AsId(0)), &[2, 1]);
        assert_eq!(c.node_total(AsId(0)), 3);
        assert_eq!(c.node_total(AsId(1)), 0);
    }

    #[test]
    fn reset_zeroes_but_keeps_enabled() {
        let g = tiny_graph();
        let mut c = ChurnCollector::new(&g);
        c.set_enabled(true);
        c.record(AsId(1), 0, false, SimTime::ZERO);
        c.reset();
        assert_eq!(c.total(), 0);
        assert_eq!(c.node_counts(AsId(1)), &[0]);
        assert!(c.enabled());
    }

    #[test]
    fn timeline_bins_arrivals() {
        let g = tiny_graph();
        let mut c = ChurnCollector::new(&g);
        c.set_enabled(true);
        c.start_timeline(SimTime::ZERO, SimDuration::from_secs(1));
        // Two in the first second, one at t = 2.5 s.
        c.record(AsId(0), 0, false, SimTime::from_millis(100));
        c.record(AsId(0), 0, false, SimTime::from_millis(900));
        c.record(AsId(0), 1, false, SimTime::from_millis(2_500));
        let tl = c.timeline().unwrap();
        assert_eq!(tl.counts(), &[2, 0, 1]);
        assert_eq!(tl.peak(), 2);
        assert!((tl.peak_to_mean() - 2.0).abs() < 1e-12);
        // Reset keeps the timeline active but clears it.
        c.reset();
        assert_eq!(c.timeline().unwrap().counts().len(), 0);
        assert_eq!(c.timeline().unwrap().peak_to_mean(), 0.0);
        // take removes it.
        assert!(c.take_timeline().is_some());
        assert!(c.timeline().is_none());
    }

    #[test]
    fn rows_match_node_degrees() {
        let g = tiny_graph();
        let c = ChurnCollector::new(&g);
        assert_eq!(c.node_counts(AsId(0)).len(), 2);
        assert_eq!(c.node_counts(AsId(1)).len(), 1);
    }
}
