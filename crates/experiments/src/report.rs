//! Report rendering: aligned text tables, CSV export, and shape claims.

use std::fmt::Write as _;

/// One table of a figure: a header row plus data rows.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table caption (e.g. `"U(X) per C-event"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows, already formatted.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given caption and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width does not match the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {} in table '{}'",
            row.len(),
            self.headers.len(),
            self.title
        );
        self.rows.push(row);
    }

    /// Renders with aligned columns (first column left-aligned, the rest
    /// right-aligned, as is conventional for numeric tables).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cell.chars().count());
                if i == 0 {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                }
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Renders as CSV (RFC-4180-ish: fields with commas or quotes are
    /// quoted).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| field(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| field(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// One qualitative claim from the paper, evaluated against fresh output.
#[derive(Clone, Debug)]
pub struct Claim {
    /// The statement, quoted or paraphrased from the paper.
    pub statement: String,
    /// Whether this run reproduced it.
    pub holds: bool,
}

/// A fully regenerated table or figure.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Identifier, e.g. `"fig8"` or `"table1"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// The data tables.
    pub tables: Vec<Table>,
    /// Shape claims evaluated on this run.
    pub claims: Vec<Claim>,
}

impl Figure {
    /// Creates an empty figure shell.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Figure {
        Figure {
            id: id.into(),
            title: title.into(),
            tables: Vec::new(),
            claims: Vec::new(),
        }
    }

    /// Records a shape claim.
    pub fn claim(&mut self, statement: impl Into<String>, holds: bool) {
        self.claims.push(Claim {
            statement: statement.into(),
            holds,
        });
    }

    /// True if every claim held.
    pub fn all_claims_hold(&self) -> bool {
        self.claims.iter().all(|c| c.holds)
    }

    /// Renders the full figure: title, tables, claim checklist.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== {} — {} ===", self.id, self.title);
        for t in &self.tables {
            let _ = writeln!(out, "\n{}", t.render());
        }
        if !self.claims.is_empty() {
            let _ = writeln!(out, "Shape claims:");
            for c in &self.claims {
                let _ = writeln!(out, "  [{}] {}", if c.holds { "PASS" } else { "FAIL" }, c.statement);
            }
        }
        out
    }
}

/// Formats a float with 2 decimal places (the workhorse cell format).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 4 decimal places (probabilities, slopes).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Normalizes a series to its first element ("relative increase", the
/// y-axis of Figs. 6–8 and 11). Zero or missing first elements yield an
/// all-zero series.
pub fn relative_increase(series: &[f64]) -> Vec<f64> {
    match series.first() {
        Some(&first) if first != 0.0 => series.iter().map(|x| x / first).collect(),
        _ => vec![0.0; series.len()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo", &["n", "U(T)"]);
        t.push_row(vec!["1000".into(), "3.5".into()]);
        t.push_row(vec!["10000".into(), "45.25".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, separator, two rows.
        assert_eq!(lines.len(), 5);
        // Right-aligned numeric column: both rows end at the same column.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn csv_escapes_special_fields() {
        let mut t = Table::new("x", &["name", "value"]);
        t.push_row(vec!["with,comma".into(), "with\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn figure_renders_claims_with_status() {
        let mut f = Figure::new("fig0", "demo figure");
        f.claim("grass is green", true);
        f.claim("water is dry", false);
        let s = f.render();
        assert!(s.contains("[PASS] grass is green"));
        assert!(s.contains("[FAIL] water is dry"));
        assert!(!f.all_claims_hold());
    }

    #[test]
    fn relative_increase_normalizes_to_first() {
        assert_eq!(relative_increase(&[2.0, 4.0, 6.0]), vec![1.0, 2.0, 3.0]);
        assert_eq!(relative_increase(&[0.0, 4.0]), vec![0.0, 0.0]);
        assert_eq!(relative_increase(&[]), Vec::<f64>::new());
    }

    #[test]
    fn float_formatters() {
        assert_eq!(f2(3.21987), "3.22");
        assert_eq!(f4(0.000123), "0.0001");
    }
}
