//! `repro perf`: the CI perf-regression gate over the exact cost model.
//!
//! A **baseline** is a small checked-in JSON file under
//! `results/perf-baselines/` holding the total per-op-class counts of one
//! experiment cell (`<scenario>_n<N>.json`). Because the counts are exact
//! integers and a pure function of `(scenario, n, events, seed)`, the
//! comparison policy is two-tiered:
//!
//! * **deterministic op counts — exact equality.** Any drift is a real
//!   behavior change (more decision runs, more heap work, …) and must be
//!   either fixed or consciously re-blessed with `repro perf --bless`.
//! * **wall-clock seconds — a wide multiplicative band** (×/÷
//!   [`WALL_BAND`]). Wall time is recorded for context only; the band
//!   exists to catch pathological blowups (an accidental O(n²) that the
//!   op counts would also catch) without flaking on slow CI machines.
//!
//! Exit codes follow the repo-wide convention (`detlint --check`,
//! `repro --check`): 0 = pass, 1 = check failed, 2 = usage/config error
//! (baseline was recorded for different cell coordinates).
//!
//! `--perturb <seed>` deterministically inflates one op-class count
//! before comparison — CI uses it as a mutation gate proving the check
//! actually fails (exit exactly 1) when counts drift.

use std::path::{Path, PathBuf};

use bgpscale_core::{run_experiment_with_cost, ExperimentConfig};
use bgpscale_obs::costmodel::OpCounts;
use bgpscale_obs::{log, CostModel, SCHEMA_VERSION};
use bgpscale_simkernel::rng::hash64_pair;
use bgpscale_simkernel::Stopwatch;
use bgpscale_topology::GrowthScenario;

/// Wall-time sanity band: measured wall time must lie within
/// `[baseline / WALL_BAND, baseline · WALL_BAND]`. Deliberately huge —
/// the exact op counts are the real gate; this only catches order-of-
/// magnitude blowups.
pub const WALL_BAND: f64 = 25.0;

/// One perf cell to check or bless.
#[derive(Clone, Debug)]
pub struct PerfConfig {
    pub scenario: GrowthScenario,
    pub n: usize,
    pub events: usize,
    pub seed: u64,
    pub jobs: usize,
    /// Directory holding the checked-in baselines.
    pub baseline_dir: PathBuf,
    /// When `Some(seed)`, deterministically perturb one measured op count
    /// before comparison (the CI mutation gate).
    pub perturb: Option<u64>,
    /// When `Some(bits)`, run the cell on a timing wheel with that slot
    /// granularity instead of the default. A second mutation-gate axis:
    /// pop order (and thus every simulation result) is granularity-
    /// invariant, but the queue op-count mix is not, so a perturbed run
    /// against a default-granularity baseline must exit exactly 1.
    pub wheel_slot_bits: Option<u32>,
}

/// The measured side of one cell.
#[derive(Clone, Debug)]
pub struct PerfMeasurement {
    pub ops: OpCounts,
    pub phase_grand_totals: [u64; bgpscale_obs::PHASES],
    pub wall_s: f64,
    /// The full model, for `--costmodel-out`.
    pub cost: CostModel,
}

/// How a check ended; maps onto the process exit code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PerfVerdict {
    /// Exit 0.
    Pass,
    /// Exit 1 — counts drifted, wall time blew the band, or the baseline
    /// file is missing (the message carries the `--bless` hint).
    Fail(Vec<String>),
    /// Exit 2 — the baseline exists but was recorded for different cell
    /// coordinates or a different schema; comparing would be meaningless.
    ConfigError(String),
}

/// `<dir>/<scenario-lowercase>_n<N>.json`.
pub fn baseline_path(dir: &Path, scenario: GrowthScenario, n: usize) -> PathBuf {
    let name = scenario.to_string().to_lowercase().replace('-', "_");
    dir.join(format!("{name}_n{n}.json"))
}

fn cell_config(cfg: &PerfConfig) -> ExperimentConfig {
    ExperimentConfig {
        scenario: cfg.scenario,
        n: cfg.n,
        events: cfg.events,
        seed: cfg.seed,
        bgp: Default::default(),
        event_limit: None,
        wheel_slot_bits: cfg.wheel_slot_bits,
    }
}

/// Runs the cell and returns its measured cost model and wall time.
pub fn measure(cfg: &PerfConfig) -> PerfMeasurement {
    let started = Stopwatch::start();
    let (_report, cost) = run_experiment_with_cost(&cell_config(cfg), cfg.jobs.max(1));
    let wall_s = started.elapsed_secs_f64();
    let totals = cost.phase_totals();
    let mut phase_grand_totals = [0u64; bgpscale_obs::PHASES];
    for (slot, phase) in phase_grand_totals.iter_mut().zip(&totals) {
        *slot = phase.grand_total();
    }
    let mut ops = cost.total();
    if let Some(seed) = cfg.perturb {
        perturb_ops(&mut ops, seed);
    }
    PerfMeasurement {
        ops,
        phase_grand_totals,
        wall_s,
        cost,
    }
}

/// Deterministically inflates one op-class count: class index and bump
/// size both derive from `seed` via the repo's standard seed-fanout hash.
fn perturb_ops(ops: &mut OpCounts, seed: u64) {
    let idx = (hash64_pair(seed, 0xBAD) % OpCounts::FIELD_COUNT as u64) as usize;
    let bump = 1 + hash64_pair(seed, 0xB00) % 1_000;
    let class = OpCounts::field_names()[idx];
    let mut fields = ops.fields();
    fields[idx].1 += bump;
    *ops = OpCounts::from_fields(&fields);
    log!(Info, "perf: perturbing {class} by +{bump} (seed {seed})");
}

/// Renders the baseline document for one measured cell. Flat keys so the
/// checker can re-read it without a JSON parser dependency.
pub fn baseline_json(cfg: &PerfConfig, m: &PerfMeasurement) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    s.push_str(&format!("  \"scenario\": \"{}\",\n", cfg.scenario));
    s.push_str(&format!("  \"n\": {},\n", cfg.n));
    s.push_str(&format!("  \"events\": {},\n", cfg.events));
    s.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    s.push_str(&format!(
        "  \"wall_band\": {WALL_BAND},\n  \"wall_s\": {:.6},\n",
        m.wall_s
    ));
    s.push_str("  \"ops\": {\n");
    let fields = m.ops.fields();
    for (i, (name, value)) in fields.iter().enumerate() {
        s.push_str(&format!(
            "    \"{name}\": {value}{}\n",
            if i + 1 < fields.len() { "," } else { "" }
        ));
    }
    s.push_str("  },\n");
    s.push_str(&format!(
        "  \"phase_grand_totals\": [{}]\n",
        m.phase_grand_totals
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str("}\n");
    s
}

/// Extracts `"key": <integer>` from the flat baseline document.
fn json_u64(doc: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let at = doc.find(&needle)? + needle.len();
    let rest = &doc[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key": <float>`.
fn json_f64(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let at = doc.find(&needle)? + needle.len();
    let rest = &doc[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key": "<string>"`.
fn json_str<'a>(doc: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\": \"");
    let at = doc.find(&needle)? + needle.len();
    let rest = &doc[at..];
    rest.split('"').next()
}

/// Extracts `"key": [a, b, c]` of integers.
fn json_u64_array(doc: &str, key: &str) -> Option<Vec<u64>> {
    let needle = format!("\"{key}\": [");
    let at = doc.find(&needle)? + needle.len();
    let rest = &doc[at..];
    let end = rest.find(']')?;
    rest[..end]
        .split(',')
        .map(|v| v.trim().parse().ok())
        .collect()
}

/// Compares a measurement against the baseline document.
pub fn compare(cfg: &PerfConfig, m: &PerfMeasurement, baseline: &str) -> PerfVerdict {
    // Coordinate checks first: a mismatch means the comparison itself is
    // ill-posed (exit 2), not that performance regressed.
    match json_u64(baseline, "schema_version") {
        Some(v) if v == SCHEMA_VERSION as u64 => {}
        other => {
            return PerfVerdict::ConfigError(format!(
                "baseline schema_version {other:?} != {SCHEMA_VERSION}"
            ))
        }
    }
    for (key, want) in [
        ("n", cfg.n as u64),
        ("events", cfg.events as u64),
        ("seed", cfg.seed),
    ] {
        match json_u64(baseline, key) {
            Some(v) if v == want => {}
            other => {
                return PerfVerdict::ConfigError(format!(
                    "baseline {key} = {other:?}, this run uses {want} — \
                     re-bless or fix the invocation"
                ))
            }
        }
    }
    let scenario = cfg.scenario.to_string();
    if json_str(baseline, "scenario") != Some(scenario.as_str()) {
        return PerfVerdict::ConfigError(format!(
            "baseline scenario {:?} != {scenario}",
            json_str(baseline, "scenario")
        ));
    }

    let mut failures = Vec::new();
    // Tier 1: exact op-count equality.
    for (name, measured) in m.ops.fields() {
        match json_u64(baseline, name) {
            Some(expected) if expected == measured => {}
            Some(expected) => failures.push(format!(
                "op count drift: {name} = {measured}, baseline {expected} \
                 ({:+})",
                measured as i128 - expected as i128
            )),
            None => failures.push(format!("baseline is missing op class {name}")),
        }
    }
    match json_u64_array(baseline, "phase_grand_totals") {
        Some(expected) if expected == m.phase_grand_totals => {}
        other => failures.push(format!(
            "phase grand totals {:?} != baseline {other:?}",
            m.phase_grand_totals
        )),
    }
    // Tier 2: wall-time sanity band (wall-side, intentionally loose).
    if let Some(base_wall) = json_f64(baseline, "wall_s") {
        if base_wall > 0.0
            && (m.wall_s > base_wall * WALL_BAND || m.wall_s < base_wall / WALL_BAND)
        {
            failures.push(format!(
                "wall time {:.3}s outside ×/÷{WALL_BAND} band of baseline {base_wall:.3}s",
                m.wall_s
            ));
        }
    }
    if failures.is_empty() {
        PerfVerdict::Pass
    } else {
        PerfVerdict::Fail(failures)
    }
}

/// Runs the full check for one cell: measure, load the baseline, compare.
pub fn check_cell(cfg: &PerfConfig) -> (PerfVerdict, PerfMeasurement) {
    let m = measure(cfg);
    let path = baseline_path(&cfg.baseline_dir, cfg.scenario, cfg.n);
    let verdict = match std::fs::read_to_string(&path) {
        Ok(doc) => compare(cfg, &m, &doc),
        Err(e) => PerfVerdict::Fail(vec![format!(
            "no baseline at {} ({e}); record one with `repro perf --bless`",
            path.display()
        )]),
    };
    (verdict, m)
}

/// Measures the cell and writes its baseline (the `--bless` flow).
pub fn bless_cell(cfg: &PerfConfig) -> std::io::Result<PerfMeasurement> {
    let m = measure(cfg);
    let path = baseline_path(&cfg.baseline_dir, cfg.scenario, cfg.n);
    std::fs::create_dir_all(&cfg.baseline_dir)?;
    std::fs::write(&path, baseline_json(cfg, &m))?;
    log!(Info, "perf: blessed {}", path.display());
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(dir: &Path) -> PerfConfig {
        PerfConfig {
            scenario: GrowthScenario::Baseline,
            n: 150,
            events: 2,
            seed: 7,
            jobs: 2,
            baseline_dir: dir.to_path_buf(),
            perturb: None,
            wheel_slot_bits: None,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bgpscale_perf_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn bless_then_check_passes() {
        let dir = tmpdir("roundtrip");
        let cfg = tiny(&dir);
        bless_cell(&cfg).unwrap();
        let (verdict, m) = check_cell(&cfg);
        assert_eq!(verdict, PerfVerdict::Pass, "fresh baseline must pass");
        assert!(m.ops.grand_total() > 0);
        assert!(m.phase_grand_totals.iter().all(|&t| t > 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn perturbation_fails_the_check() {
        let dir = tmpdir("perturb");
        let cfg = tiny(&dir);
        bless_cell(&cfg).unwrap();
        let perturbed = PerfConfig {
            perturb: Some(1),
            ..tiny(&dir)
        };
        let (verdict, _) = check_cell(&perturbed);
        match verdict {
            PerfVerdict::Fail(msgs) => {
                assert!(
                    msgs.iter().any(|m| m.contains("op count drift")),
                    "{msgs:?}"
                );
            }
            other => panic!("perturbed check must fail, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_baseline_fails_with_bless_hint() {
        let dir = tmpdir("missing");
        let cfg = PerfConfig {
            n: 175,
            ..tiny(&dir)
        };
        let (verdict, _) = check_cell(&cfg);
        match verdict {
            PerfVerdict::Fail(msgs) => {
                assert!(msgs[0].contains("--bless"), "{msgs:?}");
            }
            other => panic!("missing baseline must fail, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn coordinate_mismatch_is_a_config_error() {
        let dir = tmpdir("coords");
        let cfg = tiny(&dir);
        let m = measure(&cfg);
        let doc = baseline_json(&cfg, &m);
        let other = PerfConfig { seed: 8, ..tiny(&dir) };
        match compare(&other, &m, &doc) {
            PerfVerdict::ConfigError(msg) => assert!(msg.contains("seed"), "{msg}"),
            v => panic!("seed mismatch must be a config error, got {v:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn baseline_document_is_flat_and_versioned() {
        let dir = tmpdir("doc");
        let cfg = tiny(&dir);
        let m = measure(&cfg);
        let doc = baseline_json(&cfg, &m);
        assert!(doc.starts_with("{\n  \"schema_version\": "));
        for name in OpCounts::field_names() {
            assert!(json_u64(&doc, name).is_some(), "missing {name}");
        }
        assert_eq!(json_u64_array(&doc, "phase_grand_totals").unwrap().len(), 3);
        assert_eq!(json_str(&doc, "scenario"), Some("BASELINE"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn perturb_is_deterministic() {
        let mut a = OpCounts::default();
        let mut b = OpCounts::default();
        perturb_ops(&mut a, 3);
        perturb_ops(&mut b, 3);
        assert_eq!(a, b);
        assert!(a.grand_total() > 0, "perturbation must change something");
        let mut c = OpCounts::default();
        perturb_ops(&mut c, 4);
        assert_ne!(a, c, "different seeds should differ (almost surely)");
    }
}
