//! `topogen` — generate, validate and export AS-level topologies.
//!
//! A standalone tool around `bgpscale-topology` for downstream use
//! (feeding other simulators, plotting degree distributions, rendering
//! sketches):
//!
//! ```text
//! topogen <scenario> <n> [--seed S] [--format summary|dot|edges|ccdf]
//!
//! scenarios: BASELINE, NO-MIDDLE, RICH-MIDDLE, STATIC-MIDDLE,
//!            TRANSIT-CLIQUE, DENSE-CORE, DENSE-EDGE, TREE, CONSTANT-MHD,
//!            NO-PEERING, STRONG-CORE-PEERING, STRONG-EDGE-PEERING,
//!            PREFER-MIDDLE, PREFER-TOP   (case-insensitive, `_` ok)
//!
//! formats:
//!   summary  population, links, stable-property metrics (default)
//!   dot      Graphviz DOT on stdout
//!   edges    CSV: src,dst,relationship (each link once, from the
//!            customer / lower-id-peer side)
//!   ccdf     CSV: degree,fraction_ge (log-log plottable)
//! ```

#![forbid(unsafe_code)]

use bgpscale_topology::metrics::{
    degree_assortativity, degree_ccdf, TopologySummary,
};
use bgpscale_topology::validate::validate;
use bgpscale_topology::{generate, GrowthScenario, NodeType, Relationship};

fn usage() -> ! {
    eprintln!(
        "usage: topogen <scenario> <n> [--seed S] [--format summary|dot|edges|ccdf]\n\
         scenarios: {}",
        GrowthScenario::ALL
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let scenario = args
        .next()
        .and_then(|s| GrowthScenario::from_name(&s))
        .unwrap_or_else(|| usage());
    let n: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage());
    let mut seed = 42u64;
    let mut format = "summary".to_string();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
            "--format" => format = args.next().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }

    let g = generate(scenario, n, seed);
    if let Err(violations) = validate(&g) {
        eprintln!("generated topology FAILED validation ({} violations):", violations.len());
        for v in violations.iter().take(5) {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }

    match format.as_str() {
        "summary" => {
            let s = TopologySummary::compute(&g, seed);
            println!("scenario        : {scenario}");
            println!("n               : {} (T={} M={} CP={} C={})",
                s.n, s.population[0], s.population[1], s.population[2], s.population[3]);
            println!("links           : {} transit + {} peering", s.transit_links, s.peer_links);
            println!("mean MHD        : M={:.2} CP={:.2} C={:.2}",
                s.mean_mhd[1], s.mean_mhd[2], s.mean_mhd[3]);
            println!("max degree      : {}", s.max_degree);
            println!("clustering      : {:.3}", s.clustering);
            println!("avg path length : {:.2} hops (valley-free)", s.avg_path_length);
            println!("assortativity   : {:.3}", degree_assortativity(&g));
            println!("validation      : OK");
        }
        "dot" => print!("{}", g.to_dot()),
        "edges" => {
            println!("src,dst,relationship");
            for id in g.node_ids() {
                for nb in g.neighbors(id) {
                    let emit = match nb.rel {
                        Relationship::Provider => true,
                        Relationship::Peer => id < nb.id,
                        Relationship::Customer => false,
                    };
                    if emit {
                        let rel = match nb.rel {
                            Relationship::Provider => "customer-provider",
                            Relationship::Peer => "peer-peer",
                            Relationship::Customer => unreachable!(),
                        };
                        println!("{},{},{rel}", id.0, nb.id.0);
                    }
                }
            }
        }
        "ccdf" => {
            println!("degree,fraction_ge");
            for (d, f) in degree_ccdf(&g) {
                println!("{d},{f}");
            }
        }
        _ => usage(),
    }

    // Exit code sanity: a topology with no stubs would be useless for
    // churn studies; flag it loudly (TRANSIT-CLIQUE etc. still have stubs).
    if g.count_of_type(NodeType::C) == 0 {
        bgpscale_obs::log!(Info, "warning: no C-type stubs in this instance");
    }
}
