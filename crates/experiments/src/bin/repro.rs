//! `repro` — regenerate the paper's tables and figures from scratch.
//!
//! ```text
//! repro <target> [options]
//!
//! targets:
//!   table1 fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//!   ext_levent     extension: link fail + recovery churn
//!   ext_burstiness extension: per-second update-rate peaks
//!   ext_rfd        extension: Route Flap Damping vs a flap storm
//!   ext_convergence extension: convergence times per MRAI mode
//!   ext_concurrency extension: per-interface vs per-prefix MRAI
//!   ext_tablesize  extension: per-event churn vs resident table size
//!   all            every target above, sharing one experiment cache
//!   bench          time the Baseline sweep at several worker counts and
//!                  write BENCH_harness.json (see --bench-jobs / --out);
//!                  also records observer off/metrics/trace overhead
//!   profile        run one observed cell and print a phase profile
//!                  (see --scenario, --cell-n, --check)
//!   report         run one cell under NO-WRATE *and* WRATE with the
//!                  simulated-time series recorder and write a
//!                  self-contained HTML churn-provenance report plus a
//!                  timeseries.json artifact (see --bin-us, --report-out,
//!                  --timeseries-out, --check)
//!
//! options:
//!   --tiny         seconds-scale smoke run (n ≤ 900, 5 events). NOTE:
//!                  a handful of claims are scale-dependent (they need
//!                  n ≥ 1000 to rise above sampling noise or, for
//!                  STATIC-MIDDLE, to differ from BASELINE at all) and
//!                  may legitimately FAIL at this size; --quick and
//!                  --full are the validation modes.
//!   --quick        default: n ≤ 5000, 25 events per cell (minutes)
//!   --full         paper scale: n ≤ 10000, 100 events (hours)
//!   --seed <u64>   master seed (default 0x20080612)
//!   --events <k>   override events per cell
//!   --sizes a,b,c  override the size sweep
//!   --csv <dir>    additionally write every table as CSV into <dir>
//!   --jobs <n>     worker threads for C-event / cell fan-out. 0 (the
//!                  default) uses every hardware thread; 1 runs the plain
//!                  sequential path. Results are bit-identical either way.
//!   --bench-jobs a,b,c  (bench only) worker counts to compare
//!                       (default: 1,8)
//!   --out <file>   (bench only) output path (default BENCH_harness.json)
//!   --metrics-out <file>  write the deterministic metrics registry of
//!                  every computed cell as JSON (byte-identical for any
//!                  --jobs value)
//!   --trace-out <file>    write sampled per-event JSONL trace records
//!   --trace-sample <n>    keep 1 in n trace records (default 1 = all;
//!                  only meaningful with --trace-out)
//!   --scenario <s> (profile/report) growth scenario (default BASELINE)
//!   --cell-n <n>   (profile/report) network size (default: first sweep size)
//!   --event-limit <n>  (profile only) per-phase simulator event budget;
//!                  a blown budget prints the harness's budget snapshot
//!                  (queue depth, pending events by kind, busiest inbox)
//!                  and exits non-zero instead of crashing
//!   --bin-us <n>   (report only) time-series bin width in simulated
//!                  microseconds (default 100000 = 100 ms)
//!   --report-out <file>     (report only) HTML path (default report.html)
//!   --timeseries-out <file> (report only) JSON path (default timeseries.json)
//!   --check        (profile) exit non-zero if any expected phase span
//!                  recorded nothing or no events were processed;
//!                  (report) exit non-zero if any report panel is empty
//!
//! Set BGPSCALE_LOG=quiet|info|debug to control progress chatter on
//! stderr (default info).
//!
//! exit codes (shared with `detlint --check`):
//!   0  success — targets ran and all requested checks passed
//!   1  a run or a `--check` validation failed
//!   2  usage / configuration error (unknown target or malformed option)
//! ```

#![forbid(unsafe_code)]

use std::io::Write as _;

use bgpscale_experiments::{figures, htmlreport, profile};
use bgpscale_experiments::{Figure, RunConfig, Sweeper};
use bgpscale_obs::{log, TraceRecord, TraceWriter};
use bgpscale_simkernel::Stopwatch;
use bgpscale_topology::GrowthScenario;

fn usage() -> ! {
    eprintln!(
        "usage: repro <table1|fig1|fig3|fig4|...|fig12|all|bench|profile|report> \
         [--tiny|--quick|--full] [--seed N] [--events K] [--sizes a,b,c] [--csv DIR] \
         [--jobs N] [--bench-jobs a,b,c] [--out FILE] \
         [--metrics-out FILE] [--trace-out FILE] [--trace-sample N] \
         [--scenario S] [--cell-n N] [--event-limit N] [--bin-us N] \
         [--report-out FILE] [--timeseries-out FILE] [--check]\n\
         exit codes: 0 = ok, 1 = failed run or --check, 2 = usage error \
         (same convention as detlint --check)"
    );
    std::process::exit(2);
}

struct Options {
    target: String,
    cfg: RunConfig,
    csv_dir: Option<std::path::PathBuf>,
    /// Worker threads; 0 = every hardware thread.
    jobs: usize,
    /// `bench`: the worker counts to compare.
    bench_jobs: Vec<usize>,
    /// `bench`: where to write the JSON report.
    bench_out: std::path::PathBuf,
    /// Write the merged deterministic metrics registry here.
    metrics_out: Option<std::path::PathBuf>,
    /// Write sampled JSONL trace records here.
    trace_out: Option<std::path::PathBuf>,
    /// Keep 1 in N trace records (1 = all).
    trace_sample: u64,
    /// `profile`/`report`: the cell's growth scenario.
    profile_scenario: GrowthScenario,
    /// `profile`/`report`: the cell's network size (default: first sweep size).
    cell_n: Option<usize>,
    /// `profile`: per-phase simulator event budget override.
    event_limit: Option<u64>,
    /// `report`: time-series bin width in simulated microseconds.
    bin_us: u64,
    /// `report`: where to write the HTML page.
    report_out: std::path::PathBuf,
    /// `report`: where to write the raw time series.
    timeseries_out: std::path::PathBuf,
    /// `profile`/`report`: fail the process if the output looks empty.
    check: bool,
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let target = args.next().unwrap_or_else(|| usage());
    let mut cfg = RunConfig::quick();
    let mut csv_dir = None;
    let mut jobs = 0;
    let mut bench_jobs = vec![1, 8];
    let mut bench_out = std::path::PathBuf::from("BENCH_harness.json");
    let mut metrics_out = None;
    let mut trace_out = None;
    let mut trace_sample = 1u64;
    let mut profile_scenario = GrowthScenario::Baseline;
    let mut cell_n = None;
    let mut event_limit = None;
    let mut bin_us = 100_000u64;
    let mut report_out = std::path::PathBuf::from("report.html");
    let mut timeseries_out = std::path::PathBuf::from("timeseries.json");
    let mut check = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tiny" => cfg = RunConfig::tiny().with_seed(cfg.seed),
            "--quick" => cfg = RunConfig::quick().with_seed(cfg.seed),
            "--full" => cfg = RunConfig::full().with_seed(cfg.seed),
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--events" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.events = v.parse().unwrap_or_else(|_| usage());
            }
            "--sizes" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.sizes = v
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if cfg.sizes.is_empty() {
                    usage();
                }
            }
            "--csv" => {
                let v = args.next().unwrap_or_else(|| usage());
                csv_dir = Some(std::path::PathBuf::from(v));
            }
            "--jobs" => {
                let v = args.next().unwrap_or_else(|| usage());
                jobs = v.parse().unwrap_or_else(|_| usage());
            }
            "--bench-jobs" => {
                let v = args.next().unwrap_or_else(|| usage());
                bench_jobs = v
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if bench_jobs.is_empty() {
                    usage();
                }
            }
            "--out" => {
                let v = args.next().unwrap_or_else(|| usage());
                bench_out = std::path::PathBuf::from(v);
            }
            "--metrics-out" => {
                let v = args.next().unwrap_or_else(|| usage());
                metrics_out = Some(std::path::PathBuf::from(v));
            }
            "--trace-out" => {
                let v = args.next().unwrap_or_else(|| usage());
                trace_out = Some(std::path::PathBuf::from(v));
            }
            "--trace-sample" => {
                let v = args.next().unwrap_or_else(|| usage());
                trace_sample = v.parse().unwrap_or_else(|_| usage());
                if trace_sample == 0 {
                    usage();
                }
            }
            "--scenario" => {
                let v = args.next().unwrap_or_else(|| usage());
                profile_scenario = GrowthScenario::from_name(&v).unwrap_or_else(|| {
                    eprintln!("unknown scenario: {v}");
                    usage()
                });
            }
            "--cell-n" => {
                let v = args.next().unwrap_or_else(|| usage());
                cell_n = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--event-limit" => {
                let v = args.next().unwrap_or_else(|| usage());
                event_limit = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--bin-us" => {
                let v = args.next().unwrap_or_else(|| usage());
                bin_us = v.parse().unwrap_or_else(|_| usage());
                if bin_us == 0 {
                    usage();
                }
            }
            "--report-out" => {
                let v = args.next().unwrap_or_else(|| usage());
                report_out = std::path::PathBuf::from(v);
            }
            "--timeseries-out" => {
                let v = args.next().unwrap_or_else(|| usage());
                timeseries_out = std::path::PathBuf::from(v);
            }
            "--check" => check = true,
            _ => usage(),
        }
    }
    Options {
        target,
        cfg,
        csv_dir,
        jobs,
        bench_jobs,
        bench_out,
        metrics_out,
        trace_out,
        trace_sample,
        profile_scenario,
        cell_n,
        event_limit,
        bin_us,
        report_out,
        timeseries_out,
        check,
    }
}

fn run_target(target: &str, sw: &mut Sweeper) -> Option<Figure> {
    let seed = sw.config().seed;
    let cfg = sw.config().clone();
    Some(match target {
        "table1" => figures::table1::run(&cfg),
        "fig1" => figures::fig1::run(seed),
        "fig3" => figures::fig3::run(seed),
        "fig4" => figures::fig4::run(sw),
        "fig5" => figures::fig5::run(sw),
        "fig6" => figures::fig6::run(sw),
        "fig7" => figures::fig7::run(sw),
        "fig8" => figures::fig8::run(sw),
        "fig9" => figures::fig9::run(sw),
        "fig10" => figures::fig10::run(sw),
        "fig11" => figures::fig11::run(sw),
        "fig12" => figures::fig12::run(sw),
        "ext_levent" => figures::ext_levent::run(sw),
        "ext_burstiness" => figures::ext_burstiness::run(sw),
        "ext_rfd" => figures::ext_rfd::run(sw),
        "ext_convergence" => figures::ext_convergence::run(sw),
        "ext_concurrency" => figures::ext_concurrency::run(sw),
        "ext_tablesize" => figures::ext_tablesize::run(sw),
        _ => return None,
    })
}

const ALL_TARGETS: [&str; 18] = [
    "table1", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12", "ext_levent", "ext_burstiness", "ext_rfd", "ext_convergence", "ext_concurrency",
    "ext_tablesize",
];

/// Writes the merged metrics registry as deterministic JSON.
fn write_metrics(
    path: &std::path::Path,
    metrics: &bgpscale_obs::MetricsRegistry,
) -> std::io::Result<()> {
    std::fs::write(path, metrics.to_json())?;
    log!(Info, "wrote metrics to {}", path.display());
    Ok(())
}

/// Streams trace records as JSONL through a buffered [`TraceWriter`].
fn write_trace(path: &std::path::Path, records: &[TraceRecord]) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = TraceWriter::new(std::io::BufWriter::new(file));
    writer.write_all(records)?;
    writer.finish()?;
    log!(Info, "wrote {} trace records to {}", records.len(), path.display());
    Ok(())
}

/// `repro profile`: run one observed cell, print the phase profile, and
/// optionally gate on [`profile::check`].
fn run_profile_target(opts: &Options) -> std::io::Result<bool> {
    let cfg = profile::ProfileConfig {
        scenario: opts.profile_scenario,
        n: opts.cell_n.unwrap_or_else(|| opts.cfg.sizes.first().copied().unwrap_or(300)),
        events: opts.cfg.events,
        seed: opts.cfg.seed,
        jobs: opts.jobs,
        trace_sample: opts.trace_out.as_ref().map(|_| opts.trace_sample),
        event_limit: opts.event_limit,
    };
    let out = match profile::run_profile(&cfg) {
        Ok(out) => out,
        Err(diagnosis) => {
            // Satellite fix: a blown event budget renders the harness's
            // budget snapshot instead of crashing the process.
            eprintln!("profile FAILED: {diagnosis}");
            return Ok(false);
        }
    };
    print!("{}", profile::render(&cfg, &out));
    if let Some(path) = &opts.metrics_out {
        write_metrics(path, &out.observed.metrics)?;
    }
    if let Some(path) = &opts.trace_out {
        write_trace(path, &out.observed.trace)?;
    }
    if opts.check {
        if let Err(reason) = profile::check(&out) {
            eprintln!("profile check FAILED: {reason}");
            return Ok(false);
        }
        log!(Info, "profile check passed");
    }
    Ok(true)
}

/// `repro report`: run one cell under both MRAI modes with the time-series
/// recorder, write the self-contained HTML page and the raw
/// `timeseries.json`, and optionally gate on [`htmlreport::check`].
fn run_report_target(opts: &Options) -> std::io::Result<bool> {
    let cfg = htmlreport::ReportConfig {
        scenario: opts.profile_scenario,
        n: opts.cell_n.unwrap_or_else(|| opts.cfg.sizes.first().copied().unwrap_or(300)),
        events: opts.cfg.events,
        seed: opts.cfg.seed,
        jobs: opts.jobs,
        bin_us: opts.bin_us,
    };
    log!(
        Info,
        "report: {} n={} events={} bin={}us …",
        cfg.scenario,
        cfg.n,
        cfg.events,
        cfg.bin_us
    );
    let out = htmlreport::run_report(&cfg);
    std::fs::write(&opts.report_out, &out.html)?;
    log!(Info, "wrote HTML report to {}", opts.report_out.display());
    std::fs::write(&opts.timeseries_out, &out.timeseries_json)?;
    log!(Info, "wrote time series to {}", opts.timeseries_out.display());
    if opts.check {
        if let Err(reason) = htmlreport::check(&out) {
            eprintln!("report check FAILED: {reason}");
            return Ok(false);
        }
        log!(Info, "report check passed");
    }
    Ok(true)
}

/// The current git revision, or `"unknown"` outside a work tree.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// `repro bench`: time the Baseline NO-WRATE sweep once per requested
/// worker count (each with a fresh cache) and write a JSON report.
///
/// Every run computes bit-identical reports — the bench cross-checks this
/// by comparing each run's per-type means against the first run's.
/// Best-of-3 wall time of one closure (the usual micro-bench discipline:
/// the minimum is the least noisy estimator on a shared machine).
fn best_of_3(mut f: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| {
            let t = Stopwatch::start();
            f();
            t.elapsed_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Times the first-size Baseline cell at jobs=1 with the observer off,
/// metrics-only, and full-trace. Returns `(off_s, metrics_s, trace_s)`.
fn bench_observer_overhead(cfg: &RunConfig) -> (f64, f64, f64) {
    use bgpscale_core::{run_experiment_jobs, run_experiment_observed, ExperimentConfig};

    let cell = ExperimentConfig {
        scenario: bgpscale_topology::GrowthScenario::Baseline,
        n: cfg.sizes.first().copied().unwrap_or(300),
        events: cfg.events,
        seed: cfg.seed,
        bgp: Default::default(),
        event_limit: None,
    };
    log!(Info, "bench: observer overhead on Baseline n={} …", cell.n);
    let off_s = best_of_3(|| {
        std::hint::black_box(run_experiment_jobs(&cell, 1));
    });
    let metrics_s = best_of_3(|| {
        std::hint::black_box(run_experiment_observed(&cell, 1, None));
    });
    let trace_s = best_of_3(|| {
        std::hint::black_box(run_experiment_observed(&cell, 1, Some(1)));
    });
    (off_s, metrics_s, trace_s)
}

fn run_bench(
    cfg: &RunConfig,
    jobs_list: &[usize],
    out: &std::path::Path,
) -> std::io::Result<()> {
    use bgpscale_topology::{GrowthScenario, NodeType};

    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut runs = Vec::new();
    let mut baseline_reports: Option<Vec<_>> = None;
    for &requested in jobs_list {
        let mut sw = Sweeper::new(cfg.clone());
        sw.set_jobs(requested);
        let effective = sw.jobs();
        log!(Info, "bench: sweeping Baseline with jobs={requested} (effective {effective}) …");
        let mut cells = Vec::new();
        let total_started = Stopwatch::start();
        for &n in &cfg.sizes.clone() {
            let cell_started = Stopwatch::start();
            let report = sw.report(GrowthScenario::Baseline, n, bgpscale_bgp::MraiMode::NoWrate);
            let wall_s = cell_started.elapsed_secs_f64();
            cells.push((n, wall_s, cfg.events as f64 / wall_s, report));
        }
        let total_s = total_started.elapsed_secs_f64();
        log!(Info, "bench: jobs={requested} finished in {total_s:.2}s");
        match &baseline_reports {
            None => {
                baseline_reports = Some(cells.iter().map(|(_, _, _, r)| r.clone()).collect());
            }
            Some(first) => {
                for ((_, _, _, r), f) in cells.iter().zip(first) {
                    for ty in [NodeType::T, NodeType::M, NodeType::Cp, NodeType::C] {
                        assert_eq!(
                            r.by_type(ty),
                            f.by_type(ty),
                            "jobs={requested} diverged from jobs={} at n={}",
                            jobs_list[0],
                            r.n
                        );
                    }
                }
            }
        }
        runs.push((requested, effective, total_s, cells));
    }

    let (off_s, metrics_s, trace_s) = bench_observer_overhead(cfg);

    let base_total = runs.first().map(|(_, _, t, _)| *t).unwrap_or(f64::NAN);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"git_rev\": \"{}\",\n", git_rev()));
    json.push_str(&format!("  \"hardware_threads\": {hw},\n"));
    json.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    json.push_str(&format!("  \"events_per_cell\": {},\n", cfg.events));
    json.push_str(&format!(
        "  \"sizes\": [{}],\n",
        cfg.sizes.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", ")
    ));
    json.push_str("  \"scenario\": \"BASELINE\",\n");
    json.push_str("  \"mode\": \"NO-WRATE\",\n");
    json.push_str("  \"observer_overhead\": {\n");
    json.push_str("    \"comment\": \"first-size cell, jobs=1, best of 3; off = NoopObserver (static dispatch)\",\n");
    json.push_str(&format!("    \"off_s\": {off_s:.6},\n"));
    json.push_str(&format!("    \"metrics_s\": {metrics_s:.6},\n"));
    json.push_str(&format!("    \"trace_s\": {trace_s:.6},\n"));
    json.push_str(&format!(
        "    \"metrics_overhead_pct\": {:.2},\n",
        (metrics_s / off_s - 1.0) * 100.0
    ));
    json.push_str(&format!(
        "    \"trace_overhead_pct\": {:.2}\n",
        (trace_s / off_s - 1.0) * 100.0
    ));
    json.push_str("  },\n");
    json.push_str("  \"runs\": [\n");
    for (i, (requested, effective, total_s, cells)) in runs.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"requested_jobs\": {requested},\n"));
        json.push_str(&format!("      \"effective_jobs\": {effective},\n"));
        json.push_str(&format!("      \"total_wall_s\": {total_s:.6},\n"));
        json.push_str(&format!(
            "      \"speedup_vs_first_run\": {:.4},\n",
            base_total / total_s
        ));
        json.push_str("      \"cells\": [\n");
        for (j, (n, wall_s, eps, _)) in cells.iter().enumerate() {
            json.push_str(&format!(
                "        {{ \"n\": {n}, \"wall_s\": {wall_s:.6}, \"events_per_s\": {eps:.3} }}{}\n",
                if j + 1 < cells.len() { "," } else { "" }
            ));
        }
        json.push_str("      ]\n");
        json.push_str(&format!(
            "    }}{}\n",
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out, &json)?;
    log!(Info, "bench: wrote {}", out.display());
    Ok(())
}

fn write_csv(dir: &std::path::Path, fig: &Figure) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (i, table) in fig.tables.iter().enumerate() {
        let path = dir.join(format!("{}_{}.csv", fig.id, i));
        let mut f = std::fs::File::create(path)?;
        f.write_all(table.to_csv().as_bytes())?;
    }
    Ok(())
}

fn main() {
    let opts = parse_args();
    if opts.target == "bench" {
        if let Err(e) = run_bench(&opts.cfg, &opts.bench_jobs, &opts.bench_out) {
            eprintln!("bench failed: {e}");
            std::process::exit(1);
        }
        return;
    }
    if opts.target == "profile" || opts.target == "report" {
        let result = if opts.target == "profile" {
            run_profile_target(&opts)
        } else {
            run_report_target(&opts)
        };
        match result {
            Ok(true) => return,
            Ok(false) => std::process::exit(1),
            Err(e) => {
                eprintln!("{} failed: {e}", opts.target);
                std::process::exit(1);
            }
        }
    }
    let started = Stopwatch::start();
    let mut sw = Sweeper::new(opts.cfg.clone());
    sw.set_jobs(opts.jobs);
    if opts.metrics_out.is_some() || opts.trace_out.is_some() {
        let sample = opts.trace_out.as_ref().map(|_| opts.trace_sample);
        sw.enable_telemetry(sample);
    }
    sw.on_progress(move |scenario, n, mode| {
        log!(
            Info,
            "[{:7.1}s] running {scenario} n={n} {} …",
            started.elapsed_secs_f64(),
            mode.label()
        );
    });

    let targets: Vec<&str> = if opts.target == "all" {
        ALL_TARGETS.to_vec()
    } else {
        vec![opts.target.as_str()]
    };

    let mut failed_claims = 0usize;
    for t in &targets {
        let Some(fig) = run_target(t, &mut sw) else {
            eprintln!("unknown target: {t}");
            usage();
        };
        println!("{}", fig.render());
        failed_claims += fig.claims.iter().filter(|c| !c.holds).count();
        if let Some(dir) = &opts.csv_dir {
            if let Err(e) = write_csv(dir, &fig) {
                log!(Info, "warning: CSV export failed: {e}");
            }
        }
    }
    if let Some(path) = &opts.metrics_out {
        if let Err(e) = write_metrics(path, sw.metrics()) {
            eprintln!("writing {} failed: {e}", path.display());
            std::process::exit(1);
        }
    }
    if let Some(path) = &opts.trace_out {
        let trace = sw.take_trace();
        if let Err(e) = write_trace(path, &trace) {
            eprintln!("writing {} failed: {e}", path.display());
            std::process::exit(1);
        }
    }
    log!(
        Info,
        "done in {:.1}s ({} experiment cells, {} failed claims)",
        started.elapsed().as_secs_f64(),
        sw.cached_cells(),
        failed_claims
    );
    if failed_claims > 0 {
        std::process::exit(1);
    }
}
