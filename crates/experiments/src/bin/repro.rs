//! `repro` — regenerate the paper's tables and figures from scratch.
//!
//! ```text
//! repro <target> [options]
//!
//! targets:
//!   table1 fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//!   ext_levent     extension: link fail + recovery churn
//!   ext_burstiness extension: per-second update-rate peaks
//!   ext_rfd        extension: Route Flap Damping vs a flap storm
//!   ext_convergence extension: convergence times per MRAI mode
//!   ext_concurrency extension: per-interface vs per-prefix MRAI
//!   ext_tablesize  extension: per-event churn vs resident table size
//!   all            every target above, sharing one experiment cache
//!   bench          time the Baseline sweep at several worker counts and
//!                  write BENCH_harness.json (see --bench-jobs / --out);
//!                  also records observer off/metrics/trace overhead
//!                  (median of 5 after a warmup), peak RSS, per-cell
//!                  exact op-count and allocator columns, and fitted
//!                  per-op-class scaling exponents (cost_exponents)
//!   perf           run cells and compare their exact op counts against
//!                  checked-in baselines (results/perf-baselines/):
//!                    --check          gate: exit 1 on any drift
//!                    --bless          (re)record the baselines instead
//!                    --perturb <seed> deterministically corrupt one
//!                                     counter first (CI mutation gate)
//!                    --baseline-dir <dir>   override the baseline dir
//!                    --costmodel-out <file> also write costmodel.json
//!   profile        run one observed cell and print a phase profile
//!                  (see --scenario, --cell-n, --check)
//!   report         run one cell under NO-WRATE *and* WRATE with the
//!                  simulated-time series recorder and write a
//!                  self-contained HTML churn-provenance report plus a
//!                  timeseries.json artifact (see --bin-us, --report-out,
//!                  --timeseries-out, --check)
//!   trend          fold the run ledger (every bench/perf/profile run
//!                  appends one record to results/ledger/runs.jsonl)
//!                  into per-config op-count series, scaling-exponent
//!                  refits, and a self-contained trend.html dashboard:
//!                    --check          gate: exit 1 on any op-count or
//!                                     exponent regression vs history
//!                    --window <k>     median over the last k entries
//!                                     per fingerprint (default 5)
//!                    --band <pct>     allowed op-count deviation from
//!                                     that median (default 10)
//!                    --exp-band <x>   allowed exponent drift between
//!                                     consecutive revisions (default 0.25)
//!                    --perturb <seed> corrupt the newest entries in
//!                                     memory first (CI mutation gate)
//!                    --trend-out <file>  HTML path (default trend.html)
//!
//! options:
//!   --tiny         seconds-scale smoke run (n ≤ 900, 5 events). NOTE:
//!                  a handful of claims are scale-dependent (they need
//!                  n ≥ 1000 to rise above sampling noise or, for
//!                  STATIC-MIDDLE, to differ from BASELINE at all) and
//!                  may legitimately FAIL at this size; --quick and
//!                  --full are the validation modes.
//!   --quick        default: n ≤ 5000, 25 events per cell (minutes)
//!   --full         paper scale: n ≤ 10000, 100 events (hours)
//!   --seed <u64>   master seed (default 0x20080612)
//!   --events <k>   override events per cell
//!   --sizes a,b,c  override the size sweep
//!   --csv <dir>    additionally write every table as CSV into <dir>
//!   --jobs <n>     worker threads for C-event / cell fan-out. 0 (the
//!                  default) uses every hardware thread; 1 runs the plain
//!                  sequential path. Results are bit-identical either way.
//!   --bench-jobs a,b,c  (bench only) worker counts to compare
//!                       (default: 1,8)
//!   --out <file>   (bench only) output path (default BENCH_harness.json)
//!
//!   bench uses its own default sweep (1000..20000, see
//!   `bench::DEFAULT_BENCH_SIZES`) unless --tiny/--quick/--full/--sizes
//!   is given. The default sweep finishes with an Internet-scale
//!   frontier cell (~minutes); scale-overridden runs skip it unless a
//!   --frontier-* flag asks for one explicitly:
//!   --frontier-n <n>      frontier cell AS count (default 70000)
//!   --frontier-events <k> frontier cell C-events (default 3)
//!   --no-frontier         skip the frontier cell
//!   --metrics-out <file>  write the deterministic metrics registry of
//!                  every computed cell as JSON (byte-identical for any
//!                  --jobs value)
//!   --trace-out <file>    write sampled per-event JSONL trace records
//!   --trace-sample <n>    keep 1 in n trace records (default 1 = all;
//!                  only meaningful with --trace-out)
//!   --scenario <s> (profile/report) growth scenario (default BASELINE)
//!   --cell-n <n>   (profile/report) network size (default: first sweep size)
//!   --event-limit <n>  (profile only) per-phase simulator event budget;
//!                  a blown budget prints the harness's budget snapshot
//!                  (queue depth, pending events by kind, busiest inbox)
//!                  and exits non-zero instead of crashing
//!   --bin-us <n>   (report only) time-series bin width in simulated
//!                  microseconds (default 100000 = 100 ms)
//!   --report-out <file>     (report only) HTML path (default report.html)
//!   --timeseries-out <file> (report only) JSON path (default timeseries.json)
//!   --check        (profile) exit non-zero if any expected phase span
//!                  recorded nothing or no events were processed;
//!                  (report) exit non-zero if any report panel is empty;
//!                  (trend) exit 1 on any regression finding
//!   --ledger <file>  the append-only run ledger every bench/perf/profile
//!                  run records into and `trend` reads (default
//!                  results/ledger/runs.jsonl)
//!   --no-ledger    don't append this run to the ledger
//!   --ledger-rev <rev>  record this revision string instead of
//!                  `git rev-parse HEAD` (tests, CI matrices)
//!
//! Set BGPSCALE_LOG=quiet|info|debug to control progress chatter on
//! stderr (default info).
//!
//! exit codes (shared with `detlint --check`):
//!   0  success — targets ran and all requested checks passed
//!   1  a run or a `--check` validation failed
//!   2  usage / configuration error (unknown target or malformed option)
//! ```

#![forbid(unsafe_code)]

use std::io::Write as _;

use bgpscale_experiments::{bench, figures, htmlreport, perf, profile, trend};
use bgpscale_experiments::{Figure, RunConfig, Sweeper};
use bgpscale_experiments::{EXIT_FAIL, EXIT_OK, EXIT_USAGE};
use bgpscale_obs::ledger::{append_records, read_ledger, LedgerError, LedgerRecord};
use bgpscale_obs::{log, TraceRecord, TraceWriter};
use bgpscale_simkernel::Stopwatch;
use bgpscale_topology::GrowthScenario;

/// With the `alloc-count` feature, tally every heap allocation so
/// `repro bench` can report per-cell allocator columns. Wall-side only.
#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: bgpscale_simkernel::alloc::CountingAlloc =
    bgpscale_simkernel::alloc::CountingAlloc;

fn usage() -> ! {
    eprintln!(
        "usage: repro <table1|fig1|fig3|fig4|...|fig12|all|bench|perf|profile|report|trend> \
         [--tiny|--quick|--full] [--seed N] [--events K] [--sizes a,b,c] [--csv DIR] \
         [--jobs N] [--bench-jobs a,b,c] [--out FILE] \
         [--metrics-out FILE] [--trace-out FILE] [--trace-sample N] \
         [--scenario S] [--cell-n N] [--event-limit N] [--bin-us N] \
         [--report-out FILE] [--timeseries-out FILE] [--check] \
         [--bless] [--perturb SEED] [--wheel-bits N] [--baseline-dir DIR] [--costmodel-out FILE] \
         [--ledger FILE] [--no-ledger] [--ledger-rev REV] [--trend-out FILE] \
         [--window K] [--band PCT] [--exp-band X]\n\
         exit codes: 0 = ok, 1 = failed run or --check, 2 = usage error \
         (same convention as detlint --check)"
    );
    std::process::exit(EXIT_USAGE);
}

struct Options {
    target: String,
    cfg: RunConfig,
    csv_dir: Option<std::path::PathBuf>,
    /// Worker threads; 0 = every hardware thread.
    jobs: usize,
    /// `bench`: the worker counts to compare.
    bench_jobs: Vec<usize>,
    /// `bench`: where to write the JSON report.
    bench_out: std::path::PathBuf,
    /// `bench`: the frontier cell's `(n, events)`; `None` skips it.
    frontier: Option<(usize, usize)>,
    /// Write the merged deterministic metrics registry here.
    metrics_out: Option<std::path::PathBuf>,
    /// Write sampled JSONL trace records here.
    trace_out: Option<std::path::PathBuf>,
    /// Keep 1 in N trace records (1 = all).
    trace_sample: u64,
    /// `profile`/`report`: the cell's growth scenario.
    profile_scenario: GrowthScenario,
    /// `profile`/`report`: the cell's network size (default: first sweep size).
    cell_n: Option<usize>,
    /// `profile`: per-phase simulator event budget override.
    event_limit: Option<u64>,
    /// `report`: time-series bin width in simulated microseconds.
    bin_us: u64,
    /// `report`: where to write the HTML page.
    report_out: std::path::PathBuf,
    /// `report`: where to write the raw time series.
    timeseries_out: std::path::PathBuf,
    /// `profile`/`report`/`perf`: fail the process if the check fails.
    check: bool,
    /// `perf`: (re)record the baselines instead of checking.
    bless: bool,
    /// `perf`: deterministically corrupt one counter before comparison.
    perturb: Option<u64>,
    /// `perf`: run on a timing wheel with this slot granularity (the
    /// tick-granularity mutation axis; see `PerfConfig::wheel_slot_bits`).
    wheel_bits: Option<u32>,
    /// `perf`: where the checked-in baselines live.
    baseline_dir: std::path::PathBuf,
    /// `perf`: also write the measured cost model here.
    costmodel_out: Option<std::path::PathBuf>,
    /// The append-only run ledger; `None` disables recording.
    ledger: Option<std::path::PathBuf>,
    /// Revision string to record instead of `git rev-parse HEAD`.
    ledger_rev: Option<String>,
    /// `trend`: where to write the HTML dashboard.
    trend_out: std::path::PathBuf,
    /// `trend`: analysis knobs (`--window`, `--band`, `--exp-band`).
    trend_opts: trend::TrendOptions,
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let target = args.next().unwrap_or_else(|| usage());
    let mut cfg = RunConfig::quick();
    let mut csv_dir = None;
    let mut jobs = 0;
    let mut bench_jobs = vec![1, 8];
    let mut bench_out = std::path::PathBuf::from("BENCH_harness.json");
    let mut cfg_overridden = false;
    let mut frontier_n = bench::FRONTIER_N;
    let mut frontier_events = bench::FRONTIER_EVENTS;
    let mut frontier_requested = false;
    let mut no_frontier = false;
    let mut metrics_out = None;
    let mut trace_out = None;
    let mut trace_sample = 1u64;
    let mut profile_scenario = GrowthScenario::Baseline;
    let mut cell_n = None;
    let mut event_limit = None;
    let mut bin_us = 100_000u64;
    let mut report_out = std::path::PathBuf::from("report.html");
    let mut timeseries_out = std::path::PathBuf::from("timeseries.json");
    let mut check = false;
    let mut bless = false;
    let mut perturb = None;
    let mut wheel_bits = None;
    let mut baseline_dir = std::path::PathBuf::from("results/perf-baselines");
    let mut costmodel_out = None;
    let mut ledger = Some(std::path::PathBuf::from("results/ledger/runs.jsonl"));
    let mut ledger_rev = None;
    let mut trend_out = std::path::PathBuf::from("trend.html");
    let mut trend_opts = trend::TrendOptions::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tiny" => {
                cfg = RunConfig::tiny().with_seed(cfg.seed);
                cfg_overridden = true;
            }
            "--quick" => {
                cfg = RunConfig::quick().with_seed(cfg.seed);
                cfg_overridden = true;
            }
            "--full" => {
                cfg = RunConfig::full().with_seed(cfg.seed);
                cfg_overridden = true;
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--events" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.events = v.parse().unwrap_or_else(|_| usage());
            }
            "--sizes" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.sizes = v
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if cfg.sizes.is_empty() {
                    usage();
                }
                cfg_overridden = true;
            }
            "--csv" => {
                let v = args.next().unwrap_or_else(|| usage());
                csv_dir = Some(std::path::PathBuf::from(v));
            }
            "--jobs" => {
                let v = args.next().unwrap_or_else(|| usage());
                jobs = v.parse().unwrap_or_else(|_| usage());
            }
            "--bench-jobs" => {
                let v = args.next().unwrap_or_else(|| usage());
                bench_jobs = v
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if bench_jobs.is_empty() {
                    usage();
                }
            }
            "--frontier-n" => {
                let v = args.next().unwrap_or_else(|| usage());
                frontier_n = v.parse().unwrap_or_else(|_| usage());
                frontier_requested = true;
            }
            "--frontier-events" => {
                let v = args.next().unwrap_or_else(|| usage());
                frontier_events = v.parse().unwrap_or_else(|_| usage());
                frontier_requested = true;
            }
            "--no-frontier" => no_frontier = true,
            "--out" => {
                let v = args.next().unwrap_or_else(|| usage());
                bench_out = std::path::PathBuf::from(v);
            }
            "--metrics-out" => {
                let v = args.next().unwrap_or_else(|| usage());
                metrics_out = Some(std::path::PathBuf::from(v));
            }
            "--trace-out" => {
                let v = args.next().unwrap_or_else(|| usage());
                trace_out = Some(std::path::PathBuf::from(v));
            }
            "--trace-sample" => {
                let v = args.next().unwrap_or_else(|| usage());
                trace_sample = v.parse().unwrap_or_else(|_| usage());
                if trace_sample == 0 {
                    usage();
                }
            }
            "--scenario" => {
                let v = args.next().unwrap_or_else(|| usage());
                profile_scenario = GrowthScenario::from_name(&v).unwrap_or_else(|| {
                    eprintln!("unknown scenario: {v}");
                    usage()
                });
            }
            "--cell-n" => {
                let v = args.next().unwrap_or_else(|| usage());
                cell_n = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--event-limit" => {
                let v = args.next().unwrap_or_else(|| usage());
                event_limit = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--bin-us" => {
                let v = args.next().unwrap_or_else(|| usage());
                bin_us = v.parse().unwrap_or_else(|_| usage());
                if bin_us == 0 {
                    usage();
                }
            }
            "--report-out" => {
                let v = args.next().unwrap_or_else(|| usage());
                report_out = std::path::PathBuf::from(v);
            }
            "--timeseries-out" => {
                let v = args.next().unwrap_or_else(|| usage());
                timeseries_out = std::path::PathBuf::from(v);
            }
            "--check" => check = true,
            "--bless" => bless = true,
            "--wheel-bits" => {
                let v = args.next().unwrap_or_else(|| usage());
                wheel_bits = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--perturb" => {
                let v = args.next().unwrap_or_else(|| usage());
                perturb = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--baseline-dir" => {
                let v = args.next().unwrap_or_else(|| usage());
                baseline_dir = std::path::PathBuf::from(v);
            }
            "--costmodel-out" => {
                let v = args.next().unwrap_or_else(|| usage());
                costmodel_out = Some(std::path::PathBuf::from(v));
            }
            "--ledger" => {
                let v = args.next().unwrap_or_else(|| usage());
                ledger = Some(std::path::PathBuf::from(v));
            }
            "--no-ledger" => ledger = None,
            "--ledger-rev" => {
                let v = args.next().unwrap_or_else(|| usage());
                if v.is_empty() {
                    usage();
                }
                ledger_rev = Some(v);
            }
            "--trend-out" => {
                let v = args.next().unwrap_or_else(|| usage());
                trend_out = std::path::PathBuf::from(v);
            }
            "--window" => {
                let v = args.next().unwrap_or_else(|| usage());
                trend_opts.window = v.parse().unwrap_or_else(|_| usage());
                if trend_opts.window == 0 {
                    usage();
                }
            }
            "--band" => {
                let v = args.next().unwrap_or_else(|| usage());
                trend_opts.band_pct = v.parse().unwrap_or_else(|_| usage());
                if !trend_opts.band_pct.is_finite() || trend_opts.band_pct < 0.0 {
                    usage();
                }
            }
            "--exp-band" => {
                let v = args.next().unwrap_or_else(|| usage());
                trend_opts.exp_band = v.parse().unwrap_or_else(|_| usage());
                if !trend_opts.exp_band.is_finite() || trend_opts.exp_band < 0.0 {
                    usage();
                }
            }
            _ => usage(),
        }
    }
    if target == "bench" && !cfg_overridden {
        cfg.sizes = bench::DEFAULT_BENCH_SIZES.to_vec();
    }
    // The frontier cell takes minutes: it rides along with the default
    // full sweep, but a scale-overridden run (--tiny/--quick/--sizes,
    // the CI and smoke-test shapes) only gets one on explicit request.
    let want_frontier = !no_frontier && (!cfg_overridden || frontier_requested);
    Options {
        target,
        cfg,
        csv_dir,
        jobs,
        bench_jobs,
        bench_out,
        frontier: want_frontier.then_some((frontier_n, frontier_events)),
        metrics_out,
        trace_out,
        trace_sample,
        profile_scenario,
        cell_n,
        event_limit,
        bin_us,
        report_out,
        timeseries_out,
        check,
        bless,
        perturb,
        wheel_bits,
        baseline_dir,
        costmodel_out,
        ledger,
        ledger_rev,
        trend_out,
        trend_opts,
    }
}

fn run_target(target: &str, sw: &mut Sweeper) -> Option<Figure> {
    let seed = sw.config().seed;
    let cfg = sw.config().clone();
    Some(match target {
        "table1" => figures::table1::run(&cfg),
        "fig1" => figures::fig1::run(seed),
        "fig3" => figures::fig3::run(seed),
        "fig4" => figures::fig4::run(sw),
        "fig5" => figures::fig5::run(sw),
        "fig6" => figures::fig6::run(sw),
        "fig7" => figures::fig7::run(sw),
        "fig8" => figures::fig8::run(sw),
        "fig9" => figures::fig9::run(sw),
        "fig10" => figures::fig10::run(sw),
        "fig11" => figures::fig11::run(sw),
        "fig12" => figures::fig12::run(sw),
        "ext_levent" => figures::ext_levent::run(sw),
        "ext_burstiness" => figures::ext_burstiness::run(sw),
        "ext_rfd" => figures::ext_rfd::run(sw),
        "ext_convergence" => figures::ext_convergence::run(sw),
        "ext_concurrency" => figures::ext_concurrency::run(sw),
        "ext_tablesize" => figures::ext_tablesize::run(sw),
        _ => return None,
    })
}

const ALL_TARGETS: [&str; 18] = [
    "table1", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12", "ext_levent", "ext_burstiness", "ext_rfd", "ext_convergence", "ext_concurrency",
    "ext_tablesize",
];

/// Writes the merged metrics registry as deterministic JSON.
fn write_metrics(
    path: &std::path::Path,
    metrics: &bgpscale_obs::MetricsRegistry,
) -> std::io::Result<()> {
    std::fs::write(path, metrics.to_json())?;
    log!(Info, "wrote metrics to {}", path.display());
    Ok(())
}

/// Streams trace records as JSONL through a buffered [`TraceWriter`],
/// stamped with a schema-version header line.
fn write_trace(path: &std::path::Path, records: &[TraceRecord]) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = TraceWriter::new(std::io::BufWriter::new(file));
    writer.write_header()?;
    writer.write_all(records)?;
    writer.finish()?;
    log!(Info, "wrote {} trace records to {}", records.len(), path.display());
    Ok(())
}

/// `repro profile`: run one observed cell, print the phase profile, and
/// optionally gate on [`profile::check`].
fn run_profile_target(opts: &Options) -> std::io::Result<bool> {
    let cfg = profile::ProfileConfig {
        scenario: opts.profile_scenario,
        n: opts.cell_n.unwrap_or_else(|| opts.cfg.sizes.first().copied().unwrap_or(300)),
        events: opts.cfg.events,
        seed: opts.cfg.seed,
        jobs: opts.jobs,
        trace_sample: opts.trace_out.as_ref().map(|_| opts.trace_sample),
        event_limit: opts.event_limit,
        wheel_slot_bits: opts.wheel_bits,
    };
    let out = match profile::run_profile(&cfg) {
        Ok(out) => out,
        Err(diagnosis) => {
            // Satellite fix: a blown event budget renders the harness's
            // budget snapshot instead of crashing the process.
            eprintln!("profile FAILED: {diagnosis}");
            return Ok(false);
        }
    };
    print!("{}", profile::render(&cfg, &out));
    if let Some(path) = &opts.metrics_out {
        write_metrics(path, &out.observed.metrics)?;
    }
    if let Some(path) = &opts.trace_out {
        write_trace(path, &out.observed.trace)?;
    }
    append_ledger(opts, &[trend::record_from_profile(&cfg, &out, &ledger_rev(opts))]);
    if opts.check {
        if let Err(reason) = profile::check(&out) {
            eprintln!("profile check FAILED: {reason}");
            return Ok(false);
        }
        log!(Info, "profile check passed");
    }
    Ok(true)
}

/// `repro report`: run one cell under both MRAI modes with the time-series
/// recorder, write the self-contained HTML page and the raw
/// `timeseries.json`, and optionally gate on [`htmlreport::check`].
fn run_report_target(opts: &Options) -> std::io::Result<bool> {
    let cfg = htmlreport::ReportConfig {
        scenario: opts.profile_scenario,
        n: opts.cell_n.unwrap_or_else(|| opts.cfg.sizes.first().copied().unwrap_or(300)),
        events: opts.cfg.events,
        seed: opts.cfg.seed,
        jobs: opts.jobs,
        bin_us: opts.bin_us,
    };
    log!(
        Info,
        "report: {} n={} events={} bin={}us …",
        cfg.scenario,
        cfg.n,
        cfg.events,
        cfg.bin_us
    );
    let out = htmlreport::run_report(&cfg);
    std::fs::write(&opts.report_out, &out.html)?;
    log!(Info, "wrote HTML report to {}", opts.report_out.display());
    std::fs::write(&opts.timeseries_out, &out.timeseries_json)?;
    log!(Info, "wrote time series to {}", opts.timeseries_out.display());
    if opts.check {
        if let Err(reason) = htmlreport::check(&out) {
            eprintln!("report check FAILED: {reason}");
            return Ok(false);
        }
        log!(Info, "report check passed");
    }
    Ok(true)
}

/// The current git revision, or `"unknown"` outside a work tree.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The revision recorded in ledger entries: `--ledger-rev` wins.
fn ledger_rev(opts: &Options) -> String {
    opts.ledger_rev.clone().unwrap_or_else(git_rev)
}

/// Appends this run's records to the ledger (a no-op under
/// `--no-ledger`). A corrupt or schema-foreign ledger is a configuration
/// problem (exit 2); a filesystem failure is a run failure (exit 1).
fn append_ledger(opts: &Options, records: &[LedgerRecord]) {
    let Some(path) = &opts.ledger else { return };
    match append_records(path, records) {
        Ok(outcome) => log!(
            Info,
            "ledger: {} record(s) appended to {} ({} deduped)",
            outcome.appended,
            path.display(),
            outcome.deduped
        ),
        Err(e @ LedgerError::Io(_)) => {
            eprintln!("ledger: {e}");
            std::process::exit(EXIT_FAIL);
        }
        Err(e) => {
            eprintln!("ledger: {e} (inspect or move {} aside)", path.display());
            std::process::exit(EXIT_USAGE);
        }
    }
}

/// `repro trend`: fold the ledger into trends, write the dashboard, and
/// optionally gate on regressions. Returns the process exit code.
fn run_trend_target(opts: &Options) -> i32 {
    let Some(path) = &opts.ledger else {
        eprintln!("trend: --no-ledger leaves nothing to analyze");
        return 2;
    };
    let mut records = match read_ledger(path) {
        Ok(records) => records,
        Err(e @ LedgerError::Io(_)) => {
            eprintln!("trend: {e}");
            return 1;
        }
        Err(e) => {
            eprintln!("trend: {e} (inspect or move {} aside)", path.display());
            return 2;
        }
    };
    if records.is_empty() {
        eprintln!(
            "trend: ledger {} is empty — run `repro bench|perf|profile` first",
            path.display()
        );
        return 2;
    }
    if let Some(seed) = opts.perturb {
        trend::perturb_latest(&mut records, seed);
    }
    let report = trend::analyze(&records, &opts.trend_opts);
    print!("{}", trend::render_text(&report));
    let html = trend::render_html(&records, &report, &opts.trend_opts);
    if let Err(e) = std::fs::write(&opts.trend_out, html) {
        eprintln!("trend: writing {} failed: {e}", opts.trend_out.display());
        return 1;
    }
    log!(Info, "trend: wrote {}", opts.trend_out.display());
    if opts.check {
        if !report.regressions.is_empty() {
            eprintln!("trend check FAILED: {} regression(s)", report.regressions.len());
            return 1;
        }
        log!(Info, "trend check passed");
    }
    0
}

/// `repro bench`: time the Baseline NO-WRATE sweep once per requested
/// worker count, run the Internet-scale frontier cell (unless
/// `--no-frontier`), and write `BENCH_harness.json` (measurement and
/// JSON rendering live in [`bench`]).
fn run_bench(
    cfg: &RunConfig,
    jobs_list: &[usize],
    frontier: Option<(usize, usize)>,
    out: &std::path::Path,
) -> std::io::Result<bench::BenchOutput> {
    let mut measured = bench::run_bench(cfg, jobs_list);
    if let Some((n, events)) = frontier {
        measured.frontier = Some(bench::run_frontier(n, events, cfg.seed));
    }
    std::fs::write(out, bench::render_json(cfg, &measured, &git_rev()))?;
    log!(Info, "bench: wrote {}", out.display());
    Ok(measured)
}

/// `repro perf`: check (or `--bless`) the exact op counts of every sweep
/// size against the checked-in baselines. Returns the process exit code.
fn run_perf_target(opts: &Options) -> i32 {
    let jobs = bgpscale_simkernel::pool::effective_jobs(opts.jobs).max(1);
    let mut exit = 0i32;
    let rev = ledger_rev(opts);
    let mut records = Vec::new();
    for (i, &n) in opts.cfg.sizes.iter().enumerate() {
        let cfg = perf::PerfConfig {
            scenario: opts.profile_scenario,
            n,
            events: opts.cfg.events,
            seed: opts.cfg.seed,
            jobs,
            baseline_dir: opts.baseline_dir.clone(),
            perturb: opts.perturb,
            wheel_slot_bits: opts.wheel_bits,
        };
        log!(
            Info,
            "perf: {} n={n} events={} seed={} ({}) …",
            cfg.scenario,
            cfg.events,
            cfg.seed,
            if opts.bless { "bless" } else { "check" }
        );
        let measurement = if opts.bless {
            match perf::bless_cell(&cfg) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("perf: blessing n={n} failed: {e}");
                    return 1;
                }
            }
        } else {
            let (verdict, m) = perf::check_cell(&cfg);
            match verdict {
                perf::PerfVerdict::Pass => {
                    log!(Info, "perf: n={n} OK ({} total ops)", m.ops.grand_total());
                }
                perf::PerfVerdict::Fail(msgs) => {
                    for msg in &msgs {
                        eprintln!("perf: n={n} FAILED: {msg}");
                    }
                    exit = exit.max(1);
                }
                perf::PerfVerdict::ConfigError(msg) => {
                    eprintln!("perf: n={n} config error: {msg}");
                    exit = 2;
                }
            }
            m
        };
        // A `--perturb` run carries a deliberately corrupted counter and
        // a `--wheel-bits` run a non-default queue granularity (same
        // results, different op mix) — never let either into history.
        if opts.perturb.is_none() && opts.wheel_bits.is_none() {
            records.push(trend::record_from_perf(&cfg, &measurement, &rev));
        }
        if let Some(path) = &opts.costmodel_out {
            // One size writes the exact path; more sizes get a per-size
            // suffix so nothing is silently overwritten.
            let path = if opts.cfg.sizes.len() == 1 {
                path.clone()
            } else {
                let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("costmodel");
                let ext = path.extension().and_then(|s| s.to_str()).unwrap_or("json");
                path.with_file_name(format!("{stem}_n{n}.{ext}"))
            };
            if let Err(e) = std::fs::write(&path, measurement.cost.to_json()) {
                eprintln!("perf: writing {} failed: {e}", path.display());
                return 1;
            }
            log!(Info, "perf: wrote {}", path.display());
        }
        let _ = i;
    }
    if exit != 2 {
        append_ledger(opts, &records);
    }
    exit
}

fn write_csv(dir: &std::path::Path, fig: &Figure) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (i, table) in fig.tables.iter().enumerate() {
        let path = dir.join(format!("{}_{}.csv", fig.id, i));
        let mut f = std::fs::File::create(path)?;
        // Stamp the export like every other artifact; `#` keeps the file
        // readable by gnuplot/pandas comment-skipping loaders.
        f.write_all(
            format!("# schema_version={}\n", bgpscale_obs::SCHEMA_VERSION).as_bytes(),
        )?;
        f.write_all(table.to_csv().as_bytes())?;
    }
    Ok(())
}

fn main() {
    let opts = parse_args();
    if opts.target == "bench" {
        match run_bench(&opts.cfg, &opts.bench_jobs, opts.frontier, &opts.bench_out) {
            Ok(measured) => {
                let records = trend::records_from_bench(&opts.cfg, &measured, &ledger_rev(&opts));
                append_ledger(&opts, &records);
            }
            Err(e) => {
                eprintln!("bench failed: {e}");
                std::process::exit(EXIT_FAIL);
            }
        }
        return;
    }
    if opts.target == "perf" {
        std::process::exit(run_perf_target(&opts));
    }
    if opts.target == "trend" {
        std::process::exit(run_trend_target(&opts));
    }
    if opts.target == "profile" || opts.target == "report" {
        let result = if opts.target == "profile" {
            run_profile_target(&opts)
        } else {
            run_report_target(&opts)
        };
        match result {
            Ok(true) => return,
            Ok(false) => std::process::exit(EXIT_FAIL),
            Err(e) => {
                eprintln!("{} failed: {e}", opts.target);
                std::process::exit(EXIT_FAIL);
            }
        }
    }
    let started = Stopwatch::start();
    let mut sw = Sweeper::new(opts.cfg.clone());
    sw.set_jobs(opts.jobs);
    sw.enable_heartbeat();
    if opts.metrics_out.is_some() || opts.trace_out.is_some() {
        let sample = opts.trace_out.as_ref().map(|_| opts.trace_sample);
        sw.enable_telemetry(sample);
    }
    sw.on_progress(move |scenario, n, mode| {
        log!(
            Info,
            "[{:7.1}s] running {scenario} n={n} {} …",
            started.elapsed_secs_f64(),
            mode.label()
        );
    });

    let targets: Vec<&str> = if opts.target == "all" {
        ALL_TARGETS.to_vec()
    } else {
        vec![opts.target.as_str()]
    };

    let mut failed_claims = 0usize;
    for t in &targets {
        let Some(fig) = run_target(t, &mut sw) else {
            eprintln!("unknown target: {t}");
            usage();
        };
        println!("{}", fig.render());
        failed_claims += fig.claims.iter().filter(|c| !c.holds).count();
        if let Some(dir) = &opts.csv_dir {
            if let Err(e) = write_csv(dir, &fig) {
                log!(Info, "warning: CSV export failed: {e}");
            }
        }
    }
    if let Some(path) = &opts.metrics_out {
        if let Err(e) = write_metrics(path, sw.metrics()) {
            eprintln!("writing {} failed: {e}", path.display());
            std::process::exit(EXIT_FAIL);
        }
    }
    if let Some(path) = &opts.trace_out {
        let trace = sw.take_trace();
        if let Err(e) = write_trace(path, &trace) {
            eprintln!("writing {} failed: {e}", path.display());
            std::process::exit(EXIT_FAIL);
        }
    }
    log!(
        Info,
        "done in {:.1}s ({} experiment cells, {} failed claims)",
        started.elapsed().as_secs_f64(),
        sw.cached_cells(),
        failed_claims
    );
    std::process::exit(if failed_claims > 0 { EXIT_FAIL } else { EXIT_OK });
}
