//! `repro` — regenerate the paper's tables and figures from scratch.
//!
//! ```text
//! repro <target> [options]
//!
//! targets:
//!   table1 fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//!   ext_levent     extension: link fail + recovery churn
//!   ext_burstiness extension: per-second update-rate peaks
//!   ext_rfd        extension: Route Flap Damping vs a flap storm
//!   ext_convergence extension: convergence times per MRAI mode
//!   ext_concurrency extension: per-interface vs per-prefix MRAI
//!   ext_tablesize  extension: per-event churn vs resident table size
//!   all            every target above, sharing one experiment cache
//!
//! options:
//!   --tiny         seconds-scale smoke run (n ≤ 900, 5 events). NOTE:
//!                  a handful of claims are scale-dependent (they need
//!                  n ≥ 1000 to rise above sampling noise or, for
//!                  STATIC-MIDDLE, to differ from BASELINE at all) and
//!                  may legitimately FAIL at this size; --quick and
//!                  --full are the validation modes.
//!   --quick        default: n ≤ 5000, 25 events per cell (minutes)
//!   --full         paper scale: n ≤ 10000, 100 events (hours)
//!   --seed <u64>   master seed (default 0x20080612)
//!   --events <k>   override events per cell
//!   --sizes a,b,c  override the size sweep
//!   --csv <dir>    additionally write every table as CSV into <dir>
//! ```

use std::io::Write as _;
use std::time::Instant;

use bgpscale_experiments::figures;
use bgpscale_experiments::{Figure, RunConfig, Sweeper};

fn usage() -> ! {
    eprintln!(
        "usage: repro <table1|fig1|fig3|fig4|...|fig12|all> \
         [--tiny|--quick|--full] [--seed N] [--events K] [--sizes a,b,c] [--csv DIR]"
    );
    std::process::exit(2);
}

struct Options {
    target: String,
    cfg: RunConfig,
    csv_dir: Option<std::path::PathBuf>,
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let target = args.next().unwrap_or_else(|| usage());
    let mut cfg = RunConfig::quick();
    let mut csv_dir = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tiny" => cfg = RunConfig::tiny().with_seed(cfg.seed),
            "--quick" => cfg = RunConfig::quick().with_seed(cfg.seed),
            "--full" => cfg = RunConfig::full().with_seed(cfg.seed),
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--events" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.events = v.parse().unwrap_or_else(|_| usage());
            }
            "--sizes" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.sizes = v
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if cfg.sizes.is_empty() {
                    usage();
                }
            }
            "--csv" => {
                let v = args.next().unwrap_or_else(|| usage());
                csv_dir = Some(std::path::PathBuf::from(v));
            }
            _ => usage(),
        }
    }
    Options {
        target,
        cfg,
        csv_dir,
    }
}

fn run_target(target: &str, sw: &mut Sweeper) -> Option<Figure> {
    let seed = sw.config().seed;
    let cfg = sw.config().clone();
    Some(match target {
        "table1" => figures::table1::run(&cfg),
        "fig1" => figures::fig1::run(seed),
        "fig3" => figures::fig3::run(seed),
        "fig4" => figures::fig4::run(sw),
        "fig5" => figures::fig5::run(sw),
        "fig6" => figures::fig6::run(sw),
        "fig7" => figures::fig7::run(sw),
        "fig8" => figures::fig8::run(sw),
        "fig9" => figures::fig9::run(sw),
        "fig10" => figures::fig10::run(sw),
        "fig11" => figures::fig11::run(sw),
        "fig12" => figures::fig12::run(sw),
        "ext_levent" => figures::ext_levent::run(sw),
        "ext_burstiness" => figures::ext_burstiness::run(sw),
        "ext_rfd" => figures::ext_rfd::run(sw),
        "ext_convergence" => figures::ext_convergence::run(sw),
        "ext_concurrency" => figures::ext_concurrency::run(sw),
        "ext_tablesize" => figures::ext_tablesize::run(sw),
        _ => return None,
    })
}

const ALL_TARGETS: [&str; 18] = [
    "table1", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12", "ext_levent", "ext_burstiness", "ext_rfd", "ext_convergence", "ext_concurrency",
    "ext_tablesize",
];

fn write_csv(dir: &std::path::Path, fig: &Figure) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (i, table) in fig.tables.iter().enumerate() {
        let path = dir.join(format!("{}_{}.csv", fig.id, i));
        let mut f = std::fs::File::create(path)?;
        f.write_all(table.to_csv().as_bytes())?;
    }
    Ok(())
}

fn main() {
    let opts = parse_args();
    let started = Instant::now();
    let mut sw = Sweeper::new(opts.cfg.clone());
    sw.on_progress(move |scenario, n, mode| {
        eprintln!(
            "[{:7.1}s] running {scenario} n={n} {} …",
            started.elapsed().as_secs_f64(),
            mode.label()
        );
    });

    let targets: Vec<&str> = if opts.target == "all" {
        ALL_TARGETS.to_vec()
    } else {
        vec![opts.target.as_str()]
    };

    let mut failed_claims = 0usize;
    for t in &targets {
        let Some(fig) = run_target(t, &mut sw) else {
            eprintln!("unknown target: {t}");
            usage();
        };
        println!("{}", fig.render());
        failed_claims += fig.claims.iter().filter(|c| !c.holds).count();
        if let Some(dir) = &opts.csv_dir {
            if let Err(e) = write_csv(dir, &fig) {
                eprintln!("warning: CSV export failed: {e}");
            }
        }
    }
    eprintln!(
        "done in {:.1}s ({} experiment cells, {} failed claims)",
        started.elapsed().as_secs_f64(),
        sw.cached_cells(),
        failed_claims
    );
    if failed_claims > 0 {
        std::process::exit(1);
    }
}
