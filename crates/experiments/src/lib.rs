//! # bgpscale-experiments
//!
//! Drivers that regenerate **every table and figure** of the CoNEXT 2008
//! paper *"On the scalability of BGP: the roles of topology growth and
//! update rate-limiting"*:
//!
//! | id | content | module |
//! |----|---------|--------|
//! | Table 1 | topology parameters, configured vs realized | [`figures::table1`] |
//! | Fig. 1 | churn growth at a monitor + Mann–Kendall trend | [`figures::fig1`] |
//! | Fig. 3 | an example topology instance (DOT sketch) | [`figures::fig3`] |
//! | Fig. 4 | U(X) vs n for X ∈ {T, M, CP, C} | [`figures::fig4`] |
//! | Fig. 5 | churn components Uc(T), Up(T); Ud(M), Up(M), Uc(M) | [`figures::fig5`] |
//! | Fig. 6 | relative increase + regression of Uc(T), Up(T), Ud(M) | [`figures::fig6`] |
//! | Fig. 7 | relative increase of the m, e, q factors | [`figures::fig7`] |
//! | Fig. 8 | the AS population mix deviations | [`figures::fig8`] |
//! | Fig. 9 | the multihoming-degree deviations | [`figures::fig9`] |
//! | Fig. 10 | the peering deviations | [`figures::fig10`] |
//! | Fig. 11 | the provider-preference deviations | [`figures::fig11`] |
//! | Fig. 12 | WRATE vs NO-WRATE | [`figures::fig12`] |
//! | Ext. E1 | link failure + recovery (L-events) | [`figures::ext_levent`] |
//! | Ext. E2 | within-convergence burstiness | [`figures::ext_burstiness`] |
//! | Ext. E3 | Route Flap Damping vs a flap storm | [`figures::ext_rfd`] |
//! | Ext. E4 | convergence times per MRAI mode | [`figures::ext_convergence`] |
//! | Ext. E5 | concurrent events: per-interface vs per-prefix MRAI | [`figures::ext_concurrency`] |
//! | Ext. E6 | per-event churn vs resident table size | [`figures::ext_tablesize`] |
//!
//! (Fig. 2 is the simulator's architecture diagram — it is *implemented*
//! by `bgpscale-bgp`/`bgpscale-core` rather than regenerated as data.)
//!
//! Every driver returns a [`report::Figure`]: formatted tables plus a list
//! of **shape claims** — the qualitative statements the paper makes about
//! the figure (orderings, constancy, superlinearity) — each evaluated
//! against the fresh simulation output. The `repro` binary prints both.
//!
//! Absolute numbers are not expected to match the paper (different random
//! topology instances, different tie-breaking hashes); the claims are the
//! reproduction criteria.

#![forbid(unsafe_code)]

pub mod bench;
pub mod churn_trace;
pub mod figures;
pub mod htmlreport;
pub mod perf;
pub mod profile;
pub mod report;
pub mod sweep;
pub mod trend;

pub use report::{Figure, Table};
pub use sweep::{CellSeries, RunConfig, Sweeper};

/// Exit code: targets ran and every requested check passed.
///
/// The 0/1/2 exit convention is shared workspace-wide (`detlint`,
/// `detflow`, `repro`) and detflow's artifact-contract pass requires
/// artifact-writing binaries to route their exits through these named
/// constants rather than magic numbers.
pub const EXIT_OK: i32 = 0;
/// Exit code: a run or a `--check` validation failed.
pub const EXIT_FAIL: i32 = 1;
/// Exit code: usage / configuration error.
pub const EXIT_USAGE: i32 = 2;
