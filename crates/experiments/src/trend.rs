//! `repro trend`: fold the run ledger into scaling trends and a
//! regression gate.
//!
//! The ledger (`obs::ledger`, default `results/ledger/runs.jsonl`) is the
//! append-only history every `repro bench` / `perf` / `profile` run
//! writes. This module is the analysis layer on top:
//!
//! * **Record builders** turn each subcommand's output into
//!   [`LedgerRecord`]s — deterministic fields from the cost model and
//!   artifact bytes, wall-side fields in integer units.
//! * **[`analyze`]** folds the history: per-op-class series keyed by
//!   `(config fingerprint, git rev)`, scaling-exponent refits via
//!   `stats::fit_linear` (log-log ops-per-event vs n, per revision), and
//!   regression detection — the newest entry of a fingerprint series vs
//!   the integer median of its last K predecessors (`--band`, percent),
//!   and exponent drift between consecutive revisions (`--exp-band`,
//!   absolute). Under `--check` any finding exits 1 (the repo-wide
//!   0/1/2 convention; a corrupt or empty ledger is 2).
//! * **[`render_html`]** writes the self-contained `trend.html`
//!   dashboard with `obs::render`: updates-per-event and events/sec vs n
//!   across revisions — the repo's own Fig. 1 analog, except the x-axis
//!   growth is the *codebase*, not the topology.
//!
//! Everything here runs outside the deterministic tier (it reads wall
//! fields and renders floats); the determinism contract is enforced
//! upstream, where the record's `det` block is produced.

use std::sync::Arc;

use bgpscale_obs::costmodel::OpCounts;
use bgpscale_obs::ledger::{ArtifactHashes, LedgerRecord, RunKind, WallSide};
use bgpscale_obs::render::{self, LineSeries};
use bgpscale_obs::SCHEMA_VERSION;
use bgpscale_obs::{log, CostModel};
use bgpscale_simkernel::rng::{hash64_bytes, hash64_pair};
use bgpscale_stats::descriptive::median_u64;
use bgpscale_stats::regression::fit_linear;

use crate::bench::BenchOutput;
use crate::perf::{PerfConfig, PerfMeasurement};
use crate::profile::{ProfileConfig, ProfileOutput};
use crate::sweep::RunConfig;

/// Analysis knobs; all have CLI flags on `repro trend`.
#[derive(Clone, Copy, Debug)]
pub struct TrendOptions {
    /// How many predecessor entries the op-count gate medians over (K).
    pub window: usize,
    /// Allowed op-count deviation from that median, percent.
    pub band_pct: f64,
    /// Allowed absolute scaling-exponent drift between consecutive revs.
    pub exp_band: f64,
}

impl Default for TrendOptions {
    fn default() -> TrendOptions {
        TrendOptions {
            window: 5,
            band_pct: 10.0,
            exp_band: 0.25,
        }
    }
}

/// One fitted per-class scaling exponent at one revision of one config
/// group (`ops_per_event ∝ n^exponent` over that rev's sizes).
#[derive(Clone, Debug)]
pub struct ExponentFit {
    /// The config group label (`scenario/mode seed events`).
    pub group: String,
    /// Git revision the fit belongs to.
    pub rev: String,
    /// Op class.
    pub class: &'static str,
    /// Fitted log-log slope.
    pub exponent: f64,
    /// Fit quality.
    pub r_squared: f64,
}

/// What [`analyze`] produced.
#[derive(Clone, Debug, Default)]
pub struct TrendReport {
    /// Records analyzed.
    pub records: usize,
    /// Distinct git revisions, in first-appearance (append) order.
    pub revs: Vec<String>,
    /// Distinct config fingerprints.
    pub fingerprints: usize,
    /// Scaling-exponent refits, one per (config group, rev, class).
    pub exponent_fits: Vec<ExponentFit>,
    /// Human-readable regression findings; empty means the gate passes.
    pub regressions: Vec<String>,
}

fn secs_to_us(s: f64) -> u64 {
    (s * 1e6).max(0.0).round() as u64
}

fn pct_to_cpct(pct: f64) -> i64 {
    (pct * 100.0).round() as i64
}

fn hash_json(json: &str) -> Option<u64> {
    Some(hash64_bytes(json.as_bytes()))
}

/// The MRAI-mode label of the default cell config (`perf` and `profile`
/// run with `BgpConfig::default()`).
fn default_mode_label() -> &'static str {
    bgpscale_bgp::BgpConfig::default().mrai_mode.label()
}

/// One ledger record per cell of the first bench run. Deterministic
/// fields come from the cost model (identical across runs — `run_bench`
/// asserts cross-run report equality); wall time is that cell's, observer
/// overheads attach to the first-size record (where the micro-benchmark
/// ran).
pub fn records_from_bench(cfg: &RunConfig, out: &BenchOutput, git_rev: &str) -> Vec<LedgerRecord> {
    let Some(first) = out.runs.first() else {
        return Vec::new();
    };
    let mut records = Vec::new();
    for (i, cell) in first.cells.iter().enumerate() {
        let cost: Option<&Arc<CostModel>> = out
            .first_run_costs
            .iter()
            .find(|(n, _)| *n == cell.n)
            .map(|(_, c)| c);
        records.push(LedgerRecord {
            schema: SCHEMA_VERSION,
            kind: RunKind::Bench,
            git_rev: git_rev.to_string(),
            scenario: "BASELINE".to_string(),
            n: cell.n as u64,
            mode: "NO-WRATE".to_string(),
            seed: cfg.seed,
            events: cfg.events as u64,
            ops: cell.ops,
            artifacts: ArtifactHashes {
                metrics: None,
                timeseries: None,
                costmodel: cost.and_then(|c| hash_json(&c.to_json())),
            },
            wall: WallSide {
                wall_us: secs_to_us(cell.wall_s),
                jobs: first.effective_jobs as u64,
                peak_rss_bytes: out.peak_rss_bytes,
                metrics_overhead_cpct: (i == 0)
                    .then(|| pct_to_cpct(out.overhead.metrics_overhead.raw_pct)),
                trace_overhead_cpct: (i == 0)
                    .then(|| pct_to_cpct(out.overhead.trace_overhead.raw_pct)),
            },
        });
    }
    records
}

/// The ledger record of one `repro perf` cell. Callers must skip the
/// append under `--perturb` — a deliberately corrupted count must never
/// enter history.
pub fn record_from_perf(cfg: &PerfConfig, m: &PerfMeasurement, git_rev: &str) -> LedgerRecord {
    LedgerRecord {
        schema: SCHEMA_VERSION,
        kind: RunKind::Perf,
        git_rev: git_rev.to_string(),
        scenario: cfg.scenario.to_string(),
        n: cfg.n as u64,
        mode: default_mode_label().to_string(),
        seed: cfg.seed,
        events: cfg.events as u64,
        ops: m.ops,
        artifacts: ArtifactHashes {
            metrics: None,
            timeseries: None,
            costmodel: hash_json(&m.cost.to_json()),
        },
        wall: WallSide {
            wall_us: secs_to_us(m.wall_s),
            jobs: cfg.jobs as u64,
            peak_rss_bytes: bgpscale_simkernel::peak_rss_bytes(),
            metrics_overhead_cpct: None,
            trace_overhead_cpct: None,
        },
    }
}

/// The ledger record of one `repro profile` cell, with content hashes of
/// every deterministic artifact the run produced.
pub fn record_from_profile(cfg: &ProfileConfig, out: &ProfileOutput, git_rev: &str) -> LedgerRecord {
    LedgerRecord {
        schema: SCHEMA_VERSION,
        kind: RunKind::Profile,
        git_rev: git_rev.to_string(),
        scenario: cfg.scenario.to_string(),
        n: cfg.n as u64,
        mode: default_mode_label().to_string(),
        seed: cfg.seed,
        events: cfg.events as u64,
        ops: out.observed.cost.total(),
        artifacts: ArtifactHashes {
            metrics: hash_json(&out.observed.metrics.to_json()),
            timeseries: out
                .observed
                .timeseries
                .as_ref()
                .and_then(|ts| hash_json(&ts.to_json())),
            costmodel: hash_json(&out.observed.cost.to_json()),
        },
        wall: WallSide {
            wall_us: secs_to_us(out.wall_s),
            jobs: cfg.jobs as u64,
            peak_rss_bytes: bgpscale_simkernel::peak_rss_bytes(),
            metrics_overhead_cpct: None,
            trace_overhead_cpct: None,
        },
    }
}

/// Deterministically corrupts the newest entry of every fingerprint
/// series that has history (≥ 2 entries): one op class (chosen from
/// `seed` like `perf --perturb`) is inflated past any sane band
/// (`v → 2·v + 1 + bump`). The CI mutation gate proving `trend --check`
/// still catches what it claims to catch. In-memory only — never written
/// back to the ledger.
pub fn perturb_latest(records: &mut [LedgerRecord], seed: u64) {
    let idx = (hash64_pair(seed, 0xBAD) % OpCounts::FIELD_COUNT as u64) as usize;
    let bump = 1 + hash64_pair(seed, 0xB00) % 1_000;
    let class = OpCounts::field_names()[idx];
    // Newest entry per fingerprint, and whether that fingerprint recurs.
    let mut perturbed = 0usize;
    let fingerprints: Vec<u64> = records.iter().map(LedgerRecord::fingerprint).collect();
    for i in 0..records.len() {
        let fp = fingerprints[i];
        let is_latest = !fingerprints[i + 1..].contains(&fp);
        let has_history = fingerprints[..i].contains(&fp);
        if is_latest && has_history {
            let mut fields = records[i].ops.fields();
            fields[idx].1 = fields[idx].1 * 2 + bump;
            records[i].ops = OpCounts::from_fields(&fields);
            perturbed += 1;
        }
    }
    log!(
        Info,
        "trend: perturbing {class} (×2 +{bump}, seed {seed}) on {perturbed} newest entries"
    );
}

/// The per-config grouping key for exponent fits and dashboards
/// (scenario, mode, seed, events): records are comparable across n only
/// when everything else matches.
type GroupKey = (String, String, u64, u64);

fn group_key(r: &LedgerRecord) -> GroupKey {
    (r.scenario.clone(), r.mode.clone(), r.seed, r.events)
}

fn group_label(key: &GroupKey) -> String {
    format!("{}/{} seed={} events={}", key.0, key.1, key.2, key.3)
}

/// Fits per-class scaling exponents for one rev of one config group:
/// `ln(ops/event) = a + b·ln(n)` over its distinct sizes. Mirrors
/// `bench::fit_cost_exponents`, but over ledger history instead of a
/// fresh sweep. Classes with a zero count at any size are skipped (the
/// log-log fit is undefined there).
fn fit_rev_exponents(
    group: &str,
    rev: &str,
    cells: &[(u64, OpCounts)],
    events: u64,
) -> Vec<ExponentFit> {
    if cells.len() < 2 || events == 0 {
        return Vec::new();
    }
    let mut fits = Vec::new();
    for (idx, name) in OpCounts::field_names().iter().enumerate() {
        let mut xs = Vec::with_capacity(cells.len());
        let mut ys = Vec::with_capacity(cells.len());
        let mut ok = true;
        for (n, ops) in cells {
            let count = ops.fields()[idx].1;
            if count == 0 || *n == 0 {
                ok = false;
                break;
            }
            xs.push((*n as f64).ln());
            ys.push((count as f64 / events as f64).ln());
        }
        if !ok {
            continue;
        }
        let fit = fit_linear(&xs, &ys);
        fits.push(ExponentFit {
            group: group.to_string(),
            rev: rev.to_string(),
            class: name,
            exponent: fit.slope,
            r_squared: fit.r_squared,
        });
    }
    fits
}

/// Folds the ledger into trends and regression findings. Records must be
/// in append (chronological) order, which is how `read_ledger` returns
/// them.
pub fn analyze(records: &[LedgerRecord], opts: &TrendOptions) -> TrendReport {
    let mut report = TrendReport {
        records: records.len(),
        ..TrendReport::default()
    };
    for r in records {
        if !report.revs.contains(&r.git_rev) {
            report.revs.push(r.git_rev.clone());
        }
    }

    // --- Op-count gate: newest entry of each fingerprint series vs the
    // integer median of its last K predecessors. ---
    let mut series: Vec<(u64, Vec<&LedgerRecord>)> = Vec::new();
    for r in records {
        let fp = r.fingerprint();
        match series.iter_mut().find(|(f, _)| *f == fp) {
            Some((_, v)) => v.push(r),
            None => series.push((fp, vec![r])),
        }
    }
    report.fingerprints = series.len();
    for (_, entries) in &series {
        if entries.len() < 2 {
            continue;
        }
        let latest = entries[entries.len() - 1];
        // Schema-aware: op classes are append-only, so records written
        // under an older schema carry zero-filled padding for the newer
        // classes — comparing against them manufactures regressions out
        // of thin air. Only same-schema history is comparable.
        let history: Vec<&LedgerRecord> = entries[..entries.len() - 1]
            .iter()
            .filter(|r| r.schema == latest.schema)
            .copied()
            .collect();
        if history.is_empty() {
            continue;
        }
        let window = &history[history.len().saturating_sub(opts.window)..];
        for (idx, name) in OpCounts::field_names().iter().enumerate() {
            let values: Vec<u64> = window.iter().map(|r| r.ops.fields()[idx].1).collect();
            let med = median_u64(&values).expect("window is non-empty");
            let new = latest.ops.fields()[idx].1;
            let out_of_band = if med == 0 {
                new != 0
            } else {
                let delta_pct = (new as f64 - med as f64).abs() / med as f64 * 100.0;
                delta_pct > opts.band_pct
            };
            if out_of_band {
                let delta_pct = if med == 0 {
                    f64::INFINITY
                } else {
                    (new as f64 - med as f64) / med as f64 * 100.0
                };
                report.regressions.push(format!(
                    "op-count regression: {} n={} {} {}: {} vs median {} of last {} \
                     ({:+.1}% outside ±{}% band) at rev {}",
                    latest.scenario,
                    latest.n,
                    latest.mode,
                    name,
                    new,
                    med,
                    window.len(),
                    delta_pct,
                    opts.band_pct,
                    latest.git_rev
                ));
            }
        }
    }

    // --- Exponent refits per (config group, rev), then drift between
    // consecutive revs of the same group. ---
    let mut groups: Vec<(GroupKey, Vec<&LedgerRecord>)> = Vec::new();
    for r in records {
        let key = group_key(r);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(r),
            None => groups.push((key, vec![r])),
        }
    }
    for (key, entries) in &groups {
        let label = group_label(key);
        let mut rev_fits: Vec<(String, Vec<ExponentFit>)> = Vec::new();
        for rev in &report.revs {
            // One (n → ops) cell per size at this rev; duplicates (e.g. a
            // bench and a perf record of the same cell, or a dedupe-missed
            // re-run) keep the newest.
            let mut cells: Vec<(u64, OpCounts)> = Vec::new();
            for r in entries.iter().filter(|r| &r.git_rev == rev) {
                match cells.iter_mut().find(|(n, _)| *n == r.n) {
                    Some(slot) => slot.1 = r.ops,
                    None => cells.push((r.n, r.ops)),
                }
            }
            cells.sort_unstable_by_key(|(n, _)| *n);
            let fits = fit_rev_exponents(&label, rev, &cells, key.3);
            if !fits.is_empty() {
                rev_fits.push((rev.clone(), fits));
            }
        }
        for pair in rev_fits.windows(2) {
            let (prev_rev, prev) = &pair[0];
            let (next_rev, next) = &pair[1];
            for f in next {
                let Some(p) = prev.iter().find(|p| p.class == f.class) else {
                    continue;
                };
                let drift = f.exponent - p.exponent;
                // One-sided: only a *rising* exponent (worse asymptotic
                // scaling) gates. A drop is an improvement — flagging it
                // would force a ledger rewrite after every optimization.
                if drift > opts.exp_band {
                    report.regressions.push(format!(
                        "exponent regression: {} {}: n-exponent {:.3} at rev {} vs {:.3} at \
                         rev {} ({:+.3} above the +{} band)",
                        label, f.class, f.exponent, next_rev, p.exponent, prev_rev, drift,
                        opts.exp_band
                    ));
                }
            }
        }
        report
            .exponent_fits
            .extend(rev_fits.into_iter().flat_map(|(_, fits)| fits));
    }
    report
}

fn short_rev(rev: &str) -> &str {
    if rev.len() > 10 { &rev[..10] } else { rev }
}

fn fmt_rss(bytes: Option<u64>) -> String {
    match bytes {
        Some(b) => format!("{:.1}", b as f64 / (1 << 20) as f64),
        None => "—".to_string(),
    }
}

/// Renders the self-contained `trend.html` dashboard: events/sec and
/// updates-per-event vs n, one line per revision, for the config group
/// with the most history; plus the full per-rev cell table, exponent
/// refits, and the regression list.
pub fn render_html(records: &[LedgerRecord], report: &TrendReport, opts: &TrendOptions) -> String {
    use std::fmt::Write as _;

    let mut body = String::new();
    let _ = write!(
        body,
        "<h1>bgpscale run ledger — scaling trends</h1>\
         <p>{} records · {} revisions · {} config fingerprints · \
         op-count band ±{}% over last {} · exponent band ±{}</p>",
        report.records,
        report.revs.len(),
        report.fingerprints,
        opts.band_pct,
        opts.window,
        opts.exp_band
    );

    body.push_str("<h2>Regressions</h2>");
    if report.regressions.is_empty() {
        body.push_str("<p>none detected</p>");
    } else {
        body.push_str("<ul>");
        for r in &report.regressions {
            let _ = write!(body, "<li>{}</li>", render::html_escape(r));
        }
        body.push_str("</ul>");
    }

    // Dominant config group drives the charts.
    let mut groups: Vec<(GroupKey, Vec<&LedgerRecord>)> = Vec::new();
    for r in records {
        let key = group_key(r);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(r),
            None => groups.push((key, vec![r])),
        }
    }
    if let Some((key, entries)) = groups.iter().max_by_key(|(_, v)| v.len()) {
        // (rev, sorted (n, events/s, updates/event, ops/event)) series.
        type CellPoint = (f64, f64, f64, f64);
        let mut per_rev: Vec<(String, Vec<CellPoint>)> = Vec::new();
        for rev in &report.revs {
            let mut cells: Vec<(u64, &LedgerRecord)> = Vec::new();
            for r in entries.iter().filter(|r| &r.git_rev == rev) {
                match cells.iter_mut().find(|(n, _)| *n == r.n) {
                    Some(slot) => slot.1 = r,
                    None => cells.push((r.n, r)),
                }
            }
            cells.sort_unstable_by_key(|(n, _)| *n);
            if cells.is_empty() {
                continue;
            }
            let pts = cells
                .iter()
                .map(|(n, r)| {
                    let events_per_s = r.events as f64 / (r.wall.wall_us.max(1) as f64 / 1e6);
                    let per_event = |v: u64| v as f64 / r.events.max(1) as f64;
                    (
                        *n as f64,
                        events_per_s,
                        per_event(r.ops.deliveries),
                        per_event(r.ops.grand_total()),
                    )
                })
                .collect();
            per_rev.push((rev.clone(), pts));
        }

        let _ = write!(
            body,
            "<h2>Scaling across revisions — {}</h2>",
            render::html_escape(&group_label(key))
        );
        for (title, pick, note) in [
            (
                "updates per event vs n",
                1usize,
                "deterministic: update deliveries per C-event (the Fig. 1 quantity)",
            ),
            (
                "events/sec vs n",
                0usize,
                "wall-side: C-events per second of wall time (machine-dependent)",
            ),
            (
                "total ops per event vs n",
                2usize,
                "deterministic: all op classes summed, per C-event",
            ),
        ] {
            let series_pts: Vec<Vec<(f64, f64)>> = per_rev
                .iter()
                .map(|(_, pts)| {
                    pts.iter()
                        .map(|&(n, eps, upd, ops)| (n, [eps, upd, ops][pick]))
                        .collect()
                })
                .collect();
            let series: Vec<LineSeries<'_>> = per_rev
                .iter()
                .zip(&series_pts)
                .map(|((rev, _), pts)| LineSeries {
                    label: short_rev(rev),
                    points: pts,
                })
                .collect();
            let _ = write!(
                body,
                "<div class=\"panel\"><p>{}</p>{}<p>{}</p></div>",
                render::html_escape(title),
                render::svg_lines(&series, 320, 160),
                render::html_escape(note)
            );
        }

        body.push_str("<h2>Cells</h2>");
        let rows: Vec<Vec<String>> = per_rev
            .iter()
            .flat_map(|(rev, pts)| {
                let rev = rev.clone();
                pts.iter()
                    .map(move |&(n, eps, upd, ops)| {
                        vec![
                            short_rev(&rev).to_string(),
                            format!("{n:.0}"),
                            format!("{eps:.1}"),
                            format!("{upd:.1}"),
                            format!("{ops:.1}"),
                        ]
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        body.push_str(&render::html_table(
            &["rev", "n", "events/s", "updates/event", "ops/event"],
            &rows,
        ));
    }

    if !report.exponent_fits.is_empty() {
        body.push_str("<h2>Scaling-exponent refits</h2>");
        let rows: Vec<Vec<String>> = report
            .exponent_fits
            .iter()
            .map(|f| {
                vec![
                    f.group.clone(),
                    short_rev(&f.rev).to_string(),
                    f.class.to_string(),
                    format!("{:.3}", f.exponent),
                    format!("{:.3}", f.r_squared),
                ]
            })
            .collect();
        body.push_str(&render::html_table(
            &["config", "rev", "op class", "n-exponent", "r²"],
            &rows,
        ));
    }

    // Wall-side context table: RSS and overheads where recorded.
    let rss_rows: Vec<Vec<String>> = records
        .iter()
        .filter(|r| r.wall.peak_rss_bytes.is_some() || r.wall.metrics_overhead_cpct.is_some())
        .map(|r| {
            vec![
                short_rev(&r.git_rev).to_string(),
                r.kind.to_string(),
                r.n.to_string(),
                fmt_rss(r.wall.peak_rss_bytes),
                r.wall
                    .metrics_overhead_cpct
                    .map_or("—".to_string(), |c| format!("{:.2}", c as f64 / 100.0)),
                r.wall
                    .trace_overhead_cpct
                    .map_or("—".to_string(), |c| format!("{:.2}", c as f64 / 100.0)),
            ]
        })
        .collect();
    if !rss_rows.is_empty() {
        body.push_str("<h2>Wall-side context</h2>");
        body.push_str(&render::html_table(
            &["rev", "kind", "n", "peak RSS (MiB)", "metrics ovh %", "trace ovh %"],
            &rss_rows,
        ));
    }

    render::html_page("bgpscale trend dashboard", &body)
}

/// Renders the terminal summary.
pub fn render_text(report: &TrendReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "trend: {} records, {} revisions, {} config fingerprints",
        report.records,
        report.revs.len(),
        report.fingerprints
    );
    for f in &report.exponent_fits {
        let _ = writeln!(
            s,
            "  exponent {} @ {}: {:<18} {:+.3} (r²={:.3})",
            f.group,
            short_rev(&f.rev),
            f.class,
            f.exponent,
            f.r_squared
        );
    }
    if report.regressions.is_empty() {
        let _ = writeln!(s, "  regressions: none");
    } else {
        for r in &report.regressions {
            let _ = writeln!(s, "  REGRESSION: {r}");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpscale_topology::GrowthScenario;

    /// A record whose counts are an exact linear (or quadratic) function
    /// of n, so exponent fits land on integers.
    fn rec(n: u64, rev: &str, per_class: u64) -> LedgerRecord {
        let fields = OpCounts::default().fields().map(|(name, _)| (name, per_class));
        LedgerRecord {
            schema: SCHEMA_VERSION,
            kind: RunKind::Bench,
            git_rev: rev.to_string(),
            scenario: "BASELINE".to_string(),
            n,
            mode: "NO-WRATE".to_string(),
            seed: 7,
            events: 10,
            ops: OpCounts::from_fields(&fields),
            artifacts: ArtifactHashes::default(),
            wall: WallSide {
                wall_us: 1000 * n,
                jobs: 1,
                peak_rss_bytes: Some(1 << 20),
                metrics_overhead_cpct: None,
                trace_overhead_cpct: None,
            },
        }
    }

    #[test]
    fn stable_history_passes_the_gate() {
        let records: Vec<LedgerRecord> = ["r1", "r2", "r3"]
            .iter()
            .flat_map(|rev| [rec(100, rev, 100 * 100), rec(400, rev, 100 * 400)])
            .collect();
        let report = analyze(&records, &TrendOptions::default());
        assert_eq!(report.records, 6);
        assert_eq!(report.revs, vec!["r1", "r2", "r3"]);
        assert_eq!(report.fingerprints, 2, "one series per size");
        assert!(report.regressions.is_empty(), "{:?}", report.regressions);
        // Counts ∝ n → exponent ≈ 1 for every class at every rev.
        assert!(!report.exponent_fits.is_empty());
        for f in &report.exponent_fits {
            assert!((f.exponent - 1.0).abs() < 1e-9, "{}: {}", f.class, f.exponent);
            assert!((f.r_squared - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn op_count_drift_beyond_band_is_caught() {
        let mut records = vec![rec(100, "r1", 1000), rec(100, "r2", 1000)];
        records.push(rec(100, "r3", 1200)); // +20% vs median 1000
        let report = analyze(&records, &TrendOptions::default());
        assert!(
            report.regressions.iter().any(|r| r.contains("op-count regression")),
            "{:?}",
            report.regressions
        );
        // Inside a ±25% band the same history passes.
        let loose = TrendOptions {
            band_pct: 25.0,
            ..TrendOptions::default()
        };
        assert!(analyze(&records, &loose).regressions.is_empty());
    }

    #[test]
    fn zero_median_with_new_nonzero_count_is_caught() {
        let mut quiet = rec(100, "r1", 1000);
        let mut fields = quiet.ops.fields();
        fields[12].1 = 0; // mrai_coalesced silent historically
        quiet.ops = OpCounts::from_fields(&fields);
        let mut noisy = rec(100, "r2", 1000);
        let mut fields = noisy.ops.fields();
        fields[12].1 = 3; // …and suddenly active
        noisy.ops = OpCounts::from_fields(&fields);
        let report = analyze(&[quiet, noisy], &TrendOptions::default());
        assert!(
            report.regressions.iter().any(|r| r.contains("mrai_coalesced")),
            "{:?}",
            report.regressions
        );
    }

    #[test]
    fn exponent_drift_across_revs_is_caught() {
        // r1 scales linearly, r2 quadratically: exponent 1 → 2.
        let records = vec![
            rec(100, "r1", 10 * 100),
            rec(400, "r1", 10 * 400),
            rec(100, "r2", 100 * 100),
            rec(400, "r2", 400 * 400),
        ];
        let report = analyze(&records, &TrendOptions::default());
        assert!(
            report.regressions.iter().any(|r| r.contains("exponent regression")),
            "{:?}",
            report.regressions
        );
        // A huge exponent band lets it pass; the op-count gate still
        // fires (the counts themselves moved), so filter for exponents.
        let loose = TrendOptions {
            exp_band: 5.0,
            ..TrendOptions::default()
        };
        assert!(analyze(&records, &loose)
            .regressions
            .iter()
            .all(|r| !r.contains("exponent regression")));
    }

    #[test]
    fn exponent_improvement_does_not_gate() {
        // r1 scales quadratically, r2 linearly: exponent 2 → 1 is an
        // improvement and must pass the one-sided drift gate.
        let records = vec![
            rec(100, "r1", 100 * 100),
            rec(400, "r1", 400 * 400),
            rec(100, "r2", 10 * 100),
            rec(400, "r2", 10 * 400),
        ];
        let report = analyze(&records, &TrendOptions::default());
        assert!(
            report.regressions.iter().all(|r| !r.contains("exponent regression")),
            "{:?}",
            report.regressions
        );
    }

    #[test]
    fn older_schema_history_is_not_comparable() {
        // A v1 record's trailing op classes are zero-filled padding, not
        // measured zeros: a v2 record with real counts there must not be
        // flagged against it (the zero-median rule would otherwise fire
        // for every appended class on the first post-migration run).
        let mut old = rec(100, "r1", 1000);
        old.schema = 1;
        let mut fields = old.ops.fields();
        for f in fields.iter_mut().skip(OpCounts::FIELD_COUNT_V1) {
            f.1 = 0;
        }
        old.ops = OpCounts::from_fields(&fields);
        let new = rec(100, "r2", 1000);
        let report = analyze(&[old, new], &TrendOptions::default());
        assert!(report.regressions.is_empty(), "{:?}", report.regressions);
    }

    #[test]
    fn window_limits_the_median_history() {
        // Old history at 2000, recent 4 entries at 1000, newest at 1000:
        // with window=4 the median is 1000 → pass; window=20 would pull
        // the old level in and still pass (median of mixed history is
        // 1000 here), so assert the sharper converse: newest at 2000
        // passes a window-4 gate only if the 2000s are inside the window.
        let mut records: Vec<LedgerRecord> = (0..3)
            .map(|i| rec(100, &format!("old{i}"), 2000))
            .collect();
        records.extend((0..4).map(|i| rec(100, &format!("new{i}"), 1000)));
        records.push(rec(100, "head", 1000));
        let opts = TrendOptions {
            window: 4,
            ..TrendOptions::default()
        };
        assert!(analyze(&records, &opts).regressions.is_empty());
        // Same ledger, newest flips back to the old level: the window-4
        // median (1000) flags it even though 2000 was once normal.
        records.last_mut().unwrap().ops = rec(100, "head", 2000).ops;
        assert!(!analyze(&records, &opts).regressions.is_empty());
    }

    #[test]
    fn perturb_latest_trips_the_gate_deterministically() {
        let mut a = vec![rec(100, "r1", 1000), rec(100, "r2", 1000)];
        let mut b = a.clone();
        assert!(analyze(&a, &TrendOptions::default()).regressions.is_empty());
        perturb_latest(&mut a, 1);
        perturb_latest(&mut b, 1);
        assert_eq!(a[1].ops, b[1].ops, "perturbation is deterministic");
        assert_ne!(a[0].ops, a[1].ops, "only the newest entry is touched");
        let report = analyze(&a, &TrendOptions::default());
        assert!(
            report.regressions.iter().any(|r| r.contains("op-count regression")),
            "{:?}",
            report.regressions
        );
    }

    #[test]
    fn dashboard_renders_both_chart_axes_across_revs() {
        let records: Vec<LedgerRecord> = ["r1", "r2"]
            .iter()
            .flat_map(|rev| [rec(100, rev, 100 * 100), rec(400, rev, 100 * 400)])
            .collect();
        let opts = TrendOptions::default();
        let report = analyze(&records, &opts);
        let html = render_html(&records, &report, &opts);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("updates per event vs n"));
        assert!(html.contains("events/sec vs n"));
        assert!(html.contains(">r1</text>") && html.contains(">r2</text>"));
        assert!(html.contains("Scaling-exponent refits"));
        assert!(html.contains("none detected"));
        let text = render_text(&report);
        assert!(text.contains("2 revisions"));
        assert!(text.contains("regressions: none"));
    }

    #[test]
    fn bench_records_carry_cost_hashes_and_wall_segregation() {
        let cfg = RunConfig {
            sizes: vec![150, 250],
            events: 2,
            seed: 42,
        };
        let out = crate::bench::run_bench(&cfg, &[1]);
        let records = records_from_bench(&cfg, &out, "testrev");
        assert_eq!(records.len(), 2);
        for (r, n) in records.iter().zip([150u64, 250]) {
            assert_eq!(r.kind, RunKind::Bench);
            assert_eq!(r.n, n);
            assert_eq!(r.seed, 42);
            assert!(r.ops.grand_total() > 0);
            assert!(r.artifacts.costmodel.is_some(), "cost model hashed");
            assert!(r.wall.wall_us > 0);
            assert_eq!(r.wall.jobs, 1);
        }
        assert!(
            records[0].wall.metrics_overhead_cpct.is_some(),
            "overhead attaches to the first-size record"
        );
        assert!(records[1].wall.metrics_overhead_cpct.is_none());
        // The artifact hash is the hash of the exact bytes.
        let expect = hash64_bytes(out.first_run_costs[0].1.to_json().as_bytes());
        assert_eq!(records[0].artifacts.costmodel, Some(expect));
    }

    #[test]
    fn perf_and_profile_records_share_the_cell_fingerprint() {
        let perf_cfg = PerfConfig {
            scenario: GrowthScenario::Baseline,
            n: 150,
            events: 2,
            seed: 7,
            jobs: 1,
            baseline_dir: std::path::PathBuf::from("/nonexistent"),
            perturb: None,
            wheel_slot_bits: None,
        };
        let m = crate::perf::measure(&perf_cfg);
        let pr = record_from_perf(&perf_cfg, &m, "r1");
        let prof_cfg = ProfileConfig {
            scenario: GrowthScenario::Baseline,
            n: 150,
            events: 2,
            seed: 7,
            jobs: 1,
            trace_sample: None,
            event_limit: None,
            wheel_slot_bits: None,
        };
        let out = crate::profile::run_profile(&prof_cfg).unwrap();
        let fr = record_from_profile(&prof_cfg, &out, "r1");
        // Same cell coordinates → same fingerprint and identical ops
        // (determinism); different kinds → distinct det hashes.
        assert_eq!(pr.fingerprint(), fr.fingerprint());
        assert_eq!(pr.ops, fr.ops, "op counts are a pure function of the cell");
        assert_ne!(pr.det_hash(), fr.det_hash(), "kind is part of the det block");
        assert!(fr.artifacts.metrics.is_some(), "profile hashes metrics.json");
        assert!(fr.artifacts.costmodel.is_some());
    }
}
