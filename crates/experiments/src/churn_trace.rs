//! A synthetic RIPE-style churn monitor (the Fig. 1 substitution).
//!
//! Fig. 1 of the paper plots the daily number of BGP updates received from
//! a RIPE RIS monitor in France Telecom's backbone over 2005–2007 (~1000
//! days), showing roughly 200% total growth under extreme day-to-day
//! variability, with the trend estimated by the Mann–Kendall test.
//!
//! The RIS archive is not available offline, so this module generates a
//! statistically similar series: a linear growth trend, multiplicative
//! lognormal day-to-day noise, and occasional heavy-tailed (Pareto) burst
//! days — the paper notes peak rates can reach ~1000× the average. The
//! *analysis pipeline* (Mann–Kendall + Sen's slope on a bursty counting
//! series) is identical to the paper's; only the input bytes are
//! synthetic.

use bgpscale_simkernel::rng::{Rng, Xoshiro256StarStar};
use bgpscale_stats::mann_kendall::{mann_kendall, sens_slope, MannKendall};

/// Parameters of the synthetic monitor series.
#[derive(Clone, Debug)]
pub struct ChurnTraceConfig {
    /// Number of days (the paper's window is ~1000, 2005-01-01 onward).
    pub days: usize,
    /// Mean daily update count at day 0.
    pub base_daily: f64,
    /// Total fractional growth over the window (2.0 = +200%, the paper's
    /// three-year estimate).
    pub total_growth: f64,
    /// σ of the multiplicative lognormal day-to-day noise.
    pub noise_sigma: f64,
    /// Probability that a day is a burst day (session resets, leaks, …).
    pub burst_prob: f64,
    /// Pareto tail exponent of burst magnitudes (smaller = wilder).
    pub burst_alpha: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for ChurnTraceConfig {
    fn default() -> Self {
        ChurnTraceConfig {
            days: 1_000,
            base_daily: 150_000.0,
            total_growth: 2.0,
            noise_sigma: 0.45,
            burst_prob: 0.02,
            burst_alpha: 1.6,
            seed: 0x2005_0101,
        }
    }
}

/// Generates the daily update-count series.
pub fn generate_trace(cfg: &ChurnTraceConfig) -> Vec<f64> {
    let mut rng = Xoshiro256StarStar::new(cfg.seed);
    (0..cfg.days)
        .map(|day| {
            let trend =
                cfg.base_daily * (1.0 + cfg.total_growth * day as f64 / cfg.days.max(1) as f64);
            let noise = (rng.next_gaussian() * cfg.noise_sigma).exp();
            let burst = if rng.chance(cfg.burst_prob) {
                // Pareto(α) with minimum 2×: heavy-tailed burst multiplier.
                let u = rng.next_f64();
                2.0 * (1.0 - u).powf(-1.0 / cfg.burst_alpha)
            } else {
                1.0
            };
            (trend * noise * burst).round()
        })
        .collect()
}

/// Trend analysis of a daily series (the paper's Fig. 1 method).
#[derive(Clone, Debug)]
pub struct TraceAnalysis {
    /// The Mann–Kendall test result.
    pub mk: MannKendall,
    /// Sen's slope, in updates per day.
    pub sen_slope_per_day: f64,
    /// Estimated total growth over the window: slope × days relative to
    /// the estimated starting level.
    pub total_growth_estimate: f64,
    /// Peak-to-mean ratio (burstiness indicator).
    pub peak_to_mean: f64,
}

/// Runs the Fig. 1 analysis on a daily series.
///
/// # Panics
/// Panics on series shorter than 3 days.
pub fn analyze_trace(series: &[f64]) -> TraceAnalysis {
    let mk = mann_kendall(series);
    let slope = sens_slope(series);
    let mean = series.iter().sum::<f64>() / series.len() as f64;
    let peak = series.iter().copied().fold(0.0f64, f64::max);
    // Median-based starting level: robust to burst days in the first
    // window.
    let head = &series[..series.len().min(60)];
    let mut sorted = head.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let start_level = sorted[sorted.len() / 2];
    TraceAnalysis {
        mk,
        sen_slope_per_day: slope,
        total_growth_estimate: slope * series.len() as f64 / start_level,
        peak_to_mean: peak / mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpscale_stats::mann_kendall::Trend;

    #[test]
    fn default_trace_has_increasing_trend() {
        let trace = generate_trace(&ChurnTraceConfig::default());
        assert_eq!(trace.len(), 1_000);
        let a = analyze_trace(&trace);
        assert_eq!(a.mk.trend(0.05), Trend::Increasing);
        assert!(a.sen_slope_per_day > 0.0);
    }

    #[test]
    fn growth_estimate_tracks_configuration() {
        // Lower noise so the estimate is tight.
        let cfg = ChurnTraceConfig {
            noise_sigma: 0.1,
            burst_prob: 0.0,
            ..ChurnTraceConfig::default()
        };
        let trace = generate_trace(&cfg);
        let a = analyze_trace(&trace);
        assert!(
            (a.total_growth_estimate - cfg.total_growth).abs() < 0.5,
            "estimated {} vs configured {}",
            a.total_growth_estimate,
            cfg.total_growth
        );
    }

    #[test]
    fn bursts_inflate_peak_to_mean() {
        let calm = ChurnTraceConfig {
            burst_prob: 0.0,
            noise_sigma: 0.1,
            ..ChurnTraceConfig::default()
        };
        let wild = ChurnTraceConfig {
            burst_prob: 0.05,
            burst_alpha: 1.2,
            ..ChurnTraceConfig::default()
        };
        let a_calm = analyze_trace(&generate_trace(&calm));
        let a_wild = analyze_trace(&generate_trace(&wild));
        assert!(
            a_wild.peak_to_mean > 2.0 * a_calm.peak_to_mean,
            "wild {} vs calm {}",
            a_wild.peak_to_mean,
            a_calm.peak_to_mean
        );
    }

    #[test]
    fn flat_configuration_has_no_trend() {
        let cfg = ChurnTraceConfig {
            total_growth: 0.0,
            burst_prob: 0.0,
            ..ChurnTraceConfig::default()
        };
        let a = analyze_trace(&generate_trace(&cfg));
        assert_eq!(a.mk.trend(0.01), Trend::None, "p = {}", a.mk.p_value);
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let cfg = ChurnTraceConfig::default();
        assert_eq!(generate_trace(&cfg), generate_trace(&cfg));
        let other = ChurnTraceConfig {
            seed: 1,
            ..ChurnTraceConfig::default()
        };
        assert_ne!(generate_trace(&cfg), generate_trace(&other));
    }

    #[test]
    fn counts_are_nonnegative_integers() {
        let trace = generate_trace(&ChurnTraceConfig::default());
        for &x in &trace {
            assert!(x >= 0.0 && x.fract() == 0.0);
        }
    }
}
