//! Fig. 11 — the effect of provider preference.
//!
//! PREFER-MIDDLE (buy transit from M nodes) yields higher T-node churn
//! than the Baseline; PREFER-TOP (buy straight from tier-1) yields less —
//! even though PREFER-TOP gives T nodes *far more* customers (`mc,T`),
//! because each direct stub customer is far less likely to be on an
//! update path (`qc,T` collapses).

use bgpscale_topology::{GrowthScenario, NodeType, Relationship};

use crate::figures::{series_factor, series_u, Which};
use crate::report::{f2, f4, relative_increase, Figure, Table};
use crate::sweep::Sweeper;

const SCENARIOS: [GrowthScenario; 3] = [
    GrowthScenario::Baseline,
    GrowthScenario::PreferMiddle,
    GrowthScenario::PreferTop,
];

/// Regenerates Fig. 11.
pub fn run(sw: &mut Sweeper) -> Figure {
    let mut fig = Figure::new("fig11", "The effect of provider preference at T nodes");

    let mut u = Vec::new();
    let mut mc = Vec::new();
    let mut qc = Vec::new();
    for s in SCENARIOS {
        let reports = sw.sweep(s);
        u.push(series_u(&reports, NodeType::T));
        mc.push(series_factor(&reports, NodeType::T, Relationship::Customer, Which::M));
        qc.push(series_factor(&reports, NodeType::T, Relationship::Customer, Which::Q));
    }
    let rel: Vec<Vec<f64>> = u.iter().map(|s| relative_increase(s)).collect();

    let headers = ["n", "BASELINE", "PREFER-MIDDLE", "PREFER-TOP"];
    let mut top = Table::new("U(T) relative increase (top panel)", &headers);
    let mut mid = Table::new("mc,T (middle panel)", &headers);
    let mut bot = Table::new("qc,T (bottom panel)", &headers);
    for (i, &n) in sw.sizes().to_vec().iter().enumerate() {
        top.push_row(
            std::iter::once(n.to_string())
                .chain(rel.iter().map(|s| f2(s[i])))
                .collect(),
        );
        mid.push_row(
            std::iter::once(n.to_string())
                .chain(mc.iter().map(|s| f2(s[i])))
                .collect(),
        );
        bot.push_row(
            std::iter::once(n.to_string())
                .chain(qc.iter().map(|s| f4(s[i])))
                .collect(),
        );
    }
    fig.tables.push(top);
    fig.tables.push(mid);
    fig.tables.push(bot);

    let last = u[0].len() - 1;
    let (baseline, prefer_middle, prefer_top) = (0, 1, 2);
    fig.claim(
        "more direct connections to T nodes decrease churn: PREFER-TOP < BASELINE",
        u[prefer_top][last] < u[baseline][last],
    );
    fig.claim(
        "PREFER-TOP gives T nodes many more customers (mc,T) than PREFER-MIDDLE",
        mc[prefer_top][last] > mc[prefer_middle][last],
    );
    fig.claim(
        "…but collapses the per-customer activation probability qc,T",
        qc[prefer_top][last] < qc[prefer_middle][last],
    );
    fig.claim(
        "an M-heavy customer base multiplies updates per customer link: \
         qc,T(PREFER-MIDDLE) ≫ qc,T(BASELINE) > qc,T(PREFER-TOP)",
        qc[prefer_middle][last] > qc[baseline][last]
            && qc[baseline][last] > qc[prefer_top][last],
    );
    // NOTE (recorded in EXPERIMENTS.md): the paper additionally reports
    // PREFER-MIDDLE churn *growth* above BASELINE's. Under our reading of
    // the §5.4 construction the one-T-provider cap makes mc,T grow only
    // linearly in nM, which keeps PREFER-MIDDLE's U(T) below BASELINE at
    // the sizes we sweep — the per-customer mechanism above reproduces;
    // the overall ordering does not.
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::RunConfig;

    #[test]
    fn fig11_structure_and_robust_claims_on_tiny_sweep() {
        let mut sw = Sweeper::new(RunConfig::tiny());
        let f = run(&mut sw);
        assert_eq!(f.tables.len(), 3);
        // The churn comparison needs sizes ≥ 1000 to separate from noise
        // (verified by `repro fig11 --quick`); the mechanism claims (mc,T
        // and qc,T movements) are robust even at toy sizes.
        for c in &f.claims {
            if !c.statement.contains("decrease churn") {
                assert!(c.holds, "tiny-scale claim failed: {} \n{}", c.statement, f.render());
            }
        }
    }
}
