//! Fig. 9 — the effect of the multihoming degree at T nodes.
//!
//! Reproduced observations (§5.2): higher MHD ⇒ more churn at equal size;
//! DENSE-CORE beats DENSE-EDGE *despite similar customer counts* (meshed
//! M-layer connectivity raises `qc,T`); TREE pins T-node churn at exactly
//! 2 updates per C-event; CONSTANT-MHD keeps churn roughly flat because
//! the growing `mc,T` is offset by a falling `qc,T`.

use bgpscale_topology::{GrowthScenario, NodeType, Relationship};

use crate::figures::{series_factor, series_u, Which};
use crate::report::{f2, Figure, Table};
use crate::sweep::Sweeper;

const SCENARIOS: [GrowthScenario; 5] = [
    GrowthScenario::DenseCore,
    GrowthScenario::DenseEdge,
    GrowthScenario::Baseline,
    GrowthScenario::Tree,
    GrowthScenario::ConstantMhd,
];

/// Regenerates Fig. 9.
pub fn run(sw: &mut Sweeper) -> Figure {
    let mut fig = Figure::new("fig9", "The effect of the multihoming degree at T nodes");

    let mut u_series = Vec::new();
    let mut mc_series = Vec::new();
    let mut qc_series = Vec::new();
    for s in SCENARIOS {
        let reports = sw.sweep(s);
        u_series.push(series_u(&reports, NodeType::T));
        mc_series.push(series_factor(&reports, NodeType::T, Relationship::Customer, Which::M));
        qc_series.push(series_factor(&reports, NodeType::T, Relationship::Customer, Which::Q));
    }

    let headers = [
        "n",
        "DENSE-CORE",
        "DENSE-EDGE",
        "BASELINE",
        "TREE",
        "CONSTANT-MHD",
    ];
    let mut top = Table::new("U(T): updates per C-event (top panel)", &headers);
    let mut bottom = Table::new("mc,T: customers of T nodes (bottom panel)", &headers);
    for (i, &n) in sw.sizes().to_vec().iter().enumerate() {
        top.push_row(
            std::iter::once(n.to_string())
                .chain(u_series.iter().map(|s| f2(s[i])))
                .collect(),
        );
        bottom.push_row(
            std::iter::once(n.to_string())
                .chain(mc_series.iter().map(|s| f2(s[i])))
                .collect(),
        );
    }
    fig.tables.push(top);
    fig.tables.push(bottom);

    let last = u_series[0].len() - 1;
    let (dense_core, dense_edge, baseline, tree, constant) = (0, 1, 2, 3, 4);
    fig.claim(
        "higher MHD ⇒ more churn: DENSE-CORE > BASELINE > CONSTANT-MHD at the largest size",
        u_series[dense_core][last] > u_series[baseline][last]
            && u_series[baseline][last] > u_series[constant][last],
    );
    fig.claim(
        "DENSE-CORE beats DENSE-EDGE in churn",
        u_series[dense_core][last] > u_series[dense_edge][last],
    );
    fig.claim(
        "core multihoming raises qc,T more than edge multihoming",
        qc_series[dense_core][last] > qc_series[dense_edge][last],
    );
    fig.claim(
        "TREE pins U(T) at exactly 2 updates per C-event",
        u_series[tree].iter().all(|&u| (u - 2.0).abs() < 1e-9),
    );
    fig.claim(
        "CONSTANT-MHD keeps churn roughly constant (within 1.7× over the sweep)",
        {
            let s = &u_series[constant];
            let max = s.iter().copied().fold(0.0f64, f64::max);
            let min = s.iter().copied().fold(f64::INFINITY, f64::min);
            max / min < 1.7
        },
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::RunConfig;

    #[test]
    fn fig9_claims_hold_on_tiny_sweep() {
        let mut sw = Sweeper::new(RunConfig::tiny());
        let f = run(&mut sw);
        assert!(f.all_claims_hold(), "{}", f.render());
        assert_eq!(f.tables.len(), 2);
    }
}
