//! Extension E6 — routing table residency vs per-event churn.
//!
//! The paper's introduction separates the two scalability axes: table
//! *size* and update *rate*, noting that a bigger table increases churn
//! "since the number of networks that can fail or trigger a route change
//! increases" — i.e. through the **event rate**, not through the cost of
//! each event. This extension verifies that decomposition mechanically:
//! with k unrelated prefixes resident in every RIB, the churn of one
//! additional C-event is unchanged (isolated events touch only their own
//! prefix's state; under per-interface MRAI the idle timers do not couple
//! them).
//!
//! Expected shape: per-event churn flat in k (within noise), so total
//! churn scales as (number of events) × (per-event cost of Fig. 4), which
//! is exactly how the paper models growth.

use bgpscale_bgp::{BgpConfig, Prefix};
use bgpscale_core::cevent::run_c_event;
use bgpscale_core::Simulator;
use bgpscale_simkernel::rng::{hash64_pair, Rng, Xoshiro256StarStar};
use bgpscale_topology::{generate, GrowthScenario, NodeType};

use crate::figures::roughly_equal;
use crate::report::{f2, Figure, Table};
use crate::sweep::Sweeper;

/// Resident-table sizes exercised (capped by the available stub count at
/// small n).
const RESIDENT: [usize; 3] = [0, 100, 400];

/// Regenerates extension E6.
pub fn run(sw: &mut Sweeper) -> Figure {
    let cfg = sw.config().clone();
    // Use a mid-sweep size: memory is k prefixes × RIB rows.
    let n = cfg.sizes[cfg.sizes.len() / 2];
    let mut fig = Figure::new(
        "ext_tablesize",
        "Extension: per-event churn vs resident routing-table size",
    );

    let graph = generate(GrowthScenario::Baseline, n, hash64_pair(cfg.seed, 0x7090));
    let mut pick = Xoshiro256StarStar::new(hash64_pair(cfg.seed, 0xE6));
    let mut stubs = graph.nodes_of_type(NodeType::C);
    pick.shuffle(&mut stubs);

    let events = cfg.events.clamp(1, 10);
    // Cap residency by the stubs actually available (tiny sweeps).
    let k_max = stubs.len().saturating_sub(events + 10);
    let resident: Vec<usize> = RESIDENT
        .iter()
        .map(|&k| k.min(k_max))
        .collect();
    let mut t = Table::new(
        format!("mean updates per C-event at n = {n} ({events} events)"),
        &["resident prefixes", "U per event"],
    );
    let mut per_event = Vec::new();
    for k in resident {
        let mut sim = Simulator::new(graph.clone(), BgpConfig::default(), hash64_pair(cfg.seed, 0x51B));
        // Fill the RIBs with k unrelated, stable prefixes.
        for (i, &owner) in stubs.iter().take(k).enumerate() {
            sim.originate(owner, Prefix(i as u32));
        }
        sim.run_to_quiescence().expect("warm-up converges");
        // Measured events use fresh originators and prefix ids above k.
        let mut total = 0u64;
        for (j, &origin) in stubs.iter().skip(k).take(events).enumerate() {
            let outcome = run_c_event(&mut sim, origin, Prefix((k + j) as u32))
                .expect("C-event converges");
            total += outcome.total_updates;
        }
        let mean = total as f64 / events as f64;
        t.push_row(vec![k.to_string(), f2(mean)]);
        per_event.push(mean);
    }
    fig.tables.push(t);

    fig.claim(
        "per-event churn is independent of resident table size (within 10%), so table \
         growth scales total churn only through the event count — the paper's decomposition",
        per_event
            .iter()
            .all(|&u| roughly_equal(u, per_event[0], 0.10)),
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::RunConfig;

    #[test]
    fn ext_tablesize_claims_hold_on_tiny_sweep() {
        let mut sw = Sweeper::new(RunConfig::tiny());
        let f = run(&mut sw);
        assert!(f.all_claims_hold(), "{}", f.render());
        assert_eq!(f.tables[0].rows.len(), RESIDENT.len());
    }
}
