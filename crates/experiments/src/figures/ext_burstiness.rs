//! Extension E2 — within-convergence burstiness of update traffic.
//!
//! The paper's introduction motivates churn scalability partly through
//! burstiness: "routers should be able to process peak update rates that
//! are up to 1000 times higher than the daily averages" \[15\]. This
//! extension measures the analogous quantity inside a single convergence
//! episode: the network-wide update arrival rate binned per second during
//! a C-event, under both MRAI modes.
//!
//! Expected shapes: NO-WRATE concentrates the withdrawal wave into the
//! first seconds (high peak-to-mean); WRATE smears traffic across MRAI
//! rounds — lower peaks but a much longer tail (larger total and longer
//! convergence).

use bgpscale_bgp::{BgpConfig, MraiMode, Prefix};
use bgpscale_core::cevent::run_c_event;
use bgpscale_core::Simulator;
use bgpscale_simkernel::rng::hash64_pair;
use bgpscale_simkernel::SimDuration;
use bgpscale_topology::{generate, GrowthScenario, NodeType};

use crate::report::{f2, Figure, Table};
use crate::sweep::Sweeper;

/// Regenerates extension E2.
pub fn run(sw: &mut Sweeper) -> Figure {
    let cfg = sw.config().clone();
    let n = *cfg.sizes.last().expect("non-empty sweep");
    let mut fig = Figure::new(
        "ext_burstiness",
        "Extension: per-second update rate during one C-event (largest sweep size)",
    );

    let topo_seed = hash64_pair(cfg.seed, 0x7090);
    let graph = generate(GrowthScenario::Baseline, n, topo_seed);
    let origin = graph
        .node_ids()
        .find(|&id| graph.node_type(id) == NodeType::C)
        .expect("C nodes exist");

    let mut rows = Vec::new();
    let mut stats = Vec::new();
    for mode in [MraiMode::NoWrate, MraiMode::Wrate] {
        let bgp = BgpConfig {
            mrai_mode: mode,
            ..BgpConfig::default()
        };
        let mut sim = Simulator::new(graph.clone(), bgp, hash64_pair(cfg.seed, 0xB2));
        // Warm-up outside the timeline.
        sim.originate(origin, Prefix(0));
        sim.run_to_quiescence().expect("warm-up converges");
        let start = sim.now();
        sim.churn_mut().start_timeline(start, SimDuration::from_secs(1));
        let outcome = run_c_event(&mut sim, origin, Prefix(1)).expect("converges");
        let timeline = sim.churn_mut().take_timeline().expect("recording");
        let busy_seconds = timeline.counts().iter().filter(|&&c| c > 0).count();
        stats.push((
            mode,
            outcome.total_updates,
            timeline.peak(),
            timeline.peak_to_mean(),
            busy_seconds,
            outcome.down_convergence.as_secs_f64() + outcome.up_convergence.as_secs_f64(),
        ));
        rows.push(timeline);
    }

    let mut t = Table::new(
        format!("burstiness at n = {n} (1-second bins)"),
        &["mode", "total", "peak/s", "peak/mean", "active seconds", "convergence (s)"],
    );
    for (mode, total, peak, ptm, busy, conv) in &stats {
        t.push_row(vec![
            mode.label().into(),
            total.to_string(),
            peak.to_string(),
            f2(*ptm),
            busy.to_string(),
            f2(*conv),
        ]);
    }
    fig.tables.push(t);

    let (no_wrate, wrate) = (&stats[0], &stats[1]);
    fig.claim(
        "update traffic is strongly bursty under both modes (peak ≫ mean rate)",
        no_wrate.3 > 3.0 && wrate.3 > 3.0,
    );
    fig.claim(
        "WRATE produces more total updates than NO-WRATE for the same event",
        wrate.1 >= no_wrate.1,
    );
    fig.claim(
        "WRATE stretches convergence (longer combined DOWN+UP time)",
        wrate.5 > no_wrate.5,
    );
    let _ = rows;
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::RunConfig;

    #[test]
    fn ext_burstiness_claims_hold_on_tiny_sweep() {
        let mut sw = Sweeper::new(RunConfig::tiny());
        let f = run(&mut sw);
        assert!(f.all_claims_hold(), "{}", f.render());
        assert_eq!(f.tables[0].rows.len(), 2);
    }
}
