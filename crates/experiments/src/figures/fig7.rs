//! Fig. 7 — the factors behind the growth: relative increase of the `m`
//! factors (top), `e` factors (middle), and the `q` probabilities
//! (bottom), for the three dominant (class, type) pairs.
//!
//! Reproduced observations (§4.2): `mc,T` grows much faster than `mp,T`
//! and `md,M`; the `e` factors barely move under NO-WRATE; `qd,M` is
//! essentially 1 while `qc,T` and `qp,T` rise with size, with
//! `qp,T ≫ qc,T` (peers of a T node have far larger customer trees).

use bgpscale_topology::{GrowthScenario, NodeType, Relationship};

use crate::figures::{series_factor, trends_upward, Which};
use crate::report::{f2, f4, relative_increase, Figure, Table};
use crate::sweep::Sweeper;

/// Regenerates Fig. 7.
pub fn run(sw: &mut Sweeper) -> Figure {
    let reports = sw.sweep(GrowthScenario::Baseline);
    let mut fig = Figure::new("fig7", "Relative increase of the m, e and q factors");

    let mc_t = series_factor(&reports, NodeType::T, Relationship::Customer, Which::M);
    let mp_t = series_factor(&reports, NodeType::T, Relationship::Peer, Which::M);
    let md_m = series_factor(&reports, NodeType::M, Relationship::Provider, Which::M);
    let ec_t = series_factor(&reports, NodeType::T, Relationship::Customer, Which::E);
    let ep_t = series_factor(&reports, NodeType::T, Relationship::Peer, Which::E);
    let ed_m = series_factor(&reports, NodeType::M, Relationship::Provider, Which::E);
    let qc_t = series_factor(&reports, NodeType::T, Relationship::Customer, Which::Q);
    let qp_t = series_factor(&reports, NodeType::T, Relationship::Peer, Which::Q);
    let qd_m = series_factor(&reports, NodeType::M, Relationship::Provider, Which::Q);

    let rel = relative_increase;
    let (rmc, rmp, rmd) = (rel(&mc_t), rel(&mp_t), rel(&md_m));
    let (rec, rep, red) = (rel(&ec_t), rel(&ep_t), rel(&ed_m));

    let mut m_table = Table::new(
        "m factors: relative increase (top panel)",
        &["n", "mc,T", "mp,T", "md,M"],
    );
    let mut e_table = Table::new(
        "e factors: relative increase (middle panel)",
        &["n", "ec,T", "ep,T", "ed,M"],
    );
    let mut q_table = Table::new(
        "q probabilities: raw values (bottom panel)",
        &["n", "qc,T", "qp,T", "qd,M"],
    );
    for (i, r) in reports.iter().enumerate() {
        m_table.push_row(vec![r.n.to_string(), f2(rmc[i]), f2(rmp[i]), f2(rmd[i])]);
        e_table.push_row(vec![r.n.to_string(), f2(rec[i]), f2(rep[i]), f2(red[i])]);
        q_table.push_row(vec![r.n.to_string(), f4(qc_t[i]), f4(qp_t[i]), f4(qd_m[i])]);
    }
    fig.tables.push(m_table);
    fig.tables.push(e_table);
    fig.tables.push(q_table);

    let last = reports.len() - 1;
    fig.claim(
        "mc,T grows much faster than mp,T and md,M",
        rmc[last] > rmp[last] && rmc[last] > rmd[last],
    );
    fig.claim(
        "e factors barely move under NO-WRATE (all within 2× of their start)",
        [&rec, &rep, &red]
            .iter()
            .all(|s| s.iter().all(|&x| x > 0.0 && x < 2.0)),
    );
    fig.claim(
        "qd,M is essentially constant and > 0.9 (providers almost always notify customers)",
        qd_m.iter().all(|&q| q > 0.9),
    );
    fig.claim("qc,T increases with network size", trends_upward(&qc_t));
    fig.claim(
        "qp,T is much larger than qc,T (T peers have huge customer trees)",
        qp_t[last] > 2.0 * qc_t[last],
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::RunConfig;

    #[test]
    fn fig7_structure_and_robust_claims_on_tiny_sweep() {
        let mut sw = Sweeper::new(RunConfig::tiny());
        let f = run(&mut sw);
        assert_eq!(f.tables.len(), 3);
        assert_eq!(f.tables[0].rows.len(), RunConfig::tiny().sizes.len());
        // The monotonic-growth claim on qc,T needs the full size range to
        // rise above sampling noise (verified by `repro fig7 --quick`);
        // the structural claims must hold even at toy sizes.
        for c in &f.claims {
            if !c.statement.contains("increases with network size") {
                assert!(c.holds, "tiny-scale claim failed: {} \n{}", c.statement, f.render());
            }
        }
    }
}
