//! Extension E1 — L-events: churn caused by link failure and recovery.
//!
//! The paper's future work proposes studying "more complex events than the
//! C-event". This extension measures the churn of an **L-event** (a link
//! fails, the network converges, the link recovers) at the first-hop
//! transit link of stub originators, across network sizes, and contrasts
//! it with the C-event baseline of Fig. 4.
//!
//! Expected shapes (from the paper's framework + Zhao et al., cited as
//! \[33\]): a first-hop link failure is *at most* a C-event (the same
//! destination becomes unreachable, but multihomed stubs heal locally, so
//! part of the network never hears about it), and recovery costs at least
//! as much as failure because session re-establishment replays full
//! tables.

use bgpscale_bgp::{BgpConfig, Prefix};
use bgpscale_core::levent::run_l_event;
use bgpscale_core::Simulator;
use bgpscale_simkernel::rng::{hash64_pair, Rng, Xoshiro256StarStar};
use bgpscale_topology::{generate, GrowthScenario, NodeType};

use crate::report::{f2, Figure, Table};
use crate::sweep::Sweeper;

/// Regenerates extension E1.
pub fn run(sw: &mut Sweeper) -> Figure {
    let cfg = sw.config().clone();
    let mut fig = Figure::new(
        "ext_levent",
        "Extension: L-event (link fail + recovery) churn vs the C-event",
    );

    let mut table = Table::new(
        "mean network-wide updates per event (first-hop transit link of C-node originators)",
        &["n", "L fail", "L restore", "C-event total", "healed frac"],
    );

    let mut healing_matches_multihoming = true;
    let mut fail_below_c = true;
    let mut total_near_c = true;
    for &n in &cfg.sizes.clone() {
        let topo_seed = hash64_pair(cfg.seed, 0x7090);
        let graph = generate(GrowthScenario::Baseline, n, topo_seed);
        let mut pick = Xoshiro256StarStar::new(hash64_pair(cfg.seed, 0xE1));
        let mut c_nodes = graph.nodes_of_type(NodeType::C);
        pick.shuffle(&mut c_nodes);
        c_nodes.truncate(cfg.events.max(1));

        let mut sim = Simulator::new(graph, BgpConfig::default(), hash64_pair(cfg.seed, 0x51B));
        let mut fail_sum = 0.0;
        let mut restore_sum = 0.0;
        let mut healed = 0usize;
        let events = c_nodes.len();
        for (k, &origin) in c_nodes.iter().enumerate() {
            let prefix = Prefix(k as u32);
            sim.originate(origin, prefix);
            sim.run_to_quiescence().expect("warm-up converges");
            let provider = sim.graph().providers(origin).next().expect("stub has provider");
            let multihomed = sim.graph().multihoming_degree(origin) > 1;
            let outcome = run_l_event(&mut sim, origin, provider, prefix).expect("converges");
            fail_sum += outcome.fail_updates as f64;
            restore_sum += outcome.restore_updates as f64;
            let no_outage = outcome.unreachable_during_outage == 0;
            healed += usize::from(no_outage);
            // Healing is exactly the multihoming question: a second
            // provider keeps the prefix reachable; a single-homed origin
            // goes dark.
            healing_matches_multihoming &= no_outage == multihomed;
            sim.reset_routing();
            sim.churn_mut().reset();
        }
        let fail = fail_sum / events as f64;
        let restore = restore_sum / events as f64;
        let healed_frac = healed as f64 / events as f64;

        // The C-event baseline from the shared sweep (network-wide mean).
        let c_report = sw.report(GrowthScenario::Baseline, n, bgpscale_bgp::MraiMode::NoWrate);
        let c_total = c_report.mean_total_updates;

        table.push_row(vec![
            n.to_string(),
            f2(fail),
            f2(restore),
            f2(c_total),
            f2(healed_frac),
        ]);
        fail_below_c &= fail <= c_total * 1.05;
        total_near_c &= fail + restore <= c_total * 1.3;
        let _ = healed_frac;
    }
    fig.tables.push(table);

    fig.claim(
        "healing matches multihoming exactly: multihomed origins suffer no outage, \
         single-homed origins go dark",
        healing_matches_multihoming,
    );
    fig.claim(
        "the failure phase costs at most about one C-event DOWN+UP (healing localizes it)",
        fail_below_c,
    );
    fig.claim(
        "fail + restore together cost on the order of one C-event or less",
        total_near_c,
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::RunConfig;

    #[test]
    fn ext_levent_claims_hold_on_tiny_sweep() {
        let mut sw = Sweeper::new(RunConfig::tiny());
        let f = run(&mut sw);
        assert!(f.all_claims_hold(), "{}", f.render());
        assert_eq!(f.tables[0].rows.len(), RunConfig::tiny().sizes.len());
    }
}
