//! Extension E5 — concurrent events and the MRAI timer scope.
//!
//! The paper notes (§2) that the BGP-4 standard wants the MRAI applied
//! **per prefix**, while vendors implement it **per interface** — and
//! adopts the vendor behavior. With single-prefix events the two are
//! indistinguishable, so the paper never separates them. They *do*
//! separate under concurrent events: per-interface timers make unrelated
//! prefixes rate-limit each other (an update for prefix A arms the session
//! timer, and a following update for prefix B queues behind it), batching
//! traffic and suppressing some intermediate states.
//!
//! This extension fires `k` C-events **simultaneously** (k distinct
//! origins withdraw at the same instant, re-announce at the same instant)
//! and compares total churn per event under the two scopes.
//!
//! Expected shapes: for k = 1 the scopes are identical; for larger k the
//! per-interface scope yields *at most* the per-prefix churn (extra
//! batching can only suppress updates, never add them), and per-event
//! churn under per-interface decreases with k while per-prefix stays
//! roughly flat.

use bgpscale_bgp::{BgpConfig, MraiScope, Prefix};
use bgpscale_core::Simulator;
use bgpscale_simkernel::rng::{hash64_pair, Rng, Xoshiro256StarStar};
use bgpscale_topology::{generate, GrowthScenario, NodeType};

use crate::figures::roughly_equal;
use crate::report::{f2, Figure, Table};
use crate::sweep::Sweeper;

/// Concurrency levels exercised.
const LEVELS: [usize; 3] = [1, 8, 32];

/// Runs `k` simultaneous C-events and returns total updates delivered.
fn concurrent_churn(sw_seed: u64, n: usize, k: usize, scope: MraiScope) -> f64 {
    let graph = generate(GrowthScenario::Baseline, n, hash64_pair(sw_seed, 0x7090));
    let mut pick = Xoshiro256StarStar::new(hash64_pair(sw_seed, 0xE5));
    let mut origins = graph.nodes_of_type(NodeType::C);
    pick.shuffle(&mut origins);
    origins.truncate(k);

    let bgp = BgpConfig {
        mrai_scope: scope,
        ..BgpConfig::default()
    };
    let mut sim = Simulator::new(graph, bgp, hash64_pair(sw_seed, 0x51B));
    // Warm-up: all k prefixes announced and converged.
    for (i, &o) in origins.iter().enumerate() {
        sim.originate(o, Prefix(i as u32));
    }
    sim.run_to_quiescence().expect("warm-up converges");
    sim.churn_mut().reset();
    sim.churn_mut().set_enabled(true);
    // Simultaneous DOWN…
    for (i, &o) in origins.iter().enumerate() {
        sim.withdraw(o, Prefix(i as u32));
    }
    sim.run_to_quiescence().expect("DOWN converges");
    // …and simultaneous UP.
    for (i, &o) in origins.iter().enumerate() {
        sim.originate(o, Prefix(i as u32));
    }
    sim.run_to_quiescence().expect("UP converges");
    sim.churn().total() as f64
}

/// Regenerates extension E5.
pub fn run(sw: &mut Sweeper) -> Figure {
    let cfg = sw.config().clone();
    let n = *cfg.sizes.last().expect("non-empty sweep");
    let mut fig = Figure::new(
        "ext_concurrency",
        "Extension: k simultaneous C-events under per-interface vs per-prefix MRAI",
    );

    let mut t = Table::new(
        format!("total updates per event at n = {n}"),
        &["k", "per-interface", "per-prefix", "interface/prefix"],
    );
    let mut per_iface_at_k = Vec::new();
    let mut per_prefix_at_k = Vec::new();
    for k in LEVELS {
        let iface = concurrent_churn(cfg.seed, n, k, MraiScope::PerInterface) / k as f64;
        let pprefix = concurrent_churn(cfg.seed, n, k, MraiScope::PerPrefix) / k as f64;
        t.push_row(vec![
            k.to_string(),
            f2(iface),
            f2(pprefix),
            f2(iface / pprefix.max(1e-12)),
        ]);
        per_iface_at_k.push(iface);
        per_prefix_at_k.push(pprefix);
    }
    fig.tables.push(t);

    fig.claim(
        "with one event the scopes are equivalent",
        roughly_equal(per_iface_at_k[0], per_prefix_at_k[0], 0.01),
    );
    fig.claim(
        "per-interface batching never produces more churn than per-prefix",
        per_iface_at_k
            .iter()
            .zip(&per_prefix_at_k)
            .all(|(i, p)| i <= &(p * 1.02)),
    );
    fig.claim(
        "per-interface batching strengthens with concurrency (per-event churn falls with k)",
        per_iface_at_k.last().unwrap() < &per_iface_at_k[0],
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::RunConfig;

    #[test]
    fn ext_concurrency_claims_hold_on_tiny_sweep() {
        let mut sw = Sweeper::new(RunConfig::tiny());
        let f = run(&mut sw);
        assert!(f.all_claims_hold(), "{}", f.render());
        assert_eq!(f.tables[0].rows.len(), LEVELS.len());
    }
}
