//! Fig. 1 — churn growth at a monitor, with the Mann–Kendall trend.
//!
//! The paper plots daily update counts from a RIPE monitor (2005–2007) and
//! estimates ~200% total growth with the Mann–Kendall test. We regenerate
//! the figure from the synthetic monitor of [`crate::churn_trace`] (see
//! DESIGN.md §2 for the substitution rationale) and run the identical
//! analysis.

use crate::churn_trace::{analyze_trace, generate_trace, ChurnTraceConfig};
use crate::report::{f2, f4, Figure, Table};
use bgpscale_stats::mann_kendall::Trend;

/// Regenerates Fig. 1.
pub fn run(seed: u64) -> Figure {
    let cfg = ChurnTraceConfig {
        seed,
        ..ChurnTraceConfig::default()
    };
    let trace = generate_trace(&cfg);
    let analysis = analyze_trace(&trace);

    let mut fig = Figure::new("fig1", "Growth in churn at a monitor (synthetic RIPE-style series)");

    // Quarterly aggregates keep the table readable while showing the
    // trend through the noise.
    let mut t = Table::new(
        "daily updates, aggregated per 90-day quarter",
        &["days", "mean/day", "max/day"],
    );
    for (qi, chunk) in trace.chunks(90).enumerate() {
        let mean = chunk.iter().sum::<f64>() / chunk.len() as f64;
        let max = chunk.iter().copied().fold(0.0f64, f64::max);
        t.push_row(vec![
            format!("{}–{}", qi * 90, qi * 90 + chunk.len() - 1),
            format!("{mean:.0}"),
            format!("{max:.0}"),
        ]);
    }
    fig.tables.push(t);

    let mut a = Table::new("Mann–Kendall trend analysis", &["quantity", "value"]);
    a.push_row(vec!["days".into(), trace.len().to_string()]);
    a.push_row(vec!["Kendall tau".into(), f4(analysis.mk.tau)]);
    a.push_row(vec!["Z statistic".into(), f2(analysis.mk.z)]);
    a.push_row(vec![
        "p-value (two-sided)".into(),
        format!("{:.2e}", analysis.mk.p_value),
    ]);
    a.push_row(vec![
        "Sen's slope (updates/day/day)".into(),
        f2(analysis.sen_slope_per_day),
    ]);
    a.push_row(vec![
        "estimated total growth".into(),
        format!("{:.0}%", analysis.total_growth_estimate * 100.0),
    ]);
    a.push_row(vec!["peak/mean ratio".into(), f2(analysis.peak_to_mean)]);
    fig.tables.push(a);

    fig.claim(
        "the Mann–Kendall test detects a significant increasing trend",
        analysis.mk.trend(0.05) == Trend::Increasing,
    );
    fig.claim(
        "estimated total growth is on the order of the paper's ~200%",
        (1.0..=3.5).contains(&analysis.total_growth_estimate),
    );
    fig.claim(
        "the series is highly variable (peak ≫ daily mean)",
        analysis.peak_to_mean > 3.0,
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_claims_hold() {
        let f = run(0x2005_0101);
        assert!(f.all_claims_hold(), "{}", f.render());
        assert_eq!(f.tables.len(), 2);
    }

    #[test]
    fn fig1_is_deterministic() {
        assert_eq!(run(1).render(), run(1).render());
    }
}
