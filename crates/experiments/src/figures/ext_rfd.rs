//! Extension E3 — Route Flap Damping under a flap storm.
//!
//! The paper's future work lists Route Flap Dampening. This extension
//! drives a persistently flapping origin (the pathology of Labovitz et
//! al. \[20\] that motivated RFC 2439) through the network with damping off
//! and on, across network sizes.
//!
//! Expected shapes: without damping every flap cycle costs roughly one
//! C-event of churn network-wide; with damping, routers adjacent to the
//! instability absorb it after a few cycles, cutting total churn
//! substantially — at the price of suppressed (unreachable) routes until
//! the reuse timers fire.

use bgpscale_bgp::rfd::RfdConfig;
use bgpscale_bgp::{BgpConfig, Prefix};
use bgpscale_core::flapstorm::{run_flap_storm, FlapStormConfig};
use bgpscale_core::Simulator;
use bgpscale_simkernel::rng::{hash64_pair, Rng, Xoshiro256StarStar};
use bgpscale_topology::{generate, GrowthScenario, NodeType};

use crate::report::{f2, Figure, Table};
use crate::sweep::Sweeper;

/// Regenerates extension E3.
pub fn run(sw: &mut Sweeper) -> Figure {
    let cfg = sw.config().clone();
    let mut fig = Figure::new(
        "ext_rfd",
        "Extension: Route Flap Damping vs a flapping origin (8 withdraw/re-announce cycles)",
    );

    let mut table = Table::new(
        "mean network-wide updates per storm",
        &["n", "no RFD", "with RFD", "saving", "suppressed nodes", "recovered"],
    );

    let storm_cfg = FlapStormConfig::default();
    let mut always_saves = true;
    let mut always_suppresses = true;
    let mut always_recovers = true;
    for &n in &cfg.sizes.clone() {
        let topo_seed = hash64_pair(cfg.seed, 0x7090);
        let graph = generate(GrowthScenario::Baseline, n, topo_seed);
        let mut pick = Xoshiro256StarStar::new(hash64_pair(cfg.seed, 0xE3));
        let mut c_nodes = graph.nodes_of_type(NodeType::C);
        pick.shuffle(&mut c_nodes);
        // Storms are long (each ≈ 8 cycles × 80 s + reuse); a few
        // originators suffice for the comparison.
        c_nodes.truncate(cfg.events.clamp(1, 5));

        let mut totals = [0.0f64; 2];
        let mut suppressed = 0usize;
        let mut unreachable_after_reuse = 0usize;
        for (mode, rfd) in [(0, None), (1, Some(RfdConfig::default()))] {
            let bgp = BgpConfig {
                rfd,
                ..BgpConfig::default()
            };
            let mut sim =
                Simulator::new(graph.clone(), bgp, hash64_pair(cfg.seed, 0x51B ^ mode as u64));
            for (k, &origin) in c_nodes.iter().enumerate() {
                let outcome =
                    run_flap_storm(&mut sim, origin, Prefix(k as u32), &storm_cfg)
                        .expect("storm converges");
                totals[mode] += outcome.total_updates as f64;
                if mode == 1 {
                    suppressed += outcome.suppressed_nodes;
                    unreachable_after_reuse += outcome.unreachable_after_reuse;
                }
                sim.reset_routing();
                sim.churn_mut().reset();
            }
        }
        let events = c_nodes.len() as f64;
        let plain = totals[0] / events;
        let damped = totals[1] / events;
        let saving = 1.0 - damped / plain.max(1e-12);
        table.push_row(vec![
            n.to_string(),
            f2(plain),
            f2(damped),
            format!("{:.0}%", saving * 100.0),
            format!("{:.1}", suppressed as f64 / events),
            if unreachable_after_reuse == 0 { "yes".into() } else { "NO".into() },
        ]);
        always_saves &= damped < plain;
        always_suppresses &= suppressed > 0;
        always_recovers &= unreachable_after_reuse == 0;
    }
    fig.tables.push(table);

    fig.claim("damping reduces storm churn at every size", always_saves);
    fig.claim(
        "the storm trips suppression thresholds somewhere in the network",
        always_suppresses,
    );
    fig.claim(
        "after the reuse timers fire, every node routes the prefix again",
        always_recovers,
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::RunConfig;

    #[test]
    fn ext_rfd_claims_hold_on_tiny_sweep() {
        let mut sw = Sweeper::new(RunConfig::tiny());
        let f = run(&mut sw);
        assert!(f.all_claims_hold(), "{}", f.render());
        assert_eq!(f.tables[0].rows.len(), RunConfig::tiny().sizes.len());
    }
}
