//! Fig. 10 — the effect of peering relations on M-node churn.
//!
//! The paper's negative result: adding or removing peering links, at the
//! core or at the edge, barely moves the churn — peering links only carry
//! customer routes and export only to customers, so few are active per
//! C-event. (Contrast with transit links in Fig. 9.)

use bgpscale_topology::{GrowthScenario, NodeType};

use crate::figures::series_u;
use crate::report::{f2, Figure, Table};
use crate::sweep::Sweeper;

const SCENARIOS: [GrowthScenario; 4] = [
    GrowthScenario::Baseline,
    GrowthScenario::NoPeering,
    GrowthScenario::StrongCorePeering,
    GrowthScenario::StrongEdgePeering,
];

/// Regenerates Fig. 10.
pub fn run(sw: &mut Sweeper) -> Figure {
    let mut fig = Figure::new("fig10", "The effect of peering relations at M nodes");

    let mut u_series = Vec::new();
    for s in SCENARIOS {
        let reports = sw.sweep(s);
        u_series.push(series_u(&reports, NodeType::M));
    }

    let mut t = Table::new(
        "U(M): updates per C-event",
        &[
            "n",
            "BASELINE",
            "NO-PEERING",
            "STRONG-CORE-PEERING",
            "STRONG-EDGE-PEERING",
        ],
    );
    for (i, &n) in sw.sizes().to_vec().iter().enumerate() {
        t.push_row(
            std::iter::once(n.to_string())
                .chain(u_series.iter().map(|s| f2(s[i])))
                .collect(),
        );
    }
    fig.tables.push(t);

    let last = u_series[0].len() - 1;
    let at_last: Vec<f64> = u_series.iter().map(|s| s[last]).collect();
    let max = at_last.iter().copied().fold(0.0f64, f64::max);
    let min = at_last.iter().copied().fold(f64::INFINITY, f64::min);
    fig.claim(
        "the peering degree does not significantly change churn (all scenarios within 1.6× at the largest size)",
        max / min < 1.6,
    );
    // Compare against the transit-side lever for scale: Fig. 9's
    // DENSE-CORE moves U(T) by much more than any peering knob moves
    // U(M). Here we check that the peering spread is small in absolute
    // terms relative to the Baseline level.
    fig.claim(
        "the spread between peering scenarios is a small fraction of the churn level",
        (max - min) < 0.6 * u_series[0][last],
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::RunConfig;

    #[test]
    fn fig10_claims_hold_on_tiny_sweep() {
        let mut sw = Sweeper::new(RunConfig::tiny());
        let f = run(&mut sw);
        assert!(f.all_claims_hold(), "{}", f.render());
    }
}
