//! Fig. 4 — `U(X)` per C-event vs n, for every node type (Baseline,
//! NO-WRATE).
//!
//! The headline result: tier-1 nodes see both the highest churn and the
//! strongest growth; stubs see the least. Confidence intervals over the
//! event sample are printed (the paper notes they are "too narrow to be
//! shown").

use bgpscale_stats::descriptive::confidence_interval_95;
use bgpscale_topology::NodeType;

use crate::figures::{series_u, trends_upward};
use crate::report::{f2, Figure, Table};
use crate::sweep::Sweeper;
use bgpscale_topology::GrowthScenario;

/// Regenerates Fig. 4.
pub fn run(sw: &mut Sweeper) -> Figure {
    let reports = sw.sweep(GrowthScenario::Baseline);
    let mut fig = Figure::new("fig4", "Updates received per C-event at T, M, CP and C nodes");

    let mut t = Table::new(
        "U(X): mean updates per node per C-event (±95% CI over events)",
        &["n", "U(T)", "U(M)", "U(CP)", "U(C)"],
    );
    for r in &reports {
        let cell = |ty: NodeType| {
            let tc = r.by_type(ty);
            format!("{} ±{}", f2(tc.u_total), f2(confidence_interval_95(&tc.per_event_u)))
        };
        t.push_row(vec![
            r.n.to_string(),
            cell(NodeType::T),
            cell(NodeType::M),
            cell(NodeType::Cp),
            cell(NodeType::C),
        ]);
    }
    fig.tables.push(t);

    let u_t = series_u(&reports, NodeType::T);
    let u_m = series_u(&reports, NodeType::M);
    let u_cp = series_u(&reports, NodeType::Cp);
    let u_c = series_u(&reports, NodeType::C);
    let last = reports.len() - 1;

    fig.claim("U(T) grows with network size", trends_upward(&u_t));
    fig.claim("U(M) grows with network size", trends_upward(&u_m));
    fig.claim(
        "ordering at the largest size: U(T) > U(M) > U(C)",
        u_t[last] > u_m[last] && u_m[last] > u_c[last],
    );
    fig.claim(
        "transit and content providers see more churn than customer stubs",
        u_m[last] > u_c[last] && u_cp[last] > u_c[last],
    );
    fig.claim(
        "T nodes show the strongest growth (relative increase)",
        u_t[last] / u_t[0] >= u_m[last] / u_m[0] && u_t[last] / u_t[0] >= u_c[last] / u_c[0],
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::RunConfig;

    #[test]
    fn fig4_claims_hold_on_tiny_sweep() {
        let mut sw = Sweeper::new(RunConfig::tiny());
        let f = run(&mut sw);
        assert!(f.all_claims_hold(), "{}", f.render());
        assert_eq!(f.tables[0].rows.len(), RunConfig::tiny().sizes.len());
    }
}
