//! Fig. 12 — the effect of WRATE (rate-limiting explicit withdrawals).
//!
//! RFC 4271 requires withdrawals to be MRAI-limited (WRATE); RFC 1771 did
//! not (NO-WRATE). Under WRATE, withdrawals crawl through the network and
//! nodes explore alternate paths in the meantime, multiplying updates.
//! Reproduced observations (§6): the WRATE/NO-WRATE churn ratio exceeds 1
//! everywhere, grows with network size, is *relatively* larger at the
//! periphery (longer paths ⇒ more exploration), and is amplified in a
//! dense core (DENSE-CORE).

use bgpscale_bgp::MraiMode;
use bgpscale_topology::{GrowthScenario, NodeType, Relationship};

use crate::figures::series_factor;
use crate::figures::series_u;
use crate::figures::Which;
use crate::report::{f2, Figure, Table};
use crate::sweep::Sweeper;

/// Regenerates Fig. 12.
pub fn run(sw: &mut Sweeper) -> Figure {
    let mut fig = Figure::new("fig12", "The effect of WRATE (rate-limited withdrawals)");

    let no_wrate = sw.sweep_mode(GrowthScenario::Baseline, MraiMode::NoWrate);
    let wrate = sw.sweep_mode(GrowthScenario::Baseline, MraiMode::Wrate);

    let types = [NodeType::C, NodeType::Cp, NodeType::M, NodeType::T];
    let mut ratio_series: Vec<Vec<f64>> = Vec::new();
    for ty in types {
        let base = series_u(&no_wrate, ty);
        let w = series_u(&wrate, ty);
        ratio_series.push(
            base.iter()
                .zip(&w)
                .map(|(&b, &w)| if b > 0.0 { w / b } else { 0.0 })
                .collect(),
        );
    }

    let mut top = Table::new(
        "U(X) ratio WRATE / NO-WRATE (top panel)",
        &["n", "C", "CP", "M", "T"],
    );
    for (i, &n) in sw.sizes().to_vec().iter().enumerate() {
        top.push_row(
            std::iter::once(n.to_string())
                .chain(ratio_series.iter().map(|s| f2(s[i])))
                .collect(),
        );
    }
    fig.tables.push(top);

    // e-factors under WRATE (bottom panel): ed,C, ep,T, ec,T.
    let ed_c = series_factor(&wrate, NodeType::C, Relationship::Provider, Which::E);
    let ep_t = series_factor(&wrate, NodeType::T, Relationship::Peer, Which::E);
    let ec_t = series_factor(&wrate, NodeType::T, Relationship::Customer, Which::E);
    let mut bottom = Table::new(
        "e factors under WRATE (bottom panel)",
        &["n", "ed,C", "ep,T", "ec,T"],
    );
    for (i, &n) in sw.sizes().to_vec().iter().enumerate() {
        bottom.push_row(vec![n.to_string(), f2(ed_c[i]), f2(ep_t[i]), f2(ec_t[i])]);
    }
    fig.tables.push(bottom);

    // The DENSE-CORE amplification, at the largest sweep size.
    let &n_max = sw.sizes().last().expect("non-empty sweep");
    let dc_base = sw.report(GrowthScenario::DenseCore, n_max, MraiMode::NoWrate);
    let dc_wrate = sw.report(GrowthScenario::DenseCore, n_max, MraiMode::Wrate);
    let dc_ratio = dc_wrate.by_type(NodeType::T).u_total / dc_base.by_type(NodeType::T).u_total;
    let base_ratio_t = *ratio_series[3].last().unwrap();
    let mut dc_table = Table::new(
        "DENSE-CORE amplification at the largest size (paper: 3.6 vs 2.0)",
        &["scenario", "WRATE/NO-WRATE at T"],
    );
    dc_table.push_row(vec!["BASELINE".into(), f2(base_ratio_t)]);
    dc_table.push_row(vec!["DENSE-CORE".into(), f2(dc_ratio)]);
    fig.tables.push(dc_table);

    let last = ratio_series[0].len() - 1;
    fig.claim(
        "WRATE increases churn for every node type at the largest size",
        ratio_series.iter().all(|s| s[last] > 1.0),
    );
    fig.claim(
        "the WRATE penalty grows with network size at T nodes",
        ratio_series[3][last] > ratio_series[3][0],
    );
    fig.claim(
        "the relative increase is larger at the periphery (C) than at the core (T)",
        ratio_series[0][last] > ratio_series[3][last],
    );
    fig.claim(
        "path exploration shows up in the e factors (e under WRATE exceeds the ~2-update NO-WRATE floor)",
        ed_c[last] > 2.0 && ep_t[last] > 2.0,
    );
    fig.claim(
        "a denser core amplifies the WRATE penalty (DENSE-CORE ratio > BASELINE ratio)",
        dc_ratio > base_ratio_t,
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::RunConfig;

    #[test]
    fn fig12_structure_and_robust_claims_on_tiny_sweep() {
        let mut sw = Sweeper::new(RunConfig::tiny());
        let f = run(&mut sw);
        assert_eq!(f.tables.len(), 3);
        // At toy sizes the MRAI-to-convergence-time ratio differs so much
        // from the paper's regime that the per-type ratio and its growth
        // are dominated by noise (verified at scale by `repro fig12
        // --quick`); the mechanism claims must hold even here.
        for c in &f.claims {
            if c.statement.contains("every node type") || c.statement.contains("grows with network size") {
                continue;
            }
            assert!(c.holds, "tiny-scale claim failed: {} \n{}", c.statement, f.render());
        }
    }
}
