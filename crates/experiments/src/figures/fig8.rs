//! Fig. 8 — the effect of the AS population mix on T-node churn.
//!
//! Five models: RICH-MIDDLE > BASELINE > STATIC-MIDDLE in churn growth,
//! plus the two M-free corner cases NO-MIDDLE and TRANSIT-CLIQUE, which
//! coincide — demonstrating that the number of tier-1 nodes *per se* does
//! not matter; what multiplies updates is the M-layer hierarchy.
//!
//! As in the paper, every series is normalized by the Baseline value at
//! the smallest size.

use bgpscale_topology::{GrowthScenario, NodeType};

use crate::figures::{roughly_equal, series_u};
use crate::report::{f2, Figure, Table};
use crate::sweep::Sweeper;

const SCENARIOS: [GrowthScenario; 5] = [
    GrowthScenario::RichMiddle,
    GrowthScenario::Baseline,
    GrowthScenario::StaticMiddle,
    GrowthScenario::TransitClique,
    GrowthScenario::NoMiddle,
];

/// Regenerates Fig. 8.
pub fn run(sw: &mut Sweeper) -> Figure {
    let mut fig = Figure::new("fig8", "The effect of the AS population mix on T nodes");

    let mut series = Vec::new();
    for s in SCENARIOS {
        let reports = sw.sweep(s);
        series.push(series_u(&reports, NodeType::T));
    }
    // Normalize everything by Baseline at the smallest size (the paper's
    // normalization).
    let base0 = series[1][0];
    let mut t = Table::new(
        "U(T) per C-event, normalized to BASELINE at the smallest size",
        &[
            "n",
            "RICH-MIDDLE",
            "BASELINE",
            "STATIC-MIDDLE",
            "TRANSIT-CLIQUE",
            "NO-MIDDLE",
        ],
    );
    for (i, &n) in sw.sizes().to_vec().iter().enumerate() {
        t.push_row(vec![
            n.to_string(),
            f2(series[0][i] / base0),
            f2(series[1][i] / base0),
            f2(series[2][i] / base0),
            f2(series[3][i] / base0),
            f2(series[4][i] / base0),
        ]);
    }
    fig.tables.push(t);

    let last = series[0].len() - 1;
    fig.claim(
        "more M nodes mean more churn: RICH-MIDDLE > BASELINE > STATIC-MIDDLE at the largest size",
        series[0][last] > series[1][last] && series[1][last] > series[2][last],
    );
    fig.claim(
        "the number of T nodes alone is irrelevant: NO-MIDDLE ≈ TRANSIT-CLIQUE",
        roughly_equal(series[3][last], series[4][last], 0.35),
    );
    fig.claim(
        "without an M layer churn stays far below BASELINE",
        series[4][last] < 0.5 * series[1][last],
    );
    fig.claim(
        "the M-free corner cases barely grow with n (driven only by the originator's MHD)",
        series[4][last] / series[4][0].max(1e-12) < 0.6 * (series[1][last] / series[1][0].max(1e-12)),
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::RunConfig;

    #[test]
    fn fig8_structure_and_robust_claims_on_tiny_sweep() {
        let mut sw = Sweeper::new(RunConfig::tiny());
        let f = run(&mut sw);
        assert_eq!(f.tables[0].rows.len(), RunConfig::tiny().sizes.len());
        // STATIC-MIDDLE degenerates to BASELINE below n = 1000 (its
        // transit freeze point), so the population ordering cannot
        // separate at toy sizes (verified by `repro fig8 --quick`); the
        // corner-case claims are scale-free.
        for c in &f.claims {
            if !c.statement.contains("largest size") {
                assert!(c.holds, "tiny-scale claim failed: {} \n{}", c.statement, f.render());
            }
        }
    }
}
