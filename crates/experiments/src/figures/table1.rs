//! Table 1 — the topology parameters, configured vs realized.
//!
//! Regenerates the parameter table of §3 and, for each sweep size,
//! measures what the generator actually produced (population mix,
//! multihoming/peering degrees, and the four stable properties).

use bgpscale_simkernel::rng::hash64_pair;
use bgpscale_topology::metrics::TopologySummary;
use bgpscale_topology::{generate, validate::validate, GrowthScenario, TopologyParams};

use crate::report::{f2, Figure, Table};
use crate::sweep::RunConfig;

/// Regenerates Table 1.
pub fn run(cfg: &RunConfig) -> Figure {
    let mut fig = Figure::new("table1", "Topology parameters: configured vs realized (Baseline)");

    let mut params_t = Table::new(
        "configured parameters (Table 1 formulas)",
        &["n", "nT", "nM", "nCP", "nC", "dM", "dCP", "dC", "pM", "pCP-M", "pCP-CP"],
    );
    for &n in &cfg.sizes {
        let p: TopologyParams = GrowthScenario::Baseline.params(n);
        params_t.push_row(vec![
            n.to_string(),
            p.n_t.to_string(),
            p.n_m.to_string(),
            p.n_cp.to_string(),
            p.n_c.to_string(),
            f2(p.d_m),
            f2(p.d_cp),
            f2(p.d_c),
            f2(p.p_m),
            f2(p.p_cp_m),
            f2(p.p_cp_cp),
        ]);
    }
    fig.tables.push(params_t);

    let mut realized_t = Table::new(
        "realized instances (stable-property measurements)",
        &[
            "n",
            "links",
            "peer links",
            "mean dM",
            "mean dC",
            "clustering",
            "avg path",
            "max degree",
        ],
    );
    let mut clusterings = Vec::new();
    let mut path_lengths = Vec::new();
    let mut all_valid = true;
    for &n in &cfg.sizes {
        let g = generate(GrowthScenario::Baseline, n, hash64_pair(cfg.seed, 0x7090));
        all_valid &= validate(&g).is_ok();
        let s = TopologySummary::compute(&g, cfg.seed);
        clusterings.push(s.clustering);
        path_lengths.push(s.avg_path_length);
        realized_t.push_row(vec![
            n.to_string(),
            s.transit_links.to_string(),
            s.peer_links.to_string(),
            f2(s.mean_mhd[1]),
            f2(s.mean_mhd[3]),
            f2(s.clustering),
            f2(s.avg_path_length),
            s.max_degree.to_string(),
        ]);
    }
    fig.tables.push(realized_t);

    fig.claim("every instance passes full structural validation", all_valid);
    fig.claim(
        "hierarchy: provider relation is acyclic in every instance (validated above)",
        all_valid,
    );
    fig.claim(
        "strong clustering: coefficient well above the random-graph level",
        clusterings.iter().all(|&c| c > 0.03),
    );
    let min_path = path_lengths.iter().copied().fold(f64::INFINITY, f64::min);
    let max_path = path_lengths.iter().copied().fold(0.0f64, f64::max);
    fig.claim(
        "constant path length: ~4 AS hops, drift < 1 hop across the sweep",
        (2.5..=5.5).contains(&min_path) && max_path - min_path < 1.0,
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_claims_hold_on_tiny_sweep() {
        let f = run(&RunConfig::tiny());
        assert!(f.all_claims_hold(), "{}", f.render());
        assert_eq!(f.tables.len(), 2);
        // One row per size in each table.
        assert_eq!(f.tables[0].rows.len(), RunConfig::tiny().sizes.len());
    }
}
