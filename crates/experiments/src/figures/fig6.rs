//! Fig. 6 — relative increase of `Uc(T)`, `Up(T)` and `Ud(M)`, with the
//! paper's regression analysis.
//!
//! §4.2 reports: `Uc(T)` grows quadratically (R² = 0.92) and dominates;
//! `Up(T)` grows approximately linearly (R² = 0.95); `Ud(M)`'s growth is
//! dominated by the linear growth of the multihoming degree.

use bgpscale_stats::regression::{fit_linear, fit_quadratic};
use bgpscale_topology::{GrowthScenario, NodeType, Relationship};

use crate::figures::{series_factor, sizes_f64, Which};
use crate::report::{f2, f4, relative_increase, Figure, Table};
use crate::sweep::Sweeper;

/// Regenerates Fig. 6.
pub fn run(sw: &mut Sweeper) -> Figure {
    let reports = sw.sweep(GrowthScenario::Baseline);
    let mut fig = Figure::new("fig6", "Relative increase of Uc(T), Up(T) and Ud(M)");

    let xs = sizes_f64(&reports);
    let uc_t = series_factor(&reports, NodeType::T, Relationship::Customer, Which::U);
    let up_t = series_factor(&reports, NodeType::T, Relationship::Peer, Which::U);
    let ud_m = series_factor(&reports, NodeType::M, Relationship::Provider, Which::U);
    let rel_uc = relative_increase(&uc_t);
    let rel_up = relative_increase(&up_t);
    let rel_ud = relative_increase(&ud_m);

    let mut t = Table::new(
        "relative increase (normalized to the smallest size)",
        &["n", "Uc(T)", "Up(T)", "Ud(M)"],
    );
    for (i, r) in reports.iter().enumerate() {
        t.push_row(vec![
            r.n.to_string(),
            f2(rel_uc[i]),
            f2(rel_up[i]),
            f2(rel_ud[i]),
        ]);
    }
    fig.tables.push(t);

    // Regression analysis on the absolute series, as in the paper.
    let quad_uc = fit_quadratic(&xs, &uc_t);
    let lin_uc = fit_linear(&xs, &uc_t);
    let lin_up = fit_linear(&xs, &up_t);
    let lin_ud = fit_linear(&xs, &ud_m);
    let mut reg = Table::new(
        "regression fits",
        &["series", "model", "R²"],
    );
    reg.push_row(vec!["Uc(T)".into(), "quadratic".into(), f4(quad_uc.r_squared)]);
    reg.push_row(vec!["Uc(T)".into(), "linear".into(), f4(lin_uc.r_squared)]);
    reg.push_row(vec!["Up(T)".into(), "linear".into(), f4(lin_up.r_squared)]);
    reg.push_row(vec!["Ud(M)".into(), "linear".into(), f4(lin_ud.r_squared)]);
    fig.tables.push(reg);

    let last = reports.len() - 1;
    fig.claim(
        "Uc(T) shows the strongest relative increase of the three",
        rel_uc[last] > rel_up[last] && rel_uc[last] > rel_ud[last],
    );
    fig.claim(
        "quadratic model fits Uc(T) well (paper: R² = 0.92)",
        quad_uc.r_squared > 0.85,
    );
    fig.claim(
        "linear model fits Up(T) well (paper: R² = 0.95)",
        lin_up.r_squared > 0.85,
    );
    fig.claim(
        "Uc(T) growth is superlinear (quadratic fit beats linear)",
        quad_uc.r_squared >= lin_uc.r_squared,
    );
    fig.claim(
        "Ud(M) grows modestly (paper: factor ~2.6 over the full sweep)",
        rel_ud[last] > 1.0 && rel_ud[last] < rel_uc[last],
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::RunConfig;

    #[test]
    fn fig6_claims_hold_on_tiny_sweep() {
        let mut sw = Sweeper::new(RunConfig::tiny());
        let f = run(&mut sw);
        assert!(f.all_claims_hold(), "{}", f.render());
        assert_eq!(f.tables.len(), 2);
    }
}
