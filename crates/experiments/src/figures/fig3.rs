//! Fig. 3 — an illustration of a generated network.
//!
//! The paper's Fig. 3 sketches a small instance of the topology model
//! (T clique on top, M middle layer, stubs below, transit solid, peering
//! dotted). We regenerate it as a Graphviz DOT document plus a structural
//! summary of the instance.

use bgpscale_topology::{validate::validate, GrowthScenario, NodeType};

use crate::report::{Figure, Table};

/// Size of the illustration instance (small enough to render by hand).
const ILLUSTRATION_N: usize = 40;

/// Regenerates Fig. 3. The DOT source is included as a single-column
/// table so it survives plain-text rendering.
pub fn run(seed: u64) -> Figure {
    let mut p = GrowthScenario::Baseline.params(ILLUSTRATION_N.max(20));
    // A sketch reads better with one region (no invisible constraint).
    p.regions = 1;
    p.m_two_region_frac = 0.0;
    p.cp_two_region_frac = 0.0;
    let g = bgpscale_topology::generator::generate_with_params(&p, seed);

    let mut fig = Figure::new("fig3", "Illustration of a network from the topology model");
    let mut t = Table::new("instance summary", &["quantity", "value"]);
    for ty in NodeType::ALL {
        t.push_row(vec![format!("{ty} nodes"), g.count_of_type(ty).to_string()]);
    }
    t.push_row(vec!["transit links".into(), g.transit_link_count().to_string()]);
    t.push_row(vec!["peering links".into(), g.peer_link_count().to_string()]);
    fig.tables.push(t);

    let mut dot = Table::new("Graphviz DOT source (render with `dot -Tsvg`)", &["dot"]);
    for line in g.to_dot().lines() {
        dot.push_row(vec![line.to_string()]);
    }
    fig.tables.push(dot);

    fig.claim("the illustration instance validates", validate(&g).is_ok());
    fig.claim(
        "it contains all four node types",
        NodeType::ALL.iter().all(|&ty| g.count_of_type(ty) > 0),
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_claims_hold() {
        let f = run(42);
        assert!(f.all_claims_hold(), "{}", f.render());
        let dot_table = &f.tables[1];
        assert!(dot_table.rows.iter().any(|r| r[0].contains("digraph")));
        assert!(dot_table.rows.iter().any(|r| r[0].contains("style=dashed")));
    }
}
