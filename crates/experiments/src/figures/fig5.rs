//! Fig. 5 — where the updates come from: `Uc(T)`, `Up(T)` (top panel) and
//! `Ud(M)`, `Up(M)`, `Uc(M)` (bottom panel), Baseline.
//!
//! Key observations reproduced: both customer and peer updates matter at
//! T nodes, with the customer component eventually dominating; M nodes
//! receive the large majority of their updates from their providers,
//! justifying the paper's simplification `U(M) ≈ Ud(M)`.

use bgpscale_topology::{GrowthScenario, NodeType, Relationship};

use crate::figures::{series_factor, series_u, trends_upward, Which};
use crate::report::{f2, Figure, Table};
use crate::sweep::Sweeper;

/// Regenerates Fig. 5.
pub fn run(sw: &mut Sweeper) -> Figure {
    let reports = sw.sweep(GrowthScenario::Baseline);
    let mut fig = Figure::new(
        "fig5",
        "Churn components: updates from customers/peers at T, from providers/peers/customers at M",
    );

    let uc_t = series_factor(&reports, NodeType::T, Relationship::Customer, Which::U);
    let up_t = series_factor(&reports, NodeType::T, Relationship::Peer, Which::U);
    let ud_m = series_factor(&reports, NodeType::M, Relationship::Provider, Which::U);
    let up_m = series_factor(&reports, NodeType::M, Relationship::Peer, Which::U);
    let uc_m = series_factor(&reports, NodeType::M, Relationship::Customer, Which::U);
    let u_m = series_u(&reports, NodeType::M);

    let mut top = Table::new("T nodes (top panel)", &["n", "Uc(T)", "Up(T)"]);
    let mut bottom = Table::new(
        "M nodes (bottom panel)",
        &["n", "Ud(M)", "Up(M)", "Uc(M)", "Ud(M)/U(M)"],
    );
    for (i, r) in reports.iter().enumerate() {
        top.push_row(vec![r.n.to_string(), f2(uc_t[i]), f2(up_t[i])]);
        bottom.push_row(vec![
            r.n.to_string(),
            f2(ud_m[i]),
            f2(up_m[i]),
            f2(uc_m[i]),
            f2(ud_m[i] / u_m[i].max(1e-12)),
        ]);
    }
    fig.tables.push(top);
    fig.tables.push(bottom);

    let last = reports.len() - 1;
    fig.claim("Uc(T) increases with network size", trends_upward(&uc_t));
    fig.claim("Up(T) increases with network size", trends_upward(&up_t));
    fig.claim(
        "Uc(T) grows faster than Up(T) (it dominates at scale)",
        uc_t[last] / uc_t[0].max(1e-12) > up_t[last] / up_t[0].max(1e-12),
    );
    fig.claim(
        "M nodes receive the large majority of updates from providers (Ud(M)/U(M) > 0.6)",
        ud_m[last] / u_m[last].max(1e-12) > 0.6,
    );
    fig.claim(
        "provider updates dominate peer and customer updates at M nodes",
        ud_m[last] > up_m[last] && ud_m[last] > uc_m[last],
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::RunConfig;

    #[test]
    fn fig5_claims_hold_on_tiny_sweep() {
        let mut sw = Sweeper::new(RunConfig::tiny());
        let f = run(&mut sw);
        assert!(f.all_claims_hold(), "{}", f.render());
    }
}
