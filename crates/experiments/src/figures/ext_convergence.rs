//! Extension E4 — convergence time vs network size and MRAI mode.
//!
//! The paper focuses on update *counts*; the same simulations also yield
//! convergence *times*, which drive the operational pain of WRATE (§6
//! notes withdrawals crawl under rate limiting). This driver tabulates
//! the simulated DOWN- and UP-phase convergence times of the C-event
//! sweeps, reusing the cached experiment cells.
//!
//! Expected shapes: NO-WRATE DOWN converges in seconds (withdrawals
//! propagate at processing speed); UP takes a few MRAI rounds; WRATE
//! stretches DOWN dramatically (each hop may wait a full MRAI) and the
//! gap widens with network size (longer paths).

use bgpscale_bgp::MraiMode;
use bgpscale_topology::GrowthScenario;

use crate::report::{f2, Figure, Table};
use crate::sweep::Sweeper;

/// Regenerates extension E4.
pub fn run(sw: &mut Sweeper) -> Figure {
    let mut fig = Figure::new(
        "ext_convergence",
        "Extension: C-event convergence time (simulated seconds)",
    );

    let no_wrate = sw.sweep_mode(GrowthScenario::Baseline, MraiMode::NoWrate);
    let wrate = sw.sweep_mode(GrowthScenario::Baseline, MraiMode::Wrate);

    let mut t = Table::new(
        "mean convergence per phase",
        &[
            "n",
            "DOWN no-wrate",
            "UP no-wrate",
            "DOWN wrate",
            "UP wrate",
        ],
    );
    for (a, b) in no_wrate.iter().zip(&wrate) {
        t.push_row(vec![
            a.n.to_string(),
            f2(a.mean_down_convergence_s),
            f2(a.mean_up_convergence_s),
            f2(b.mean_down_convergence_s),
            f2(b.mean_up_convergence_s),
        ]);
    }
    fig.tables.push(t);

    let last = no_wrate.len() - 1;
    fig.claim(
        "NO-WRATE withdrawals converge in seconds (processing speed, no rate limiting)",
        no_wrate.iter().all(|r| r.mean_down_convergence_s < 30.0),
    );
    fig.claim(
        "announcement convergence takes MRAI rounds (UP ≫ DOWN under NO-WRATE)",
        no_wrate
            .iter()
            .all(|r| r.mean_up_convergence_s > r.mean_down_convergence_s),
    );
    fig.claim(
        "WRATE stretches withdrawal convergence by an order of magnitude",
        wrate[last].mean_down_convergence_s > 10.0 * no_wrate[last].mean_down_convergence_s,
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::RunConfig;

    #[test]
    fn ext_convergence_claims_hold_on_tiny_sweep() {
        let mut sw = Sweeper::new(RunConfig::tiny());
        let f = run(&mut sw);
        assert!(f.all_claims_hold(), "{}", f.render());
        assert_eq!(f.tables[0].rows.len(), RunConfig::tiny().sizes.len());
    }
}
