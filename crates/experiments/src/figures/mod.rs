//! One module per reproduced table/figure, plus shared series helpers.
//!
//! Every driver has the signature `run(&mut Sweeper) -> Figure` (except
//! [`fig1`] and [`fig3`], which need no churn sweep) and encodes the
//! paper's qualitative claims for its figure as PASS/FAIL checks.

pub mod ext_burstiness;
pub mod ext_concurrency;
pub mod ext_convergence;
pub mod ext_levent;
pub mod ext_rfd;
pub mod ext_tablesize;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;

use std::sync::Arc;

use bgpscale_core::ChurnReport;
use bgpscale_topology::{NodeType, Relationship};

/// Which of the three per-class factors to extract.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Which {
    /// Neighbor count `m`.
    M,
    /// Activation probability `q`.
    Q,
    /// Updates per active neighbor `e`.
    E,
    /// Updates from the class `U_y = mean(m·q·e)`.
    U,
}

/// Extracts the total-churn series `U(ty)` over a sweep.
pub fn series_u(reports: &[Arc<ChurnReport>], ty: NodeType) -> Vec<f64> {
    reports.iter().map(|r| r.by_type(ty).u_total).collect()
}

/// Extracts one factor series over a sweep.
pub fn series_factor(
    reports: &[Arc<ChurnReport>],
    ty: NodeType,
    rel: Relationship,
    which: Which,
) -> Vec<f64> {
    reports
        .iter()
        .map(|r| {
            let f = r.factor(ty, rel);
            match which {
                Which::M => f.m,
                Which::Q => f.q,
                Which::E => f.e,
                Which::U => f.u,
            }
        })
        .collect()
}

/// The sizes of a sweep, as f64 x-values for regression.
pub fn sizes_f64(reports: &[Arc<ChurnReport>]) -> Vec<f64> {
    reports.iter().map(|r| r.n as f64).collect()
}

/// "Roughly equal": `|a − b| ≤ tol · max(|a|, |b|)`.
pub fn roughly_equal(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs())
}

/// True if the series trends upward overall (robust to per-point noise):
/// the last element exceeds the first and the Kendall tau is positive.
pub fn trends_upward(series: &[f64]) -> bool {
    if series.len() < 2 {
        return false;
    }
    let rising_ends = series.last().unwrap() > series.first().unwrap();
    let mut concordant = 0i64;
    for i in 0..series.len() {
        for j in (i + 1)..series.len() {
            concordant += match series[j].partial_cmp(&series[i]).unwrap() {
                std::cmp::Ordering::Greater => 1,
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
            };
        }
    }
    rising_ends && concordant > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trends_upward_logic() {
        assert!(trends_upward(&[1.0, 2.0, 1.8, 3.0]));
        assert!(!trends_upward(&[3.0, 2.0, 1.0]));
        assert!(!trends_upward(&[1.0, 5.0, 1.0])); // ends where it started
        assert!(!trends_upward(&[1.0]));
    }

    #[test]
    fn roughly_equal_tolerance() {
        assert!(roughly_equal(10.0, 11.0, 0.15));
        assert!(!roughly_equal(10.0, 15.0, 0.15));
        assert!(roughly_equal(0.0, 0.0, 0.1));
    }
}
