//! `repro bench`: wall-clock scaling of the harness plus the exact
//! cost-model columns of every timed cell.
//!
//! This module is **wall-side**: wall times, RSS, and allocator tallies
//! are measurement noise by definition and never enter a deterministic
//! artifact. The op counts embedded per cell, however, come from the
//! integer-only [`CostModel`] and are bit-identical across `--jobs`.
//!
//! ## Timing discipline
//!
//! Observer-overhead micro-benchmarks run **one warmup + five timed
//! samples and report the median**. An earlier revision reported the
//! best-of-3 minimum, which on a shared machine routinely produced
//! *negative* overhead (the instrumented run won the lottery against the
//! uninstrumented one — the recorded artifact said
//! `metrics_overhead_pct: -4.51`). The median of five is robust to a
//! single scheduling outlier in either direction; all raw samples are
//! recorded so the spread is auditable. Reported overhead percentages are
//! clamped at 0 and flagged `noise_floor` when the raw value was
//! negative.
//!
//! ## Scaling exponents
//!
//! With at least two distinct sweep sizes the bench fits, per op class,
//! `ln(ops per event) = a + b·ln(n)` by least squares and reports `b` as
//! the class's scaling exponent (`cost_exponents`). The paper's
//! headline — churn grows linearly in n (§5) — predicts exponents near 1
//! for delivery-coupled classes and mildly superlinear for heap work.

use std::sync::Arc;

use bgpscale_bgp::MraiMode;
use bgpscale_core::{run_experiment_jobs, run_experiment_observed, ExperimentConfig};
use bgpscale_obs::costmodel::OpCounts;
use bgpscale_obs::{log, CostModel, SCHEMA_VERSION};
use bgpscale_simkernel::{alloc, peak_rss_bytes, Stopwatch};
use bgpscale_stats::regression::fit_linear;
use bgpscale_topology::{GrowthScenario, NodeType};

use crate::sweep::{RunConfig, Sweeper};

/// How many timed samples each micro-benchmark takes (after one warmup).
pub const BENCH_SAMPLES: usize = 5;

/// The default `repro bench` size sweep. Wider than [`RunConfig::quick`]
/// (which feeds the figure targets): the scaling-law fits need leverage
/// past the knee, and the 10k/20k tail is where the memory-layout and
/// event-queue work shows up or doesn't.
pub const DEFAULT_BENCH_SIZES: &[usize] = &[1_000, 2_000, 3_000, 4_000, 5_000, 10_000, 20_000];

/// Default AS count for the frontier cell (Internet scale, §6 of the
/// paper's projection range).
pub const FRONTIER_N: usize = 70_000;

/// Default C-event count for the frontier cell — reduced, because the
/// point is "does an Internet-scale topology fit and finish", not
/// statistics.
pub const FRONTIER_EVENTS: usize = 3;

/// One timed micro-benchmark: the median and the raw samples behind it.
#[derive(Clone, Debug)]
pub struct Timing {
    /// Median of the timed samples, seconds.
    pub median_s: f64,
    /// All timed samples in execution order, seconds.
    pub samples_s: Vec<f64>,
}

/// Runs `f` once untimed (warmup), then [`BENCH_SAMPLES`] times timed,
/// and reports the median. The warmup run absorbs cold caches, lazy page
/// faults, and first-touch allocator growth.
pub fn median_of_samples(mut f: impl FnMut()) -> Timing {
    f(); // warmup, never recorded
    let samples_s: Vec<f64> = (0..BENCH_SAMPLES)
        .map(|_| {
            let t = Stopwatch::start();
            f();
            t.elapsed_secs_f64()
        })
        .collect();
    let mut sorted = samples_s.clone();
    sorted.sort_by(f64::total_cmp);
    Timing {
        median_s: sorted[BENCH_SAMPLES / 2],
        samples_s,
    }
}

/// An overhead ratio with the noise floor applied: negative raw values
/// (instrumented run beat the uninstrumented one — pure scheduling noise)
/// are reported as 0 with the `noise_floor` flag set.
#[derive(Clone, Copy, Debug)]
pub struct Overhead {
    /// `(instrumented / baseline − 1) · 100`, unclamped.
    pub raw_pct: f64,
    /// `max(raw_pct, 0)` — the value headline consumers should read.
    pub pct: f64,
    /// True when the raw value was negative.
    pub noise_floor: bool,
}

impl Overhead {
    fn from_ratio(instrumented_s: f64, baseline_s: f64) -> Overhead {
        let raw_pct = (instrumented_s / baseline_s - 1.0) * 100.0;
        Overhead {
            raw_pct,
            pct: raw_pct.max(0.0),
            noise_floor: raw_pct < 0.0,
        }
    }
}

/// The observer-overhead micro-benchmark: the first-size Baseline cell at
/// jobs=1 with the observer off, metrics-only, and full-trace.
#[derive(Clone, Debug)]
pub struct ObserverOverhead {
    pub off: Timing,
    pub metrics: Timing,
    pub trace: Timing,
    pub metrics_overhead: Overhead,
    pub trace_overhead: Overhead,
}

/// One timed sweep cell, annotated with its exact op counts and the
/// wall-side allocator delta observed while it computed.
#[derive(Clone, Debug)]
pub struct BenchCell {
    pub n: usize,
    pub wall_s: f64,
    pub events_per_s: f64,
    /// Total exact op counts of the cell (integer-only, deterministic).
    pub ops: OpCounts,
    /// Heap allocations made while the cell computed, when the counting
    /// allocator is installed (`alloc-count` feature); `None` otherwise.
    pub alloc_allocs: Option<u64>,
    /// Bytes allocated while the cell computed, same gating.
    pub alloc_bytes: Option<u64>,
}

/// One single-size Internet-scale cell run on one core after the sweep:
/// proof that a 70k-AS topology builds, runs a reduced-event Baseline
/// cell to completion, and what it costs in wall time and peak RSS.
#[derive(Clone, Debug)]
pub struct FrontierCell {
    pub n: usize,
    pub events: usize,
    pub wall_s: f64,
    /// Injected C-events per wall second.
    pub events_per_s: f64,
    /// Simulator events (queue pops) per wall second — the throughput
    /// figure the scaling acceptance compares across sweep sizes.
    pub sim_events_per_s: f64,
    /// Exact op counts of the cell (integer-only, deterministic).
    pub ops: OpCounts,
    /// Process peak RSS (`VmHWM`) observed after the cell finished —
    /// at 70k ASes the frontier cell dominates the process high-water
    /// mark, so this is effectively the cell's footprint.
    pub peak_rss_bytes: Option<u64>,
}

/// Runs the frontier cell: Baseline NO-WRATE at `n` with `events`
/// C-events on one worker.
pub fn run_frontier(n: usize, events: usize, seed: u64) -> FrontierCell {
    log!(Info, "bench: frontier cell Baseline n={n} events={events} jobs=1 …");
    let cfg = RunConfig {
        sizes: vec![n],
        events,
        seed,
    };
    let mut sw = Sweeper::new(cfg);
    sw.set_jobs(1);
    let started = Stopwatch::start();
    sw.report(GrowthScenario::Baseline, n, MraiMode::NoWrate);
    let wall_s = started.elapsed_secs_f64();
    let ops = sw
        .cost_model(GrowthScenario::Baseline, n, MraiMode::NoWrate)
        .expect("uncached frontier cell always collects a cost model")
        .total();
    log!(Info, "bench: frontier cell finished in {wall_s:.2}s");
    FrontierCell {
        n,
        events,
        wall_s,
        events_per_s: events as f64 / wall_s,
        sim_events_per_s: ops.queue_pops as f64 / wall_s,
        ops,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// One full sweep at a fixed worker count.
#[derive(Clone, Debug)]
pub struct BenchRun {
    pub requested_jobs: usize,
    pub effective_jobs: usize,
    pub total_wall_s: f64,
    pub cells: Vec<BenchCell>,
}

/// A fitted per-op-class scaling law `ops_per_event ∝ n^exponent`.
#[derive(Clone, Debug)]
pub struct CostExponent {
    pub class: &'static str,
    pub exponent: f64,
    pub r_squared: f64,
}

/// Everything `repro bench` measured, pre-rendering.
#[derive(Clone, Debug)]
pub struct BenchOutput {
    pub runs: Vec<BenchRun>,
    pub overhead: ObserverOverhead,
    /// Per-op-class scaling exponents; empty when the sweep has fewer
    /// than two distinct sizes or a class saw zero ops at some size.
    pub exponents: Vec<CostExponent>,
    /// Peak resident set size of this process (Linux `VmHWM`), bytes.
    pub peak_rss_bytes: Option<u64>,
    /// The Internet-scale frontier cell, when one was run (the default;
    /// tests and `--no-frontier` skip it). Filled in by the caller after
    /// [`run_bench`] — the sweep and the frontier are timed separately.
    pub frontier: Option<FrontierCell>,
    /// The first run's per-cell cost models, `(n, model)` in sweep order —
    /// deterministic, identical across runs (the cross-run assert holds
    /// reports equal), kept so the run ledger can content-hash each
    /// cell's `costmodel.json` without recomputing.
    pub first_run_costs: Vec<(usize, Arc<CostModel>)>,
}

fn first_cell_config(cfg: &RunConfig) -> ExperimentConfig {
    ExperimentConfig {
        scenario: GrowthScenario::Baseline,
        n: cfg.sizes.first().copied().unwrap_or(300),
        events: cfg.events,
        seed: cfg.seed,
        bgp: Default::default(),
        event_limit: None,
        wheel_slot_bits: None,
    }
}

fn bench_observer_overhead(cfg: &RunConfig) -> ObserverOverhead {
    let cell = first_cell_config(cfg);
    log!(Info, "bench: observer overhead on Baseline n={} …", cell.n);
    let off = median_of_samples(|| {
        std::hint::black_box(run_experiment_jobs(&cell, 1));
    });
    let metrics = median_of_samples(|| {
        std::hint::black_box(run_experiment_observed(&cell, 1, None));
    });
    let trace = median_of_samples(|| {
        std::hint::black_box(run_experiment_observed(&cell, 1, Some(1)));
    });
    let metrics_overhead = Overhead::from_ratio(metrics.median_s, off.median_s);
    let trace_overhead = Overhead::from_ratio(trace.median_s, off.median_s);
    ObserverOverhead {
        off,
        metrics,
        trace,
        metrics_overhead,
        trace_overhead,
    }
}

/// Fits per-op-class scaling exponents from the cost models of one run.
/// Requires ≥ 2 distinct sizes and a nonzero count at every size (the
/// log-log fit is undefined otherwise); classes failing that are skipped.
pub fn fit_cost_exponents(cells: &[(usize, Arc<CostModel>)], events: usize) -> Vec<CostExponent> {
    let mut distinct: Vec<usize> = cells.iter().map(|(n, _)| *n).collect();
    distinct.sort_unstable();
    distinct.dedup();
    if distinct.len() < 2 || events == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, &(class, _)) in OpCounts::default().fields().iter().enumerate() {
        let mut xs = Vec::with_capacity(cells.len());
        let mut ys = Vec::with_capacity(cells.len());
        let mut ok = true;
        for (n, cost) in cells {
            let count = cost.total().fields()[idx].1;
            if count == 0 {
                ok = false;
                break;
            }
            xs.push((*n as f64).ln());
            ys.push((count as f64 / events as f64).ln());
        }
        if !ok {
            continue;
        }
        let fit = fit_linear(&xs, &ys);
        out.push(CostExponent {
            class,
            exponent: fit.slope,
            r_squared: fit.r_squared,
        });
    }
    out
}

/// Times the Baseline NO-WRATE sweep once per requested worker count
/// (each with a fresh cache), collecting per-cell op counts and allocator
/// deltas, and cross-checks that every run's reports are bit-identical to
/// the first run's.
///
/// # Panics
/// Panics if a parallel run's report diverges from the first run's — that
/// is a determinism bug, not a measurement artifact.
pub fn run_bench(cfg: &RunConfig, jobs_list: &[usize]) -> BenchOutput {
    let mut runs = Vec::new();
    let mut baseline_reports: Option<Vec<_>> = None;
    let mut exponents = Vec::new();
    let mut first_run_costs = Vec::new();
    for &requested in jobs_list {
        let mut sw = Sweeper::new(cfg.clone());
        sw.set_jobs(requested);
        let effective = sw.jobs();
        log!(Info, "bench: sweeping Baseline with jobs={requested} (effective {effective}) …");
        let mut cells = Vec::new();
        let total_started = Stopwatch::start();
        for &n in &cfg.sizes.clone() {
            let alloc_before = alloc::snapshot();
            let cell_started = Stopwatch::start();
            let report = sw.report(GrowthScenario::Baseline, n, MraiMode::NoWrate);
            let wall_s = cell_started.elapsed_secs_f64();
            let alloc_delta = alloc::snapshot()
                .zip(alloc_before)
                .map(|(now, before)| now.delta_since(&before));
            let cost = sw
                .cost_model(GrowthScenario::Baseline, n, MraiMode::NoWrate)
                .expect("uncached bench cell always collects a cost model");
            cells.push((
                BenchCell {
                    n,
                    wall_s,
                    events_per_s: cfg.events as f64 / wall_s,
                    ops: cost.total(),
                    alloc_allocs: alloc_delta.as_ref().map(|d| d.allocs),
                    alloc_bytes: alloc_delta.as_ref().map(|d| d.bytes_allocated),
                },
                report,
                cost,
            ));
        }
        let total_s = total_started.elapsed_secs_f64();
        log!(Info, "bench: jobs={requested} finished in {total_s:.2}s");
        match &baseline_reports {
            None => {
                baseline_reports = Some(cells.iter().map(|(_, r, _)| r.clone()).collect());
                first_run_costs = cells
                    .iter()
                    .map(|(c, _, cost)| (c.n, Arc::clone(cost)))
                    .collect::<Vec<_>>();
                exponents = fit_cost_exponents(&first_run_costs, cfg.events);
            }
            Some(first) => {
                for ((_, r, _), f) in cells.iter().zip(first) {
                    for ty in [NodeType::T, NodeType::M, NodeType::Cp, NodeType::C] {
                        assert_eq!(
                            r.by_type(ty),
                            f.by_type(ty),
                            "jobs={requested} diverged from jobs={} at n={}",
                            jobs_list[0],
                            r.n
                        );
                    }
                }
            }
        }
        runs.push(BenchRun {
            requested_jobs: requested,
            effective_jobs: effective,
            total_wall_s: total_s,
            cells: cells.into_iter().map(|(c, _, _)| c).collect(),
        });
    }

    let overhead = bench_observer_overhead(cfg);
    BenchOutput {
        runs,
        overhead,
        exponents,
        peak_rss_bytes: peak_rss_bytes(),
        frontier: None,
        first_run_costs,
    }
}

fn push_samples(json: &mut String, key: &str, t: &Timing, indent: &str) {
    json.push_str(&format!("{indent}\"{key}_s\": {:.6},\n", t.median_s));
    let samples = t
        .samples_s
        .iter()
        .map(|s| format!("{s:.6}"))
        .collect::<Vec<_>>()
        .join(", ");
    json.push_str(&format!("{indent}\"{key}_samples_s\": [{samples}],\n"));
}

fn opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |v| v.to_string())
}

/// Renders the BENCH_harness.json document. Wall-side — floats are fine
/// here; only the embedded op counts are deterministic.
pub fn render_json(cfg: &RunConfig, out: &BenchOutput, git_rev: &str) -> String {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let base_total = out.runs.first().map(|r| r.total_wall_s).unwrap_or(f64::NAN);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    json.push_str(&format!("  \"git_rev\": \"{git_rev}\",\n"));
    json.push_str(&format!("  \"hardware_threads\": {hw},\n"));
    json.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    json.push_str(&format!("  \"events_per_cell\": {},\n", cfg.events));
    json.push_str(&format!(
        "  \"sizes\": [{}],\n",
        cfg.sizes.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", ")
    ));
    json.push_str("  \"scenario\": \"BASELINE\",\n");
    json.push_str("  \"mode\": \"NO-WRATE\",\n");
    json.push_str(&format!(
        "  \"peak_rss_bytes\": {},\n",
        opt_u64(out.peak_rss_bytes)
    ));
    match &out.frontier {
        None => json.push_str("  \"frontier_cell\": null,\n"),
        Some(f) => {
            json.push_str("  \"frontier_cell\": {\n");
            json.push_str(
                "    \"comment\": \"Internet-scale single cell, jobs=1: does a 70k-AS topology build and finish, and at what footprint\",\n",
            );
            json.push_str(&format!("    \"n\": {},\n", f.n));
            json.push_str(&format!("    \"events\": {},\n", f.events));
            json.push_str(&format!("    \"wall_s\": {:.6},\n", f.wall_s));
            json.push_str(&format!("    \"events_per_s\": {:.3},\n", f.events_per_s));
            json.push_str(&format!("    \"sim_events_per_s\": {:.1},\n", f.sim_events_per_s));
            json.push_str(&format!("    \"queue_pops\": {},\n", f.ops.queue_pops));
            json.push_str(&format!("    \"deliveries\": {},\n", f.ops.deliveries));
            json.push_str(&format!("    \"total_ops\": {},\n", f.ops.grand_total()));
            json.push_str(&format!(
                "    \"peak_rss_bytes\": {}\n",
                opt_u64(f.peak_rss_bytes)
            ));
            json.push_str("  },\n");
        }
    }
    json.push_str("  \"observer_overhead\": {\n");
    json.push_str(&format!(
        "    \"comment\": \"first-size cell, jobs=1, median of {BENCH_SAMPLES} after 1 warmup; off = NoopObserver (static dispatch); negative raw overhead is scheduling noise, reported clamped at 0 with noise_floor set\",\n"
    ));
    let o = &out.overhead;
    push_samples(&mut json, "off", &o.off, "    ");
    push_samples(&mut json, "metrics", &o.metrics, "    ");
    push_samples(&mut json, "trace", &o.trace, "    ");
    json.push_str(&format!(
        "    \"metrics_overhead_pct\": {:.2},\n",
        o.metrics_overhead.pct
    ));
    json.push_str(&format!(
        "    \"metrics_overhead_raw_pct\": {:.2},\n",
        o.metrics_overhead.raw_pct
    ));
    json.push_str(&format!(
        "    \"trace_overhead_pct\": {:.2},\n",
        o.trace_overhead.pct
    ));
    json.push_str(&format!(
        "    \"trace_overhead_raw_pct\": {:.2},\n",
        o.trace_overhead.raw_pct
    ));
    json.push_str(&format!(
        "    \"noise_floor\": {}\n",
        o.metrics_overhead.noise_floor || o.trace_overhead.noise_floor
    ));
    json.push_str("  },\n");
    if out.exponents.is_empty() {
        json.push_str("  \"cost_exponents\": null,\n");
    } else {
        json.push_str("  \"cost_exponents\": {\n");
        json.push_str(
            "    \"comment\": \"log-log least-squares fit of ops-per-event vs n over the sweep sizes\",\n",
        );
        for (i, e) in out.exponents.iter().enumerate() {
            json.push_str(&format!(
                "    \"{}\": {{ \"exponent\": {:.4}, \"r_squared\": {:.4} }}{}\n",
                e.class,
                e.exponent,
                e.r_squared,
                if i + 1 < out.exponents.len() { "," } else { "" }
            ));
        }
        json.push_str("  },\n");
    }
    json.push_str("  \"runs\": [\n");
    for (i, run) in out.runs.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"requested_jobs\": {},\n", run.requested_jobs));
        json.push_str(&format!("      \"effective_jobs\": {},\n", run.effective_jobs));
        json.push_str(&format!("      \"total_wall_s\": {:.6},\n", run.total_wall_s));
        json.push_str(&format!(
            "      \"speedup_vs_first_run\": {:.4},\n",
            base_total / run.total_wall_s
        ));
        json.push_str("      \"cells\": [\n");
        for (j, c) in run.cells.iter().enumerate() {
            json.push_str(&format!(
                "        {{ \"n\": {}, \"wall_s\": {:.6}, \"events_per_s\": {:.3}, \
                 \"sim_events_per_s\": {:.1}, \
                 \"queue_pushes\": {}, \"queue_pops\": {}, \"queue_comparisons\": {}, \
                 \"deliveries\": {}, \"decision_runs\": {}, \"total_ops\": {}, \
                 \"alloc_allocs\": {}, \"alloc_bytes\": {} }}{}\n",
                c.n,
                c.wall_s,
                c.events_per_s,
                c.ops.queue_pops as f64 / c.wall_s,
                c.ops.queue_pushes,
                c.ops.queue_pops,
                c.ops.queue_comparisons,
                c.ops.deliveries,
                c.ops.decision_runs,
                c.ops.grand_total(),
                opt_u64(c.alloc_allocs),
                opt_u64(c.alloc_bytes),
                if j + 1 < run.cells.len() { "," } else { "" }
            ));
        }
        json.push_str("      ]\n");
        json.push_str(&format!(
            "    }}{}\n",
            if i + 1 < out.runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> RunConfig {
        RunConfig {
            sizes: vec![150, 250],
            events: 2,
            seed: 42,
        }
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        let mut calls = 0u32;
        let t = median_of_samples(|| {
            calls += 1;
            if calls == 2 {
                // One slow sample (the first *timed* one) must not move
                // the median the way it would move a mean.
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
        });
        assert_eq!(calls as usize, 1 + BENCH_SAMPLES, "warmup + samples");
        assert_eq!(t.samples_s.len(), BENCH_SAMPLES);
        assert!(t.median_s < 0.02, "median {} absorbed the outlier", t.median_s);
    }

    #[test]
    fn overhead_clamps_negative_to_noise_floor() {
        let o = Overhead::from_ratio(0.95, 1.0);
        assert!(o.raw_pct < 0.0);
        assert_eq!(o.pct, 0.0);
        assert!(o.noise_floor);
        let p = Overhead::from_ratio(1.10, 1.0);
        assert!((p.pct - 10.0).abs() < 1e-9);
        assert!(!p.noise_floor);
    }

    #[test]
    fn bench_json_carries_schema_cost_columns_and_exponents() {
        let cfg = tiny_cfg();
        let out = run_bench(&cfg, &[1]);
        let json = render_json(&cfg, &out, "testrev");
        assert!(json.starts_with("{\n  \"schema_version\": "));
        assert!(json.contains("\"peak_rss_bytes\": "));
        assert!(json.contains("\"frontier_cell\": null"), "no frontier unless requested");
        assert!(json.contains("\"sim_events_per_s\": "));
        assert!(json.contains("\"queue_pushes\": "));
        assert!(json.contains("\"alloc_allocs\": "));
        assert!(json.contains("\"metrics_overhead_raw_pct\": "));
        assert!(json.contains("\"noise_floor\": "));
        // Two distinct sizes → the exponent table exists and is sane.
        assert!(!out.exponents.is_empty(), "two sizes must yield exponents");
        for e in &out.exponents {
            assert!(e.exponent.is_finite(), "{}: {}", e.class, e.exponent);
        }
        assert!(json.contains("\"cost_exponents\": {"));
        // The clamped headline value is never negative.
        assert!(out.overhead.metrics_overhead.pct >= 0.0);
        assert!(out.overhead.trace_overhead.pct >= 0.0);
    }

    #[test]
    fn frontier_cell_runs_and_renders() {
        let cfg = tiny_cfg();
        let mut out = run_bench(&cfg, &[1]);
        // A miniature frontier: same machinery, test-scale n.
        out.frontier = Some(run_frontier(200, 2, cfg.seed));
        let f = out.frontier.as_ref().unwrap();
        assert_eq!(f.n, 200);
        assert!(f.wall_s > 0.0);
        assert!(f.ops.queue_pops > 0, "frontier cell must simulate something");
        assert!(f.sim_events_per_s > 0.0);
        let json = render_json(&cfg, &out, "testrev");
        assert!(json.contains("\"frontier_cell\": {"));
        assert!(json.contains("\"n\": 200,"));
        assert!(!json.contains("\"frontier_cell\": null"));
    }

    #[test]
    fn exponents_need_two_distinct_sizes() {
        let cfg = RunConfig {
            sizes: vec![150],
            events: 2,
            seed: 42,
        };
        let mut sw = Sweeper::new(cfg.clone());
        sw.report(GrowthScenario::Baseline, 150, MraiMode::NoWrate);
        let cost = sw
            .cost_model(GrowthScenario::Baseline, 150, MraiMode::NoWrate)
            .unwrap();
        assert!(fit_cost_exponents(&[(150, cost)], cfg.events).is_empty());
    }
}
