//! `repro report` — a self-contained churn provenance report.
//!
//! Runs one `(scenario, n)` cell under **both** MRAI modes with the
//! simulated-time series recorder attached, and renders the comparison as
//! a single dependency-free HTML page: per-relation churn sparklines,
//! updates by receiving node type, the causal-depth histogram, the
//! per-root convergence-duration CDF, and MRAI timer / inbox occupancy —
//! all inline SVG, no scripts, no external assets. A `timeseries.json`
//! artifact carries the raw integer series (byte-identical for any
//! `--jobs` value, like every other deterministic artifact).
//!
//! The `check` gate mirrors `profile --check`: it fails when any panel of
//! the report would render empty — catching "provenance silently stopped
//! flowing" regressions in CI.

use std::fmt::Write as _;
use std::sync::Arc;

use bgpscale_bgp::MraiMode;
use bgpscale_core::ChurnReport;
use bgpscale_obs::costmodel::PHASE_NAMES;
use bgpscale_obs::render::{html_escape, html_page, svg_bars, svg_cdf, svg_sparkline};
use bgpscale_obs::timeseries::DEPTH_BOUNDS;
use bgpscale_obs::{CostModel, SCHEMA_VERSION};
use bgpscale_topology::GrowthScenario;

use crate::bench::{fit_cost_exponents, CostExponent};
use crate::sweep::{CellSeries, RunConfig, Sweeper};

/// One reported cell pair (the same `(scenario, n)` under both modes).
#[derive(Clone, Debug)]
pub struct ReportConfig {
    /// Growth scenario of the cell.
    pub scenario: GrowthScenario,
    /// Network size.
    pub n: usize,
    /// C-events per mode.
    pub events: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker budget (0 = all hardware threads).
    pub jobs: usize,
    /// Time-series bin width in simulated microseconds.
    pub bin_us: u64,
}

/// The result of [`run_report`].
#[derive(Clone, Debug)]
pub struct ReportOutput {
    /// The two cells' time series, NO-WRATE first.
    pub cells: Vec<CellSeries>,
    /// The two cells' churn reports, same order.
    pub reports: Vec<Arc<ChurnReport>>,
    /// The two cells' exact cost models, same order.
    pub costs: Vec<Arc<CostModel>>,
    /// Cost models of the NO-WRATE mini size sweep feeding the exponent
    /// fit, ascending n (last entry is the reported cell itself).
    pub cost_sweep: Vec<(usize, Arc<CostModel>)>,
    /// Fitted per-op-class scaling exponents; empty when the mini sweep
    /// collapsed to a single size (tiny n) — rendered as "n/a", not an
    /// error.
    pub cost_exponents: Vec<CostExponent>,
    /// The self-contained HTML page.
    pub html: String,
    /// The raw integer time series as deterministic JSON.
    pub timeseries_json: String,
}

/// The two modes every report compares, in render order.
const MODES: [MraiMode; 2] = [MraiMode::NoWrate, MraiMode::Wrate];

fn mode_key(mode: MraiMode) -> &'static str {
    match mode {
        MraiMode::NoWrate => "no_wrate",
        MraiMode::Wrate => "wrate",
    }
}

/// Runs the WRATE vs NO-WRATE pair through a [`Sweeper`] (time series
/// enabled) and renders both artifacts.
pub fn run_report(cfg: &ReportConfig) -> ReportOutput {
    let mut sw = Sweeper::new(RunConfig {
        sizes: vec![cfg.n],
        events: cfg.events,
        seed: cfg.seed,
    });
    sw.set_jobs(cfg.jobs);
    sw.enable_timeseries(cfg.bin_us);
    let reports: Vec<Arc<ChurnReport>> = MODES
        .into_iter()
        .map(|mode| sw.report(cfg.scenario, cfg.n, mode))
        .collect();
    let cells = sw.take_series();
    let costs: Vec<Arc<CostModel>> = MODES
        .iter()
        .map(|&mode| {
            sw.cost_model(cfg.scenario, cfg.n, mode)
                .expect("report cells were just computed")
        })
        .collect();

    // A NO-WRATE mini size sweep below the reported n feeds the scaling-
    // exponent fit; the reported cell itself is its largest point. Run
    // after take_series() so the extra cells' series don't join the page.
    let mut sweep_sizes: Vec<usize> = [cfg.n / 3, 2 * cfg.n / 3, cfg.n]
        .into_iter()
        .map(|s| s.max(120))
        .collect();
    sweep_sizes.sort_unstable();
    sweep_sizes.dedup();
    let cost_sweep: Vec<(usize, Arc<CostModel>)> = sweep_sizes
        .into_iter()
        .map(|s| {
            sw.report(cfg.scenario, s, MraiMode::NoWrate);
            (
                s,
                sw.cost_model(cfg.scenario, s, MraiMode::NoWrate)
                    .expect("sweep cell was just computed"),
            )
        })
        .collect();
    let _ = sw.take_series(); // drop the mini sweep's series
    let cost_exponents = fit_cost_exponents(&cost_sweep, cfg.events);

    let timeseries_json = timeseries_json(cfg, &cells);
    let html = render_html(cfg, &reports, &cells, &costs, &cost_sweep, &cost_exponents);
    ReportOutput {
        cells,
        reports,
        costs,
        cost_sweep,
        cost_exponents,
        html,
        timeseries_json,
    }
}

/// The `timeseries.json` artifact: cell coordinates plus the raw series,
/// integer-only and in fixed key order.
fn timeseries_json(cfg: &ReportConfig, cells: &[CellSeries]) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"schema_version\":{SCHEMA_VERSION},\"scenario\":\"{}\",\"n\":{},\"events\":{},\"seed\":{},\"bin_us\":{},\"cells\":[",
        cfg.scenario, cfg.n, cfg.events, cfg.seed, cfg.bin_us
    );
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"mode\":\"{}\",\"series\":{}}}",
            mode_key(cell.mode),
            cell.series.to_json()
        );
    }
    s.push_str("]}");
    s
}

/// The CI gate: every panel of the report has data. Returns the first
/// violated expectation, labeled with the cell it came from.
///
/// # Errors
/// A human-readable description of the first empty panel.
pub fn check(out: &ReportOutput) -> Result<(), String> {
    if out.cells.len() != MODES.len() {
        return Err(format!(
            "expected {} cells (NO-WRATE and WRATE), got {}",
            MODES.len(),
            out.cells.len()
        ));
    }
    for cell in &out.cells {
        let label = cell.mode.label();
        let ts = &cell.series;
        if ts.total_updates() == 0 {
            return Err(format!("{label}: churn panel is empty (no updates binned)"));
        }
        if ts.bins.iter().all(|b| b.by_rel.iter().sum::<u64>() == 0) {
            return Err(format!("{label}: per-relation panel is empty"));
        }
        if ts.depth_hist.iter().sum::<u64>() == 0 {
            return Err(format!("{label}: causal-depth histogram is empty"));
        }
        if ts.convergence_durations_us().is_empty() {
            return Err(format!("{label}: convergence-duration CDF is empty"));
        }
        if ts.bins.iter().all(|b| b.mrai_armed_peak == 0) {
            return Err(format!("{label}: MRAI occupancy panel is empty"));
        }
        if ts.bins.iter().all(|b| b.inbox_peak == 0) {
            return Err(format!("{label}: inbox-depth panel is empty"));
        }
        if ts.unstamped > 0 {
            return Err(format!(
                "{label}: {} updates arrived without a provenance stamp",
                ts.unstamped
            ));
        }
    }
    if out.costs.len() != MODES.len() {
        return Err(format!(
            "expected {} cost models, got {}",
            MODES.len(),
            out.costs.len()
        ));
    }
    for (cost, cell) in out.costs.iter().zip(&out.cells) {
        if cost.is_empty() || cost.total().grand_total() == 0 {
            return Err(format!(
                "{}: cost-attribution panel is empty",
                cell.mode.label()
            ));
        }
    }
    if out.cost_sweep.is_empty() {
        return Err("cost mini sweep is empty".to_string());
    }
    // An empty exponent table is legitimate (single-size mini sweep at
    // tiny n) — it renders as "n/a" and must not fail the gate.
    Ok(())
}

const SPARK_W: u32 = 360;
const SPARK_H: u32 = 48;
const BAR_W: u32 = 360;
const BAR_H: u32 = 120;
const CDF_W: u32 = 360;
const CDF_H: u32 = 120;

fn spark_row(body: &mut String, label: &str, values: &[u64], color: &str) {
    let total: u64 = values.iter().sum();
    let _ = write!(
        body,
        "<div class=\"row\"><span class=\"lbl\">{}</span>{}<span class=\"sum\">{total}</span></div>",
        html_escape(label),
        svg_sparkline(values, SPARK_W, SPARK_H, color)
    );
}

/// Renders the cost-attribution section: stacked per-phase op counts for
/// both modes, the fitted scaling-exponent table, and ops-per-event-vs-n
/// sparklines over the mini sweep.
fn render_cost_section(
    body: &mut String,
    costs: &[Arc<CostModel>],
    cells: &[CellSeries],
    cost_sweep: &[(usize, Arc<CostModel>)],
    exponents: &[CostExponent],
    events: usize,
) {
    body.push_str("<h2>Cost attribution (exact op counts)</h2>");
    body.push_str(
        "<p>Integer operation counts from the deterministic cost model — \
         byte-identical for any worker count. Wall-clock and allocator \
         numbers live in BENCH_harness.json, never here.</p>",
    );
    for (cost, cell) in costs.iter().zip(cells) {
        let _ = write!(
            body,
            "<div class=\"panel\"><h3>{} — ops per phase</h3>",
            html_escape(cell.mode.label())
        );
        let totals = cost.phase_totals();
        let grand: Vec<u64> = totals.iter().map(|p| p.grand_total()).collect();
        body.push_str(&svg_bars(&PHASE_NAMES, &grand, BAR_W, BAR_H, "#0969da"));
        body.push_str(
            "<table><tr><th>op class</th><th>warmup</th><th>down</th><th>up</th><th>total</th></tr>",
        );
        let total = cost.total();
        for (i, (name, value)) in total.fields().iter().enumerate() {
            let _ = write!(
                body,
                "<tr><td>{name}</td><td>{}</td><td>{}</td><td>{}</td><td>{value}</td></tr>",
                totals[0].fields()[i].1,
                totals[1].fields()[i].1,
                totals[2].fields()[i].1,
            );
        }
        body.push_str("</table></div>");
    }

    body.push_str("<div class=\"panel\"><h3>Scaling exponents (ops per event ∝ n^b)</h3>");
    if exponents.is_empty() {
        body.push_str(
            "<p>n/a — the mini sweep collapsed to a single size; run the \
             report at a larger n for a fit.</p>",
        );
    } else {
        body.push_str("<table><tr><th>op class</th><th>exponent</th><th>r²</th></tr>");
        for e in exponents {
            let _ = write!(
                body,
                "<tr><td>{}</td><td>{:.3}</td><td>{:.3}</td></tr>",
                e.class, e.exponent, e.r_squared
            );
        }
        body.push_str("</table>");
    }
    body.push_str("</div>");

    body.push_str("<div class=\"panel\"><h3>Ops per event vs n (NO-WRATE mini sweep)</h3>");
    let sizes: Vec<String> = cost_sweep.iter().map(|(n, _)| n.to_string()).collect();
    let _ = write!(body, "<p>n ∈ [{}]</p>", sizes.join(", "));
    let spark_classes = ["queue_comparisons", "deliveries", "decision_runs", "rib_out_writes"];
    let spark_colors = ["#cf222e", "#1a7f37", "#0969da", "#9a6700"];
    let names = bgpscale_obs::OpCounts::field_names();
    for (class, color) in spark_classes.iter().zip(spark_colors) {
        let idx = names.iter().position(|n| n == class).expect("known class");
        let values: Vec<u64> = cost_sweep
            .iter()
            .map(|(_, cost)| cost.total().fields()[idx].1 / (events.max(1) as u64))
            .collect();
        spark_row(body, class, &values, color);
    }
    body.push_str("</div>");
}

/// Renders the standalone HTML page.
fn render_html(
    cfg: &ReportConfig,
    reports: &[Arc<ChurnReport>],
    cells: &[CellSeries],
    costs: &[Arc<CostModel>],
    cost_sweep: &[(usize, Arc<CostModel>)],
    exponents: &[CostExponent],
) -> String {
    let title = format!(
        "Churn provenance — {} n={} ({} events, seed {:#x})",
        cfg.scenario, cfg.n, cfg.events, cfg.seed
    );
    let depth_labels: Vec<String> = DEPTH_BOUNDS
        .iter()
        .map(|b| format!("≤{b}"))
        .chain(std::iter::once("inf".to_string()))
        .collect();
    let depth_label_refs: Vec<&str> = depth_labels.iter().map(String::as_str).collect();

    let mut body = String::new();
    let _ = write!(body, "<h1>{}</h1>", html_escape(&title));
    let _ = write!(
        body,
        "<p>Bin width: {} ms of simulated time. Every update carries a provenance \
         stamp (root-cause event, causal depth, sending relation); coalesced MRAI \
         flushes carry the union of their contributing roots, so the two modes \
         stay attributable side by side.</p>",
        cfg.bin_us / 1_000
    );

    for (cell, report) in cells.iter().zip(reports) {
        let ts = &cell.series;
        let _ = write!(body, "<h2>{}</h2>", html_escape(cell.mode.label()));

        // Headline numbers.
        let _ = write!(
            body,
            "<table><tr><th>events</th><th>updates</th><th>announce</th>\
             <th>withdraw</th><th>coalesced</th><th>depth max</th>\
             <th>mean U per event</th></tr>\
             <tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{:.1}</td></tr></table>",
            ts.events,
            ts.total_updates(),
            ts.bins.iter().map(|b| b.announces).sum::<u64>(),
            ts.bins.iter().map(|b| b.withdraws).sum::<u64>(),
            ts.coalesced,
            ts.depth_max,
            report.mean_total_updates,
        );

        body.push_str("<div class=\"panel\"><h3>Updates per bin by sending relation</h3>");
        let rel_names = ["to customers", "to peers", "to providers"];
        let rel_colors = ["#1a7f37", "#0969da", "#cf222e"];
        for (i, (name, color)) in rel_names.iter().zip(rel_colors).enumerate() {
            let values: Vec<u64> = ts.bins.iter().map(|b| b.by_rel[i]).collect();
            spark_row(&mut body, name, &values, color);
        }
        body.push_str("</div>");

        body.push_str("<div class=\"panel\"><h3>Updates per bin by receiving node type</h3>");
        let type_names = ["T (tier-1)", "M (mid)", "CP (content)", "C (stub)"];
        let type_colors = ["#8250df", "#0969da", "#9a6700", "#57606a"];
        for (i, (name, color)) in type_names.iter().zip(type_colors).enumerate() {
            let values: Vec<u64> = ts.bins.iter().map(|b| b.by_type[i]).collect();
            spark_row(&mut body, name, &values, color);
        }
        body.push_str("</div>");

        body.push_str("<div class=\"panel\"><h3>Causal depth (hops since the root cause)</h3>");
        body.push_str(&svg_bars(
            &depth_label_refs,
            &ts.depth_hist,
            BAR_W,
            BAR_H,
            "#57606a",
        ));
        body.push_str("</div>");

        body.push_str(
            "<div class=\"panel\"><h3>Per-root convergence duration (CDF, \
             root-cause fire to last attributed update)</h3>",
        );
        body.push_str(&svg_cdf(
            &ts.convergence_durations_us(),
            CDF_W,
            CDF_H,
            "#0969da",
        ));
        let durations = ts.convergence_durations_us();
        if !durations.is_empty() {
            let median = durations[durations.len() / 2];
            let _ = write!(
                body,
                "<p>{} roots with attributed updates; median {} ms, max {} ms.</p>",
                durations.len(),
                median / 1_000,
                durations.last().unwrap() / 1_000
            );
        }
        body.push_str("</div>");

        body.push_str("<div class=\"panel\"><h3>Queue occupancy peaks per bin</h3>");
        let armed: Vec<u64> = ts.bins.iter().map(|b| b.mrai_armed_peak).collect();
        spark_row(&mut body, "armed MRAI timers", &armed, "#9a6700");
        let inbox: Vec<u64> = ts.bins.iter().map(|b| b.inbox_peak).collect();
        spark_row(&mut body, "deepest inbox", &inbox, "#8250df");
        body.push_str("</div>");
    }

    render_cost_section(&mut body, costs, cells, cost_sweep, exponents, cfg.events);

    html_page(&title, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ReportConfig {
        ReportConfig {
            scenario: GrowthScenario::Baseline,
            n: 150,
            events: 2,
            seed: 0xBEEF,
            jobs: 1,
            bin_us: 100_000,
        }
    }

    #[test]
    fn report_runs_and_passes_check() {
        let out = run_report(&tiny_cfg());
        check(&out).expect("tiny report must pass its own gate");
        assert_eq!(out.cells.len(), 2);
        assert!(matches!(out.cells[0].mode, MraiMode::NoWrate));
        assert!(matches!(out.cells[1].mode, MraiMode::Wrate));
        assert!(out.html.starts_with("<!DOCTYPE html>"));
        for needle in [
            "NO-WRATE",
            "WRATE",
            "class=\"spark\"",
            "class=\"cdf\"",
            "Causal depth",
            "to customers",
            "Cost attribution",
            "ops per phase",
            "queue_comparisons",
        ] {
            assert!(out.html.contains(needle), "HTML missing {needle:?}");
        }
        assert!(out.timeseries_json.starts_with("{\"schema_version\":"));
        assert!(out.timeseries_json.contains("\"mode\":\"no_wrate\""));
        assert!(out.timeseries_json.contains("\"mode\":\"wrate\""));
        assert!(out.timeseries_json.contains("\"bins\":["));
        // The tiny cell still carries a cost model per mode, and the mini
        // sweep has at least two sizes (120 and 150) so exponents exist.
        assert_eq!(out.costs.len(), 2);
        assert!(out.costs.iter().all(|c| c.total().grand_total() > 0));
        assert!(!out.cost_sweep.is_empty());
        assert!(!out.cost_exponents.is_empty());
        assert!(out.html.contains("Scaling exponents"));
    }

    #[test]
    fn report_is_deterministic() {
        let a = run_report(&tiny_cfg());
        let b = run_report(&tiny_cfg());
        assert_eq!(a.html, b.html);
        assert_eq!(a.timeseries_json, b.timeseries_json);
    }

    #[test]
    fn check_flags_empty_panels() {
        let mut out = run_report(&tiny_cfg());
        out.cells[1].series.bins.clear();
        let err = check(&out).unwrap_err();
        assert!(err.contains("WRATE"), "names the failing cell: {err}");
        assert!(err.contains("empty"), "describes the empty panel: {err}");
    }
}
