//! `repro report` — a self-contained churn provenance report.
//!
//! Runs one `(scenario, n)` cell under **both** MRAI modes with the
//! simulated-time series recorder attached, and renders the comparison as
//! a single dependency-free HTML page: per-relation churn sparklines,
//! updates by receiving node type, the causal-depth histogram, the
//! per-root convergence-duration CDF, and MRAI timer / inbox occupancy —
//! all inline SVG, no scripts, no external assets. A `timeseries.json`
//! artifact carries the raw integer series (byte-identical for any
//! `--jobs` value, like every other deterministic artifact).
//!
//! The `check` gate mirrors `profile --check`: it fails when any panel of
//! the report would render empty — catching "provenance silently stopped
//! flowing" regressions in CI.

use std::fmt::Write as _;
use std::sync::Arc;

use bgpscale_bgp::MraiMode;
use bgpscale_core::ChurnReport;
use bgpscale_obs::render::{html_escape, html_page, svg_bars, svg_cdf, svg_sparkline};
use bgpscale_obs::timeseries::DEPTH_BOUNDS;
use bgpscale_topology::GrowthScenario;

use crate::sweep::{CellSeries, RunConfig, Sweeper};

/// One reported cell pair (the same `(scenario, n)` under both modes).
#[derive(Clone, Debug)]
pub struct ReportConfig {
    /// Growth scenario of the cell.
    pub scenario: GrowthScenario,
    /// Network size.
    pub n: usize,
    /// C-events per mode.
    pub events: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker budget (0 = all hardware threads).
    pub jobs: usize,
    /// Time-series bin width in simulated microseconds.
    pub bin_us: u64,
}

/// The result of [`run_report`].
#[derive(Clone, Debug)]
pub struct ReportOutput {
    /// The two cells' time series, NO-WRATE first.
    pub cells: Vec<CellSeries>,
    /// The two cells' churn reports, same order.
    pub reports: Vec<Arc<ChurnReport>>,
    /// The self-contained HTML page.
    pub html: String,
    /// The raw integer time series as deterministic JSON.
    pub timeseries_json: String,
}

/// The two modes every report compares, in render order.
const MODES: [MraiMode; 2] = [MraiMode::NoWrate, MraiMode::Wrate];

fn mode_key(mode: MraiMode) -> &'static str {
    match mode {
        MraiMode::NoWrate => "no_wrate",
        MraiMode::Wrate => "wrate",
    }
}

/// Runs the WRATE vs NO-WRATE pair through a [`Sweeper`] (time series
/// enabled) and renders both artifacts.
pub fn run_report(cfg: &ReportConfig) -> ReportOutput {
    let mut sw = Sweeper::new(RunConfig {
        sizes: vec![cfg.n],
        events: cfg.events,
        seed: cfg.seed,
    });
    sw.set_jobs(cfg.jobs);
    sw.enable_timeseries(cfg.bin_us);
    let reports: Vec<Arc<ChurnReport>> = MODES
        .into_iter()
        .map(|mode| sw.report(cfg.scenario, cfg.n, mode))
        .collect();
    let cells = sw.take_series();
    let timeseries_json = timeseries_json(cfg, &cells);
    let html = render_html(cfg, &reports, &cells);
    ReportOutput {
        cells,
        reports,
        html,
        timeseries_json,
    }
}

/// The `timeseries.json` artifact: cell coordinates plus the raw series,
/// integer-only and in fixed key order.
fn timeseries_json(cfg: &ReportConfig, cells: &[CellSeries]) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"scenario\":\"{}\",\"n\":{},\"events\":{},\"seed\":{},\"bin_us\":{},\"cells\":[",
        cfg.scenario, cfg.n, cfg.events, cfg.seed, cfg.bin_us
    );
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"mode\":\"{}\",\"series\":{}}}",
            mode_key(cell.mode),
            cell.series.to_json()
        );
    }
    s.push_str("]}");
    s
}

/// The CI gate: every panel of the report has data. Returns the first
/// violated expectation, labeled with the cell it came from.
///
/// # Errors
/// A human-readable description of the first empty panel.
pub fn check(out: &ReportOutput) -> Result<(), String> {
    if out.cells.len() != MODES.len() {
        return Err(format!(
            "expected {} cells (NO-WRATE and WRATE), got {}",
            MODES.len(),
            out.cells.len()
        ));
    }
    for cell in &out.cells {
        let label = cell.mode.label();
        let ts = &cell.series;
        if ts.total_updates() == 0 {
            return Err(format!("{label}: churn panel is empty (no updates binned)"));
        }
        if ts.bins.iter().all(|b| b.by_rel.iter().sum::<u64>() == 0) {
            return Err(format!("{label}: per-relation panel is empty"));
        }
        if ts.depth_hist.iter().sum::<u64>() == 0 {
            return Err(format!("{label}: causal-depth histogram is empty"));
        }
        if ts.convergence_durations_us().is_empty() {
            return Err(format!("{label}: convergence-duration CDF is empty"));
        }
        if ts.bins.iter().all(|b| b.mrai_armed_peak == 0) {
            return Err(format!("{label}: MRAI occupancy panel is empty"));
        }
        if ts.bins.iter().all(|b| b.inbox_peak == 0) {
            return Err(format!("{label}: inbox-depth panel is empty"));
        }
        if ts.unstamped > 0 {
            return Err(format!(
                "{label}: {} updates arrived without a provenance stamp",
                ts.unstamped
            ));
        }
    }
    Ok(())
}

const SPARK_W: u32 = 360;
const SPARK_H: u32 = 48;
const BAR_W: u32 = 360;
const BAR_H: u32 = 120;
const CDF_W: u32 = 360;
const CDF_H: u32 = 120;

fn spark_row(body: &mut String, label: &str, values: &[u64], color: &str) {
    let total: u64 = values.iter().sum();
    let _ = write!(
        body,
        "<div class=\"row\"><span class=\"lbl\">{}</span>{}<span class=\"sum\">{total}</span></div>",
        html_escape(label),
        svg_sparkline(values, SPARK_W, SPARK_H, color)
    );
}

/// Renders the standalone HTML page.
fn render_html(cfg: &ReportConfig, reports: &[Arc<ChurnReport>], cells: &[CellSeries]) -> String {
    let title = format!(
        "Churn provenance — {} n={} ({} events, seed {:#x})",
        cfg.scenario, cfg.n, cfg.events, cfg.seed
    );
    let depth_labels: Vec<String> = DEPTH_BOUNDS
        .iter()
        .map(|b| format!("≤{b}"))
        .chain(std::iter::once("inf".to_string()))
        .collect();
    let depth_label_refs: Vec<&str> = depth_labels.iter().map(String::as_str).collect();

    let mut body = String::new();
    let _ = write!(body, "<h1>{}</h1>", html_escape(&title));
    let _ = write!(
        body,
        "<p>Bin width: {} ms of simulated time. Every update carries a provenance \
         stamp (root-cause event, causal depth, sending relation); coalesced MRAI \
         flushes carry the union of their contributing roots, so the two modes \
         stay attributable side by side.</p>",
        cfg.bin_us / 1_000
    );

    for (cell, report) in cells.iter().zip(reports) {
        let ts = &cell.series;
        let _ = write!(body, "<h2>{}</h2>", html_escape(cell.mode.label()));

        // Headline numbers.
        let _ = write!(
            body,
            "<table><tr><th>events</th><th>updates</th><th>announce</th>\
             <th>withdraw</th><th>coalesced</th><th>depth max</th>\
             <th>mean U per event</th></tr>\
             <tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{:.1}</td></tr></table>",
            ts.events,
            ts.total_updates(),
            ts.bins.iter().map(|b| b.announces).sum::<u64>(),
            ts.bins.iter().map(|b| b.withdraws).sum::<u64>(),
            ts.coalesced,
            ts.depth_max,
            report.mean_total_updates,
        );

        body.push_str("<div class=\"panel\"><h3>Updates per bin by sending relation</h3>");
        let rel_names = ["to customers", "to peers", "to providers"];
        let rel_colors = ["#1a7f37", "#0969da", "#cf222e"];
        for (i, (name, color)) in rel_names.iter().zip(rel_colors).enumerate() {
            let values: Vec<u64> = ts.bins.iter().map(|b| b.by_rel[i]).collect();
            spark_row(&mut body, name, &values, color);
        }
        body.push_str("</div>");

        body.push_str("<div class=\"panel\"><h3>Updates per bin by receiving node type</h3>");
        let type_names = ["T (tier-1)", "M (mid)", "CP (content)", "C (stub)"];
        let type_colors = ["#8250df", "#0969da", "#9a6700", "#57606a"];
        for (i, (name, color)) in type_names.iter().zip(type_colors).enumerate() {
            let values: Vec<u64> = ts.bins.iter().map(|b| b.by_type[i]).collect();
            spark_row(&mut body, name, &values, color);
        }
        body.push_str("</div>");

        body.push_str("<div class=\"panel\"><h3>Causal depth (hops since the root cause)</h3>");
        body.push_str(&svg_bars(
            &depth_label_refs,
            &ts.depth_hist,
            BAR_W,
            BAR_H,
            "#57606a",
        ));
        body.push_str("</div>");

        body.push_str(
            "<div class=\"panel\"><h3>Per-root convergence duration (CDF, \
             root-cause fire to last attributed update)</h3>",
        );
        body.push_str(&svg_cdf(
            &ts.convergence_durations_us(),
            CDF_W,
            CDF_H,
            "#0969da",
        ));
        let durations = ts.convergence_durations_us();
        if !durations.is_empty() {
            let median = durations[durations.len() / 2];
            let _ = write!(
                body,
                "<p>{} roots with attributed updates; median {} ms, max {} ms.</p>",
                durations.len(),
                median / 1_000,
                durations.last().unwrap() / 1_000
            );
        }
        body.push_str("</div>");

        body.push_str("<div class=\"panel\"><h3>Queue occupancy peaks per bin</h3>");
        let armed: Vec<u64> = ts.bins.iter().map(|b| b.mrai_armed_peak).collect();
        spark_row(&mut body, "armed MRAI timers", &armed, "#9a6700");
        let inbox: Vec<u64> = ts.bins.iter().map(|b| b.inbox_peak).collect();
        spark_row(&mut body, "deepest inbox", &inbox, "#8250df");
        body.push_str("</div>");
    }

    html_page(&title, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ReportConfig {
        ReportConfig {
            scenario: GrowthScenario::Baseline,
            n: 150,
            events: 2,
            seed: 0xBEEF,
            jobs: 1,
            bin_us: 100_000,
        }
    }

    #[test]
    fn report_runs_and_passes_check() {
        let out = run_report(&tiny_cfg());
        check(&out).expect("tiny report must pass its own gate");
        assert_eq!(out.cells.len(), 2);
        assert!(matches!(out.cells[0].mode, MraiMode::NoWrate));
        assert!(matches!(out.cells[1].mode, MraiMode::Wrate));
        assert!(out.html.starts_with("<!DOCTYPE html>"));
        for needle in [
            "NO-WRATE",
            "WRATE",
            "class=\"spark\"",
            "class=\"cdf\"",
            "Causal depth",
            "to customers",
        ] {
            assert!(out.html.contains(needle), "HTML missing {needle:?}");
        }
        assert!(out.timeseries_json.contains("\"mode\":\"no_wrate\""));
        assert!(out.timeseries_json.contains("\"mode\":\"wrate\""));
        assert!(out.timeseries_json.contains("\"bins\":["));
    }

    #[test]
    fn report_is_deterministic() {
        let a = run_report(&tiny_cfg());
        let b = run_report(&tiny_cfg());
        assert_eq!(a.html, b.html);
        assert_eq!(a.timeseries_json, b.timeseries_json);
    }

    #[test]
    fn check_flags_empty_panels() {
        let mut out = run_report(&tiny_cfg());
        out.cells[1].series.bins.clear();
        let err = check(&out).unwrap_err();
        assert!(err.contains("WRATE"), "names the failing cell: {err}");
        assert!(err.contains("empty"), "describes the empty panel: {err}");
    }
}
