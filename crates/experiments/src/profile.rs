//! `repro profile` — one observed experiment cell with a phase profile.
//!
//! Runs a single `(scenario, n)` cell with a full metrics recorder
//! attached, times each harness phase with wall-clock spans, and renders
//! a human-readable breakdown: where the time goes, what the simulators
//! did, and how the distributions look. The deterministic half of the
//! output (the metrics registry and any trace records) can be written to
//! files; the span timings are wall-clock and stay on the terminal.
//!
//! The `check` gate is what CI runs: it fails when an expected phase span
//! recorded nothing or when the simulators processed zero events —
//! catching "the harness silently did no work" regressions.

use bgpscale_core::{run_experiment_observed, ExperimentConfig, ObservedReport};
use bgpscale_obs::span::{self, SpanStats};
use bgpscale_simkernel::Stopwatch;
use bgpscale_topology::GrowthScenario;

/// One profiled cell.
#[derive(Clone, Debug)]
pub struct ProfileConfig {
    /// Growth scenario of the cell.
    pub scenario: GrowthScenario,
    /// Network size.
    pub n: usize,
    /// C-events to run.
    pub events: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker budget (0 = all hardware threads).
    pub jobs: usize,
    /// Keep 1-in-`n` trace records when `Some(n)`.
    pub trace_sample: Option<u64>,
    /// Per-phase simulator event budget override. Small budgets force the
    /// structured failure path: [`run_profile`] returns `Err` carrying the
    /// harness's budget snapshot (queue depth, pending events by kind,
    /// busiest inbox) instead of crashing the process.
    pub event_limit: Option<u64>,
    /// Timing-wheel slot-granularity override; `None` keeps the default.
    pub wheel_slot_bits: Option<u32>,
}

/// The result of [`run_profile`].
#[derive(Clone, Debug)]
pub struct ProfileOutput {
    /// The observed run: report + metrics + trace.
    pub observed: ObservedReport,
    /// Wall-clock span profile (name, stats), name-ordered.
    pub spans: Vec<(&'static str, SpanStats)>,
    /// Total wall time of the profiled run in seconds.
    pub wall_s: f64,
}

/// The phase spans every profiled run must record. `fold_telemetry` is
/// part of the observed path, so it belongs here too.
pub const EXPECTED_SPANS: [&str; 5] = [
    "generate_topology",
    "build_template",
    "run_events",
    "fold_measurements",
    "fold_telemetry",
];

/// Runs one observed cell under a fresh span profile.
///
/// Resets the process-global span registry first so the profile covers
/// exactly this run — don't interleave with other span-recording work.
///
/// # Errors
/// When the harness aborts (an event budget ran out), the error string is
/// the harness's own diagnosis — including the [`bgpscale_core::BudgetSnapshot`]
/// rendering with queue depth, pending events by kind, and the busiest
/// inbox — so the `profile` subcommand can print *why* the cell failed
/// instead of crashing.
pub fn run_profile(cfg: &ProfileConfig) -> Result<ProfileOutput, String> {
    span::reset();
    let watch = Stopwatch::start();
    let experiment = ExperimentConfig {
        scenario: cfg.scenario,
        n: cfg.n,
        events: cfg.events,
        seed: cfg.seed,
        bgp: Default::default(),
        event_limit: cfg.event_limit,
        wheel_slot_bits: cfg.wheel_slot_bits,
    };
    let jobs = bgpscale_simkernel::pool::effective_jobs(cfg.jobs).max(1);
    // The harness panics on budget exhaustion (a model bug in normal
    // operation); for the interactive profile tool a caught panic with
    // the snapshot rendered beats a crash. Silence the default hook for
    // the guarded region so the snapshot is printed once, by us, instead
    // of as a raw panic message with a backtrace.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_experiment_observed(&experiment, jobs, cfg.trace_sample)
    }));
    std::panic::set_hook(prev_hook);
    match caught {
        Ok(observed) => Ok(ProfileOutput {
            observed,
            spans: span::snapshot(),
            wall_s: watch.elapsed_secs_f64(),
        }),
        Err(payload) => Err(payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "experiment cell panicked".to_string())),
    }
}

/// The CI gate: every expected span recorded at least one call, and the
/// simulators actually processed events.
///
/// # Errors
/// A human-readable description of the first violated expectation.
pub fn check(out: &ProfileOutput) -> Result<(), String> {
    for name in EXPECTED_SPANS {
        match out.spans.iter().find(|(n, _)| *n == name) {
            None => return Err(format!("span \"{name}\" was never recorded")),
            Some((_, stats)) if stats.calls == 0 => {
                return Err(format!("span \"{name}\" recorded zero calls"))
            }
            Some(_) => {}
        }
    }
    let events = out.observed.metrics.counter("events.total");
    if events == 0 {
        return Err("simulators processed zero events".to_string());
    }
    let cells = out.observed.metrics.counter("experiment.events");
    if cells == 0 {
        return Err("no C-events were measured".to_string());
    }
    Ok(())
}

/// Renders the profile as terminal text: the span table, headline
/// counters, and histogram summaries.
pub fn render(cfg: &ProfileConfig, out: &ProfileOutput) -> String {
    use std::fmt::Write as _;

    let mut s = String::new();
    let r = &out.observed.report;
    let m = &out.observed.metrics;
    let _ = writeln!(
        s,
        "profile: {} n={} events={} seed={:#x}",
        cfg.scenario, cfg.n, r.events, cfg.seed
    );
    let _ = writeln!(s, "wall time: {:.3}s", out.wall_s);
    let _ = writeln!(s);

    // Span table, largest total first (wall-clock, non-deterministic).
    let mut spans = out.spans.clone();
    spans.sort_by_key(|(_, st)| std::cmp::Reverse(st.total_ns));
    let _ = writeln!(s, "{:<20} {:>8} {:>12} {:>12}", "phase", "calls", "total_s", "mean_s");
    for (name, st) in &spans {
        let _ = writeln!(
            s,
            "{:<20} {:>8} {:>12.6} {:>12.6}",
            name,
            st.calls,
            st.total_secs(),
            st.mean_secs()
        );
    }
    let _ = writeln!(s);

    // Headline deterministic counters.
    let _ = writeln!(s, "{:<28} {:>14}", "counter", "value");
    for (name, value) in m.counters() {
        let _ = writeln!(s, "{name:<28} {value:>14}");
    }
    for (name, g) in m.gauges() {
        let _ = writeln!(s, "{:<28} {:>14} (max {})", name, g.value, g.max);
    }
    let _ = writeln!(s);

    for (name, h) in m.histograms() {
        let _ = writeln!(
            s,
            "histogram {name}: count={} mean={:.2} max={}",
            h.count(),
            h.mean(),
            h.max()
        );
        let buckets: Vec<String> = h
            .bounds()
            .iter()
            .map(|b| b.to_string())
            .chain(std::iter::once("inf".to_string()))
            .zip(h.bucket_counts())
            .map(|(b, c)| format!("<={b}: {c}"))
            .collect();
        let _ = writeln!(s, "  {}", buckets.join("  "));
    }

    if !out.observed.trace.is_empty() {
        let _ = writeln!(s);
        let _ = writeln!(s, "trace records kept: {}", out.observed.trace.len());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // `run_profile` resets the process-global span registry; serialize
    // these tests so one reset cannot wipe another run's spans mid-flight.
    static PROFILE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn tiny_cfg() -> ProfileConfig {
        ProfileConfig {
            scenario: GrowthScenario::Baseline,
            n: 150,
            events: 2,
            seed: 0xBEEF,
            jobs: 1,
            trace_sample: Some(10),
            event_limit: None,
            wheel_slot_bits: None,
        }
    }

    #[test]
    fn profile_runs_and_passes_check() {
        let _guard = PROFILE_LOCK.lock().unwrap();
        let cfg = tiny_cfg();
        let out = run_profile(&cfg).expect("tiny profile must complete");
        check(&out).expect("tiny profile must pass its own gate");
        assert!(out.wall_s > 0.0);
        assert!(out.observed.metrics.counter("events.total") > 0);
        let text = render(&cfg, &out);
        assert!(text.contains("run_events"), "span table rendered: {text}");
        assert!(text.contains("events.total"), "counters rendered");
        assert!(text.contains("histogram messages.path_len"), "histograms rendered");
    }

    #[test]
    fn check_rejects_empty_output() {
        let _guard = PROFILE_LOCK.lock().unwrap();
        let cfg = tiny_cfg();
        let mut out = run_profile(&cfg).expect("tiny profile must complete");
        out.spans.retain(|(n, _)| *n != "run_events");
        assert!(check(&out).unwrap_err().contains("run_events"));
    }

    /// Satellite fix: a blown event budget must surface the harness's
    /// budget snapshot (queue depth, pending-by-kind, busiest inbox) as a
    /// structured error instead of crashing the profile subcommand.
    #[test]
    fn budget_failure_surfaces_the_snapshot() {
        let _guard = PROFILE_LOCK.lock().unwrap();
        let mut cfg = tiny_cfg();
        // jobs=1 keeps the panic on the calling thread so catch_unwind
        // sees the harness's String payload directly.
        cfg.event_limit = Some(3);
        let err = run_profile(&cfg).unwrap_err();
        assert!(err.contains("did not quiesce"), "diagnosis missing: {err}");
        assert!(err.contains("pending"), "snapshot not rendered: {err}");
        assert!(
            err.contains("deliver") && err.contains("proc_done"),
            "pending-by-kind not rendered: {err}"
        );
    }
}
