//! Size sweeps with memoization.
//!
//! Most figures share experiment cells (the Baseline NO-WRATE sweep feeds
//! Figs. 4–7; Fig. 12 reuses it as a denominator), so the [`Sweeper`]
//! caches every `(scenario, n, MRAI mode)` report it computes.
//!
//! ## Parallelism and determinism
//!
//! With `jobs > 1` ([`Sweeper::set_jobs`]), a sweep splits its worker
//! budget two ways: each cell's C-events fan out via
//! [`bgpscale_core::run_experiment_jobs`], and when that leaves workers
//! idle (more jobs than events per cell), multiple *uncached* cells run
//! concurrently. Neither axis affects results: every cell's report is a
//! pure function of `(scenario, n, mode, events, seed)`, and completed
//! reports are folded into the memo cache on the calling thread in size
//! order. The cache itself is only ever mutated by the thread that owns
//! the `Sweeper` (`&mut self`), which is what keeps it trivially
//! thread-safe; workers communicate results only through the ordered
//! return of the pool.

use std::collections::BTreeMap;
use std::sync::Arc;

use bgpscale_bgp::{BgpConfig, MraiMode};
use bgpscale_core::{
    run_experiment_observed_with, run_experiment_with_cost, ChurnReport, ExperimentConfig,
    ObserveOptions, ObservedReport,
};
use bgpscale_obs::{log, CostModel, MetricsRegistry, TimeSeries, TraceRecord};
use bgpscale_simkernel::pool::run_indexed;
use bgpscale_simkernel::Stopwatch;
use bgpscale_topology::GrowthScenario;

/// Sweep-wide settings: the sizes to visit and the per-cell event count.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Network sizes (the paper uses 1000..10000).
    pub sizes: Vec<usize>,
    /// C-event originators per cell (the paper uses 100).
    pub events: usize,
    /// Master seed.
    pub seed: u64,
}

impl RunConfig {
    /// The paper-scale configuration: n ∈ {1000, …, 10000}, 100 events.
    /// Hours of CPU; use [`RunConfig::quick`] for day-to-day runs.
    pub fn full() -> RunConfig {
        RunConfig {
            sizes: (1..=10).map(|k| k * 1_000).collect(),
            events: 100,
            seed: 0x2008_0612,
        }
    }

    /// A time-boxed configuration preserving every qualitative shape:
    /// five sizes up to 5000, 25 events per cell.
    pub fn quick() -> RunConfig {
        RunConfig {
            sizes: vec![1_000, 2_000, 3_000, 4_000, 5_000],
            events: 25,
            seed: 0x2008_0612,
        }
    }

    /// A seconds-scale configuration for tests and smoke runs.
    pub fn tiny() -> RunConfig {
        RunConfig {
            sizes: vec![300, 600, 900],
            events: 5,
            seed: 0x2008_0612,
        }
    }

    /// Replaces the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> RunConfig {
        self.seed = seed;
        self
    }
}

/// Progress-observer callback type (invoked per uncached experiment cell).
///
/// `Sync` is required because parallel sweeps fire the callback from
/// worker threads; `Arc` because several workers may hold it at once.
type ProgressFn = Arc<dyn Fn(GrowthScenario, usize, MraiMode) + Send + Sync>;

#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
struct CellKey {
    scenario: GrowthScenario,
    n: usize,
    mode: MraiMode,
}

/// Telemetry collection settings for a [`Sweeper`] (off by default).
#[derive(Clone, Copy, Debug, Default)]
struct Telemetry {
    enabled: bool,
    trace_sample: Option<u64>,
    timeseries_bin_us: Option<u64>,
}

impl Telemetry {
    fn options(&self) -> ObserveOptions {
        ObserveOptions {
            trace_sample: self.trace_sample,
            timeseries_bin_us: self.timeseries_bin_us,
        }
    }
}

/// The simulated-time series of one experiment cell, labeled with the cell
/// coordinates so WRATE and NO-WRATE runs stay comparable side by side.
#[derive(Clone, Debug)]
pub struct CellSeries {
    /// The cell's growth scenario.
    pub scenario: GrowthScenario,
    /// The cell's network size.
    pub n: usize,
    /// The cell's MRAI mode.
    pub mode: MraiMode,
    /// The per-event time series merged in event-index order.
    pub series: TimeSeries,
}

/// Memoizing experiment runner shared by all figure drivers.
pub struct Sweeper {
    cfg: RunConfig,
    cache: BTreeMap<CellKey, Arc<ChurnReport>>,
    /// Per-cell exact op-count models, cached alongside the reports
    /// (always collected — the counters are free-running integers).
    costs: BTreeMap<CellKey, Arc<CostModel>>,
    /// Observer called before each uncached cell runs (progress logging).
    progress: Option<ProgressFn>,
    /// Worker budget per sweep call; 1 = fully sequential.
    jobs: usize,
    telemetry: Telemetry,
    /// Merged metrics of every uncached cell computed so far, folded on
    /// the owning thread in cell-completion order (deterministic for a
    /// fixed call sequence, independent of `jobs`).
    metrics: MetricsRegistry,
    /// Concatenated trace records of every uncached cell, same ordering
    /// discipline as `metrics`.
    trace: Vec<TraceRecord>,
    /// Per-cell time series (when [`Sweeper::enable_timeseries`] is on),
    /// same ordering discipline as `metrics`.
    series: Vec<CellSeries>,
    /// Emit a wall-side heartbeat line per completed sweep cell (see
    /// [`Sweeper::enable_heartbeat`]).
    heartbeat: bool,
}

impl Sweeper {
    /// Creates a sweeper over `cfg`, sequential by default
    /// (`jobs = 1`; see [`Sweeper::set_jobs`]).
    pub fn new(cfg: RunConfig) -> Sweeper {
        Sweeper {
            cfg,
            cache: BTreeMap::new(),
            costs: BTreeMap::new(),
            progress: None,
            jobs: 1,
            telemetry: Telemetry::default(),
            metrics: MetricsRegistry::new(),
            trace: Vec::new(),
            series: Vec::new(),
            heartbeat: false,
        }
    }

    /// Turns on the wall-side sweep heartbeat: every [`Sweeper::sweep_mode`]
    /// call logs one `obs::log!` info line per completed uncached cell —
    /// cells-done/total within the call, the cell's simulator event count
    /// and the call's running events/sec throughput, elapsed wall time,
    /// and a simple ETA (`elapsed / done · remaining`). Pure stderr
    /// chatter for long runs: the lines are emitted on the owning thread
    /// at fold time and never enter any deterministic artifact.
    pub fn enable_heartbeat(&mut self) {
        self.heartbeat = true;
    }

    /// Simulator events a computed cell processed (queue pops: one per
    /// event), read from the cached cost model. Heartbeat bookkeeping
    /// only.
    fn cell_events(&self, scenario: GrowthScenario, n: usize, mode: MraiMode) -> u64 {
        self.costs
            .get(&CellKey { scenario, n, mode })
            .map(|c| c.total().queue_pops)
            .unwrap_or(0)
    }

    #[allow(clippy::too_many_arguments)]
    fn heartbeat_line(
        watch: &Option<Stopwatch>,
        scenario: GrowthScenario,
        n: usize,
        mode: MraiMode,
        done: usize,
        total: usize,
        cell_events: u64,
        total_events: u64,
    ) {
        let Some(watch) = watch else { return };
        let elapsed = watch.elapsed_secs_f64();
        let eta = if done > 0 && done < total {
            elapsed / done as f64 * (total - done) as f64
        } else {
            0.0
        };
        let rate = if elapsed > 0.0 {
            total_events as f64 / elapsed
        } else {
            0.0
        };
        log!(
            Info,
            "sweep: {done}/{total} cells done ({scenario} n={n} {}) {cell_events} events {rate:.0} ev/s elapsed {elapsed:.1}s eta {eta:.1}s",
            mode.label()
        );
    }

    /// Turns on telemetry collection: every *uncached* cell computed from
    /// now on runs with a metrics recorder attached (and, when
    /// `trace_sample` is `Some(n)`, keeps 1-in-`n` trace records). The
    /// cell reports themselves are bit-identical either way; read the
    /// accumulated telemetry with [`Sweeper::metrics`] /
    /// [`Sweeper::take_trace`].
    pub fn enable_telemetry(&mut self, trace_sample: Option<u64>) {
        self.telemetry.enabled = true;
        self.telemetry.trace_sample = trace_sample;
    }

    /// Additionally records a simulated-time series (bin width `bin_us`
    /// microseconds of simulated time) for every uncached cell computed
    /// from now on. Implies telemetry. Collected series are labeled with
    /// their cell coordinates; drain them with [`Sweeper::take_series`].
    pub fn enable_timeseries(&mut self, bin_us: u64) {
        self.telemetry.enabled = true;
        self.telemetry.timeseries_bin_us = Some(bin_us);
    }

    /// The metrics merged across all telemetry-enabled cells so far.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Drains the trace records accumulated so far (cell completion
    /// order; within a cell, event-index order).
    pub fn take_trace(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.trace)
    }

    /// Drains the per-cell time series accumulated so far (cell
    /// completion order).
    pub fn take_series(&mut self) -> Vec<CellSeries> {
        std::mem::take(&mut self.series)
    }

    /// Runs one uncached cell, folding telemetry if enabled. The cell's
    /// cost model is always captured into the cost cache.
    fn compute_cell(&mut self, cfg: &ExperimentConfig) -> Arc<ChurnReport> {
        if self.telemetry.enabled {
            let observed = run_experiment_observed_with(cfg, self.jobs, &self.telemetry.options());
            self.fold_telemetry(cfg, observed)
        } else {
            let (report, cost) = run_experiment_with_cost(cfg, self.jobs);
            self.costs.insert(Self::cost_key(cfg), Arc::new(cost));
            Arc::new(report)
        }
    }

    fn cost_key(cfg: &ExperimentConfig) -> CellKey {
        CellKey {
            scenario: cfg.scenario,
            n: cfg.n,
            mode: cfg.bgp.mrai_mode,
        }
    }

    fn fold_telemetry(&mut self, cfg: &ExperimentConfig, observed: ObservedReport) -> Arc<ChurnReport> {
        self.metrics.merge(&observed.metrics);
        self.trace.extend(observed.trace);
        if let Some(series) = observed.timeseries {
            self.series.push(CellSeries {
                scenario: cfg.scenario,
                n: cfg.n,
                mode: cfg.bgp.mrai_mode,
                series,
            });
        }
        self.costs.insert(Self::cost_key(cfg), Arc::new(observed.cost));
        Arc::new(observed.report)
    }

    /// The exact op-count model of a cell, if that cell has been computed
    /// by this sweeper (cells served purely from the report cache of a
    /// prior call still have one — costs are cached on first compute and
    /// never evicted).
    pub fn cost_model(
        &self,
        scenario: GrowthScenario,
        n: usize,
        mode: MraiMode,
    ) -> Option<Arc<CostModel>> {
        self.costs.get(&CellKey { scenario, n, mode }).map(Arc::clone)
    }

    /// Sets the worker budget: how many C-events / cells may be computed
    /// concurrently. `0` means "use every hardware thread". Results are
    /// bit-for-bit independent of this setting.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.jobs = bgpscale_simkernel::pool::effective_jobs(jobs).max(1);
    }

    /// Builder-style [`Sweeper::set_jobs`].
    pub fn with_jobs(mut self, jobs: usize) -> Sweeper {
        self.set_jobs(jobs);
        self
    }

    /// The current worker budget.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Installs a progress callback, invoked once per uncached cell just
    /// before that cell starts computing.
    ///
    /// Ordering guarantee: with `jobs = 1` callbacks fire strictly in
    /// computation order (ascending size within a sweep). With `jobs > 1`
    /// they may fire from worker threads in any order and concurrently —
    /// the callback must therefore be `Sync`. A cell served from the
    /// cache never fires a callback.
    pub fn on_progress(
        &mut self,
        f: impl Fn(GrowthScenario, usize, MraiMode) + Send + Sync + 'static,
    ) {
        self.progress = Some(Arc::new(f));
    }

    /// The sweep configuration.
    pub fn config(&self) -> &RunConfig {
        &self.cfg
    }

    /// The sizes of this sweep.
    pub fn sizes(&self) -> &[usize] {
        &self.cfg.sizes
    }

    /// The experiment configuration for one cell.
    fn cell_config(&self, scenario: GrowthScenario, n: usize, mode: MraiMode) -> ExperimentConfig {
        let bgp = match mode {
            MraiMode::NoWrate => BgpConfig::no_wrate(),
            MraiMode::Wrate => BgpConfig::wrate(),
        };
        ExperimentConfig {
            scenario,
            n,
            events: self.cfg.events,
            seed: self.cfg.seed,
            bgp,
            event_limit: None,
            wheel_slot_bits: None,
        }
    }

    /// Returns (computing and caching on first use) the churn report for
    /// one cell. An uncached cell fans its C-events out across the full
    /// worker budget.
    pub fn report(
        &mut self,
        scenario: GrowthScenario,
        n: usize,
        mode: MraiMode,
    ) -> Arc<ChurnReport> {
        let key = CellKey { scenario, n, mode };
        if let Some(hit) = self.cache.get(&key) {
            return Arc::clone(hit);
        }
        if let Some(cb) = &self.progress {
            cb(scenario, n, mode);
        }
        let cell_cfg = self.cell_config(scenario, n, mode);
        let report = self.compute_cell(&cell_cfg);
        self.cache.insert(key, Arc::clone(&report));
        report
    }

    /// Runs the whole size sweep for one scenario (NO-WRATE).
    pub fn sweep(&mut self, scenario: GrowthScenario) -> Vec<Arc<ChurnReport>> {
        self.sweep_mode(scenario, MraiMode::NoWrate)
    }

    /// Runs the whole size sweep for one scenario and MRAI mode.
    ///
    /// Uncached cells may compute concurrently when the worker budget
    /// exceeds the per-cell event count (event-level parallelism is
    /// preferred because events outnumber cells in every paper
    /// configuration). Reports are folded into the cache on this thread
    /// in ascending-size order; results are identical for any `jobs`.
    pub fn sweep_mode(
        &mut self,
        scenario: GrowthScenario,
        mode: MraiMode,
    ) -> Vec<Arc<ChurnReport>> {
        let uncached: Vec<usize> = self
            .cfg
            .sizes
            .iter()
            .copied()
            .filter(|&n| !self.cache.contains_key(&CellKey { scenario, n, mode }))
            .collect();
        // Wall-side heartbeat bookkeeping for this call; see
        // `enable_heartbeat`. Counted at fold time on the owning thread.
        let hb_watch = self.heartbeat.then(Stopwatch::start);
        let hb_total = uncached.len();
        let mut hb_done = 0usize;
        let mut hb_events = 0u64;

        // Split the budget: `inner` workers per cell (C-event fan-out),
        // and any leftover across cells.
        let inner = self.jobs.min(self.cfg.events.max(1));
        let outer = uncached.len().min((self.jobs / inner.max(1)).max(1));
        if outer > 1 {
            let progress = self.progress.clone();
            let telemetry = self.telemetry;
            let configs: Vec<ExperimentConfig> = uncached
                .iter()
                .map(|&n| self.cell_config(scenario, n, mode))
                .collect();
            if telemetry.enabled {
                // Observed cells return their telemetry to the owning
                // thread, which folds it in ascending-size (index) order.
                let observed = run_indexed(outer, configs.len(), |i| {
                    if let Some(cb) = &progress {
                        cb(scenario, configs[i].n, mode);
                    }
                    run_experiment_observed_with(&configs[i], inner, &telemetry.options())
                });
                for ((&n, obs), cell_cfg) in uncached.iter().zip(observed).zip(&configs) {
                    let report = self.fold_telemetry(cell_cfg, obs);
                    self.cache.insert(CellKey { scenario, n, mode }, report);
                    hb_done += 1;
                    let ev = self.cell_events(scenario, n, mode);
                    hb_events += ev;
                    Self::heartbeat_line(
                        &hb_watch, scenario, n, mode, hb_done, hb_total, ev, hb_events,
                    );
                }
            } else {
                let results = run_indexed(outer, configs.len(), |i| {
                    if let Some(cb) = &progress {
                        cb(scenario, configs[i].n, mode);
                    }
                    let (report, cost) = run_experiment_with_cost(&configs[i], inner);
                    (Arc::new(report), Arc::new(cost))
                });
                for (&n, (report, cost)) in uncached.iter().zip(results) {
                    self.cache.insert(CellKey { scenario, n, mode }, report);
                    self.costs.insert(CellKey { scenario, n, mode }, cost);
                    hb_done += 1;
                    let ev = self.cell_events(scenario, n, mode);
                    hb_events += ev;
                    Self::heartbeat_line(
                        &hb_watch, scenario, n, mode, hb_done, hb_total, ev, hb_events,
                    );
                }
            }
        }

        self.cfg
            .sizes
            .clone()
            .into_iter()
            .map(|n| {
                let fresh = !self.cache.contains_key(&CellKey { scenario, n, mode });
                let report = self.report(scenario, n, mode);
                if fresh {
                    hb_done += 1;
                    let ev = self.cell_events(scenario, n, mode);
                    hb_events += ev;
                    Self::heartbeat_line(
                        &hb_watch, scenario, n, mode, hb_done, hb_total, ev, hb_events,
                    );
                }
                report
            })
            .collect()
    }

    /// Number of cached cells (for tests).
    pub fn cached_cells(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpscale_topology::NodeType;

    #[test]
    fn sweep_returns_one_report_per_size() {
        let mut s = Sweeper::new(RunConfig {
            sizes: vec![200, 300],
            events: 2,
            seed: 1,
        });
        let reports = s.sweep(GrowthScenario::Baseline);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].n, 200);
        assert_eq!(reports[1].n, 300);
    }

    #[test]
    fn cache_prevents_recomputation() {
        let mut s = Sweeper::new(RunConfig {
            sizes: vec![200],
            events: 2,
            seed: 1,
        });
        let a = s.report(GrowthScenario::Baseline, 200, MraiMode::NoWrate);
        assert_eq!(s.cached_cells(), 1);
        let b = s.report(GrowthScenario::Baseline, 200, MraiMode::NoWrate);
        assert!(Arc::ptr_eq(&a, &b), "second call must hit the cache");
        assert_eq!(s.cached_cells(), 1);
        // A different mode is a different cell.
        let _c = s.report(GrowthScenario::Baseline, 200, MraiMode::Wrate);
        assert_eq!(s.cached_cells(), 2);
    }

    #[test]
    fn progress_callback_fires_per_uncached_cell() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc as StdArc;
        let count = StdArc::new(AtomicUsize::new(0));
        let c2 = StdArc::clone(&count);
        let mut s = Sweeper::new(RunConfig {
            sizes: vec![200],
            events: 1,
            seed: 2,
        });
        s.on_progress(move |_, _, _| {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        s.report(GrowthScenario::Baseline, 200, MraiMode::NoWrate);
        s.report(GrowthScenario::Baseline, 200, MraiMode::NoWrate);
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_sequential() {
        let cfg = RunConfig {
            sizes: vec![150, 200, 250],
            events: 2,
            seed: 4,
        };
        let mut seq = Sweeper::new(cfg.clone());
        let mut par = Sweeper::new(cfg).with_jobs(8);
        let a = seq.sweep(GrowthScenario::Baseline);
        let b = par.sweep(GrowthScenario::Baseline);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(**x, **y, "jobs=8 sweep diverged at n={}", x.n);
        }
        assert_eq!(seq.cached_cells(), par.cached_cells());
    }

    #[test]
    fn progress_fires_once_per_cell_in_parallel_sweeps() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc as StdArc;
        let count = StdArc::new(AtomicUsize::new(0));
        let c2 = StdArc::clone(&count);
        let mut s = Sweeper::new(RunConfig {
            sizes: vec![150, 200, 250],
            events: 1,
            seed: 5,
        })
        .with_jobs(4);
        s.on_progress(move |_, _, _| {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        s.sweep(GrowthScenario::Baseline);
        s.sweep(GrowthScenario::Baseline); // fully cached: no callbacks
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn telemetry_does_not_change_reports() {
        let cfg = RunConfig {
            sizes: vec![150, 200],
            events: 2,
            seed: 6,
        };
        let mut plain = Sweeper::new(cfg.clone());
        let mut observed = Sweeper::new(cfg);
        observed.enable_telemetry(Some(4));
        let a = plain.sweep(GrowthScenario::Baseline);
        let b = observed.sweep(GrowthScenario::Baseline);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(**x, **y, "telemetry perturbed the report at n={}", x.n);
        }
        assert!(observed.metrics().counter("events.total") > 0);
        assert_eq!(observed.metrics().counter("experiment.events"), 4);
        assert!(!observed.take_trace().is_empty());
        assert!(plain.metrics().is_empty(), "telemetry off collects nothing");
    }

    #[test]
    fn timeseries_collection_labels_cells() {
        let mut s = Sweeper::new(RunConfig {
            sizes: vec![150],
            events: 2,
            seed: 6,
        });
        s.enable_timeseries(100_000);
        s.report(GrowthScenario::Baseline, 150, MraiMode::NoWrate);
        s.report(GrowthScenario::Baseline, 150, MraiMode::Wrate);
        let series = s.take_series();
        assert_eq!(series.len(), 2, "one labeled series per uncached cell");
        assert!(matches!(series[0].mode, MraiMode::NoWrate));
        assert!(matches!(series[1].mode, MraiMode::Wrate));
        for cell in &series {
            assert_eq!(cell.n, 150);
            assert!(cell.series.total_updates() > 0, "cells must bin updates");
            assert_eq!(cell.series.events, 2);
        }
        assert!(s.take_series().is_empty(), "take_series drains");
    }

    #[test]
    fn cost_models_are_cached_and_jobs_independent() {
        let cfg = RunConfig {
            sizes: vec![150, 200],
            events: 2,
            seed: 7,
        };
        let mut seq = Sweeper::new(cfg.clone());
        let mut par = Sweeper::new(cfg.clone()).with_jobs(8);
        let mut obs = Sweeper::new(cfg);
        obs.enable_telemetry(None);
        seq.sweep(GrowthScenario::Baseline);
        par.sweep(GrowthScenario::Baseline);
        obs.sweep(GrowthScenario::Baseline);
        for n in [150usize, 200] {
            let a = seq
                .cost_model(GrowthScenario::Baseline, n, MraiMode::NoWrate)
                .expect("plain sweep collects costs");
            let b = par
                .cost_model(GrowthScenario::Baseline, n, MraiMode::NoWrate)
                .expect("parallel sweep collects costs");
            let c = obs
                .cost_model(GrowthScenario::Baseline, n, MraiMode::NoWrate)
                .expect("observed sweep collects costs");
            assert_eq!(a.to_json(), b.to_json(), "cost diverged at n={n} under jobs=8");
            assert_eq!(a.to_json(), c.to_json(), "cost diverged at n={n} under telemetry");
            assert!(a.total().grand_total() > 0);
        }
        assert!(seq
            .cost_model(GrowthScenario::Baseline, 999, MraiMode::NoWrate)
            .is_none());
    }

    #[test]
    fn run_configs_are_sane() {
        let full = RunConfig::full();
        assert_eq!(full.sizes.len(), 10);
        assert_eq!(*full.sizes.last().unwrap(), 10_000);
        assert_eq!(full.events, 100);
        let quick = RunConfig::quick();
        assert!(quick.sizes.len() >= 3, "quick needs enough points for trends");
        let tiny = RunConfig::tiny().with_seed(9);
        assert_eq!(tiny.seed, 9);
    }

    #[test]
    fn reports_expose_paper_quantities() {
        let mut s = Sweeper::new(RunConfig {
            sizes: vec![250],
            events: 3,
            seed: 3,
        });
        let r = s.report(GrowthScenario::Baseline, 250, MraiMode::NoWrate);
        assert!(r.by_type(NodeType::T).u_total > 0.0);
    }
}
