//! # bgpscale-detlint
//!
//! A workspace **determinism linter**: a zero-dependency, token-level
//! static analyzer that guards the bit-identical-replay contract of the
//! `bgpscale` simulator.
//!
//! The paper's churn measurements (Eq. 1's `U(X) = Σ m·q·e` decomposition,
//! the Fig. 1 trends) are trustworthy because the harness promises
//! byte-identical `ChurnReport` / `metrics.json` / `timeseries.json` for
//! *any* `--jobs` value. Runtime regression tests sample that contract at
//! jobs = 1/4/8; `detlint` enforces it **statically**, rejecting hazard
//! patterns before they ever reach a run:
//!
//! | rule | rejects | in |
//! |------|---------|----|
//! | `wall-clock` | `Instant`, `SystemTime`, `Stopwatch`, `wallclock` | deterministic crates |
//! | `thread-spawn` | `thread::spawn` / `thread::scope` / `thread::Builder` outside `simkernel::pool` | deterministic crates |
//! | `unordered-collection` | `HashMap` / `HashSet` (unspecified iteration order) | deterministic crates |
//! | `unseeded-random` | `thread_rng`, `from_entropy`, `RandomState`, `OsRng`, `rand::random`, `getrandom` | deterministic crates |
//! | `env-read` | `env::var` / `env::var_os` / `env::vars` | deterministic crates |
//! | `float-accum` | `f32` / `f64` | integer-only counter files |
//! | `stale-allow` | a `detlint::allow` that suppressed nothing | everywhere |
//! | `bad-allow` | a malformed `detlint::allow` | everywhere |
//!
//! Which crates are "deterministic" and which files are "integer-only" is
//! configured in a checked-in [`detlint.toml`](config); whole sanctioned
//! modules (e.g. `simkernel::wallclock`, `simkernel::pool`) are exempted
//! there, while individual lines are suppressed only via an **audited**
//! comment that the tool counts and reports:
//!
//! ```text
//! std::env::var("BGPSCALE_LOG") // detlint::allow(env-read, reason = "log level, never enters artifacts")
//! ```
//!
//! The binary (`cargo run -p bgpscale-detlint -- --check`) exits with the
//! workspace-wide convention shared with `repro profile --check`:
//! `0` = clean, `1` = violations found, `2` = usage/config error.
//!
//! Lexing is line-oriented but state-tracking: block comments (nested),
//! multi-line raw strings, char-literal/lifetime disambiguation, and
//! `#[cfg(test)]` module skipping are all handled so that rule tokens in
//! comments, strings, and unit tests never produce false positives. The
//! lexer lives in the shared [`lex`] module, which `bgpscale-detflow`
//! (the call-graph determinism analyzer — the second, reachability-aware
//! tier of static checking) consumes as well. See
//! `docs/ARCHITECTURE.md` § "Static determinism guarantees" for how the
//! two tiers relate to the jobs-1/4/8 runtime tests.

#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod fixtures;
pub mod lex;
pub mod rules;
pub mod scan;

pub use config::Config;
pub use diag::{AllowRecord, Diagnostic};
pub use rules::Rule;
pub use scan::Analysis;

/// Schema version stamped into `detlint --json` reports, per the
/// workspace artifact contract (enforced by detflow's artifact-contract
/// pass: every written artifact carries its schema version).
pub const SCHEMA_VERSION: u32 = 1;

/// Exit code: the scan found no violations.
pub const EXIT_OK: i32 = 0;
/// Exit code: violations (or fixture self-test failures) were found.
pub const EXIT_VIOLATIONS: i32 = 1;
/// Exit code: bad command line, unreadable root, or invalid config.
pub const EXIT_USAGE: i32 = 2;
