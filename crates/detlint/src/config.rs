//! `detlint.toml`: the checked-in rule configuration, hand-parsed.
//!
//! Only the TOML subset the linter needs is supported — `[section]`
//! headers and `key = value` pairs where a value is a bool, a quoted
//! string, or a (possibly multi-line) array of quoted strings. `#`
//! comments are allowed. Unknown sections or keys are **errors**, so a
//! typo can never silently disable a rule.
//!
//! ```toml
//! [scan]
//! include = ["crates", "src"]
//! exclude = ["crates/vendor", "target"]
//!
//! [deterministic]
//! paths = ["crates/simkernel/src", "crates/core/src"]
//!
//! [integer-only]
//! paths = ["crates/obs/src/metrics.rs"]
//!
//! [exempt]
//! # Whole sanctioned modules, per rule (single lines use an audited
//! # `// detlint::allow(rule, reason = "...")` comment instead).
//! wall-clock = ["crates/simkernel/src/wallclock.rs"]
//!
//! [rules]
//! wall-clock = true
//! ```

use std::collections::BTreeMap;
use std::path::Path;

use crate::rules::Rule;

/// Parsed `detlint.toml`.
#[derive(Clone, Debug)]
pub struct Config {
    /// Directories (relative to the root) to walk for `.rs` files.
    pub include: Vec<String>,
    /// Path prefixes to skip entirely.
    pub exclude: Vec<String>,
    /// Path prefixes holding deterministic-tier code.
    pub deterministic: Vec<String>,
    /// Files (or prefixes) whose counters must stay integral.
    pub integer_only: Vec<String>,
    /// Per-rule sanctioned-module exemptions (path prefixes).
    pub exempt: BTreeMap<Rule, Vec<String>>,
    /// Per-rule on/off switches (default: on).
    pub enabled: BTreeMap<Rule, bool>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            include: vec![".".to_string()],
            exclude: Vec::new(),
            deterministic: Vec::new(),
            integer_only: Vec::new(),
            exempt: BTreeMap::new(),
            enabled: BTreeMap::new(),
        }
    }
}

impl Config {
    /// Reads and parses a config file.
    pub fn load(path: &Path) -> Result<Config, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Config::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses config text.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            if let Some(name) = line.strip_prefix('[') {
                let name = name
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {lineno}: unterminated section header"))?;
                section = name.trim().to_string();
                match section.as_str() {
                    "scan" | "deterministic" | "integer-only" | "exempt" | "rules" => {}
                    other => return Err(format!("line {lineno}: unknown section [{other}]")),
                }
                continue;
            }
            let (key, mut value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
                .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
            // Multi-line arrays: keep consuming until the closing bracket.
            if value.starts_with('[') && !value.ends_with(']') {
                for (_, cont) in lines.by_ref() {
                    let cont = strip_toml_comment(cont).trim().to_string();
                    value.push(' ');
                    value.push_str(&cont);
                    if cont.ends_with(']') {
                        break;
                    }
                }
                if !value.ends_with(']') {
                    return Err(format!("line {lineno}: unterminated array for `{key}`"));
                }
            }
            cfg.apply(&section, &key, &value)
                .map_err(|e| format!("line {lineno}: {e}"))?;
        }
        if cfg.include.is_empty() {
            return Err("`[scan] include` must not be empty".to_string());
        }
        Ok(cfg)
    }

    fn apply(&mut self, section: &str, key: &str, value: &str) -> Result<(), String> {
        match (section, key) {
            ("scan", "include") => self.include = parse_string_array(value)?,
            ("scan", "exclude") => self.exclude = parse_string_array(value)?,
            ("deterministic", "paths") => self.deterministic = parse_string_array(value)?,
            ("integer-only", "paths") => self.integer_only = parse_string_array(value)?,
            ("exempt", rule_id) => {
                let rule = Rule::from_id(rule_id)
                    .ok_or_else(|| format!("unknown rule `{rule_id}` in [exempt]"))?;
                self.exempt.insert(rule, parse_string_array(value)?);
            }
            ("rules", rule_id) => {
                let rule = Rule::from_id(rule_id)
                    .ok_or_else(|| format!("unknown rule `{rule_id}` in [rules]"))?;
                let on = match value {
                    "true" => true,
                    "false" => false,
                    other => return Err(format!("expected true/false, got `{other}`")),
                };
                self.enabled.insert(rule, on);
            }
            ("", _) => return Err(format!("key `{key}` outside any section")),
            (s, k) => return Err(format!("unknown key `{k}` in section [{s}]")),
        }
        Ok(())
    }

    /// True if `rule` is switched on (rules default to on).
    pub fn rule_enabled(&self, rule: Rule) -> bool {
        self.enabled.get(&rule).copied().unwrap_or(true)
    }

    /// True if `rel` (a `/`-separated path relative to the root) lies
    /// under any of the given prefixes.
    pub fn path_matches(rel: &str, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| {
            let p = p.trim_end_matches('/');
            rel == p || rel.starts_with(&format!("{p}/"))
        })
    }

    /// True if the file is deterministic-tier.
    pub fn is_deterministic(&self, rel: &str) -> bool {
        Config::path_matches(rel, &self.deterministic)
    }

    /// True if the file must stay integer-only.
    pub fn is_integer_only(&self, rel: &str) -> bool {
        Config::path_matches(rel, &self.integer_only)
    }

    /// True if the file is a sanctioned module for `rule`.
    pub fn is_exempt(&self, rel: &str, rule: Rule) -> bool {
        self.exempt
            .get(&rule)
            .is_some_and(|v| Config::path_matches(rel, v))
    }

    /// True if the path is excluded from scanning altogether.
    pub fn is_excluded(&self, rel: &str) -> bool {
        Config::path_matches(rel, &self.exclude)
    }
}

/// Drops a `#` comment that is not inside a quoted string. Public so
/// detflow's config parser (the same TOML subset, different sections)
/// shares one comment-handling behavior.
pub fn strip_toml_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `["a", "b"]` (flattened to one line by the caller). Public for
/// the same reason as [`strip_toml_comment`].
pub fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("expected an array of strings, got `{value}`"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let s = item
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("expected a quoted string, got `{item}`"))?;
        out.push(s.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# tiers
[scan]
include = ["crates", "src"]
exclude = [
    "crates/vendor",   # offline stand-ins
    "target",
]

[deterministic]
paths = ["crates/core/src"]

[integer-only]
paths = ["crates/obs/src/metrics.rs"]

[exempt]
wall-clock = ["crates/simkernel/src/wallclock.rs"]

[rules]
env-read = false
"#;

    #[test]
    fn parses_sections_arrays_and_bools() {
        let cfg = Config::parse(SAMPLE).unwrap();
        assert_eq!(cfg.include, ["crates", "src"]);
        assert_eq!(cfg.exclude, ["crates/vendor", "target"]);
        assert!(cfg.is_deterministic("crates/core/src/sim.rs"));
        assert!(!cfg.is_deterministic("crates/core/tests/prop.rs"));
        assert!(cfg.is_integer_only("crates/obs/src/metrics.rs"));
        assert!(cfg.is_exempt("crates/simkernel/src/wallclock.rs", Rule::WallClock));
        assert!(!cfg.is_exempt("crates/simkernel/src/pool.rs", Rule::WallClock));
        assert!(!cfg.rule_enabled(Rule::EnvRead));
        assert!(cfg.rule_enabled(Rule::WallClock));
    }

    #[test]
    fn unknown_keys_and_sections_are_errors() {
        assert!(Config::parse("[scn]\ninclude = [\"x\"]").is_err());
        assert!(Config::parse("[scan]\nincl = [\"x\"]").is_err());
        assert!(Config::parse("[rules]\nno-such-rule = true").is_err());
        assert!(Config::parse("[exempt]\nno-such-rule = [\"x\"]").is_err());
        assert!(Config::parse("key = \"before any section\"").is_err());
    }

    #[test]
    fn prefix_matching_is_component_wise() {
        let p = vec!["crates/core".to_string()];
        assert!(Config::path_matches("crates/core/src/sim.rs", &p));
        assert!(Config::path_matches("crates/core", &p));
        assert!(!Config::path_matches("crates/core2/src/sim.rs", &p));
    }
}
