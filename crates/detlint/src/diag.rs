//! Diagnostics and report rendering (human-readable and JSON).
//!
//! Both renderings are deterministic: files are visited in sorted order
//! and findings are emitted in line order, so two runs over the same tree
//! produce byte-identical reports — the linter holds itself to the
//! contract it enforces.

use crate::rules::Rule;
use crate::scan::Analysis;

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: Rule,
    /// Path relative to the scan root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based character column of the offending token.
    pub column: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl Diagnostic {
    /// `file:line:col: [rule] explanation` — the `file:line` prefix makes
    /// terminals and editors link straight to the span.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}\n    {}",
            self.file,
            self.line,
            self.column,
            self.rule,
            self.rule.explanation(),
            self.snippet
        )
    }
}

/// One **used** `detlint::allow` — an audited suppression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowRecord {
    pub rule: Rule,
    pub file: String,
    /// 1-based line of the allow comment.
    pub line: usize,
    pub reason: String,
}

/// Renders the human report for `--check`. `quiet` drops the per-allow
/// listing (the counts stay in the summary line).
pub fn render_human(a: &Analysis, quiet: bool) -> String {
    let mut out = String::new();
    for d in &a.diagnostics {
        out.push_str(&d.render());
        out.push('\n');
    }
    if !quiet && !a.allows.is_empty() {
        out.push_str(&format!("audited allows ({}):\n", a.allows.len()));
        for al in &a.allows {
            out.push_str(&format!(
                "  {}:{} [{}] {}\n",
                al.file, al.line, al.rule, al.reason
            ));
        }
    }
    out.push_str(&format!(
        "detlint: {} files scanned ({} deterministic, {} integer-only); \
         {} violation{}, {} audited allow{}\n",
        a.files.len(),
        a.deterministic_files,
        a.integer_only_files,
        a.diagnostics.len(),
        plural(a.diagnostics.len()),
        a.allows.len(),
        plural(a.allows.len()),
    ));
    out.push_str(if a.diagnostics.is_empty() {
        "detlint: OK\n"
    } else {
        "detlint: FAIL\n"
    });
    out
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Renders the machine report for `--json` / `--json-out` (uploaded as a
/// CI artifact). Hand-rolled like every other JSON writer in the
/// workspace; keys are emitted in a fixed order.
pub fn render_json(a: &Analysis) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema_version\": {},\n", crate::SCHEMA_VERSION));
    s.push_str(&format!("  \"files_scanned\": {},\n", a.files.len()));
    s.push_str(&format!(
        "  \"deterministic_files\": {},\n",
        a.deterministic_files
    ));
    s.push_str(&format!(
        "  \"integer_only_files\": {},\n",
        a.integer_only_files
    ));
    s.push_str(&format!("  \"ok\": {},\n", a.diagnostics.is_empty()));
    s.push_str("  \"violations\": [\n");
    for (i, d) in a.diagnostics.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"rule\": {}, \"file\": {}, \"line\": {}, \"column\": {}, \
             \"snippet\": {}, \"message\": {} }}{}\n",
            json_str(d.rule.id()),
            json_str(&d.file),
            d.line,
            d.column,
            json_str(&d.snippet),
            json_str(d.rule.explanation()),
            comma(i, a.diagnostics.len()),
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"allows\": [\n");
    for (i, al) in a.allows.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {} }}{}\n",
            json_str(al.rule.id()),
            json_str(&al.file),
            al.line,
            json_str(&al.reason),
            comma(i, a.allows.len()),
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

/// Escapes a string as a JSON literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn diagnostic_render_links_file_line_col() {
        let d = Diagnostic {
            rule: Rule::WallClock,
            file: "crates/core/src/sim.rs".to_string(),
            line: 7,
            column: 13,
            snippet: "let t = Instant::now();".to_string(),
        };
        let r = d.render();
        assert!(r.starts_with("crates/core/src/sim.rs:7:13: [wall-clock]"));
        assert!(r.contains("Instant::now"));
    }
}
