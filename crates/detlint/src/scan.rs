//! The scanner: directory walk, per-file analysis, allow handling.
//!
//! Per file, the scan:
//!
//! 1. decides the file's tier from the config (deterministic /
//!    integer-only / neither) and the active rule set;
//! 2. strips each line with the shared [`crate::lex`], skipping `#[cfg(test)]`
//!    blocks by brace tracking (unit tests are exercised by `cargo test`,
//!    not replayed — hazards there cannot break artifacts);
//! 3. collects `// detlint::allow(rule, reason = "...")` directives: a
//!    trailing comment covers its own line, a comment-only line covers the
//!    next code line;
//! 4. matches rule token patterns; a match covered by a same-rule allow is
//!    recorded as an audited [`AllowRecord`], anything else becomes a
//!    [`Diagnostic`];
//! 5. reports allows that suppressed nothing as `stale-allow` violations,
//!    so suppressions can never outlive the hazard they audit.
//!
//! The walk visits directories in sorted order and emits findings in line
//! order — output is deterministic by construction.

use std::io;
use std::path::Path;

use crate::config::Config;
use crate::diag::{AllowRecord, Diagnostic};
use crate::lex::{parse_allow_directive, tokenize, Lexer, Token};
use crate::rules::Rule;

/// The comment prefix that makes a suppression a *detlint* directive
/// (detflow has its own, parsed by the same shared
/// [`parse_allow_directive`]).
const ALLOW_PREFIX: &str = "detlint::allow";

/// The result of scanning a tree.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Every `.rs` file scanned, relative to the root, sorted.
    pub files: Vec<String>,
    /// How many files sit in the deterministic tier.
    pub deterministic_files: usize,
    /// How many files are integer-only.
    pub integer_only_files: usize,
    /// All violations, in (file, line) order.
    pub diagnostics: Vec<Diagnostic>,
    /// All **used** allows (the audited suppressions), in (file, line)
    /// order.
    pub allows: Vec<AllowRecord>,
}

/// Scans the workspace rooted at `root` under `cfg`.
pub fn scan_workspace(root: &Path, cfg: &Config) -> io::Result<Analysis> {
    let mut files = Vec::new();
    for inc in &cfg.include {
        let dir = root.join(inc);
        if dir.is_file() {
            if inc.ends_with(".rs") && !cfg.is_excluded(inc) {
                files.push(inc.clone());
            }
            continue;
        }
        if dir.is_dir() {
            collect_rs_files(root, &dir, cfg, &mut files)?;
        }
        // A missing include dir is tolerated: configs are shared between
        // the workspace and fixture trees of different shapes.
    }
    files.sort();
    files.dedup();

    let mut analysis = Analysis {
        files: files.clone(),
        ..Analysis::default()
    };
    for rel in &files {
        if cfg.is_deterministic(rel) {
            analysis.deterministic_files += 1;
        }
        if cfg.is_integer_only(rel) {
            analysis.integer_only_files += 1;
        }
        let text = std::fs::read_to_string(root.join(rel))?;
        let (diags, allows) = scan_source(rel, &text, cfg);
        analysis.diagnostics.extend(diags);
        analysis.allows.extend(allows);
    }
    Ok(analysis)
}

/// Recursively collects `.rs` files under `dir`, in sorted order.
fn collect_rs_files(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<String>,
) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        if cfg.is_excluded(&rel) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, cfg, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// One parsed allow directive, before use-tracking.
#[derive(Clone, Debug)]
struct PendingAllow {
    rule: Rule,
    reason: String,
    /// 1-based line of the comment itself.
    decl_line: usize,
    /// 1-based line the allow covers.
    covers_line: usize,
    used: bool,
}

/// Scans one file's source text. Exposed for tests.
pub fn scan_source(rel: &str, text: &str, cfg: &Config) -> (Vec<Diagnostic>, Vec<AllowRecord>) {
    let deterministic = cfg.is_deterministic(rel);
    let integer_only = cfg.is_integer_only(rel);
    let mut active: Vec<Rule> = Vec::new();
    for rule in Rule::PATTERN_RULES {
        if !cfg.rule_enabled(rule) || cfg.is_exempt(rel, rule) {
            continue;
        }
        let applies = match rule.applicability() {
            crate::rules::Applicability::Deterministic => deterministic,
            crate::rules::Applicability::IntegerOnly => integer_only,
            crate::rules::Applicability::Meta => false,
        };
        if applies {
            active.push(rule);
        }
    }

    let mut lexer = Lexer::new();
    let mut diagnostics = Vec::new();
    let mut allows: Vec<PendingAllow> = Vec::new();
    // (line, tokens, raw) for every non-test code line.
    let mut code_lines: Vec<(usize, Vec<Token>, String)> = Vec::new();
    // Allows from comment-only lines waiting for their next code line.
    let mut carried: Vec<(Rule, String, usize)> = Vec::new();

    let mut depth: usize = 0;
    let mut skip_above: Option<usize> = None;
    let mut cfg_test_pending = false;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = lexer.strip_line(raw);
        let opens = line.code.matches('{').count();
        let closes = line.code.matches('}').count();
        let depth_before = depth;
        depth = (depth + opens).saturating_sub(closes);

        if let Some(limit) = skip_above {
            // Inside a #[cfg(test)] block: skip everything (including
            // allow parsing — test hazards cannot touch replay artifacts).
            if depth <= limit {
                skip_above = None;
            }
            continue;
        }

        let squished: String = line.code.chars().filter(|c| !c.is_whitespace()).collect();
        if squished.contains("#[cfg(test)]") {
            if depth > depth_before {
                // `#[cfg(test)] mod tests {` on one line.
                skip_above = Some(depth_before);
            } else {
                cfg_test_pending = true;
            }
            continue;
        }
        if cfg_test_pending {
            if depth > depth_before {
                skip_above = Some(depth_before);
                cfg_test_pending = false;
            } else if opens > 0 {
                // The cfg(test) item opened and closed on this line.
                cfg_test_pending = false;
            } else if squished.ends_with(';') {
                // `mod tests;` — an out-of-line test module; nothing to
                // skip here (the file itself is not scanned as test code).
                cfg_test_pending = false;
            }
            continue;
        }

        let has_code = line.code.chars().any(|c| !c.is_whitespace());
        if let Some(comment) = &line.comment {
            match parse_allow(comment) {
                Some(Ok((rule, reason))) => {
                    if has_code {
                        allows.push(PendingAllow {
                            rule,
                            reason,
                            decl_line: lineno,
                            covers_line: lineno,
                            used: false,
                        });
                    } else {
                        carried.push((rule, reason, lineno));
                    }
                }
                Some(Err(())) => diagnostics.push(Diagnostic {
                    rule: Rule::BadAllow,
                    file: rel.to_string(),
                    line: lineno,
                    column: 1,
                    snippet: raw.trim().to_string(),
                }),
                None => {}
            }
        }
        if has_code {
            for (rule, reason, decl_line) in carried.drain(..) {
                allows.push(PendingAllow {
                    rule,
                    reason,
                    decl_line,
                    covers_line: lineno,
                    used: false,
                });
            }
            code_lines.push((lineno, tokenize(&line.code), raw.trim().to_string()));
        }
    }

    // Match patterns against every retained code line.
    for (lineno, tokens, raw) in &code_lines {
        for &rule in &active {
            for pattern in rule.patterns() {
                for start in 0..tokens.len() {
                    if tokens.len() - start < pattern.len() {
                        break;
                    }
                    let matched = pattern
                        .iter()
                        .zip(&tokens[start..])
                        .all(|(want, tok)| tok.text == *want);
                    if !matched {
                        continue;
                    }
                    let covered = allows
                        .iter_mut()
                        .find(|a| a.rule == rule && a.covers_line == *lineno);
                    if let Some(allow) = covered {
                        allow.used = true;
                    } else {
                        diagnostics.push(Diagnostic {
                            rule,
                            file: rel.to_string(),
                            line: *lineno,
                            column: tokens[start].col + 1,
                            snippet: raw.clone(),
                        });
                    }
                }
            }
        }
    }

    // Leftover carried allows (end of file) and unused allows are stale.
    for (_, _, decl_line) in carried {
        diagnostics.push(Diagnostic {
            rule: Rule::StaleAllow,
            file: rel.to_string(),
            line: decl_line,
            column: 1,
            snippet: line_snippet(text, decl_line),
        });
    }
    let mut used = Vec::new();
    for a in allows {
        if a.used {
            used.push(AllowRecord {
                rule: a.rule,
                file: rel.to_string(),
                line: a.decl_line,
                reason: a.reason,
            });
        } else if cfg.rule_enabled(Rule::StaleAllow) {
            diagnostics.push(Diagnostic {
                rule: Rule::StaleAllow,
                file: rel.to_string(),
                line: a.decl_line,
                column: 1,
                snippet: line_snippet(text, a.decl_line),
            });
        }
    }
    diagnostics.sort_by_key(|a| (a.line, a.column, a.rule));
    // One finding per (line, rule): `use std::time::{Instant, SystemTime}`
    // style lines would otherwise repeat the same message.
    diagnostics.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    (diagnostics, used)
}

fn line_snippet(text: &str, lineno: usize) -> String {
    text.lines()
        .nth(lineno - 1)
        .unwrap_or_default()
        .trim()
        .to_string()
}

/// Parses a `detlint::allow(rule, reason = "...")` directive out of a
/// comment's text via the shared [`parse_allow_directive`]. Returns
/// `None` if the comment is not a detlint directive, `Some(Err(()))` if
/// it is one but malformed (including an unknown rule id).
fn parse_allow(comment: &str) -> Option<Result<(Rule, String), ()>> {
    match parse_allow_directive(comment, ALLOW_PREFIX)? {
        Ok((rule_id, reason)) => match Rule::from_id(&rule_id) {
            Some(rule) => Some(Ok((rule, reason))),
            None => Some(Err(())),
        },
        Err(()) => Some(Err(())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det_cfg() -> Config {
        Config {
            deterministic: vec!["det".to_string()],
            integer_only: vec!["det/counters.rs".to_string()],
            ..Default::default()
        }
    }

    fn diags(rel: &str, src: &str) -> Vec<(Rule, usize, usize)> {
        let (d, _) = scan_source(rel, src, &det_cfg());
        d.into_iter().map(|d| (d.rule, d.line, d.column)).collect()
    }

    #[test]
    fn hazards_fire_only_in_tier() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(diags("det/a.rs", src), [(Rule::UnorderedCollection, 1, 23)]);
        assert_eq!(diags("other/a.rs", src), []);
    }

    #[test]
    fn comments_strings_and_tests_do_not_fire() {
        let src = "\
// HashMap in a comment\n\
/* Instant::now() */\n\
fn f() { let s = \"SystemTime\"; }\n\
#[cfg(test)]\n\
mod tests {\n\
    use std::collections::HashSet;\n\
}\n";
        assert_eq!(diags("det/a.rs", src), []);
    }

    #[test]
    fn trailing_allow_suppresses_and_is_counted() {
        let src = "use std::collections::HashMap; \
                   // detlint::allow(unordered-collection, reason = \"lookup only\")\n";
        let (d, a) = scan_source("det/a.rs", src, &det_cfg());
        assert!(d.is_empty());
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].rule, Rule::UnorderedCollection);
        assert_eq!(a[0].reason, "lookup only");
    }

    #[test]
    fn preceding_line_allow_covers_next_code_line() {
        let src = "// detlint::allow(wall-clock, reason = \"sanctioned re-export\")\n\
                   pub use wallclock::Stopwatch;\n";
        let (d, a) = scan_source("det/a.rs", src, &det_cfg());
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].line, 1);
    }

    #[test]
    fn unused_allow_is_stale() {
        let src = "// detlint::allow(wall-clock, reason = \"nothing here\")\n\
                   fn fine() {}\n";
        assert_eq!(diags("det/a.rs", src), [(Rule::StaleAllow, 1, 1)]);
    }

    #[test]
    fn allow_without_reason_is_bad() {
        let src = "fn f() {} // detlint::allow(env-read)\n";
        assert_eq!(diags("det/a.rs", src), [(Rule::BadAllow, 1, 1)]);
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let src = "use std::collections::HashMap; \
                   // detlint::allow(wall-clock, reason = \"wrong rule\")\n";
        let got = diags("det/a.rs", src);
        assert!(got.contains(&(Rule::UnorderedCollection, 1, 23)), "{got:?}");
        assert!(got.contains(&(Rule::StaleAllow, 1, 1)), "{got:?}");
    }

    #[test]
    fn float_accum_only_in_integer_only_files() {
        let src = "pub fn mean(sum: u64, n: u64) -> f64 { sum as f64 / n as f64 }\n";
        assert_eq!(diags("det/a.rs", src), []);
        // Three `f64` tokens on the line collapse to one finding.
        assert_eq!(diags("det/counters.rs", src), [(Rule::FloatAccum, 1, 34)]);
    }

    #[test]
    fn multi_token_paths_match() {
        let src = "fn go() { std::thread::spawn(|| {}); }\n";
        assert_eq!(diags("det/a.rs", src), [(Rule::ThreadSpawn, 1, 16)]);
        let src2 = "fn go() { std::env::var(\"HOME\").ok(); }\n";
        assert_eq!(diags("det/a.rs", src2), [(Rule::EnvRead, 1, 16)]);
    }

    #[test]
    fn identifier_boundaries_are_respected() {
        assert_eq!(diags("det/a.rs", "let my_thread = a_thread::spawned();\n"), []);
        assert_eq!(diags("det/a.rs", "let hashmaplike = 1;\n"), []);
    }
}
