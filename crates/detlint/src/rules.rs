//! The determinism rule set: identifiers, token patterns, and messages.
//!
//! Rules are matched against the **stripped token stream** of each line
//! (comments and string literals removed by [`crate::lex`]), so a rule
//! token appearing in documentation or in a string never fires. A pattern
//! is a sequence of exact tokens; identifiers only match whole identifiers
//! (`thread` never matches `a_thread`), and `::` is a single token.

/// One determinism rule.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Rule {
    /// Wall-clock reads (`Instant`, `SystemTime`, the sanctioned
    /// `Stopwatch` wrapper, or the `wallclock` module) in a deterministic
    /// crate.
    WallClock,
    /// Ad-hoc threading (`thread::spawn` / `thread::scope` /
    /// `thread::Builder`) outside `simkernel::pool`.
    ThreadSpawn,
    /// `HashMap` / `HashSet`: iteration order is unspecified and can leak
    /// into fold order.
    UnorderedCollection,
    /// Randomness that is not the seeded `simkernel::rng` PRNG.
    UnseededRandom,
    /// Environment reads on a deterministic path.
    EnvRead,
    /// `f32` / `f64` in a file declared integer-only (churn/metrics
    /// counters).
    FloatAccum,
    /// A `detlint::allow` comment that suppressed nothing.
    StaleAllow,
    /// A `detlint::allow` comment that does not parse (unknown rule or
    /// missing `reason = "..."`).
    BadAllow,
}

/// Where a rule applies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Applicability {
    /// Files under a `[deterministic] paths` prefix.
    Deterministic,
    /// Files listed under `[integer-only] paths`.
    IntegerOnly,
    /// Allow-comment hygiene: checked in every scanned file.
    Meta,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 8] = [
        Rule::WallClock,
        Rule::ThreadSpawn,
        Rule::UnorderedCollection,
        Rule::UnseededRandom,
        Rule::EnvRead,
        Rule::FloatAccum,
        Rule::StaleAllow,
        Rule::BadAllow,
    ];

    /// The rules that scan token patterns (everything except the
    /// allow-hygiene meta rules).
    pub const PATTERN_RULES: [Rule; 6] = [
        Rule::WallClock,
        Rule::ThreadSpawn,
        Rule::UnorderedCollection,
        Rule::UnseededRandom,
        Rule::EnvRead,
        Rule::FloatAccum,
    ];

    /// The kebab-case identifier used in config, allow comments, and
    /// diagnostics.
    pub fn id(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::UnorderedCollection => "unordered-collection",
            Rule::UnseededRandom => "unseeded-random",
            Rule::EnvRead => "env-read",
            Rule::FloatAccum => "float-accum",
            Rule::StaleAllow => "stale-allow",
            Rule::BadAllow => "bad-allow",
        }
    }

    /// Parses a rule identifier.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }

    pub fn applicability(self) -> Applicability {
        match self {
            Rule::FloatAccum => Applicability::IntegerOnly,
            Rule::StaleAllow | Rule::BadAllow => Applicability::Meta,
            _ => Applicability::Deterministic,
        }
    }

    /// Token sequences that fire this rule. Empty for meta rules.
    pub fn patterns(self) -> &'static [&'static [&'static str]] {
        match self {
            Rule::WallClock => &[
                &["Instant"],
                &["SystemTime"],
                &["UNIX_EPOCH"],
                &["Stopwatch"],
                &["wallclock"],
            ],
            Rule::ThreadSpawn => &[
                &["thread", "::", "spawn"],
                &["thread", "::", "scope"],
                &["thread", "::", "Builder"],
            ],
            Rule::UnorderedCollection => &[
                &["HashMap"],
                &["HashSet"],
                &["hash_map"],
                &["hash_set"],
            ],
            Rule::UnseededRandom => &[
                &["thread_rng"],
                &["from_entropy"],
                &["RandomState"],
                &["OsRng"],
                &["getrandom"],
                &["rand", "::", "random"],
            ],
            Rule::EnvRead => &[
                &["env", "::", "var"],
                &["env", "::", "var_os"],
                &["env", "::", "vars"],
            ],
            Rule::FloatAccum => &[&["f32"], &["f64"]],
            Rule::StaleAllow | Rule::BadAllow => &[],
        }
    }

    /// The human explanation appended to every diagnostic of this rule.
    pub fn explanation(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "wall-clock read in a deterministic crate; simulated time must come from \
                 simkernel::SimTime (profiling belongs in the sanctioned wallclock/span modules)"
            }
            Rule::ThreadSpawn => {
                "ad-hoc threading in a deterministic crate; all fan-out must go through \
                 simkernel::pool, whose index-ordered joins keep results schedule-independent"
            }
            Rule::UnorderedCollection => {
                "HashMap/HashSet iteration order is unspecified and can leak into fold order; \
                 use BTreeMap/BTreeSet or sort before folding"
            }
            Rule::UnseededRandom => {
                "nondeterministic randomness source; the only sanctioned PRNG is the seeded \
                 simkernel::rng family"
            }
            Rule::EnvRead => {
                "environment read on a deterministic path; a run must be a pure function of \
                 explicit config + seed"
            }
            Rule::FloatAccum => {
                "float in an integer-only counter file; float accumulation is order-sensitive \
                 and breaks byte-identical merges — keep counters integral and derive ratios \
                 at render time behind an audited allow"
            }
            Rule::StaleAllow => {
                "this detlint::allow suppressed nothing; remove it or move it onto the line \
                 it audits"
            }
            Rule::BadAllow => {
                "malformed detlint::allow; expected detlint::allow(<rule>, reason = \"...\")"
            }
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_id(r.id()), Some(r));
        }
        assert_eq!(Rule::from_id("nope"), None);
    }

    #[test]
    fn pattern_rules_have_patterns_and_meta_rules_do_not() {
        for r in Rule::PATTERN_RULES {
            assert!(!r.patterns().is_empty(), "{r} should have patterns");
        }
        assert!(Rule::StaleAllow.patterns().is_empty());
        assert!(Rule::BadAllow.patterns().is_empty());
    }
}
