//! `--fixtures`: the linter's self-test over seeded bad-code snippets.
//!
//! The fixture tree (`crates/detlint/tests/fixtures/`) carries its own
//! `detlint.toml` plus two kinds of files:
//!
//! * `bad/*.rs` — known-bad snippets annotated with rustc-style
//!   expectation markers: `//~ <rule-id> [<rule-id>…]` on the offending
//!   line. Self-test passes iff the actual findings for the file are
//!   **exactly** the expected `(line, rule)` set — a missed firing *and*
//!   a span drift both fail.
//! * `clean/*.rs` — idiomatic deterministic code (ordered collections,
//!   seeded PRNG, an audited allow) asserting zero false positives.
//!
//! Fixtures are never compiled; they are scanner input only, which lets
//! them seed hazards (`thread_rng`, stray `Instant::now`) without
//! dragging those patterns anywhere near the build.

use std::collections::BTreeSet;
use std::path::Path;

use crate::config::Config;
use crate::rules::Rule;
use crate::scan::scan_workspace;

/// The outcome of a fixture self-test run.
#[derive(Clone, Debug, Default)]
pub struct FixtureReport {
    /// Fixture files checked.
    pub checked: usize,
    /// Expected diagnostics confirmed.
    pub expected_hits: usize,
    /// Human-readable mismatch descriptions; empty means PASS.
    pub failures: Vec<String>,
}

impl FixtureReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs the self-test over the fixture tree at `root`.
pub fn run(root: &Path) -> Result<FixtureReport, String> {
    let cfg = Config::load(&root.join("detlint.toml"))?;
    let analysis =
        scan_workspace(root, &cfg).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    let mut report = FixtureReport::default();
    for rel in &analysis.files {
        let text = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("reading {rel}: {e}"))?;
        let expected = parse_markers(&text).map_err(|e| format!("{rel}: {e}"))?;
        let actual: BTreeSet<(usize, Rule)> = analysis
            .diagnostics
            .iter()
            .filter(|d| d.file == *rel)
            .map(|d| (d.line, d.rule))
            .collect();
        report.checked += 1;
        report.expected_hits += expected.intersection(&actual).count();
        for &(line, rule) in expected.difference(&actual) {
            report
                .failures
                .push(format!("{rel}:{line}: expected [{rule}] did not fire"));
        }
        for &(line, rule) in actual.difference(&expected) {
            report
                .failures
                .push(format!("{rel}:{line}: unexpected [{rule}] fired"));
        }
    }
    if report.checked == 0 {
        report
            .failures
            .push(format!("no fixture files found under {}", root.display()));
    }
    Ok(report)
}

/// Extracts `//~ rule [rule…]` markers as a `(line, rule)` set.
fn parse_markers(text: &str) -> Result<BTreeSet<(usize, Rule)>, String> {
    let mut out = BTreeSet::new();
    for (idx, line) in text.lines().enumerate() {
        let Some(at) = line.find("//~") else {
            continue;
        };
        for word in line[at + 3..].split_whitespace() {
            if word == "//~" {
                continue;
            }
            let rule = Rule::from_id(word)
                .ok_or_else(|| format!("line {}: unknown rule `{word}` in marker", idx + 1))?;
            out.insert((idx + 1, rule));
        }
    }
    Ok(out)
}

/// Renders the self-test outcome.
pub fn render(report: &FixtureReport) -> String {
    let mut out = String::new();
    for f in &report.failures {
        out.push_str(&format!("fixture FAIL: {f}\n"));
    }
    out.push_str(&format!(
        "detlint --fixtures: {} fixture files, {} expected diagnostics confirmed — {}\n",
        report.checked,
        report.expected_hits,
        if report.ok() { "PASS" } else { "FAIL" }
    ));
    out
}
