//! Line-oriented Rust lexing: comment/string stripping and tokenizing.
//!
//! This module is **shared between both static-analysis tools** in the
//! workspace: `detlint` (line-rule linting) and `bgpscale-detflow`
//! (call-graph passes) consume the same lexer, so the two tools can never
//! disagree about what is code and what is comment or literal.
//!
//! The scanner works line by line but keeps cross-line state (nested block
//! comments, multi-line raw strings), so a rule token inside a doc
//! comment, a string literal, or an HTML template never fires. Stripped
//! characters are replaced with spaces, which preserves column positions
//! for diagnostics.
//!
//! This is deliberately *not* a full Rust lexer — it is the smallest
//! state machine that is sound for the hazard patterns we match: exact
//! identifiers and `::` paths. The classic pitfalls are covered:
//! `'"'` char literals, lifetimes (`&'a str`), nested `/* /* */ */`
//! comments, and `r#"..."#` raw strings spanning lines.

/// Cross-line lexer state.
#[derive(Default)]
pub struct Lexer {
    /// Nesting depth of `/* */` block comments (Rust block comments nest).
    block_comment: usize,
    /// `Some(hashes)` while inside a multi-line raw string `r#"..."#`.
    raw_string: Option<usize>,
}

/// One stripped line.
pub struct Line {
    /// The code with comments and literal contents replaced by spaces
    /// (column-preserving).
    pub code: String,
    /// The text of the first `//` comment on the line, without the
    /// slashes, if any.
    pub comment: Option<String>,
    /// 0-based char column where that `//` comment starts, if any —
    /// callers that need the raw pre-comment text (e.g. detflow's
    /// stamp-mention check, where an identifier may sit inside a format
    /// string) slice the original line up to here.
    pub comment_col: Option<usize>,
}

impl Lexer {
    pub fn new() -> Lexer {
        Lexer::default()
    }

    /// Strips one line, updating cross-line state.
    pub fn strip_line(&mut self, line: &str) -> Line {
        let chars: Vec<char> = line.chars().collect();
        let mut out = String::with_capacity(chars.len());
        let mut comment = None;
        let mut comment_col = None;
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            if self.block_comment > 0 {
                if c == '*' && next == Some('/') {
                    self.block_comment -= 1;
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    self.block_comment += 1;
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(' ');
                    i += 1;
                }
                continue;
            }
            if let Some(hashes) = self.raw_string {
                if c == '"' && chars[i + 1..].iter().take_while(|&&h| h == '#').count() >= hashes {
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes;
                    self.raw_string = None;
                } else {
                    out.push(' ');
                    i += 1;
                }
                continue;
            }
            match c {
                '/' if next == Some('/') => {
                    comment = Some(chars[i + 2..].iter().collect::<String>());
                    comment_col = Some(i);
                    break;
                }
                '/' if next == Some('*') => {
                    self.block_comment += 1;
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    i = self.skip_normal_string(&chars, i, &mut out);
                }
                'r' | 'b' if Self::starts_raw_or_byte_string(&chars, i) => {
                    // Keep the prefix letters as spaces too; literals carry
                    // no tokens we match.
                    i = self.skip_prefixed_string(&chars, i, &mut out);
                }
                '\'' => {
                    i = Self::skip_char_or_lifetime(&chars, i, &mut out);
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            }
        }
        Line {
            code: out,
            comment,
            comment_col,
        }
    }

    /// True if position `i` starts `r"`, `r#"`, `b"`, `br"`, or `br#"`
    /// *and* is not the tail of a longer identifier (`attr"` is not valid
    /// Rust anyway, but `for r in…` must not trip this).
    fn starts_raw_or_byte_string(chars: &[char], i: usize) -> bool {
        if i > 0 {
            let prev = chars[i - 1];
            if prev.is_alphanumeric() || prev == '_' {
                return false;
            }
        }
        let mut j = i;
        if chars.get(j) == Some(&'b') {
            j += 1;
        }
        let raw = chars.get(j) == Some(&'r');
        if raw {
            j += 1;
            while chars.get(j) == Some(&'#') {
                j += 1;
            }
        }
        // `b"…"` (j == i+1, no r) or `r…"`/`br…"`.
        chars.get(j) == Some(&'"') && (raw || j == i + 1)
    }

    /// Consumes a normal `"…"` string starting at `i` (the opening quote),
    /// pushing spaces. An unterminated string is treated as ending at EOL
    /// (multi-line non-raw strings require a trailing `\`, which is not
    /// used in this workspace).
    fn skip_normal_string(&mut self, chars: &[char], mut i: usize, out: &mut String) -> usize {
        out.push(' ');
        i += 1;
        while i < chars.len() {
            match chars[i] {
                '\\' => {
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    out.push(' ');
                    return i + 1;
                }
                _ => {
                    out.push(' ');
                    i += 1;
                }
            }
        }
        i
    }

    /// Consumes a raw or byte string starting at the `r`/`b` prefix. If a
    /// raw string does not close on this line, records the open delimiter
    /// in `self.raw_string`.
    fn skip_prefixed_string(&mut self, chars: &[char], mut i: usize, out: &mut String) -> usize {
        let mut raw = false;
        if chars.get(i) == Some(&'b') {
            out.push(' ');
            i += 1;
        }
        if chars.get(i) == Some(&'r') {
            raw = true;
            out.push(' ');
            i += 1;
        }
        let mut hashes = 0;
        while chars.get(i) == Some(&'#') {
            hashes += 1;
            out.push(' ');
            i += 1;
        }
        debug_assert_eq!(chars.get(i), Some(&'"'));
        if !raw {
            return self.skip_normal_string(chars, i, out);
        }
        out.push(' ');
        i += 1;
        while i < chars.len() {
            if chars[i] == '"'
                && chars[i + 1..].iter().take_while(|&&h| h == '#').count() >= hashes
            {
                for _ in 0..=hashes {
                    out.push(' ');
                }
                return i + 1 + hashes;
            }
            out.push(' ');
            i += 1;
        }
        self.raw_string = Some(hashes);
        i
    }

    /// Disambiguates a `'` at `i`: a char literal (`'x'`, `'\n'`, `'"'`)
    /// is stripped; a lifetime tick (`&'a str`) is replaced by a space and
    /// the following identifier lexes normally (lifetimes never collide
    /// with our patterns — none is a bare hazard identifier).
    fn skip_char_or_lifetime(chars: &[char], i: usize, out: &mut String) -> usize {
        if chars.get(i + 1) == Some(&'\\') {
            // Escaped char literal: strip to the closing quote.
            let mut j = i + 2;
            while j < chars.len() && chars[j] != '\'' {
                j += 1;
            }
            let end = (j + 1).min(chars.len());
            for _ in i..end {
                out.push(' ');
            }
            return end;
        }
        if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1).is_some() {
            out.push_str("   ");
            return i + 3;
        }
        out.push(' ');
        i + 1
    }
}

/// One token of stripped code: its 0-based char column and text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub col: usize,
    pub text: String,
}

/// Tokenizes stripped code: identifiers, numbers, `::`, and single
/// punctuation characters. Whitespace separates.
pub fn tokenize(code: &str) -> Vec<Token> {
    let chars: Vec<char> = code.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            tokens.push(Token {
                col: start,
                text: chars[start..i].iter().collect(),
            });
        } else if c.is_ascii_digit() {
            // A numeric literal, including any type suffix (`1.0f64`):
            // one token, so suffixes never masquerade as type identifiers.
            let start = i;
            while i < chars.len()
                && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
            {
                i += 1;
            }
            tokens.push(Token {
                col: start,
                text: chars[start..i].iter().collect(),
            });
        } else if c == ':' && chars.get(i + 1) == Some(&':') {
            tokens.push(Token {
                col: i,
                text: "::".to_string(),
            });
            i += 2;
        } else {
            tokens.push(Token {
                col: i,
                text: c.to_string(),
            });
            i += 1;
        }
    }
    tokens
}

/// Parses a `<prefix>(rule, reason = "...")` audited-suppression
/// directive out of a comment's text, e.g. with prefix `detlint::allow`
/// or `detflow::allow`. Returns `None` if the comment is not a directive
/// for that prefix, `Some(Err(()))` if it is one but malformed (missing
/// reason, unquoted reason, unterminated argument list). The rule
/// identifier is returned as text; each tool maps it onto its own rule
/// enum (an unknown id is that tool's `bad-allow`).
///
/// A directive must be the *start* of its comment — prose that merely
/// mentions the syntax, like this doc comment or a `//!` example, is
/// never a directive (doc comments reach us with a leading `!`/`/`,
/// which also disqualifies them).
pub fn parse_allow_directive(
    comment: &str,
    prefix: &str,
) -> Option<Result<(String, String), ()>> {
    let trimmed = comment.trim_start();
    if !trimmed.starts_with(prefix) {
        return None;
    }
    let rest = trimmed[prefix.len()..].trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Some(Err(()));
    };
    let id_len = rest
        .char_indices()
        .find(|&(_, c)| !(c.is_ascii_alphanumeric() || c == '-' || c == '_'))
        .map_or(rest.len(), |(i, _)| i);
    let rule = rest[..id_len].to_string();
    if rule.is_empty() {
        return Some(Err(()));
    }
    let rest = rest[id_len..].trim_start();
    let Some(rest) = rest.strip_prefix(',') else {
        return Some(Err(())); // `reason` is mandatory: suppressions are audited.
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("reason") else {
        return Some(Err(()));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('=') else {
        return Some(Err(()));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('"') else {
        return Some(Err(()));
    };
    let Some(end) = rest.find('"') else {
        return Some(Err(()));
    };
    let reason = rest[..end].trim().to_string();
    if reason.is_empty() || !rest[end + 1..].trim_start().starts_with(')') {
        return Some(Err(()));
    }
    Some(Ok((rule, reason)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip(src: &str) -> Vec<String> {
        let mut lx = Lexer::new();
        src.lines().map(|l| lx.strip_line(l).code).collect()
    }

    #[test]
    fn line_comments_are_stripped_and_captured() {
        let mut lx = Lexer::new();
        let line = lx.strip_line("let x = 1; // HashMap here");
        assert_eq!(line.code, "let x = 1; ");
        assert_eq!(line.comment.as_deref(), Some(" HashMap here"));
    }

    #[test]
    fn strings_are_stripped_column_preserving() {
        let mut lx = Lexer::new();
        let line = lx.strip_line(r#"let s = "Instant::now"; let y = 2;"#);
        assert!(!line.code.contains("Instant"));
        assert_eq!(line.code.chars().count(), r#"let s = "Instant::now"; let y = 2;"#.len());
        assert!(line.code.contains("let y = 2;"));
    }

    #[test]
    fn escaped_quote_in_string_does_not_end_it() {
        let mut lx = Lexer::new();
        let line = lx.strip_line(r#"let s = "a\"HashMap"; ok()"#);
        assert!(!line.code.contains("HashMap"));
        assert!(line.code.contains("ok()"));
    }

    #[test]
    fn nested_block_comments_span_lines() {
        let out = strip("a /* x /* SystemTime */ y\nstill SystemTime */ b");
        assert!(!out[0].contains("SystemTime"));
        assert!(!out[1].contains("SystemTime"));
        assert!(out[1].contains('b'));
    }

    #[test]
    fn raw_strings_span_lines() {
        let out = strip("let h = r#\"<b>\nInstant::now()\n\"# ; tail()");
        assert!(!out[1].contains("Instant"));
        assert!(out[2].contains("tail()"));
    }

    #[test]
    fn char_literal_with_quote_and_lifetimes() {
        let mut lx = Lexer::new();
        let line = lx.strip_line(r#"if c == '"' { f::<&'a str>(HashMap) }"#);
        // The '"' char literal must not open a string that swallows the rest.
        assert!(line.code.contains("HashMap"));
        let line2 = lx.strip_line(r"let n = '\n'; g()");
        assert!(line2.code.contains("g()"));
    }

    #[test]
    fn r_identifier_is_not_a_raw_string() {
        let mut lx = Lexer::new();
        let line = lx.strip_line(r#"for r in rows { use_it(r, "x") }"#);
        assert!(line.code.contains("for r in rows"));
    }

    #[test]
    fn tokenizer_yields_idents_and_paths() {
        let toks = tokenize("std::thread::spawn(f)");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["std", "::", "thread", "::", "spawn", "(", "f", ")"]);
        assert_eq!(toks[2].col, 5);
    }

    #[test]
    fn allow_directive_parses_for_any_tool_prefix() {
        let ok = parse_allow_directive(
            " detlint::allow(wall-clock, reason = \"bench only\")",
            "detlint::allow",
        );
        assert_eq!(
            ok,
            Some(Ok(("wall-clock".to_string(), "bench only".to_string())))
        );
        let flow = parse_allow_directive(
            " detflow::allow(panic-surface, reason = \"index in bounds by construction\")",
            "detflow::allow",
        );
        assert!(matches!(flow, Some(Ok((r, _))) if r == "panic-surface"));
        // Wrong prefix: not a directive at all.
        assert_eq!(
            parse_allow_directive(" detflow::allow(x, reason = \"y\")", "detlint::allow"),
            None
        );
        // Malformed: missing reason.
        assert_eq!(
            parse_allow_directive(" detlint::allow(env-read)", "detlint::allow"),
            Some(Err(()))
        );
    }

    #[test]
    fn comment_col_points_at_the_slashes() {
        let mut lx = Lexer::new();
        let line = lx.strip_line("let x = 1; // trailing");
        assert_eq!(line.comment_col, Some(11));
        let none = lx.strip_line("let y = 2;");
        assert_eq!(none.comment_col, None);
    }

    #[test]
    fn numeric_suffixes_do_not_split() {
        let toks = tokenize("let x = 1.0f64 + y_f64;");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"1.0f64"));
        assert!(texts.contains(&"y_f64"));
        assert!(!texts.contains(&"f64"));
    }
}
