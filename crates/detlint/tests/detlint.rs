//! Integration tests for `bgpscale-detlint`: every rule fires at the
//! expected span over the seeded fixtures, the clean fixture produces
//! zero findings, and — the gate that matters — the real workspace scans
//! clean under the checked-in `detlint.toml`. That last test makes
//! `cargo test -p bgpscale-detlint` a determinism gate in itself, not
//! just a linter unit-test suite.

use std::path::{Path, PathBuf};

use bgpscale_detlint::config::Config;
use bgpscale_detlint::rules::Rule;
use bgpscale_detlint::scan::scan_workspace;
use bgpscale_detlint::{diag, fixtures};

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn fixture_analysis() -> bgpscale_detlint::Analysis {
    let root = fixtures_root();
    let cfg = Config::load(&root.join("detlint.toml")).expect("fixture config");
    scan_workspace(&root, &cfg).expect("fixture scan")
}

/// `(file, line, rule)` triples of the analysis, for span assertions.
fn findings(a: &bgpscale_detlint::Analysis) -> Vec<(String, usize, Rule)> {
    a.diagnostics
        .iter()
        .map(|d| (d.file.clone(), d.line, d.rule))
        .collect()
}

#[test]
fn fixture_self_test_passes() {
    let report = fixtures::run(&fixtures_root()).expect("fixtures run");
    assert!(
        report.ok(),
        "fixture self-test failed:\n{}",
        fixtures::render(&report)
    );
    assert!(report.checked >= 9, "expected all fixture files scanned");
}

#[test]
fn every_rule_fires_somewhere_in_the_bad_fixtures() {
    let a = fixture_analysis();
    for rule in Rule::ALL {
        assert!(
            a.diagnostics.iter().any(|d| d.rule == rule),
            "rule {rule} fired nowhere in the bad fixtures"
        );
    }
}

#[test]
fn rules_fire_with_exact_spans() {
    let a = fixture_analysis();
    let got = findings(&a);
    // Spot-check precise (file, line) anchors, one per rule family.
    for (file, line, rule) in [
        ("bad/hashmap_iter.rs", 8, Rule::UnorderedCollection),
        ("bad/instant_now.rs", 6, Rule::WallClock),
        ("bad/system_time.rs", 6, Rule::WallClock),
        ("bad/thread_spawn.rs", 6, Rule::ThreadSpawn),
        ("bad/unseeded_random.rs", 7, Rule::UnseededRandom),
        ("bad/env_read.rs", 6, Rule::EnvRead),
        ("bad/float_accum.rs", 8, Rule::FloatAccum),
        ("bad/stale_allow.rs", 5, Rule::StaleAllow),
        ("bad/stale_allow.rs", 10, Rule::BadAllow),
    ] {
        assert!(
            got.contains(&(file.to_string(), line, rule)),
            "expected [{rule}] at {file}:{line}; got {got:?}"
        );
    }
}

#[test]
fn clean_fixture_has_zero_findings_and_a_counted_allow() {
    let a = fixture_analysis();
    let clean: Vec<_> = a
        .diagnostics
        .iter()
        .filter(|d| d.file.starts_with("clean/"))
        .collect();
    assert!(clean.is_empty(), "false positives in clean fixture: {clean:?}");
    let audited: Vec<_> = a.allows.iter().filter(|al| al.file.starts_with("clean/")).collect();
    assert_eq!(audited.len(), 1, "the clean fixture's allow must be counted");
    assert_eq!(audited[0].rule, Rule::WallClock);
    assert!(audited[0].reason.contains("profiling"));
}

#[test]
fn lexer_extraction_changed_zero_fixture_diagnostics() {
    // Golden regression for the `detlint::lex` extraction (the shared
    // lexer consumed by both detlint and detflow): the complete, ordered
    // (file, line, rule) list over the fixture tree was captured from the
    // pre-extraction linter and must never drift. A lexer change that
    // moves, adds, or drops ANY fixture diagnostic fails here.
    let a = fixture_analysis();
    let got: Vec<(String, usize, String)> = a
        .diagnostics
        .iter()
        .map(|d| (d.file.clone(), d.line, d.rule.id().to_string()))
        .collect();
    let expected: Vec<(&str, usize, &str)> = vec![
        ("bad/env_read.rs", 6, "env-read"),
        ("bad/env_read.rs", 10, "env-read"),
        ("bad/env_read.rs", 14, "env-read"),
        ("bad/float_accum.rs", 8, "float-accum"),
        ("bad/float_accum.rs", 13, "float-accum"),
        ("bad/float_accum.rs", 14, "float-accum"),
        ("bad/hashmap_iter.rs", 8, "unordered-collection"),
        ("bad/hashmap_iter.rs", 10, "unordered-collection"),
        ("bad/hashmap_iter.rs", 19, "unordered-collection"),
        ("bad/instant_now.rs", 6, "wall-clock"),
        ("bad/instant_now.rs", 12, "wall-clock"),
        ("bad/stale_allow.rs", 5, "stale-allow"),
        ("bad/stale_allow.rs", 10, "bad-allow"),
        ("bad/stale_allow.rs", 15, "stale-allow"),
        ("bad/stale_allow.rs", 15, "unordered-collection"),
        ("bad/system_time.rs", 6, "wall-clock"),
        ("bad/system_time.rs", 7, "wall-clock"),
        ("bad/thread_spawn.rs", 6, "thread-spawn"),
        ("bad/thread_spawn.rs", 9, "thread-spawn"),
        ("bad/thread_spawn.rs", 16, "thread-spawn"),
        ("bad/unseeded_random.rs", 7, "unseeded-random"),
        ("bad/unseeded_random.rs", 9, "unseeded-random"),
        ("bad/unseeded_random.rs", 14, "unordered-collection"),
        ("bad/unseeded_random.rs", 14, "unseeded-random"),
        ("bad/unseeded_random.rs", 15, "unseeded-random"),
        ("bad/unseeded_random.rs", 19, "unseeded-random"),
        ("bad/unseeded_random.rs", 23, "unseeded-random"),
    ];
    let expected: Vec<(String, usize, String)> = expected
        .into_iter()
        .map(|(f, l, r)| (f.to_string(), l, r.to_string()))
        .collect();
    assert_eq!(got, expected, "fixture diagnostics drifted from the pre-extraction golden set");
}

#[test]
fn json_report_is_renderable_and_lists_rules() {
    let a = fixture_analysis();
    let json = diag::render_json(&a);
    assert!(json.starts_with(&format!(
        "{{\n  \"schema_version\": {},\n",
        bgpscale_detlint::SCHEMA_VERSION
    )));
    assert!(json.contains("\"violations\": ["));
    assert!(json.contains("\"rule\": \"unordered-collection\""));
    assert!(json.contains("\"ok\": false"));
    // Escaping: every quote inside snippets must be escaped — a quick
    // structural sanity check is that the quote count is even.
    assert_eq!(json.matches('"').count() % 2, 0);
    let human = diag::render_human(&a, false);
    assert!(human.contains("detlint: FAIL"));
}

#[test]
fn workspace_is_clean() {
    let root = workspace_root();
    let cfg = Config::load(&root.join("detlint.toml")).expect("workspace detlint.toml");
    let a = scan_workspace(&root, &cfg).expect("workspace scan");
    assert!(
        !a.files.is_empty() && a.deterministic_files > 10,
        "scan looks hollow: {} files, {} deterministic — check detlint.toml paths",
        a.files.len(),
        a.deterministic_files
    );
    let rendered: Vec<String> = a.diagnostics.iter().map(|d| d.render()).collect();
    assert!(
        a.diagnostics.is_empty(),
        "the workspace must scan clean (fix the hazard or add an audited \
         detlint::allow):\n{}",
        rendered.join("\n")
    );
    // The audited allows are a curated list — additions should be
    // deliberate, so keep a visible floor and ceiling on their count.
    assert!(
        !a.allows.is_empty() && a.allows.len() < 32,
        "unexpected audited-allow count: {}",
        a.allows.len()
    );
}

#[test]
fn workspace_scan_is_deterministic() {
    let root = workspace_root();
    let cfg = Config::load(&root.join("detlint.toml")).expect("workspace detlint.toml");
    let a = scan_workspace(&root, &cfg).expect("scan 1");
    let b = scan_workspace(&root, &cfg).expect("scan 2");
    assert_eq!(diag::render_json(&a), diag::render_json(&b));
}

#[test]
fn seeded_violation_is_caught_end_to_end() {
    // The same check CI's "seeded violation" gate performs, but over a
    // synthetic tree in the temp dir so it cannot race the
    // `workspace_is_clean` scan of the real repository.
    let root = std::env::temp_dir().join(format!("detlint-seeded-{}", std::process::id()));
    let src: &Path = &root.join("src");
    std::fs::create_dir_all(src).expect("create temp tree");
    std::fs::write(
        root.join("detlint.toml"),
        "[scan]\ninclude = [\"src\"]\n[deterministic]\npaths = [\"src\"]\n",
    )
    .expect("write config");
    std::fs::write(
        src.join("bad.rs"),
        "pub fn bad() -> u64 { std::time::Instant::now().elapsed().as_secs() }\n",
    )
    .expect("write seeded violation");
    let cfg = Config::load(&root.join("detlint.toml")).expect("temp config");
    let a = scan_workspace(&root, &cfg);
    std::fs::remove_dir_all(&root).expect("remove temp tree");
    let a = a.expect("scan with seeded violation");
    assert_eq!(
        findings(&a),
        [("src/bad.rs".to_string(), 1, Rule::WallClock)],
        "seeded Instant::now was not caught exactly once"
    );
}
