//! Seeded violation: randomness that is not the workspace's seeded PRNG.
//! Anything drawing from process or OS entropy makes replays impossible;
//! the only sanctioned source is `simkernel::rng` seeded from the
//! experiment's master seed.

pub fn shuffle_events(events: &mut Vec<u64>) {
    let mut rng = thread_rng(); //~ unseeded-random
    let _ = &mut rng;
    let salt: u64 = rand::random(); //~ unseeded-random
    events.push(salt);
}

pub fn hasher_state() {
    use std::collections::hash_map::RandomState; //~ unordered-collection unseeded-random
    let _ = RandomState::new(); //~ unseeded-random
}

pub fn os_entropy(buf: &mut [u8]) {
    getrandom(buf); //~ unseeded-random
}

pub fn reseed() -> u64 {
    let rng = SmallRng::from_entropy(); //~ unseeded-random
    let _ = rng;
    7
}
