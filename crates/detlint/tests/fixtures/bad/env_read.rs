//! Seeded violation: environment reads on a deterministic path. A run
//! must be a pure function of explicit config + seed — `SOURCE_DATE`,
//! locale, or any other ambient state must not leak in.

pub fn build_date() -> String {
    std::env::var("SOURCE_DATE").unwrap_or_default() //~ env-read
}

pub fn all_ambient() -> usize {
    std::env::vars().count() //~ env-read
}

pub fn os_flavored() -> bool {
    std::env::var_os("TZ").is_some() //~ env-read
}
