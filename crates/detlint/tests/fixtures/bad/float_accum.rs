//! Seeded violation: float accumulation in a counter file declared
//! integer-only. Float addition is not associative, so a parallel merge
//! that folds partial sums in a different order produces a different
//! byte stream — counters must stay integral, with ratios derived at
//! render time.

pub struct ChurnCounter {
    total: f64, //~ float-accum
    events: u64,
}

impl ChurnCounter {
    pub fn add(&mut self, updates: f32) { //~ float-accum
        self.total += updates as f64; //~ float-accum
        self.events += 1;
    }

    pub fn events(&self) -> u64 {
        self.events
    }
}
