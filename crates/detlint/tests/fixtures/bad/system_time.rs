//! Seeded violation: wall-clock date reads. A `SystemTime`-derived value
//! in an artifact makes two otherwise-identical runs differ by when they
//! were launched.

pub fn report_stamp() -> u64 {
    std::time::SystemTime::now() //~ wall-clock
        .duration_since(std::time::UNIX_EPOCH) //~ wall-clock
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
