//! Seeded violation: folding over an unordered map on a deterministic
//! path. Iteration order is unspecified, so the fold result (and any
//! artifact derived from it) depends on the hasher — exactly the class of
//! bug the jobs-1/4/8 runtime tests can only catch by luck.
//!
//! NOTE: fixtures are scanner input, never compiled.

use std::collections::HashMap; //~ unordered-collection

pub fn churn_by_type(counts: &HashMap<u32, u64>) -> Vec<(u32, u64)> { //~ unordered-collection
    let mut out = Vec::new();
    for (ty, count) in counts.iter() {
        out.push((*ty, *count));
    }
    out
}

pub fn dedup_links(links: &[(u32, u32)]) -> usize {
    let mut seen = std::collections::HashSet::new(); //~ unordered-collection
    links.iter().filter(|l| seen.insert(**l)).count()
}

// A mention of HashMap in a comment, and one in a string, must NOT fire:
pub fn describe() -> &'static str {
    "prefer BTreeMap over HashMap on deterministic paths"
}
