//! Seeded violation: ad-hoc threading in a deterministic crate. Any
//! fan-out that does not go through `simkernel::pool`'s index-ordered
//! joins makes the fold order depend on the scheduler.

pub fn parallel_fold(xs: &[u64]) -> u64 {
    let handle = std::thread::spawn(move || 0u64); //~ thread-spawn
    let base = handle.join().unwrap_or(0);
    let mut total = base;
    std::thread::scope(|s| { //~ thread-spawn
        s.spawn(|| total += xs.iter().sum::<u64>());
    });
    total
}

pub fn named_worker() {
    let b = std::thread::Builder::new(); //~ thread-spawn
    let _ = b;
}
