//! Seeded violation: reading the wall clock inside a deterministic crate.
//! Host time must never influence simulated behavior; profiling belongs
//! in the sanctioned `simkernel::wallclock` / `obs::span` modules.

pub fn service_time_us() -> u128 {
    let started = std::time::Instant::now(); //~ wall-clock
    expensive();
    started.elapsed().as_micros()
}

pub fn jitter_seed() -> u64 {
    use std::time::Instant; //~ wall-clock
    0
}

fn expensive() {}
