//! Seeded violation: allow-comment hygiene. A suppression that outlives
//! the hazard it audited must be removed (stale-allow), and a suppression
//! without an auditable reason never counts (bad-allow).

// detlint::allow(wall-clock, reason = "nothing on the next line reads a clock") //~ stale-allow
pub fn perfectly_fine() -> u64 {
    7
}

pub fn also_fine() -> u64 { 8 } // detlint::allow(env-read) //~ bad-allow

pub fn wrong_rule() {
    // The allow names a different rule than the violation, so the hazard
    // still fires and the allow is stale.
    let m = std::collections::HashMap::<u32, u32>::new(); // detlint::allow(wall-clock, reason = "mismatched rule") //~ unordered-collection stale-allow
    let _ = m;
}
