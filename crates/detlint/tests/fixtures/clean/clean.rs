//! Clean fixture: idiomatic deterministic-tier code. Every construct here
//! is the sanctioned counterpart of a hazard in `../bad/`, plus one
//! audited allow that **is** used — the scan must report zero findings
//! (false positives fail the self-test).

use std::collections::{BTreeMap, BTreeSet};

/// Ordered fold: BTreeMap iteration order is the key order, always.
pub fn churn_by_type(counts: &BTreeMap<u32, u64>) -> Vec<(u32, u64)> {
    counts.iter().map(|(t, c)| (*t, *c)).collect()
}

/// Ordered dedup.
pub fn dedup_links(links: &[(u32, u32)]) -> usize {
    let mut seen = BTreeSet::new();
    links.iter().filter(|l| seen.insert(**l)).count()
}

/// Integer-only counters (this file is declared integer-only): exact sums
/// merge bit-identically in any order.
pub struct Counter {
    total_e9: u64,
    events: u64,
}

impl Counter {
    pub fn add(&mut self, micros: u64) {
        self.total_e9 += micros * 1000;
        self.events += 1;
    }
}

/// Seeded randomness via the workspace PRNG — replayable from the seed.
pub fn jitter(seed: u64) -> u64 {
    splitmix64(seed ^ 0x9e37_79b9_7f4a_7c15)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The audited escape hatch in action: a wall-clock type on a
/// deterministic path, suppressed by a counted, reasoned allow (fixtures
/// are scanner input, never compiled, so the path need not resolve).
pub fn profile_hook() {
    let _watch = sanctioned::Stopwatch::start(); // detlint::allow(wall-clock, reason = "bench-only profiling scope; never enters deterministic artifacts")
}

// Hazard names in comments (Instant::now, HashMap, thread_rng) and in
// strings must never fire:
pub fn describe() -> &'static str {
    "avoid Instant::now(), HashMap iteration, and thread_rng() in sim code"
}

#[cfg(test)]
mod tests {
    // Unit tests are exercised by `cargo test`, not replayed; hazards in
    // them cannot corrupt artifacts, so the scanner skips this block.
    use std::collections::HashSet;
    use std::time::Instant;

    #[test]
    fn scratch() {
        let _ = Instant::now();
        let _: HashSet<u32> = HashSet::new();
    }
}
