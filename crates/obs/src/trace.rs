//! Structured event tracing: per-event JSONL records with sampling.
//!
//! A [`TraceBuffer`] collects [`TraceRecord`]s in memory during a
//! simulation (the parallel harness needs buffering so that per-event
//! traces can be concatenated in event-index order — streaming straight
//! from worker threads would interleave nondeterministically); a
//! [`TraceWriter`] then streams any iterator of records to an
//! `io::Write` as one JSON object per line.
//!
//! Records are integer-only and carry the C-event index, so a trace file
//! is byte-identical across `--jobs` levels, same as `metrics.json`.

use std::io::{self, Write};

use crate::observer::EventKind;

/// One traced simulator event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// C-event index within the experiment (0 for standalone runs).
    pub event: u32,
    /// Simulated time in microseconds.
    pub t_us: u64,
    /// The node at which the event happened (receiver for deliveries).
    pub node: u32,
    /// What happened.
    pub kind: EventKind,
    /// The prefix involved, when the event carries one.
    pub prefix: Option<u32>,
    /// AS-path length of a delivered announcement.
    pub path_len: Option<u32>,
    /// Primary (lowest) root-cause id of a stamped delivery.
    pub root: Option<u32>,
    /// Causal depth of a stamped delivery.
    pub depth: Option<u32>,
}

impl TraceRecord {
    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = format!(
            "{{\"event\":{},\"t_us\":{},\"node\":{},\"kind\":\"{}\"",
            self.event,
            self.t_us,
            self.node,
            self.kind.name()
        );
        if let Some(p) = self.prefix {
            s.push_str(&format!(",\"prefix\":{p}"));
        }
        if let Some(l) = self.path_len {
            s.push_str(&format!(",\"path_len\":{l}"));
        }
        if let Some(r) = self.root {
            s.push_str(&format!(",\"root\":{r}"));
        }
        if let Some(d) = self.depth {
            s.push_str(&format!(",\"depth\":{d}"));
        }
        s.push('}');
        s
    }
}

/// An in-memory trace collector with 1-in-N sampling.
///
/// Sampling counts *traceable* hook firings (deliveries, MRAI flushes,
/// decision runs) with a per-buffer counter, so which events are kept is
/// a pure function of the simulation — not of wall clock or scheduling.
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    /// The C-event index stamped into every record.
    event: u32,
    /// Keep every `sample_every`-th record; 1 = keep everything.
    sample_every: u64,
    seen: u64,
    records: Vec<TraceRecord>,
}

impl TraceBuffer {
    /// Creates a buffer for C-event `event`, keeping one record per
    /// `sample_every` candidates (`sample_every` is clamped to ≥ 1).
    pub fn new(event: u32, sample_every: u64) -> TraceBuffer {
        TraceBuffer {
            event,
            sample_every: sample_every.max(1),
            seen: 0,
            records: Vec::new(),
        }
    }

    /// Offers a record; it is kept if the sampling counter selects it.
    /// The first candidate is always kept (so short runs are never
    /// invisible), then every `sample_every`-th one after it.
    #[inline]
    pub fn offer(&mut self, make: impl FnOnce(u32) -> TraceRecord) {
        if self.seen.is_multiple_of(self.sample_every) {
            self.records.push(make(self.event));
        }
        self.seen += 1;
    }

    /// Candidates offered so far (kept + skipped).
    pub fn offered(&self) -> u64 {
        self.seen
    }

    /// The records kept so far, in simulation order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consumes the buffer, returning its records.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }
}

/// Streams trace records as JSONL.
pub struct TraceWriter<W: Write> {
    out: W,
    written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Wraps a sink.
    pub fn new(out: W) -> TraceWriter<W> {
        TraceWriter { out, written: 0 }
    }

    /// Writes the schema-version header line. Call once, before any
    /// records, when the sink is a persisted artifact: the workspace
    /// artifact contract (detflow's artifact-contract pass) requires
    /// every written file to carry its schema version. The header does
    /// not count toward [`TraceWriter::written`].
    pub fn write_header(&mut self) -> io::Result<()> {
        self.out.write_all(
            format!("{{\"schema_version\":{},\"kind\":\"trace\"}}\n", crate::SCHEMA_VERSION)
                .as_bytes(),
        )
    }

    /// Writes one record as a line.
    pub fn write_record(&mut self, r: &TraceRecord) -> io::Result<()> {
        self.out.write_all(r.to_json_line().as_bytes())?;
        self.out.write_all(b"\n")?;
        self.written += 1;
        Ok(())
    }

    /// Writes every record of an iterator.
    pub fn write_all<'a>(
        &mut self,
        records: impl IntoIterator<Item = &'a TraceRecord>,
    ) -> io::Result<()> {
        for r in records {
            self.write_record(r)?;
        }
        Ok(())
    }

    /// Lines written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64) -> TraceRecord {
        TraceRecord {
            event: 3,
            t_us: t,
            node: 7,
            kind: EventKind::Deliver,
            prefix: Some(1),
            path_len: Some(4),
            root: Some(2),
            depth: Some(5),
        }
    }

    #[test]
    fn json_line_includes_optional_fields_only_when_present() {
        let full = rec(10).to_json_line();
        assert_eq!(
            full,
            "{\"event\":3,\"t_us\":10,\"node\":7,\"kind\":\"deliver\",\"prefix\":1,\
             \"path_len\":4,\"root\":2,\"depth\":5}"
        );
        let bare = TraceRecord {
            prefix: None,
            path_len: None,
            root: None,
            depth: None,
            kind: EventKind::MraiExpire,
            ..rec(10)
        }
        .to_json_line();
        assert_eq!(bare, "{\"event\":3,\"t_us\":10,\"node\":7,\"kind\":\"mrai_expire\"}");
    }

    #[test]
    fn sampling_keeps_first_then_every_nth() {
        let mut b = TraceBuffer::new(0, 3);
        for t in 0..10u64 {
            b.offer(|event| TraceRecord { event, ..rec(t) });
        }
        let kept: Vec<u64> = b.records().iter().map(|r| r.t_us).collect();
        assert_eq!(kept, vec![0, 3, 6, 9]);
        assert_eq!(b.offered(), 10);
    }

    #[test]
    fn sample_every_zero_means_keep_all() {
        let mut b = TraceBuffer::new(0, 0);
        for t in 0..5u64 {
            b.offer(|event| TraceRecord { event, ..rec(t) });
        }
        assert_eq!(b.records().len(), 5);
    }

    #[test]
    fn writer_streams_jsonl() {
        let mut w = TraceWriter::new(Vec::new());
        let records = [rec(1), rec(2)];
        w.write_all(&records).unwrap();
        assert_eq!(w.written(), 2);
        let bytes = w.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn header_is_stamped_and_uncounted() {
        let mut w = TraceWriter::new(Vec::new());
        w.write_header().unwrap();
        w.write_record(&rec(1)).unwrap();
        assert_eq!(w.written(), 1, "the header is not a record");
        let text = String::from_utf8(w.finish().unwrap()).unwrap();
        let first = text.lines().next().unwrap();
        assert_eq!(
            first,
            format!("{{\"schema_version\":{},\"kind\":\"trace\"}}", crate::SCHEMA_VERSION)
        );
    }
}
