//! Wall-clock span scopes aggregated into a per-phase profile.
//!
//! `span!("generate_topology")` returns an RAII guard; when it drops, the
//! elapsed wall time is folded into a process-global registry keyed by
//! span name. `repro profile` prints the resulting phase breakdown.
//!
//! Spans are **wall-clock** and therefore live outside the deterministic
//! world: they never enter `metrics.json` or trace files, only the
//! human-facing profile. Recording from worker threads is safe (the
//! registry is a mutex over a `BTreeMap`); per-span cost is one lock per
//! scope exit, so spans belong around *phases* (topology generation, the
//! event fan-out, the measurement fold), never inside per-event hot loops.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use bgpscale_simkernel::wallclock::Stopwatch;

/// Aggregate timing of one named span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of times the span was entered and exited.
    pub calls: u64,
    /// Total wall time across all calls, in nanoseconds.
    pub total_ns: u128,
}

impl SpanStats {
    /// Mean wall time per call in seconds (0 with no calls).
    pub fn mean_secs(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.calls as f64 / 1e9
        }
    }

    /// Total wall time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, SpanStats>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, SpanStats>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Folds one completed scope into the global profile. Usually called via
/// the guard's `Drop`, but exposed for manual instrumentation.
pub fn record(name: &'static str, elapsed_ns: u128) {
    let mut map = registry().lock().expect("span registry poisoned");
    let stats = map.entry(name).or_default();
    stats.calls += 1;
    stats.total_ns += elapsed_ns;
}

/// A snapshot of every span recorded so far, in name order.
pub fn snapshot() -> Vec<(&'static str, SpanStats)> {
    registry()
        .lock()
        .expect("span registry poisoned")
        .iter()
        .map(|(&k, &v)| (k, v))
        .collect()
}

/// The stats of one span, if it has been recorded.
pub fn get(name: &str) -> Option<SpanStats> {
    registry()
        .lock()
        .expect("span registry poisoned")
        .get(name)
        .copied()
}

/// Clears the global profile (call at the start of a profiled run so the
/// report covers exactly that run).
pub fn reset() {
    registry().lock().expect("span registry poisoned").clear();
}

/// RAII guard created by [`crate::span!`]; records on drop.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    watch: Stopwatch,
}

impl SpanGuard {
    /// Enters a named span (prefer the [`crate::span!`] macro).
    pub fn enter(name: &'static str) -> SpanGuard {
        SpanGuard {
            name,
            watch: Stopwatch::start(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        record(self.name, self.watch.elapsed_ns());
    }
}

/// Opens a wall-clock span scope that records into the global profile
/// when the returned guard drops:
///
/// ```
/// {
///     let _span = bgpscale_obs::span!("generate_topology");
///     // ... phase work ...
/// } // recorded here
/// # assert!(bgpscale_obs::span::get("generate_topology").is_some());
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::span::SpanGuard::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share one process-global registry; to stay robust under
    // parallel test execution they assert on distinct span names and on
    // monotone deltas rather than absolute registry contents.

    #[test]
    fn guard_records_on_drop() {
        let before = get("obs_test_guard").map_or(0, |s| s.calls);
        {
            let _g = crate::span!("obs_test_guard");
        }
        let after = get("obs_test_guard").expect("recorded");
        assert_eq!(after.calls, before + 1);
    }

    #[test]
    fn stats_aggregate_calls_and_time() {
        record("obs_test_agg", 1_000);
        record("obs_test_agg", 3_000);
        let s = get("obs_test_agg").unwrap();
        assert!(s.calls >= 2);
        assert!(s.total_ns >= 4_000);
        assert!(s.mean_secs() > 0.0);
        assert!(s.total_secs() > 0.0);
    }

    #[test]
    fn snapshot_is_name_ordered() {
        record("obs_test_z", 1);
        record("obs_test_a", 1);
        let snap = snapshot();
        let names: Vec<_> = snap.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
