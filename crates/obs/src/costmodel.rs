//! Deterministic cost-model counters: exact, integer-only operation
//! counts attributed per C-event and per convergence phase.
//!
//! The simulation is bit-identical for any `--jobs` level, which makes
//! every *operation count* — heap sifts, decision-process runs, route
//! comparisons, MRAI timer arms — an exact, machine-independent quantity.
//! This module collects those counts into a [`CostModel`] whose JSON
//! serialization (`costmodel.json`) is byte-identical across worker
//! counts, so perf regressions can be gated in CI by integer equality
//! instead of noisy wall-clock.
//!
//! Three layers feed the model:
//!
//! * `simkernel::queue` counts event-queue pushes, pops, sift moves,
//!   `(time, seq)` comparisons and timing-wheel cascades;
//! * `bgpscale-bgp` counts decision-process runs, route comparisons,
//!   Adj-RIB-out writes and AS-path intern hits vs misses;
//! * `bgpscale-core` counts message deliveries and MRAI arm/fire/coalesce
//!   transitions.
//!
//! The harness snapshots the merged totals at phase boundaries of each
//! C-event (after warm-up, after the DOWN phase, after the UP phase) and
//! stores the per-phase *differences* in event-index order. Wall-side
//! quantities (allocation counts, peak RSS, timings) never enter this
//! model — they live in `BENCH_harness.json` only. Arena footprint *is*
//! in the model, but as `arena_bytes_reserved`: a deterministic byte
//! count from the fixed arena byte model, not an allocator measurement.

use std::fmt::Write as _;

/// Number of convergence phases attributed per C-event.
pub const PHASES: usize = 3;

/// Phase labels, in attribution order.
pub const PHASE_NAMES: [&str; PHASES] = ["warmup", "down", "up"];

/// One bundle of operation counters. All fields are exact `u64` counts;
/// addition and subtraction are the only operations, so merges are
/// order-independent and bit-exact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Events pushed onto the simulator's future-event list.
    pub queue_pushes: u64,
    /// Events popped off the future-event list.
    pub queue_pops: u64,
    /// Element moves during heap sift-up/sift-down (the "decrease"-class
    /// restructuring work of the priority queue).
    pub queue_decreases: u64,
    /// `(time, seq)` key comparisons performed by the heap.
    pub queue_comparisons: u64,
    /// BGP decision-process runs (one per `reevaluate` of a prefix).
    pub decision_runs: u64,
    /// Candidate-route preference comparisons inside the decision process.
    pub route_comparisons: u64,
    /// Adj-RIB-out mutations (inserts and successful removes).
    pub rib_out_writes: u64,
    /// AS-path reuses via refcount bump (`Arc` clone — intern hit).
    pub path_intern_hits: u64,
    /// Fresh AS-path allocations (`prepended` — intern miss).
    pub path_intern_misses: u64,
    /// BGP update messages delivered to a node (after loss filtering).
    pub deliveries: u64,
    /// MRAI timers armed.
    pub mrai_armed: u64,
    /// MRAI timers that fired while still valid (epoch check passed).
    pub mrai_fired: u64,
    /// Pending updates displaced by a newer update for the same prefix
    /// while an MRAI timer was running (rate-limiting coalescing).
    pub mrai_coalesced: u64,
    /// Timing-wheel cascade re-files (entries moved into finer wheel
    /// levels during cursor jumps). Always zero on the heap backend.
    pub queue_cascades: u64,
    /// Bytes reserved by the node arenas (session slab + prefix-major
    /// RIB columns + damping entries) at snapshot time, per the fixed
    /// arena byte model. Monotone within a C-event — arenas only grow
    /// until the inter-event `reset_routing` — so phase diffs attribute
    /// arena growth like any other counter class.
    pub arena_bytes_reserved: u64,
}

impl OpCounts {
    /// Number of counter classes (schema v2).
    pub const FIELD_COUNT: usize = 15;

    /// Number of counter classes in schema v1 ledger lines and baselines
    /// (everything before `queue_cascades`). New classes are only ever
    /// appended, so a v1 prefix of [`OpCounts::fields`] is exactly the v1
    /// field set.
    pub const FIELD_COUNT_V1: usize = 13;

    /// Field names and values in canonical serialization order.
    pub fn fields(&self) -> [(&'static str, u64); Self::FIELD_COUNT] {
        [
            ("queue_pushes", self.queue_pushes),
            ("queue_pops", self.queue_pops),
            ("queue_decreases", self.queue_decreases),
            ("queue_comparisons", self.queue_comparisons),
            ("decision_runs", self.decision_runs),
            ("route_comparisons", self.route_comparisons),
            ("rib_out_writes", self.rib_out_writes),
            ("path_intern_hits", self.path_intern_hits),
            ("path_intern_misses", self.path_intern_misses),
            ("deliveries", self.deliveries),
            ("mrai_armed", self.mrai_armed),
            ("mrai_fired", self.mrai_fired),
            ("mrai_coalesced", self.mrai_coalesced),
            ("queue_cascades", self.queue_cascades),
            ("arena_bytes_reserved", self.arena_bytes_reserved),
        ]
    }

    /// Canonical field names (matches [`OpCounts::fields`] order).
    pub fn field_names() -> [&'static str; Self::FIELD_COUNT] {
        OpCounts::default().fields().map(|(name, _)| name)
    }

    /// Rebuilds a bundle from a [`OpCounts::fields`]-shaped array. Names
    /// are ignored; positions follow the canonical order.
    pub fn from_fields(fields: &[(&str, u64); Self::FIELD_COUNT]) -> OpCounts {
        OpCounts {
            queue_pushes: fields[0].1,
            queue_pops: fields[1].1,
            queue_decreases: fields[2].1,
            queue_comparisons: fields[3].1,
            decision_runs: fields[4].1,
            route_comparisons: fields[5].1,
            rib_out_writes: fields[6].1,
            path_intern_hits: fields[7].1,
            path_intern_misses: fields[8].1,
            deliveries: fields[9].1,
            mrai_armed: fields[10].1,
            mrai_fired: fields[11].1,
            mrai_coalesced: fields[12].1,
            queue_cascades: fields[13].1,
            arena_bytes_reserved: fields[14].1,
        }
    }

    /// Adds `other` into `self` (exact integer sums).
    pub fn add(&mut self, other: &OpCounts) {
        self.queue_pushes += other.queue_pushes;
        self.queue_pops += other.queue_pops;
        self.queue_decreases += other.queue_decreases;
        self.queue_comparisons += other.queue_comparisons;
        self.decision_runs += other.decision_runs;
        self.route_comparisons += other.route_comparisons;
        self.rib_out_writes += other.rib_out_writes;
        self.path_intern_hits += other.path_intern_hits;
        self.path_intern_misses += other.path_intern_misses;
        self.deliveries += other.deliveries;
        self.mrai_armed += other.mrai_armed;
        self.mrai_fired += other.mrai_fired;
        self.mrai_coalesced += other.mrai_coalesced;
        self.queue_cascades += other.queue_cascades;
        self.arena_bytes_reserved += other.arena_bytes_reserved;
    }

    /// `self - earlier`, field-wise. Counters are monotone within a run,
    /// so a later snapshot minus an earlier one is the work done between
    /// them; saturating guards against misuse rather than wrapping.
    pub fn since(&self, earlier: &OpCounts) -> OpCounts {
        OpCounts {
            queue_pushes: self.queue_pushes.saturating_sub(earlier.queue_pushes),
            queue_pops: self.queue_pops.saturating_sub(earlier.queue_pops),
            queue_decreases: self.queue_decreases.saturating_sub(earlier.queue_decreases),
            queue_comparisons: self
                .queue_comparisons
                .saturating_sub(earlier.queue_comparisons),
            decision_runs: self.decision_runs.saturating_sub(earlier.decision_runs),
            route_comparisons: self
                .route_comparisons
                .saturating_sub(earlier.route_comparisons),
            rib_out_writes: self.rib_out_writes.saturating_sub(earlier.rib_out_writes),
            path_intern_hits: self
                .path_intern_hits
                .saturating_sub(earlier.path_intern_hits),
            path_intern_misses: self
                .path_intern_misses
                .saturating_sub(earlier.path_intern_misses),
            deliveries: self.deliveries.saturating_sub(earlier.deliveries),
            mrai_armed: self.mrai_armed.saturating_sub(earlier.mrai_armed),
            mrai_fired: self.mrai_fired.saturating_sub(earlier.mrai_fired),
            mrai_coalesced: self.mrai_coalesced.saturating_sub(earlier.mrai_coalesced),
            queue_cascades: self.queue_cascades.saturating_sub(earlier.queue_cascades),
            arena_bytes_reserved: self
                .arena_bytes_reserved
                .saturating_sub(earlier.arena_bytes_reserved),
        }
    }

    /// Sum over every counter class — a scalar "total ops" figure.
    pub fn grand_total(&self) -> u64 {
        self.fields().iter().map(|&(_, v)| v).sum()
    }

    /// Writes this bundle as a single-line JSON object.
    fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (name, value)) in self.fields().iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{name}\": {value}");
        }
        out.push('}');
    }
}

/// Per-phase operation counts for one C-event.
pub type PhaseCosts = [OpCounts; PHASES];

/// The assembled cost model for one experiment cell: per-event, per-phase
/// operation counts recorded in event-index order.
///
/// Built by pushing each C-event's [`PhaseCosts`] in event-index order
/// (the same fold discipline as `FactorAccumulator` and
/// `MetricsRegistry`), which makes [`CostModel::to_json`] byte-identical
/// for any `--jobs` level.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CostModel {
    per_event: Vec<PhaseCosts>,
}

impl CostModel {
    /// Creates an empty model.
    pub fn new() -> CostModel {
        CostModel::default()
    }

    /// Appends one C-event's per-phase costs. Call in event-index order.
    pub fn push_event(&mut self, phases: PhaseCosts) {
        self.per_event.push(phases);
    }

    /// Number of recorded C-events.
    pub fn events(&self) -> usize {
        self.per_event.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.per_event.is_empty()
    }

    /// Per-event phase costs, in event-index order.
    pub fn per_event(&self) -> &[PhaseCosts] {
        &self.per_event
    }

    /// Column totals per phase across all events.
    pub fn phase_totals(&self) -> PhaseCosts {
        let mut totals = [OpCounts::default(); PHASES];
        for phases in &self.per_event {
            for (t, p) in totals.iter_mut().zip(phases.iter()) {
                t.add(p);
            }
        }
        totals
    }

    /// Grand total over all events and phases.
    pub fn total(&self) -> OpCounts {
        let mut total = OpCounts::default();
        for phase in self.phase_totals().iter() {
            total.add(phase);
        }
        total
    }

    /// Serializes to deterministic, integer-only JSON. Key order is fixed,
    /// values are exact `u64` counts, and events appear in index order —
    /// equal models produce byte-identical files regardless of how many
    /// workers computed them.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema_version\": {},", crate::SCHEMA_VERSION);
        let _ = writeln!(s, "  \"events\": {},", self.per_event.len());
        s.push_str("  \"phases\": [");
        for (i, name) in PHASE_NAMES.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(s, "{sep}\"{name}\"");
        }
        s.push_str("],\n  \"total\": ");
        self.total().write_json(&mut s);
        s.push_str(",\n  \"phase_totals\": [");
        for (i, phase) in self.phase_totals().iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(s, "{sep}\n    ");
            phase.write_json(&mut s);
        }
        s.push_str("\n  ],\n  \"per_event\": [");
        for (i, phases) in self.per_event.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(s, "{sep}\n    {{ \"event\": {i}, \"phases\": [");
            for (j, phase) in phases.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                s.push_str(sep);
                phase.write_json(&mut s);
            }
            s.push_str("] }");
        }
        if !self.per_event.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64) -> OpCounts {
        OpCounts {
            queue_pushes: seed,
            queue_pops: seed + 1,
            queue_decreases: seed + 2,
            queue_comparisons: seed + 3,
            decision_runs: seed + 4,
            route_comparisons: seed + 5,
            rib_out_writes: seed + 6,
            path_intern_hits: seed + 7,
            path_intern_misses: seed + 8,
            deliveries: seed + 9,
            mrai_armed: seed + 10,
            mrai_fired: seed + 11,
            mrai_coalesced: seed + 12,
            queue_cascades: seed + 13,
            arena_bytes_reserved: seed + 14,
        }
    }

    #[test]
    fn add_and_since_are_inverse() {
        let a = sample(100);
        let b = sample(7);
        let mut sum = a;
        sum.add(&b);
        assert_eq!(sum.since(&a), b);
        assert_eq!(sum.since(&b), a);
    }

    #[test]
    fn fields_cover_every_counter() {
        // grand_total over fields() must equal the explicit sum, so a field
        // added to the struct but not to fields() is caught here.
        let c = sample(1);
        let explicit = c.queue_pushes
            + c.queue_pops
            + c.queue_decreases
            + c.queue_comparisons
            + c.decision_runs
            + c.route_comparisons
            + c.rib_out_writes
            + c.path_intern_hits
            + c.path_intern_misses
            + c.deliveries
            + c.mrai_armed
            + c.mrai_fired
            + c.mrai_coalesced
            + c.queue_cascades
            + c.arena_bytes_reserved;
        assert_eq!(c.grand_total(), explicit);
        assert_eq!(OpCounts::field_names().len(), OpCounts::FIELD_COUNT);
        assert_eq!(OpCounts::from_fields(&c.fields()), c, "fields roundtrip");
    }

    #[test]
    fn phase_totals_and_total_sum_per_event_entries() {
        let mut model = CostModel::new();
        model.push_event([sample(1), sample(10), sample(100)]);
        model.push_event([sample(2), sample(20), sample(200)]);
        let totals = model.phase_totals();
        assert_eq!(totals[0].queue_pushes, 3);
        assert_eq!(totals[1].queue_pushes, 30);
        assert_eq!(totals[2].queue_pushes, 300);
        assert_eq!(model.total().queue_pushes, 333);
        assert_eq!(model.events(), 2);
    }

    #[test]
    fn json_is_deterministic_and_integer_only() {
        let mut model = CostModel::new();
        model.push_event([sample(3), sample(30), sample(300)]);
        let j1 = model.to_json();
        let j2 = model.clone().to_json();
        assert_eq!(j1, j2);
        assert!(j1.starts_with("{\n  \"schema_version\": "));
        assert!(j1.contains("\"phases\": [\"warmup\", \"down\", \"up\"]"));
        assert!(!j1.contains('.'), "no floats in costmodel json: {j1}");
        // Events serialize in index order.
        assert!(j1.contains("\"event\": 0"));
    }

    #[test]
    fn empty_model_serializes_cleanly() {
        let model = CostModel::new();
        let j = model.to_json();
        assert!(j.contains("\"events\": 0"));
        assert!(j.contains("\"per_event\": []"));
    }
}
