//! [`Recorder`]: the standard metrics-and-trace observer.
//!
//! One `Recorder` observes one simulator instance (one C-event in the
//! experiment harness). It keeps its hot-path state in plain fields —
//! fixed arrays, no map lookups per event — and materializes a
//! [`MetricsRegistry`] only when the run is over, so the metrics-on
//! overhead stays small (measured by `repro bench`).
//!
//! Everything a `Recorder` captures is a pure function of the simulated
//! trajectory: counters, integer histograms, and (optionally) sampled
//! trace records stamped with the C-event index plus a simulated-time
//! series. Merging per-event registries in event-index order therefore
//! reproduces identical bytes for any `--jobs` level.

use bgpscale_simkernel::SimTime;
use bgpscale_topology::{AsId, Relationship};

use crate::metrics::MetricsRegistry;
use crate::observer::{EventKind, SimObserver, UpdateClass};
use crate::provenance::{Provenance, RootCauseKind};
use crate::timeseries::{depth_bucket, TimeSeries, TimeSeriesRecorder, TimeSeriesSpec, DEPTH_BOUNDS};
use crate::trace::{TraceBuffer, TraceRecord};

/// Bucket bounds for AS-path lengths (hops).
pub const PATH_LEN_BOUNDS: [u64; 6] = [1, 2, 3, 5, 8, 13];

/// Bucket bounds for per-flush MRAI batch sizes (updates sent).
pub const FLUSH_BOUNDS: [u64; 5] = [1, 2, 4, 8, 16];

/// What a [`Recorder`] should capture beyond its always-on counters.
#[derive(Clone, Debug, Default)]
pub struct RecorderOptions {
    /// Keep 1-in-`n` trace records when `Some(n)` (`Some(1)` keeps all).
    pub trace_sample: Option<u64>,
    /// Record a simulated-time series when `Some`.
    pub timeseries: Option<TimeSeriesSpec>,
}

/// The metrics/trace observer. Create one per simulator instance.
#[derive(Clone, Debug)]
pub struct Recorder {
    events_by_kind: [u64; 4],
    msgs_by_rel: [u64; 3],
    announces: u64,
    withdraws: u64,
    mrai_flushes: u64,
    mrai_flushed_updates: u64,
    decision_runs: u64,
    quiescences: u64,
    last_quiescence_us: u64,
    final_events_processed: u64,
    path_len_hist: [u64; 7],
    path_len_sum: u64,
    path_len_max: u64,
    flush_hist: [u64; 6],
    // Provenance accounting (all deliveries, stamped or not).
    prov_stamped: u64,
    prov_unstamped: u64,
    prov_coalesced: u64,
    prov_depth_hist: [u64; 8],
    prov_depth_sum: u64,
    prov_depth_max: u64,
    /// Stamped deliveries by the *sending* edge's relation
    /// (to_customer / to_peer / to_provider).
    prov_to_rel: [u64; 3],
    roots_by_kind: [u64; 5],
    inbox_peak: u64,
    armed_peak: u64,
    trace: Option<TraceBuffer>,
    timeseries: Option<TimeSeriesRecorder>,
}

fn rel_index(rel: Relationship) -> usize {
    match rel {
        Relationship::Customer => 0,
        Relationship::Peer => 1,
        Relationship::Provider => 2,
    }
}

fn bucket(bounds: &[u64], value: u64) -> usize {
    bounds
        .iter()
        .position(|&b| value <= b)
        .unwrap_or(bounds.len())
}

impl Recorder {
    /// A metrics-only recorder for C-event `event`.
    pub fn new(event: u32) -> Recorder {
        Recorder::with_options(event, RecorderOptions::default())
    }

    /// A recorder that additionally keeps 1-in-`sample_every` trace
    /// records (`Some(1)` keeps everything).
    pub fn with_trace(event: u32, trace_sample: Option<u64>) -> Recorder {
        Recorder::with_options(
            event,
            RecorderOptions {
                trace_sample,
                timeseries: None,
            },
        )
    }

    /// A recorder with the full option set.
    pub fn with_options(event: u32, opts: RecorderOptions) -> Recorder {
        Recorder {
            events_by_kind: [0; 4],
            msgs_by_rel: [0; 3],
            announces: 0,
            withdraws: 0,
            mrai_flushes: 0,
            mrai_flushed_updates: 0,
            decision_runs: 0,
            quiescences: 0,
            last_quiescence_us: 0,
            final_events_processed: 0,
            path_len_hist: [0; 7],
            path_len_sum: 0,
            path_len_max: 0,
            flush_hist: [0; 6],
            prov_stamped: 0,
            prov_unstamped: 0,
            prov_coalesced: 0,
            prov_depth_hist: [0; 8],
            prov_depth_sum: 0,
            prov_depth_max: 0,
            prov_to_rel: [0; 3],
            roots_by_kind: [0; 5],
            inbox_peak: 0,
            armed_peak: 0,
            trace: opts.trace_sample.map(|n| TraceBuffer::new(event, n)),
            timeseries: opts
                .timeseries
                .as_ref()
                .map(|spec| TimeSeriesRecorder::new(event, spec)),
        }
    }

    /// Total events observed across all kinds.
    pub fn events_total(&self) -> u64 {
        self.events_by_kind.iter().sum()
    }

    /// Consumes the recorder, returning its trace records (empty when
    /// tracing was off).
    pub fn into_trace(self) -> Vec<TraceRecord> {
        self.into_parts().0
    }

    /// Consumes the recorder, returning trace records and the one-event
    /// time series (when enabled).
    pub fn into_parts(self) -> (Vec<TraceRecord>, Option<TimeSeries>) {
        (
            self.trace.map(TraceBuffer::into_records).unwrap_or_default(),
            self.timeseries.map(TimeSeriesRecorder::finish),
        )
    }

    /// Materializes the deterministic metrics registry.
    pub fn registry(&self) -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        for kind in EventKind::ALL {
            r.inc(
                &format!("events.{}", kind.name()),
                self.events_by_kind[kind.index()],
            );
        }
        r.inc("events.total", self.events_total());
        r.inc("messages.from_customer", self.msgs_by_rel[0]);
        r.inc("messages.from_peer", self.msgs_by_rel[1]);
        r.inc("messages.from_provider", self.msgs_by_rel[2]);
        r.inc("messages.announce", self.announces);
        r.inc("messages.withdraw", self.withdraws);
        r.inc("mrai.flushes", self.mrai_flushes);
        r.inc("mrai.flushed_updates", self.mrai_flushed_updates);
        r.inc("decision.runs", self.decision_runs);
        r.inc("sim.quiescences", self.quiescences);
        r.set_gauge("sim.last_quiescence_us", self.last_quiescence_us);
        r.set_gauge("sim.events_processed", self.final_events_processed);
        r.set_gauge("messages.path_len_max", self.path_len_max);
        r.inc("messages.path_len_sum", self.path_len_sum);
        r.inc("provenance.stamped", self.prov_stamped);
        r.inc("provenance.unstamped", self.prov_unstamped);
        r.inc("provenance.coalesced", self.prov_coalesced);
        r.inc("provenance.depth_sum", self.prov_depth_sum);
        r.set_gauge("provenance.depth_max", self.prov_depth_max);
        r.inc("provenance.to_customer", self.prov_to_rel[0]);
        r.inc("provenance.to_peer", self.prov_to_rel[1]);
        r.inc("provenance.to_provider", self.prov_to_rel[2]);
        for kind in RootCauseKind::ALL {
            r.inc(
                &format!("provenance.roots.{}", kind.name()),
                self.roots_by_kind[kind.index()],
            );
        }
        r.inc("provenance.roots", self.roots_by_kind.iter().sum());
        r.set_gauge("sim.inbox_depth_peak", self.inbox_peak);
        r.set_gauge("mrai.armed_peak", self.armed_peak);
        // Rebuild histograms from the fixed arrays (bounds are compile-
        // time constants, so every recorder produces mergeable shapes).
        inject_histogram(&mut r, "messages.path_len", &PATH_LEN_BOUNDS, &self.path_len_hist);
        inject_histogram(&mut r, "mrai.flush_batch", &FLUSH_BOUNDS, &self.flush_hist);
        inject_histogram(&mut r, "provenance.depth", &DEPTH_BOUNDS, &self.prov_depth_hist);
        r
    }
}

/// Copies a fixed-array histogram into the registry by bulk-observing a
/// representative value per bucket: the bound itself for bounded buckets,
/// last-bound+1 for the overflow bucket. This preserves bucket *counts*
/// exactly; the histogram's internal sum/max become bucket-edge
/// approximations, so the true sum/max are recorded by the caller as a
/// separate counter/gauge. Cost is O(buckets) regardless of sample count,
/// keeping the fast fixed-array accounting in the hot loop while still
/// producing a standard mergeable histogram.
fn inject_histogram(r: &mut MetricsRegistry, name: &str, bounds: &[u64], counts: &[u64]) {
    for (i, &c) in counts.iter().enumerate() {
        let representative = if i < bounds.len() {
            bounds[i]
        } else {
            bounds[bounds.len() - 1] + 1
        };
        r.observe_n(name, bounds, representative, c);
    }
}

impl SimObserver for Recorder {
    #[inline]
    // detflow::allow(panic-surface, reason = "events_by_kind is a fixed array indexed by EventKind::index, which enumerates the variants")
    fn on_event(&mut self, kind: EventKind, _now: SimTime) {
        self.events_by_kind[kind.index()] += 1;
    }

    #[inline]
    // detflow::allow(panic-surface, reason = "histogram arrays are fixed-size and the bucket helpers clamp to the last bin; rel_index enumerates the variants")
    fn on_message(
        &mut self,
        _from: AsId,
        to: AsId,
        rel: Relationship,
        class: UpdateClass,
        prefix: u32,
        path_len: Option<u32>,
        provenance: &Provenance,
        inbox_depth: u32,
        now: SimTime,
    ) {
        self.msgs_by_rel[rel_index(rel)] += 1;
        match class {
            UpdateClass::Announce => {
                self.announces += 1;
                let len = u64::from(path_len.unwrap_or(0));
                self.path_len_hist[bucket(&PATH_LEN_BOUNDS, len)] += 1;
                self.path_len_sum += len;
                self.path_len_max = self.path_len_max.max(len);
            }
            UpdateClass::Withdraw => self.withdraws += 1,
        }
        self.inbox_peak = self.inbox_peak.max(u64::from(inbox_depth));
        if provenance.is_stamped() {
            self.prov_stamped += 1;
            let depth = u64::from(provenance.depth());
            self.prov_depth_hist[depth_bucket(depth)] += 1;
            self.prov_depth_sum += depth;
            self.prov_depth_max = self.prov_depth_max.max(depth);
            if provenance.roots().len() > 1 {
                self.prov_coalesced += 1;
            }
            if let Some(stamp_rel) = provenance.rel() {
                self.prov_to_rel[rel_index(stamp_rel)] += 1;
            }
        } else {
            self.prov_unstamped += 1;
        }
        if let Some(ts) = &mut self.timeseries {
            ts.record_message(to, rel, class, provenance, inbox_depth, now.as_micros());
        }
        if let Some(t) = &mut self.trace {
            let root = provenance.primary_root();
            let depth = provenance.is_stamped().then(|| provenance.depth());
            t.offer(|event| TraceRecord {
                event,
                t_us: now.as_micros(),
                node: to.0,
                kind: EventKind::Deliver,
                prefix: Some(prefix),
                path_len,
                root,
                depth,
            });
        }
    }

    #[inline]
    // detflow::allow(panic-surface, reason = "roots_by_kind is a fixed array indexed by RootCauseKind::index, which enumerates the variants")
    fn on_root_cause(&mut self, id: u32, kind: RootCauseKind, node: AsId, now: SimTime) {
        self.roots_by_kind[kind.index()] += 1;
        if let Some(ts) = &mut self.timeseries {
            ts.record_root(id, kind, node, now.as_micros());
        }
    }

    #[inline]
    fn on_timer_occupancy(&mut self, armed: u64, now: SimTime) {
        self.armed_peak = self.armed_peak.max(armed);
        if let Some(ts) = &mut self.timeseries {
            ts.record_timer_occupancy(armed, now.as_micros());
        }
    }

    #[inline]
    // detflow::allow(panic-surface, reason = "flush_hist is fixed-size and bucket clamps to the last bin")
    fn on_mrai_flush(&mut self, node: AsId, sent: u32, now: SimTime) {
        self.mrai_flushes += 1;
        self.mrai_flushed_updates += u64::from(sent);
        self.flush_hist[bucket(&FLUSH_BOUNDS, u64::from(sent))] += 1;
        if let Some(t) = &mut self.trace {
            t.offer(|event| TraceRecord {
                event,
                t_us: now.as_micros(),
                node: node.0,
                kind: EventKind::MraiExpire,
                prefix: None,
                path_len: None,
                root: None,
                depth: None,
            });
        }
    }

    #[inline]
    fn on_decision_run(&mut self, node: AsId, now: SimTime) {
        self.decision_runs += 1;
        if let Some(t) = &mut self.trace {
            t.offer(|event| TraceRecord {
                event,
                t_us: now.as_micros(),
                node: node.0,
                kind: EventKind::ProcDone,
                prefix: None,
                path_len: None,
                root: None,
                depth: None,
            });
        }
    }

    #[inline]
    fn on_quiescence(&mut self, now: SimTime, events_processed: u64) {
        self.quiescences += 1;
        self.last_quiescence_us = now.as_micros();
        self.final_events_processed = events_processed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::TimeSeriesSpec;
    use bgpscale_topology::NodeType;
    use std::sync::Arc;

    #[test]
    fn recorder_counts_hooks_into_registry() {
        let mut rec = Recorder::new(0);
        rec.on_event(EventKind::Deliver, SimTime::ZERO);
        rec.on_event(EventKind::ProcDone, SimTime::ZERO);
        rec.on_event(EventKind::Deliver, SimTime::ZERO);
        rec.on_message(
            AsId(1),
            AsId(2),
            Relationship::Customer,
            UpdateClass::Announce,
            0,
            Some(4),
            &Provenance::root(0).with_rel(Relationship::Provider),
            2,
            SimTime::from_millis(5),
        );
        rec.on_message(
            AsId(2),
            AsId(1),
            Relationship::Provider,
            UpdateClass::Withdraw,
            0,
            None,
            &Provenance::none(),
            1,
            SimTime::from_millis(6),
        );
        rec.on_root_cause(0, RootCauseKind::Originate, AsId(1), SimTime::ZERO);
        rec.on_timer_occupancy(5, SimTime::from_millis(6));
        rec.on_mrai_flush(AsId(1), 3, SimTime::from_millis(7));
        rec.on_decision_run(AsId(2), SimTime::from_millis(8));
        rec.on_quiescence(SimTime::from_secs(30), 123);

        let r = rec.registry();
        assert_eq!(r.counter("events.deliver"), 2);
        assert_eq!(r.counter("events.proc_done"), 1);
        assert_eq!(r.counter("events.total"), 3);
        assert_eq!(r.counter("messages.from_customer"), 1);
        assert_eq!(r.counter("messages.from_provider"), 1);
        assert_eq!(r.counter("messages.announce"), 1);
        assert_eq!(r.counter("messages.withdraw"), 1);
        assert_eq!(r.counter("mrai.flushes"), 1);
        assert_eq!(r.counter("mrai.flushed_updates"), 3);
        assert_eq!(r.counter("decision.runs"), 1);
        assert_eq!(r.gauge("sim.events_processed").unwrap().value, 123);
        assert_eq!(r.gauge("sim.last_quiescence_us").unwrap().value, 30_000_000);
        let h = r.histogram("messages.path_len").unwrap();
        assert_eq!(h.count(), 1);
        // Provenance accounting.
        assert_eq!(r.counter("provenance.stamped"), 1);
        assert_eq!(r.counter("provenance.unstamped"), 1);
        assert_eq!(r.counter("provenance.coalesced"), 0);
        assert_eq!(r.counter("provenance.to_provider"), 1);
        assert_eq!(r.counter("provenance.roots.originate"), 1);
        assert_eq!(r.counter("provenance.roots"), 1);
        assert_eq!(r.gauge("sim.inbox_depth_peak").unwrap().value, 2);
        assert_eq!(r.gauge("mrai.armed_peak").unwrap().value, 5);
        assert_eq!(r.histogram("provenance.depth").unwrap().count(), 1);
    }

    #[test]
    fn trace_records_carry_event_index_kinds_and_provenance() {
        let mut rec = Recorder::with_trace(9, Some(1));
        rec.on_message(
            AsId(1),
            AsId(2),
            Relationship::Peer,
            UpdateClass::Announce,
            7,
            Some(2),
            &Provenance::root(4).child(),
            1,
            SimTime::from_micros(10),
        );
        rec.on_decision_run(AsId(2), SimTime::from_micros(20));
        rec.on_mrai_flush(AsId(3), 1, SimTime::from_micros(30));
        let t = rec.into_trace();
        assert_eq!(t.len(), 3);
        assert!(t.iter().all(|r| r.event == 9));
        assert_eq!(t[0].kind, EventKind::Deliver);
        assert_eq!(t[0].prefix, Some(7));
        assert_eq!(t[0].root, Some(4));
        assert_eq!(t[0].depth, Some(1));
        assert_eq!(t[1].kind, EventKind::ProcDone);
        assert_eq!(t[1].root, None);
        assert_eq!(t[2].kind, EventKind::MraiExpire);
    }

    #[test]
    fn metrics_only_recorder_has_no_trace() {
        let mut rec = Recorder::new(0);
        rec.on_decision_run(AsId(0), SimTime::ZERO);
        let (trace, series) = rec.into_parts();
        assert!(trace.is_empty());
        assert!(series.is_none());
    }

    #[test]
    fn timeseries_option_yields_a_one_event_series() {
        let spec = TimeSeriesSpec {
            bin_us: 1_000,
            node_types: Arc::from(vec![NodeType::T, NodeType::C]),
        };
        let mut rec = Recorder::with_options(
            3,
            RecorderOptions {
                trace_sample: None,
                timeseries: Some(spec),
            },
        );
        rec.on_root_cause(0, RootCauseKind::Originate, AsId(0), SimTime::ZERO);
        rec.on_message(
            AsId(0),
            AsId(1),
            Relationship::Provider,
            UpdateClass::Announce,
            0,
            Some(1),
            &Provenance::root(0),
            1,
            SimTime::from_micros(500),
        );
        let (_, series) = rec.into_parts();
        let series = series.expect("time series enabled");
        assert_eq!(series.events, 1);
        assert_eq!(series.total_updates(), 1);
        assert_eq!(series.roots.len(), 1);
        assert_eq!(series.roots[0].event, 3);
    }
}
