//! # bgpscale-obs
//!
//! Deterministic simulation telemetry for the `bgpscale` workspace:
//! observer hooks, a metrics registry, structured event tracing, churn
//! provenance stamps, simulated-time series, wall-clock span profiling,
//! leveled logging, and dependency-free HTML/SVG report rendering — with
//! **zero external dependencies**.
//!
//! The crate draws a hard line between two kinds of observability:
//!
//! * **Deterministic artifacts** — [`MetricsRegistry`] snapshots and
//!   [`TraceRecord`] streams are pure functions of the simulated
//!   trajectory: integer-only, merged in event-index order, serialized
//!   with sorted keys. `metrics.json` and `trace.jsonl` are byte-identical
//!   for any `--jobs` level (regression-tested in `bgpscale-core`).
//! * **Wall-clock profiling** — [`span!`] scopes aggregate real elapsed
//!   time into a process-global profile for `repro profile`. Wall time
//!   never enters the deterministic artifacts.
//!
//! The simulator is generic over [`SimObserver`] with [`NoopObserver`] as
//! the default: hooks are statically dispatched empty inline bodies, so
//! the un-observed simulator compiles to the same code as before this
//! crate existed (overhead budget enforced by `repro bench`).
//!
//! ## Example
//!
//! ```
//! use bgpscale_obs::{EventKind, Recorder, SimObserver};
//! use bgpscale_simkernel::SimTime;
//!
//! let mut rec = Recorder::new(0);
//! rec.on_event(EventKind::Deliver, SimTime::from_millis(3));
//! let registry = rec.registry();
//! assert_eq!(registry.counter("events.deliver"), 1);
//! assert!(registry.to_json().contains("\"events.deliver\": 1"));
//! ```

#![forbid(unsafe_code)]

pub mod costmodel;
pub mod ledger;
pub mod logging;
pub mod metrics;
pub mod observer;
pub mod provenance;
pub mod recorder;
pub mod render;
pub mod span;
pub mod timeseries;
pub mod trace;

/// Schema version stamped into every JSON artifact the workspace writes
/// (`metrics.json`, `timeseries.json`, `costmodel.json`,
/// `BENCH_harness.json`, perf baselines). Bump when a writer changes its
/// key layout incompatibly; readers reject mismatches — except the run
/// ledger, which is append-only history and keeps a read path for every
/// schema it ever wrote (see [`ledger::parse_line`]).
///
/// v1 → v2: [`OpCounts`] grew `queue_cascades` and `arena_bytes_reserved`
/// (appended classes; the v1 field set is an exact prefix).
pub const SCHEMA_VERSION: u32 = 2;

pub use costmodel::{CostModel, OpCounts, PhaseCosts, PHASES, PHASE_NAMES};
pub use ledger::{
    append_records, config_fingerprint, read_ledger, AppendOutcome, ArtifactHashes, LedgerError,
    LedgerRecord, RunKind, WallSide,
};
pub use logging::Level;
pub use metrics::{Gauge, Histogram, MetricsRegistry};
pub use observer::{EventKind, NoopObserver, SimObserver, UpdateClass};
pub use provenance::{Provenance, RootCauseKind};
pub use recorder::{Recorder, RecorderOptions};
pub use span::SpanStats;
pub use timeseries::{RootRecord, TimeSeries, TimeSeriesRecorder, TimeSeriesSpec, TsBin};
pub use trace::{TraceBuffer, TraceRecord, TraceWriter};
