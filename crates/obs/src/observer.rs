//! The [`SimObserver`] trait: hook points the simulator event loop calls.
//!
//! The simulator (`bgpscale-core`) is generic over an observer,
//! `Simulator<O: SimObserver = NoopObserver>`, so the hooks are statically
//! dispatched: with the default [`NoopObserver`] every hook body is an
//! empty `#[inline]` function and the optimizer erases both the call and
//! the computation of its arguments — the hot path is unchanged when
//! tracing is off (measured by `repro bench`, see BENCH_harness.json).
//!
//! Observers are plain mutable state owned by one simulator instance; the
//! parallel experiment harness gives every C-event its own observer and
//! merges the results **in event-index order**, which is what keeps
//! metrics and trace output bit-deterministic across `--jobs` levels.

use bgpscale_simkernel::SimTime;
use bgpscale_topology::{AsId, Relationship};

use crate::provenance::{Provenance, RootCauseKind};

/// The kind of a simulator event, mirrored from `core::sim`'s private
/// event enum so observers can count per kind without a dependency cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A message arrived at a node's input queue.
    Deliver,
    /// A node's processor finished one message.
    ProcDone,
    /// An MRAI timer fired.
    MraiExpire,
    /// A Route-Flap-Damping reuse wake-up fired.
    RfdReuse,
}

impl EventKind {
    /// All kinds, in stable index order.
    pub const ALL: [EventKind; 4] = [
        EventKind::Deliver,
        EventKind::ProcDone,
        EventKind::MraiExpire,
        EventKind::RfdReuse,
    ];

    /// Stable dense index (0..4), used by counters and snapshots.
    pub fn index(self) -> usize {
        match self {
            EventKind::Deliver => 0,
            EventKind::ProcDone => 1,
            EventKind::MraiExpire => 2,
            EventKind::RfdReuse => 3,
        }
    }

    /// Stable lowercase name, used in metric keys and trace records.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Deliver => "deliver",
            EventKind::ProcDone => "proc_done",
            EventKind::MraiExpire => "mrai_expire",
            EventKind::RfdReuse => "rfd_reuse",
        }
    }
}

/// The flavor of a delivered UPDATE, as seen by [`SimObserver::on_message`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UpdateClass {
    /// A reachable route with an AS path.
    Announce,
    /// An explicit withdrawal.
    Withdraw,
}

impl UpdateClass {
    /// Stable lowercase name, used in metric keys.
    pub fn name(self) -> &'static str {
        match self {
            UpdateClass::Announce => "announce",
            UpdateClass::Withdraw => "withdraw",
        }
    }
}

/// Hook points called from the simulator's event loop.
///
/// Every method has an empty default body, so an observer implements only
/// what it needs. Implementations must be deterministic functions of the
/// hook arguments if their output feeds `metrics.json` or a trace file —
/// wall-clock time and global state would break the bit-identical-across-
/// `--jobs` guarantee (spans are the sanctioned wall-clock escape hatch;
/// they never enter deterministic artifacts).
pub trait SimObserver {
    /// An event was popped from the queue and is about to be dispatched.
    #[inline]
    fn on_event(&mut self, _kind: EventKind, _now: SimTime) {}

    /// An UPDATE was delivered from `from` to `to` (and joined `to`'s
    /// input queue). `rel` is the relationship of the *sender* as seen
    /// from the receiver; `path_len` is the AS-path length of an
    /// announcement (`None` for withdrawals). `provenance` is the
    /// message's causal stamp (borrowed — the noop path never clones it)
    /// and `inbox_depth` is the receiver's in-queue depth *including*
    /// this message.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn on_message(
        &mut self,
        _from: AsId,
        _to: AsId,
        _rel: Relationship,
        _class: UpdateClass,
        _prefix: u32,
        _path_len: Option<u32>,
        _provenance: &Provenance,
        _inbox_depth: u32,
        _now: SimTime,
    ) {
    }

    /// A root-cause event fired: `id` is sequential within the
    /// simulation, `node` is where it happened. Every provenance stamp
    /// delivered later refers back to one or more of these ids.
    #[inline]
    fn on_root_cause(&mut self, _id: u32, _kind: RootCauseKind, _node: AsId, _now: SimTime) {}

    /// The number of armed MRAI timers changed to `armed` (fires on every
    /// arm, expiry, and session teardown that alters the level).
    #[inline]
    fn on_timer_occupancy(&mut self, _armed: u64, _now: SimTime) {}

    /// An MRAI timer expiry actually flushed `sent` queued updates at
    /// `node` (no-op expiries — nothing queued — do not fire this hook).
    #[inline]
    fn on_mrai_flush(&mut self, _node: AsId, _sent: u32, _now: SimTime) {}

    /// `node` processed one message through the decision process.
    #[inline]
    fn on_decision_run(&mut self, _node: AsId, _now: SimTime) {}

    /// The event queue drained: the network quiesced at `now` after
    /// `events_processed` events total.
    #[inline]
    fn on_quiescence(&mut self, _now: SimTime, _events_processed: u64) {}
}

/// The default observer: every hook is a no-op that compiles to nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl SimObserver for NoopObserver {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_kind_indices_are_dense_and_stable() {
        for (i, k) in EventKind::ALL.into_iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        assert_eq!(EventKind::Deliver.name(), "deliver");
        assert_eq!(EventKind::MraiExpire.name(), "mrai_expire");
        assert_eq!(UpdateClass::Withdraw.name(), "withdraw");
    }

    #[test]
    fn noop_observer_accepts_all_hooks() {
        let mut o = NoopObserver;
        o.on_event(EventKind::Deliver, SimTime::ZERO);
        o.on_message(
            AsId(0),
            AsId(1),
            Relationship::Customer,
            UpdateClass::Announce,
            0,
            Some(3),
            &Provenance::none(),
            1,
            SimTime::ZERO,
        );
        o.on_root_cause(0, RootCauseKind::Originate, AsId(0), SimTime::ZERO);
        o.on_timer_occupancy(2, SimTime::ZERO);
        o.on_mrai_flush(AsId(0), 1, SimTime::ZERO);
        o.on_decision_run(AsId(0), SimTime::ZERO);
        o.on_quiescence(SimTime::ZERO, 42);
    }
}
