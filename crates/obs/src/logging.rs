//! Leveled stderr logging controlled by `BGPSCALE_LOG`.
//!
//! The binaries (`repro`, `topogen`) route their progress and diagnostic
//! chatter through [`crate::log!`] so scripted runs can silence stderr:
//!
//! ```text
//! BGPSCALE_LOG=quiet  errors only (macro output fully suppressed)
//! BGPSCALE_LOG=info   progress lines (the default)
//! BGPSCALE_LOG=debug  everything, including per-cell detail
//! ```
//!
//! The level is read once per process (`OnceLock`); unrecognized values
//! fall back to `info`. Hard errors (usage, failed writes) stay on plain
//! `eprintln!` — they are the program's interface, not diagnostics.

use std::sync::OnceLock;

/// Verbosity levels, ordered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Suppress all `log!` output.
    Quiet = 0,
    /// Progress lines (default).
    Info = 1,
    /// Detailed diagnostics.
    Debug = 2,
}

impl Level {
    /// Parses a `BGPSCALE_LOG` value; `None` for unrecognized input.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "quiet" | "0" | "off" => Some(Level::Quiet),
            "info" | "1" => Some(Level::Info),
            "debug" | "2" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// The process-wide maximum level, from `BGPSCALE_LOG` (default `info`).
pub fn max_level() -> Level {
    static LEVEL: OnceLock<Level> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        // detflow::allow(det-closure, reason = "log verbosity only; gates stderr output, never simulated behavior or artifacts")
        std::env::var("BGPSCALE_LOG") // detlint::allow(env-read, reason = "log verbosity only; gates stderr output, never simulated behavior or artifacts")
            .ok()
            .and_then(|v| Level::parse(&v))
            .unwrap_or(Level::Info)
    })
}

/// True if messages at `level` should be emitted. Messages tagged
/// `Quiet` are never emitted (it is a threshold, not a message level).
pub fn enabled(level: Level) -> bool {
    level != Level::Quiet && level <= max_level()
}

/// Logs a line to stderr if the given level is enabled:
///
/// ```
/// bgpscale_obs::log!(Info, "running {} cells", 5);
/// bgpscale_obs::log!(Debug, "cache state: {:?}", ());
/// ```
#[macro_export]
macro_rules! log {
    ($lvl:ident, $($arg:tt)*) => {
        if $crate::logging::enabled($crate::logging::Level::$lvl) {
            eprintln!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("quiet"), Some(Level::Quiet));
        assert_eq!(Level::parse("OFF"), Some(Level::Quiet));
        assert_eq!(Level::parse(" info "), Some(Level::Info));
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse("2"), Some(Level::Debug));
        assert_eq!(Level::parse("verbose"), None);
        assert_eq!(Level::parse(""), None);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Quiet < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn quiet_disables_everything_by_construction() {
        // `enabled` can't be tested against the env var here (OnceLock is
        // process-global), but the quiet rule is pure: nothing is <= Quiet
        // except Quiet itself, and Quiet short-circuits to false.
        assert!(Level::Quiet <= Level::Quiet);
    }

    #[test]
    fn log_macro_compiles_with_all_levels() {
        crate::log!(Quiet, "never shown {}", 1);
        crate::log!(Info, "info {}", 2);
        crate::log!(Debug, "debug {:?}", (3, 4));
    }
}
