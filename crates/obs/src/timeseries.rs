//! Deterministic simulated-time series: fixed-width bins on the sim clock.
//!
//! A [`TimeSeriesRecorder`] rides inside a per-event `Recorder` and sorts
//! every delivered UPDATE into fixed-width bins keyed to *simulated* time
//! (each C-event's clock starts at 0, so bins overlay across events).
//! Per bin it tracks updates split by the sending edge's Gao–Rexford
//! relation and by the receiving node's type, plus two peaks: armed MRAI
//! timers and receiver in-queue depth. Alongside the bins it accumulates
//! a causal-depth histogram and one [`RootRecord`] per root-cause event,
//! whose first-to-last-update span is the per-root convergence duration.
//!
//! Determinism rules (same discipline as `metrics.json`):
//! * integer-only — microsecond timestamps and counts, never floats;
//! * keyed to the sim clock — wall time never enters;
//! * per-event series are [`TimeSeries::merge`]d in event-index order, so
//!   `timeseries.json` is byte-identical for any `--jobs` level.

use std::sync::Arc;

use bgpscale_topology::{AsId, NodeType, Relationship};

use crate::observer::UpdateClass;
use crate::provenance::{Provenance, RootCauseKind};

/// Causal-depth histogram bucket upper bounds (inclusive); the 8th bucket
/// is the overflow for depths past 32.
pub const DEPTH_BOUNDS: [u64; 7] = [0, 1, 2, 4, 8, 16, 32];

/// Hard cap on the number of bins; later samples clamp into the last bin
/// so a pathological run cannot balloon the artifact.
pub const MAX_BINS: usize = 100_000;

fn rel_index(rel: Relationship) -> usize {
    match rel {
        Relationship::Customer => 0,
        Relationship::Peer => 1,
        Relationship::Provider => 2,
    }
}

fn type_index(ty: NodeType) -> usize {
    match ty {
        NodeType::T => 0,
        NodeType::M => 1,
        NodeType::Cp => 2,
        NodeType::C => 3,
    }
}

/// Bucket index in a `DEPTH_BOUNDS` histogram for a causal depth.
pub fn depth_bucket(depth: u64) -> usize {
    DEPTH_BOUNDS
        .iter()
        .position(|&b| depth <= b)
        .unwrap_or(DEPTH_BOUNDS.len())
}

/// Configuration for a per-event time-series recorder.
#[derive(Clone, Debug)]
pub struct TimeSeriesSpec {
    /// Bin width in simulated microseconds (clamped to ≥ 1).
    pub bin_us: u64,
    /// Node type by `AsId` index, shared across every event's recorder.
    pub node_types: Arc<[NodeType]>,
}

/// One fixed-width bin of simulated time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TsBin {
    /// Updates by the sending edge's relation (customer/peer/provider).
    pub by_rel: [u64; 3],
    /// Updates by receiving node type (T/M/Cp/C).
    pub by_type: [u64; 4],
    /// Announcements delivered in the bin.
    pub announces: u64,
    /// Withdrawals delivered in the bin.
    pub withdraws: u64,
    /// Peak armed MRAI timers observed during the bin.
    pub mrai_armed_peak: u64,
    /// Peak receiver in-queue depth observed during the bin.
    pub inbox_peak: u64,
}

impl TsBin {
    /// Total updates delivered in the bin.
    pub fn total(&self) -> u64 {
        self.announces + self.withdraws
    }

    // detflow::allow(panic-surface, reason = "by_rel and by_type are fixed [_; 3] / [_; 4] arrays walked with literal bounds")
    fn add(&mut self, other: &TsBin) {
        for i in 0..3 {
            self.by_rel[i] += other.by_rel[i];
        }
        for i in 0..4 {
            self.by_type[i] += other.by_type[i];
        }
        self.announces += other.announces;
        self.withdraws += other.withdraws;
        // Peaks overlay across events by max: each event's clock starts
        // at 0, so "bin k" means the same convergence phase everywhere.
        self.mrai_armed_peak = self.mrai_armed_peak.max(other.mrai_armed_peak);
        self.inbox_peak = self.inbox_peak.max(other.inbox_peak);
    }
}

/// One root-cause event and the update activity attributed to it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RootRecord {
    /// C-event index the root belongs to.
    pub event: u32,
    /// Root id, sequential within its simulation.
    pub root: u32,
    /// Why the root happened.
    pub kind: RootCauseKind,
    /// The node at which the root-cause event happened.
    pub node: u32,
    /// Simulated time the root-cause event fired.
    pub start_us: u64,
    /// Simulated time of the last update attributed to this root
    /// (equals `start_us` when no update carried the root).
    pub last_update_us: u64,
    /// Updates that carried this root in their stamp.
    pub updates: u64,
}

impl RootRecord {
    /// Convergence duration: root-cause fire to last attributed update.
    pub fn convergence_us(&self) -> u64 {
        self.last_update_us.saturating_sub(self.start_us)
    }
}

/// A merged (or single-event) simulated-time series.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimeSeries {
    /// Bin width in simulated microseconds.
    pub bin_us: u64,
    /// C-events folded into this series.
    pub events: u32,
    /// Bins, index k covering `[k*bin_us, (k+1)*bin_us)`.
    pub bins: Vec<TsBin>,
    /// Causal-depth histogram over `DEPTH_BOUNDS` (+ overflow).
    pub depth_hist: [u64; 8],
    /// Maximum causal depth observed.
    pub depth_max: u64,
    /// Updates delivered with a provenance stamp.
    pub stamped: u64,
    /// Updates delivered without a stamp (direct `BgpNode` use).
    pub unstamped: u64,
    /// Stamped updates carrying more than one root (MRAI coalescing).
    pub coalesced: u64,
    /// Root-cause records, in event-index then root-id order.
    pub roots: Vec<RootRecord>,
}

impl TimeSeries {
    /// An empty series with the given bin width.
    pub fn new(bin_us: u64) -> TimeSeries {
        TimeSeries {
            bin_us: bin_us.max(1),
            events: 0,
            bins: Vec::new(),
            depth_hist: [0; 8],
            depth_max: 0,
            stamped: 0,
            unstamped: 0,
            coalesced: 0,
            roots: Vec::new(),
        }
    }

    /// Folds another series in. Callers must fold in event-index order —
    /// roots are appended — and bin widths must match.
    ///
    /// # Panics
    /// When the bin widths differ.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.bin_us, other.bin_us,
            "cannot merge time series with different bin widths"
        );
        if self.bins.len() < other.bins.len() {
            self.bins.resize(other.bins.len(), TsBin::default());
        }
        for (mine, theirs) in self.bins.iter_mut().zip(&other.bins) {
            mine.add(theirs);
        }
        for i in 0..self.depth_hist.len() {
            self.depth_hist[i] += other.depth_hist[i];
        }
        self.depth_max = self.depth_max.max(other.depth_max);
        self.stamped += other.stamped;
        self.unstamped += other.unstamped;
        self.coalesced += other.coalesced;
        self.events += other.events;
        self.roots.extend(other.roots.iter().copied());
    }

    /// Total updates across all bins.
    pub fn total_updates(&self) -> u64 {
        self.bins.iter().map(TsBin::total).sum()
    }

    /// Convergence durations of roots that produced at least one update,
    /// sorted ascending — ready for a CDF.
    pub fn convergence_durations_us(&self) -> Vec<u64> {
        let mut d: Vec<u64> = self
            .roots
            .iter()
            .filter(|r| r.updates > 0)
            .map(RootRecord::convergence_us)
            .collect();
        d.sort_unstable();
        d
    }

    /// Renders the series as deterministic JSON: integer-only, fixed key
    /// order, no whitespace variance — byte-identical for equal series.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;

        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"bin_us\":{},\"events\":{},\"stamped\":{},\"unstamped\":{},\"coalesced\":{},",
            self.bin_us, self.events, self.stamped, self.unstamped, self.coalesced
        );
        let _ = write!(s, "\"depth_max\":{},\"depth_hist\":[", self.depth_max);
        for (i, c) in self.depth_hist.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{c}");
        }
        s.push_str("],\"bins\":[");
        for (i, b) in self.bins.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"by_rel\":[{},{},{}],\"by_type\":[{},{},{},{}],\
                 \"announces\":{},\"withdraws\":{},\"mrai_armed_peak\":{},\"inbox_peak\":{}}}",
                b.by_rel[0],
                b.by_rel[1],
                b.by_rel[2],
                b.by_type[0],
                b.by_type[1],
                b.by_type[2],
                b.by_type[3],
                b.announces,
                b.withdraws,
                b.mrai_armed_peak,
                b.inbox_peak
            );
        }
        s.push_str("],\"roots\":[");
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"event\":{},\"root\":{},\"kind\":\"{}\",\"node\":{},\
                 \"start_us\":{},\"last_update_us\":{},\"updates\":{}}}",
                r.event,
                r.root,
                r.kind.name(),
                r.node,
                r.start_us,
                r.last_update_us,
                r.updates
            );
        }
        s.push_str("]}");
        s
    }
}

/// Per-event recorder feeding a [`TimeSeries`]; lives inside `Recorder`.
#[derive(Clone, Debug)]
pub struct TimeSeriesRecorder {
    node_types: Arc<[NodeType]>,
    event: u32,
    /// Last armed-timer level reported by the simulator; carried forward
    /// into every bin a message lands in, so occupancy is visible even in
    /// bins without an arm/expire transition.
    current_armed: u64,
    series: TimeSeries,
}

impl TimeSeriesRecorder {
    /// Creates the recorder for C-event `event`.
    pub fn new(event: u32, spec: &TimeSeriesSpec) -> TimeSeriesRecorder {
        TimeSeriesRecorder {
            node_types: Arc::clone(&spec.node_types),
            event,
            current_armed: 0,
            series: TimeSeries::new(spec.bin_us),
        }
    }

    // detflow::allow(panic-surface, reason = "idx is clamped to MAX_BINS - 1 and bins is resized to idx + 1 before the index")
    fn bin_mut(&mut self, t_us: u64) -> &mut TsBin {
        let idx = ((t_us / self.series.bin_us) as usize).min(MAX_BINS - 1);
        if self.series.bins.len() <= idx {
            self.series.bins.resize(idx + 1, TsBin::default());
        }
        &mut self.series.bins[idx]
    }

    /// Records a root-cause event. Roots must arrive in id order (the
    /// simulator allocates them sequentially).
    pub fn record_root(&mut self, id: u32, kind: RootCauseKind, node: AsId, t_us: u64) {
        debug_assert_eq!(
            id as usize,
            self.series.roots.len(),
            "root ids must be sequential per simulation"
        );
        self.series.roots.push(RootRecord {
            event: self.event,
            root: id,
            kind,
            node: node.0,
            start_us: t_us,
            last_update_us: t_us,
            updates: 0,
        });
    }

    /// Records a delivered update.
    // detflow::allow(panic-surface, reason = "bin fields are fixed arrays indexed by variant-enumerating helpers; depth_hist buckets clamp to the last bin")
    pub fn record_message(
        &mut self,
        to: AsId,
        rel: Relationship,
        class: UpdateClass,
        provenance: &Provenance,
        inbox_depth: u32,
        t_us: u64,
    ) {
        let armed = self.current_armed;
        let ty = self
            .node_types
            .get(to.index())
            .copied()
            .unwrap_or(NodeType::C);
        let bin = self.bin_mut(t_us);
        bin.by_rel[rel_index(rel)] += 1;
        bin.by_type[type_index(ty)] += 1;
        match class {
            UpdateClass::Announce => bin.announces += 1,
            UpdateClass::Withdraw => bin.withdraws += 1,
        }
        bin.inbox_peak = bin.inbox_peak.max(u64::from(inbox_depth));
        bin.mrai_armed_peak = bin.mrai_armed_peak.max(armed);

        if provenance.is_stamped() {
            self.series.stamped += 1;
            let depth = u64::from(provenance.depth());
            self.series.depth_hist[depth_bucket(depth)] += 1;
            self.series.depth_max = self.series.depth_max.max(depth);
            if provenance.roots().len() > 1 {
                self.series.coalesced += 1;
            }
            for &root in provenance.roots() {
                if let Some(r) = self.series.roots.get_mut(root as usize) {
                    r.updates += 1;
                    r.last_update_us = r.last_update_us.max(t_us);
                }
            }
        } else {
            self.series.unstamped += 1;
        }
    }

    /// Records an armed-MRAI-timer level change.
    pub fn record_timer_occupancy(&mut self, armed: u64, t_us: u64) {
        self.current_armed = armed;
        let bin = self.bin_mut(t_us);
        bin.mrai_armed_peak = bin.mrai_armed_peak.max(armed);
    }

    /// Finishes the event, yielding its one-event series.
    pub fn finish(mut self) -> TimeSeries {
        self.series.events = 1;
        self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(bin_us: u64) -> TimeSeriesSpec {
        TimeSeriesSpec {
            bin_us,
            node_types: Arc::from(vec![NodeType::T, NodeType::M, NodeType::C]),
        }
    }

    fn deliver(rec: &mut TimeSeriesRecorder, to: u32, p: &Provenance, t: u64) {
        rec.record_message(
            AsId(to),
            Relationship::Customer,
            UpdateClass::Announce,
            p,
            1,
            t,
        );
    }

    #[test]
    fn bins_split_by_relation_and_type() {
        let mut rec = TimeSeriesRecorder::new(0, &spec(10));
        let p = Provenance::root(0).with_rel(Relationship::Peer);
        rec.record_root(0, RootCauseKind::Originate, AsId(1), 0);
        rec.record_message(AsId(0), Relationship::Peer, UpdateClass::Announce, &p, 2, 5);
        rec.record_message(AsId(2), Relationship::Customer, UpdateClass::Withdraw, &p, 1, 15);
        let ts = rec.finish();
        assert_eq!(ts.bins.len(), 2);
        assert_eq!(ts.bins[0].by_rel, [0, 1, 0]);
        assert_eq!(ts.bins[0].by_type, [1, 0, 0, 0]);
        assert_eq!(ts.bins[1].by_rel, [1, 0, 0]);
        assert_eq!(ts.bins[1].by_type, [0, 0, 0, 1]);
        assert_eq!(ts.bins[0].announces, 1);
        assert_eq!(ts.bins[1].withdraws, 1);
        assert_eq!(ts.total_updates(), 2);
        assert_eq!(ts.events, 1);
    }

    #[test]
    fn roots_track_convergence_and_attribution() {
        let mut rec = TimeSeriesRecorder::new(4, &spec(100));
        rec.record_root(0, RootCauseKind::WithdrawOrigin, AsId(1), 50);
        let p = Provenance::root(0);
        deliver(&mut rec, 0, &p.child(), 60);
        deliver(&mut rec, 2, &p.child().child(), 250);
        let ts = rec.finish();
        assert_eq!(ts.roots.len(), 1);
        let r = ts.roots[0];
        assert_eq!((r.event, r.kind), (4, RootCauseKind::WithdrawOrigin));
        assert_eq!(r.updates, 2);
        assert_eq!(r.convergence_us(), 200);
        assert_eq!(ts.convergence_durations_us(), vec![200]);
        assert_eq!(ts.stamped, 2);
        assert_eq!(ts.depth_hist[depth_bucket(1)], 1);
        assert_eq!(ts.depth_hist[depth_bucket(2)], 1);
        assert_eq!(ts.depth_max, 2);
    }

    #[test]
    fn coalesced_stamps_feed_every_contributing_root() {
        let mut rec = TimeSeriesRecorder::new(0, &spec(100));
        rec.record_root(0, RootCauseKind::Originate, AsId(0), 0);
        rec.record_root(1, RootCauseKind::WithdrawOrigin, AsId(0), 10);
        let mut p = Provenance::root(1);
        p.coalesce_with(&Provenance::root(0));
        deliver(&mut rec, 1, &p, 40);
        let ts = rec.finish();
        assert_eq!(ts.coalesced, 1);
        assert_eq!(ts.roots[0].updates, 1);
        assert_eq!(ts.roots[1].updates, 1);
    }

    #[test]
    fn occupancy_carries_forward_into_message_bins() {
        let mut rec = TimeSeriesRecorder::new(0, &spec(10));
        rec.record_timer_occupancy(3, 2);
        deliver(&mut rec, 0, &Provenance::none(), 25);
        let ts = rec.finish();
        assert_eq!(ts.bins[0].mrai_armed_peak, 3);
        assert_eq!(ts.bins[2].mrai_armed_peak, 3, "level carries forward");
        assert_eq!(ts.unstamped, 1);
    }

    #[test]
    fn merge_adds_counts_and_maxes_peaks_in_order() {
        let mk = |event: u32, t: u64| {
            let mut rec = TimeSeriesRecorder::new(event, &spec(10));
            rec.record_root(0, RootCauseKind::Originate, AsId(0), 0);
            rec.record_timer_occupancy(u64::from(event) + 1, t);
            deliver(&mut rec, 0, &Provenance::root(0), t);
            rec.finish()
        };
        let mut a = mk(0, 5);
        let b = mk(1, 15);
        a.merge(&b);
        assert_eq!(a.events, 2);
        assert_eq!(a.bins.len(), 2);
        assert_eq!(a.bins[0].total(), 1);
        assert_eq!(a.bins[1].total(), 1);
        assert_eq!(a.bins[1].mrai_armed_peak, 2);
        assert_eq!(a.roots.len(), 2);
        assert_eq!(a.roots[0].event, 0);
        assert_eq!(a.roots[1].event, 1);
        assert_eq!(a.stamped, 2);
    }

    #[test]
    #[should_panic(expected = "different bin widths")]
    fn merge_rejects_mismatched_bin_widths() {
        let mut a = TimeSeries::new(10);
        a.merge(&TimeSeries::new(20));
    }

    #[test]
    fn json_is_integer_only_and_deterministic() {
        let mut rec = TimeSeriesRecorder::new(0, &spec(10));
        rec.record_root(0, RootCauseKind::SessionDown, AsId(2), 0);
        deliver(&mut rec, 0, &Provenance::root(0), 5);
        let ts = rec.finish();
        let json = ts.to_json();
        assert_eq!(json, ts.clone().to_json(), "stable rendering");
        assert!(json.starts_with("{\"bin_us\":10,\"events\":1,"));
        assert!(json.contains("\"kind\":\"session_down\""));
        assert!(!json.contains('.'), "integer-only artifact: {json}");
    }

    #[test]
    fn depth_buckets_cover_overflow() {
        assert_eq!(depth_bucket(0), 0);
        assert_eq!(depth_bucket(1), 1);
        assert_eq!(depth_bucket(3), 3);
        assert_eq!(depth_bucket(32), 6);
        assert_eq!(depth_bucket(33), 7, "past the top bound → overflow");
        assert_eq!(depth_bucket(u64::MAX), 7);
    }
}
