//! Churn provenance: causal attribution stamps for UPDATE messages.
//!
//! Every UPDATE the simulator delivers can be traced back to the **root
//! cause** that set the network in motion — an origination, an origin
//! withdrawal, a session reset, or a damping reuse event. A
//! [`Provenance`] stamp travels with the message and records:
//!
//! * the set of root-cause event ids that contributed to it (usually one;
//!   more when MRAI coalescing folded updates from different causes into
//!   one transmission),
//! * the **causal depth**: how many receive→decide→export hops separate
//!   the message from the root cause (0 for messages sent directly by the
//!   root-cause node),
//! * the sending edge's Gao–Rexford relation, as seen by the *sender*
//!   (`Customer` = "sent to our customer").
//!
//! Stamps are telemetry metadata, not protocol content: they are excluded
//! from message equality, never influence the decision process, and a
//! simulation with stamping produces bit-identical churn reports to one
//! without. Root ids are allocated sequentially by the simulator, so the
//! stamp stream is a pure function of the simulated trajectory and all
//! derived artifacts stay byte-identical across `--jobs` levels.

use std::sync::{Arc, OnceLock};

use bgpscale_topology::Relationship;

/// Why a root-cause event happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RootCauseKind {
    /// A node started originating a prefix (the "UP" action, including
    /// the uncounted warm-up announcement of a C-event).
    Originate,
    /// A node stopped originating a prefix (the "DOWN" action).
    WithdrawOrigin,
    /// A link failed: both BGP sessions dropped (an L-event half).
    SessionDown,
    /// A failed link was restored: both sessions re-established.
    SessionUp,
    /// A Route-Flap-Damping reuse wake-up re-ran a decision process.
    RfdReuse,
}

impl RootCauseKind {
    /// All kinds, in stable index order.
    pub const ALL: [RootCauseKind; 5] = [
        RootCauseKind::Originate,
        RootCauseKind::WithdrawOrigin,
        RootCauseKind::SessionDown,
        RootCauseKind::SessionUp,
        RootCauseKind::RfdReuse,
    ];

    /// Stable dense index (0..5), used by counters.
    pub fn index(self) -> usize {
        match self {
            RootCauseKind::Originate => 0,
            RootCauseKind::WithdrawOrigin => 1,
            RootCauseKind::SessionDown => 2,
            RootCauseKind::SessionUp => 3,
            RootCauseKind::RfdReuse => 4,
        }
    }

    /// Stable lowercase name, used in metric keys and JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            RootCauseKind::Originate => "originate",
            RootCauseKind::WithdrawOrigin => "withdraw_origin",
            RootCauseKind::SessionDown => "session_down",
            RootCauseKind::SessionUp => "session_up",
            RootCauseKind::RfdReuse => "rfd_reuse",
        }
    }
}

/// The provenance stamp carried by every UPDATE message.
///
/// Cheap to clone: the root set is interned behind an `Arc<[u32]>`, so a
/// clone is a reference-count bump plus two words. [`Provenance::none`]
/// (the unstamped default) is allocation-free.
///
/// The root set is always sorted and duplicate-free, an invariant every
/// constructor and [`Provenance::coalesce_with`] maintain.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Provenance {
    roots: Arc<[u32]>,
    depth: u32,
    rel: Option<Relationship>,
}

impl Provenance {
    /// The unstamped provenance (no root cause attached). Used by direct
    /// `BgpNode` entry points outside a simulator, so unit tests of the
    /// protocol machine need not invent causes.
    pub fn none() -> Provenance {
        static EMPTY: OnceLock<Arc<[u32]>> = OnceLock::new();
        Provenance {
            roots: EMPTY.get_or_init(|| Arc::from([])).clone(),
            depth: 0,
            rel: None,
        }
    }

    /// A fresh stamp for root-cause event `id`, at causal depth 0.
    pub fn root(id: u32) -> Provenance {
        Provenance {
            roots: Arc::from([id]),
            depth: 0,
            rel: None,
        }
    }

    /// True when at least one root cause is attached.
    pub fn is_stamped(&self) -> bool {
        !self.roots.is_empty()
    }

    /// The contributing root-cause ids, sorted and duplicate-free.
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// The lowest (oldest) contributing root id, if stamped.
    pub fn primary_root(&self) -> Option<u32> {
        self.roots.first().copied()
    }

    /// Hops between the root-cause node's own transmissions (depth 0) and
    /// this message.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The sending edge's Gao–Rexford relation, from the sender's view
    /// (`Customer` = sent to the sender's customer). `None` until the
    /// export phase stamps it.
    pub fn rel(&self) -> Option<Relationship> {
        self.rel
    }

    /// The stamp for an export *triggered by* a message carrying this
    /// stamp: same roots, depth + 1, relation cleared (each edge stamps
    /// its own).
    pub fn child(&self) -> Provenance {
        Provenance {
            roots: Arc::clone(&self.roots),
            depth: self.depth.saturating_add(1),
            rel: None,
        }
    }

    /// A copy of this stamp with the sending edge's relation recorded.
    pub fn with_rel(&self, rel: Relationship) -> Provenance {
        Provenance {
            roots: Arc::clone(&self.roots),
            depth: self.depth,
            rel: Some(rel),
        }
    }

    /// Folds the stamp of a *displaced* queued update into this one: the
    /// root sets union (MRAI coalescing must not lose attribution — the
    /// flushed transmission answers for every cause it absorbed), while
    /// depth and relation stay those of `self`, the newest intent. This
    /// is what keeps WRATE and NO-WRATE runs comparable: rate-limiting
    /// changes how many messages carry a root, never which roots are
    /// accounted for.
    pub fn coalesce_with(&mut self, displaced: &Provenance) {
        if displaced.roots.is_empty() || self.roots == displaced.roots {
            return;
        }
        let mut union: Vec<u32> = self
            .roots
            .iter()
            .chain(displaced.roots.iter())
            .copied()
            .collect();
        union.sort_unstable();
        union.dedup();
        // Both inputs are sorted/deduped, so an unchanged length means an
        // identical set — keep the existing allocation.
        if union.len() != self.roots.len() {
            self.roots = union.into();
        }
    }
}

impl Default for Provenance {
    fn default() -> Self {
        Provenance::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_unstamped_and_allocation_free() {
        let a = Provenance::none();
        let b = Provenance::default();
        assert!(!a.is_stamped());
        assert_eq!(a.roots(), &[] as &[u32]);
        assert_eq!(a.primary_root(), None);
        assert!(Arc::ptr_eq(&a.roots, &b.roots), "empty roots are shared");
    }

    #[test]
    fn root_and_child_track_depth() {
        let r = Provenance::root(7);
        assert!(r.is_stamped());
        assert_eq!(r.roots(), &[7]);
        assert_eq!(r.depth(), 0);
        let c = r.child().child();
        assert_eq!(c.depth(), 2);
        assert_eq!(c.roots(), &[7], "roots propagate unchanged");
        assert_eq!(c.rel(), None);
    }

    #[test]
    fn with_rel_stamps_the_edge() {
        let p = Provenance::root(1).with_rel(Relationship::Peer);
        assert_eq!(p.rel(), Some(Relationship::Peer));
        assert_eq!(p.child().rel(), None, "children stamp their own edge");
    }

    #[test]
    fn coalesce_unions_roots_and_keeps_newest_depth() {
        let mut newest = Provenance::root(5).child();
        let displaced = Provenance::root(2).child().child();
        newest.coalesce_with(&displaced);
        assert_eq!(newest.roots(), &[2, 5], "sorted union");
        assert_eq!(newest.depth(), 1, "depth of the newest intent wins");
        // Coalescing with an equal or empty set is a no-op.
        let before = newest.clone();
        newest.coalesce_with(&Provenance::none());
        newest.coalesce_with(&before.clone());
        assert_eq!(newest, before);
    }

    #[test]
    fn root_cause_kind_indices_are_dense_and_stable() {
        for (i, k) in RootCauseKind::ALL.into_iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        assert_eq!(RootCauseKind::Originate.name(), "originate");
        assert_eq!(RootCauseKind::SessionDown.name(), "session_down");
    }
}
