//! Dependency-free HTML/SVG rendering helpers for self-contained reports.
//!
//! Everything here emits plain strings — no external crates, no CSS or
//! JS fetched from anywhere — so a report written with these helpers is a
//! single file that opens offline. Coordinates are formatted with one
//! fixed decimal, making the output a pure function of its inputs.

use std::fmt::Write as _;

/// Escapes `&`, `<`, `>`, `"` for safe embedding in HTML text/attributes.
pub fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

fn fmt1(v: f64) -> String {
    format!("{v:.1}")
}

const PAD: f64 = 2.0;

/// Maps `values` to polyline points spanning `width`×`height` with a
/// 2px pad; y grows downward in SVG, so the max value sits at the top.
fn polyline_points(values: &[u64], width: u32, height: u32) -> String {
    let max = values.iter().copied().max().unwrap_or(0).max(1) as f64;
    let w = f64::from(width) - 2.0 * PAD;
    let h = f64::from(height) - 2.0 * PAD;
    let step = if values.len() > 1 {
        w / (values.len() - 1) as f64
    } else {
        0.0
    };
    let mut pts = String::new();
    for (i, &v) in values.iter().enumerate() {
        if i > 0 {
            pts.push(' ');
        }
        let x = PAD + step * i as f64;
        let y = PAD + h * (1.0 - v as f64 / max);
        let _ = write!(pts, "{},{}", fmt1(x), fmt1(y));
    }
    pts
}

/// An inline SVG sparkline of `values` (one point per bin).
pub fn svg_sparkline(values: &[u64], width: u32, height: u32, color: &str) -> String {
    if values.is_empty() {
        return format!(
            "<svg width=\"{width}\" height=\"{height}\" class=\"spark empty\"></svg>"
        );
    }
    format!(
        "<svg width=\"{width}\" height=\"{height}\" class=\"spark\" \
         viewBox=\"0 0 {width} {height}\"><polyline fill=\"none\" stroke=\"{}\" \
         stroke-width=\"1.2\" points=\"{}\"/></svg>",
        html_escape(color),
        polyline_points(values, width, height)
    )
}

/// An inline SVG bar chart with per-bar labels underneath.
pub fn svg_bars(
    labels: &[&str],
    values: &[u64],
    width: u32,
    height: u32,
    color: &str,
) -> String {
    assert_eq!(labels.len(), values.len(), "one label per bar");
    if values.is_empty() {
        return format!("<svg width=\"{width}\" height=\"{height}\" class=\"bars empty\"></svg>");
    }
    let label_h = 12.0;
    let max = values.iter().copied().max().unwrap_or(0).max(1) as f64;
    let w = f64::from(width) - 2.0 * PAD;
    let h = f64::from(height) - 2.0 * PAD - label_h;
    let slot = w / values.len() as f64;
    let bar_w = (slot * 0.8).max(1.0);
    let mut s = format!(
        "<svg width=\"{width}\" height=\"{height}\" class=\"bars\" \
         viewBox=\"0 0 {width} {height}\">"
    );
    for (i, (&v, label)) in values.iter().zip(labels).enumerate() {
        let bh = h * v as f64 / max;
        let x = PAD + slot * i as f64 + (slot - bar_w) / 2.0;
        let y = PAD + h - bh;
        let _ = write!(
            s,
            "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{}\"/>",
            fmt1(x),
            fmt1(y),
            fmt1(bar_w),
            fmt1(bh),
            html_escape(color)
        );
        let _ = write!(
            s,
            "<text x=\"{}\" y=\"{}\" font-size=\"9\" text-anchor=\"middle\">{}</text>",
            fmt1(x + bar_w / 2.0),
            fmt1(f64::from(height) - PAD),
            html_escape(label)
        );
    }
    s.push_str("</svg>");
    s
}

/// An inline SVG empirical CDF of `sorted_values` (ascending), drawn as a
/// step polyline from 0 to 1 over the value range.
pub fn svg_cdf(sorted_values: &[u64], width: u32, height: u32, color: &str) -> String {
    if sorted_values.is_empty() {
        return format!("<svg width=\"{width}\" height=\"{height}\" class=\"cdf empty\"></svg>");
    }
    debug_assert!(sorted_values.windows(2).all(|w| w[0] <= w[1]));
    let n = sorted_values.len() as f64;
    let max = (*sorted_values.last().unwrap()).max(1) as f64;
    let w = f64::from(width) - 2.0 * PAD;
    let h = f64::from(height) - 2.0 * PAD;
    let mut pts = format!("{},{}", fmt1(PAD), fmt1(PAD + h));
    for (i, &v) in sorted_values.iter().enumerate() {
        let x = PAD + w * v as f64 / max;
        let y_before = PAD + h * (1.0 - i as f64 / n);
        let y_after = PAD + h * (1.0 - (i + 1) as f64 / n);
        let _ = write!(
            pts,
            " {},{} {},{}",
            fmt1(x),
            fmt1(y_before),
            fmt1(x),
            fmt1(y_after)
        );
    }
    format!(
        "<svg width=\"{width}\" height=\"{height}\" class=\"cdf\" \
         viewBox=\"0 0 {width} {height}\"><polyline fill=\"none\" stroke=\"{}\" \
         stroke-width=\"1.2\" points=\"{pts}\"/></svg>",
        html_escape(color)
    )
}

/// One named series for [`svg_lines`]: `(x, y)` points in ascending-x
/// order.
pub struct LineSeries<'a> {
    /// Legend label.
    pub label: &'a str,
    /// `(x, y)` points, ascending in x.
    pub points: &'a [(f64, f64)],
}

/// Fixed stroke palette for multi-series charts (cycled when exceeded),
/// so colors are a pure function of series index.
pub const SERIES_COLORS: [&str; 6] = ["#336", "#a33", "#383", "#a60", "#639", "#067"];

/// An inline SVG multi-series line chart with a legend: one polyline per
/// series, all sharing the axis ranges `[min x, max x] × [0, max y]`.
/// Built for the trend dashboard's events/sec-vs-n and ops/event-vs-n
/// panels, where each series is one ledger revision.
pub fn svg_lines(series: &[LineSeries<'_>], width: u32, height: u32) -> String {
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    if all.is_empty() {
        return format!("<svg width=\"{width}\" height=\"{height}\" class=\"lines empty\"></svg>");
    }
    let x_min = all.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let x_max = all.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let y_max = all.iter().map(|p| p.1).fold(0.0, f64::max).max(1e-9);
    let x_span = (x_max - x_min).max(1e-9);
    let w = f64::from(width) - 2.0 * PAD;
    let h = f64::from(height) - 2.0 * PAD;
    let mut s = format!(
        "<svg width=\"{width}\" height=\"{height}\" class=\"lines\" \
         viewBox=\"0 0 {width} {height}\">"
    );
    for (si, ser) in series.iter().enumerate() {
        if ser.points.is_empty() {
            continue;
        }
        let color = SERIES_COLORS[si % SERIES_COLORS.len()];
        let mut pts = String::new();
        for (i, &(x, y)) in ser.points.iter().enumerate() {
            if i > 0 {
                pts.push(' ');
            }
            let px = PAD + w * (x - x_min) / x_span;
            let py = PAD + h * (1.0 - y / y_max);
            let _ = write!(pts, "{},{}", fmt1(px), fmt1(py));
        }
        let _ = write!(
            s,
            "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"1.2\" points=\"{pts}\"/>"
        );
        // Dot the samples so single-point series stay visible.
        for &(x, y) in ser.points {
            let px = PAD + w * (x - x_min) / x_span;
            let py = PAD + h * (1.0 - y / y_max);
            let _ = write!(
                s,
                "<circle cx=\"{}\" cy=\"{}\" r=\"1.8\" fill=\"{color}\"/>",
                fmt1(px),
                fmt1(py)
            );
        }
        let _ = write!(
            s,
            "<text x=\"{}\" y=\"{}\" font-size=\"9\" fill=\"{color}\">{}</text>",
            fmt1(PAD + 4.0),
            fmt1(PAD + 10.0 + 10.0 * si as f64),
            html_escape(ser.label)
        );
    }
    s.push_str("</svg>");
    s
}

/// A plain HTML table: one `<th>` per header, one row of `<td>`s per
/// entry in `rows`. Cells are escaped; layout comes from the page CSS.
pub fn html_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut s = String::from("<table><tr>");
    for head in headers {
        let _ = write!(s, "<th>{}</th>", html_escape(head));
    }
    s.push_str("</tr>");
    for row in rows {
        s.push_str("<tr>");
        for cell in row {
            let _ = write!(s, "<td>{}</td>", html_escape(cell));
        }
        s.push_str("</tr>");
    }
    s.push_str("</table>");
    s
}

/// Wraps a body in a complete standalone HTML page with inline CSS.
pub fn html_page(title: &str, body: &str) -> String {
    format!(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>{}</title><style>\
         body{{font-family:monospace;margin:2em;max-width:72em}}\
         h1,h2{{font-weight:normal}}\
         table{{border-collapse:collapse}}\
         td,th{{border:1px solid #999;padding:0.3em 0.7em;text-align:right}}\
         th{{background:#eee}}\
         .panel{{display:inline-block;vertical-align:top;margin:0.5em 1.2em 0.5em 0}}\
         .panel p{{margin:0.2em 0;font-size:0.85em;color:#333}}\
         svg{{background:#fafafa;border:1px solid #ddd}}\
         </style></head><body>\n{}\n</body></html>\n",
        html_escape(title),
        body
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_html_specials() {
        assert_eq!(html_escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
        assert_eq!(html_escape("plain"), "plain");
    }

    #[test]
    fn sparkline_renders_points_and_is_deterministic() {
        let s = svg_sparkline(&[0, 5, 10], 100, 20, "#336");
        assert!(s.contains("<polyline"));
        assert!(s.contains("points=\"2.0,18.0 50.0,10.0 98.0,2.0\""), "{s}");
        assert_eq!(s, svg_sparkline(&[0, 5, 10], 100, 20, "#336"));
        assert!(svg_sparkline(&[], 100, 20, "x").contains("empty"));
    }

    #[test]
    fn bars_render_one_rect_and_label_per_value() {
        let s = svg_bars(&["a", "b"], &[1, 2], 80, 40, "#633");
        assert_eq!(s.matches("<rect").count(), 2);
        assert_eq!(s.matches("<text").count(), 2);
        assert!(s.contains(">a</text>") && s.contains(">b</text>"));
    }

    #[test]
    fn cdf_steps_from_zero_to_one() {
        let s = svg_cdf(&[10, 20], 100, 40, "#363");
        assert!(s.contains("<polyline"));
        // Ends at the top-right corner (y = PAD), full CDF reached.
        assert!(s.contains("98.0,2.0"), "{s}");
        assert!(svg_cdf(&[], 100, 40, "x").contains("empty"));
    }

    #[test]
    fn lines_render_one_polyline_and_legend_entry_per_series() {
        let a = [(300.0, 10.0), (600.0, 8.0)];
        let b = [(300.0, 6.0), (600.0, 7.0)];
        let s = svg_lines(
            &[
                LineSeries { label: "rev-a", points: &a },
                LineSeries { label: "rev-b", points: &b },
            ],
            120,
            60,
        );
        assert_eq!(s.matches("<polyline").count(), 2);
        assert_eq!(s.matches("<circle").count(), 4);
        assert!(s.contains(">rev-a</text>") && s.contains(">rev-b</text>"));
        assert_eq!(
            s,
            svg_lines(
                &[
                    LineSeries { label: "rev-a", points: &a },
                    LineSeries { label: "rev-b", points: &b },
                ],
                120,
                60,
            ),
            "deterministic output"
        );
        assert!(svg_lines(&[], 120, 60).contains("empty"));
    }

    #[test]
    fn table_escapes_cells_and_keeps_row_shape() {
        let t = html_table(
            &["n", "ops<br>"],
            &[vec!["300".to_string(), "1&2".to_string()]],
        );
        assert!(t.contains("<th>n</th>"));
        assert!(t.contains("<th>ops&lt;br&gt;</th>"));
        assert!(t.contains("<td>1&amp;2</td>"));
        assert_eq!(t.matches("<tr>").count(), 2);
    }

    #[test]
    fn page_is_standalone_html() {
        let p = html_page("t<5", "<p>body</p>");
        assert!(p.starts_with("<!DOCTYPE html>"));
        assert!(p.contains("<title>t&lt;5</title>"));
        assert!(p.contains("<p>body</p>"));
        assert!(p.ends_with("</body></html>\n"));
    }
}
