//! A deterministic, integer-only metrics registry.
//!
//! Three metric families, all integer-valued so that cross-worker merges
//! are exact (no f64 accumulation-order hazards):
//!
//! * **Counters** — monotone `u64` sums. Merging adds.
//! * **Gauges** — a last-written value plus its observed peak. Merging
//!   takes the maximum of both, which is order-independent — gauges are
//!   for peaks (deepest queue, longest path), not for running values.
//! * **Histograms** — fixed upper-bound buckets with `u64` counts plus
//!   `count`/`sum`/`max`. Merging adds bucket-wise (bounds must match).
//!
//! The registry serializes to JSON with `BTreeMap` key order and no
//! floating-point values, so equal registries produce byte-identical
//! files. The experiment harness builds one registry per C-event and
//! merges them in event-index order — the same discipline as
//! `FactorAccumulator` — which makes `metrics.json` bit-identical for any
//! `--jobs` level (regression-tested in `bgpscale-core`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A gauge: last-set value and the peak ever set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Gauge {
    /// The most recently set value.
    pub value: u64,
    /// The maximum ever set.
    pub max: u64,
}

/// A fixed-bucket integer histogram.
///
/// `bounds[i]` is the inclusive upper edge of bucket `i`; one implicit
/// **overflow bucket** catches everything above the last bound. A sample
/// past the top boundary is therefore never dropped: it lands in bucket
/// `bounds.len()` (the last entry of [`Histogram::bucket_counts`]) and
/// still contributes to `count`/`sum`/`max`. The JSON serialization
/// renders the overflow bucket with the bound `"inf"`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram over `bounds` (must be strictly
    /// increasing and non-empty).
    ///
    /// # Panics
    /// Panics on empty or non-increasing bounds.
    pub fn new(bounds: Vec<u64>) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; buckets],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        self.observe_n(value, 1);
    }

    /// Records `n` identical samples in O(buckets) — the bulk path used
    /// when loading pre-aggregated counts (e.g. from `Recorder`'s fixed
    /// arrays). A no-op when `n == 0`.
    #[inline]
    pub fn observe_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += n;
        self.count += n;
        self.sum += value * n;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample as a display convenience (not part of the
    /// deterministic serialization, which stays integer-only).
    pub fn mean(&self) -> f64 { // detlint::allow(float-accum, reason = "display-only ratio of two exact integer counters; never accumulated or serialized")
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64 // detlint::allow(float-accum, reason = "single division of exact integers at render time")
        }
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts: `bounds.len() + 1` entries, where entry `i < bounds.len()`
    /// counts samples with `value <= bounds[i]` (and above the previous
    /// bound), and the final entry is the overflow bucket holding every
    /// sample greater than `bounds.last()`.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Adds another histogram's samples into this one.
    ///
    /// # Panics
    /// Panics if the bucket bounds differ — merging histograms of
    /// different shapes would silently corrupt the distribution.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "histogram merge with mismatched bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Named counters, gauges and histograms with deterministic serialization.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `by` to counter `name` (creating it at 0).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counter_entry(name) += by;
    }

    fn counter_entry(&mut self, name: &str) -> &mut u64 {
        if !self.counters.contains_key(name) {
            self.counters.insert(name.to_string(), 0);
        }
        self.counters.get_mut(name).expect("just inserted")
    }

    /// Reads counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name`, tracking its peak.
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        let g = self.gauges.entry(name.to_string()).or_default();
        g.value = value;
        g.max = g.max.max(value);
    }

    /// Reads gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<Gauge> {
        self.gauges.get(name).copied()
    }

    /// Records `value` into histogram `name`, creating it with `bounds`
    /// on first use. Later calls ignore `bounds` (the first shape wins).
    pub fn observe(&mut self, name: &str, bounds: &[u64], value: u64) {
        self.observe_n(name, bounds, value, 1);
    }

    /// Records `n` identical samples into histogram `name` (see
    /// [`Histogram::observe_n`]). Creates the histogram with `bounds` on
    /// first use even when `n == 0`, so a shape is always registered.
    pub fn observe_n(&mut self, name: &str, bounds: &[u64], value: u64, n: u64) {
        if !self.histograms.contains_key(name) {
            self.histograms
                .insert(name.to_string(), Histogram::new(bounds.to_vec()));
        }
        self.histograms
            .get_mut(name)
            .expect("just inserted")
            .observe_n(value, n);
    }

    /// Reads histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, Gauge)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`: counters add, gauges take maxima,
    /// histograms add bucket-wise. All operations are exact integer
    /// arithmetic, so a fold in any fixed order yields identical bytes —
    /// the harness nevertheless merges in event-index order, matching the
    /// `FactorAccumulator` discipline.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            self.inc(k, v);
        }
        for (k, g) in &other.gauges {
            let mine = self.gauges.entry(k.clone()).or_default();
            mine.value = mine.value.max(g.value);
            mine.max = mine.max.max(g.max);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Serializes to pretty JSON with fully deterministic bytes: BTreeMap
    /// key order, integer values only, fixed indentation. Stamped with the
    /// workspace-wide [`crate::SCHEMA_VERSION`].
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n  \"schema_version\": {},\n  \"counters\": {{",
            crate::SCHEMA_VERSION
        );
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(s, "{sep}\n    \"{k}\": {v}");
        }
        if !self.counters.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("},\n  \"gauges\": {");
        for (i, (k, g)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                s,
                "{sep}\n    \"{k}\": {{ \"value\": {}, \"max\": {} }}",
                g.value, g.max
            );
        }
        if !self.gauges.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("},\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                s,
                "{sep}\n    \"{k}\": {{ \"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [",
                h.count, h.sum, h.max
            );
            for (j, (&bound, &count)) in h
                .bounds
                .iter()
                .chain(std::iter::once(&u64::MAX))
                .zip(&h.counts)
                .enumerate()
            {
                let sep = if j == 0 { "" } else { ", " };
                if bound == u64::MAX {
                    let _ = write!(s, "{sep}[\"inf\", {count}]");
                } else {
                    let _ = write!(s, "{sep}[{bound}, {count}]");
                }
            }
            s.push_str("] }");
        }
        if !self.histograms.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("}\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_samples_at_edges() {
        let mut h = Histogram::new(vec![1, 10, 100]);
        for v in [0, 1, 2, 10, 11, 100, 101, 5_000] {
            h.observe(v);
        }
        // <=1: {0, 1}; <=10: {2, 10}; <=100: {11, 100}; overflow: {101, 5000}
        assert_eq!(h.bucket_counts(), &[2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 5_225); // 0+1+2+10+11+100+101+5000
        assert_eq!(h.max(), 5_000);
        assert!((h.mean() - h.sum() as f64 / 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(vec![10, 10]);
    }

    #[test]
    fn values_past_the_top_bound_land_in_the_overflow_bucket() {
        let mut h = Histogram::new(vec![1, 10]);
        h.observe(11); // one past the top bound
        h.observe(5_000); // far past it
        assert_eq!(
            h.bucket_counts(),
            &[0, 0, 2],
            "overflow samples are counted, not dropped"
        );
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 5_011);
        assert_eq!(h.max(), 5_000);

        // Same through the registry, and the overflow bucket serializes
        // with the "inf" bound.
        let mut r = MetricsRegistry::new();
        r.observe("x", &[1, 10], 9_999);
        assert_eq!(r.histogram("x").unwrap().bucket_counts(), &[0, 0, 1]);
        assert!(r.to_json().contains("[\"inf\", 1]"), "{}", r.to_json());
    }

    #[test]
    fn histogram_merge_adds_bucketwise() {
        let mut a = Histogram::new(vec![5, 50]);
        let mut b = Histogram::new(vec![5, 50]);
        a.observe(3);
        b.observe(7);
        b.observe(70);
        a.merge(&b);
        assert_eq!(a.bucket_counts(), &[1, 1, 1]);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 70);
    }

    #[test]
    #[should_panic(expected = "mismatched bounds")]
    fn histogram_merge_rejects_different_shapes() {
        let mut a = Histogram::new(vec![5]);
        a.merge(&Histogram::new(vec![6]));
    }

    #[test]
    fn registry_counters_and_gauges() {
        let mut r = MetricsRegistry::new();
        r.inc("events.total", 2);
        r.inc("events.total", 3);
        r.set_gauge("queue.depth", 7);
        r.set_gauge("queue.depth", 4);
        assert_eq!(r.counter("events.total"), 5);
        assert_eq!(r.counter("missing"), 0);
        let g = r.gauge("queue.depth").unwrap();
        assert_eq!(g.value, 4);
        assert_eq!(g.max, 7);
    }

    #[test]
    fn merge_is_exact_and_order_independent() {
        let mk = |c: u64, g: u64, h: u64| {
            let mut r = MetricsRegistry::new();
            r.inc("c", c);
            r.set_gauge("g", g);
            r.observe("h", &[10, 100], h);
            r
        };
        let parts = [mk(1, 5, 3), mk(2, 9, 30), mk(4, 2, 300)];
        let mut fwd = MetricsRegistry::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = MetricsRegistry::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.to_json(), rev.to_json());
        assert_eq!(fwd.counter("c"), 7);
        assert_eq!(fwd.gauge("g").unwrap().max, 9);
        assert_eq!(fwd.histogram("h").unwrap().count(), 3);
    }

    #[test]
    fn json_is_deterministic_and_integer_only() {
        let mut r = MetricsRegistry::new();
        r.inc("b.second", 2);
        r.inc("a.first", 1);
        r.observe("lens", &[2, 8], 3);
        r.observe("lens", &[2, 8], 9);
        let j1 = r.to_json();
        let j2 = r.clone().to_json();
        assert_eq!(j1, j2);
        // Keys serialize sorted; no floats anywhere.
        assert!(j1.find("a.first").unwrap() < j1.find("b.second").unwrap());
        assert!(!j1.contains('.') || !j1.contains("e-"), "no float exponents");
        assert!(j1.contains("[\"inf\", 1]"), "overflow bucket rendered: {j1}");
    }

    #[test]
    fn empty_registry_serializes_cleanly() {
        let r = MetricsRegistry::new();
        assert!(r.is_empty());
        let j = r.to_json();
        assert!(j.contains("\"counters\": {}"));
        assert!(j.starts_with("{\n  \"schema_version\": "));
    }
}
