//! The run ledger: append-only, cross-run performance history.
//!
//! Every `repro bench`, `repro perf`, and `repro profile` invocation
//! appends one immutable, schema-versioned record per experiment cell to
//! `results/ledger/runs.jsonl`. The ledger is the repo's own trend data:
//! where the paper asks whether per-router workload stays sublinear as
//! the topology grows, the ledger asks whether *our* per-event cost stays
//! flat as the code grows — `repro trend` folds it into scaling-exponent
//! refits and regression gates.
//!
//! ## Record anatomy
//!
//! Each record is one line of JSON with two clearly segregated tiers:
//!
//! * **`det` — deterministic fields.** Run kind, git rev, config
//!   fingerprint, cell coordinates, exact [`OpCounts`], and content
//!   hashes of the deterministic artifacts (`metrics.json`,
//!   `timeseries.json`, `costmodel.json`). These are pure functions of
//!   `(config, seed, code)` and therefore byte-identical across `--jobs`
//!   — the same contract as every other deterministic writer, enforced by
//!   the jobs-1/4/8 tests.
//! * **`wall` — wall-side fields.** Wall time, worker count, peak RSS,
//!   observer-overhead numbers. Machine- and scheduling-dependent by
//!   definition; they never participate in hashing or dedup. All wall
//!   fields are stored in integer units (microseconds, bytes,
//!   centi-percent) because this file sits in the detlint
//!   `[integer-only]` tier.
//!
//! The **config fingerprint** hashes `(scenario, n, mode, seed, events)`
//! via the simkernel hash chain ([`hash64_bytes`] / [`hash64_pair`]).
//! The worker count is deliberately *excluded*: results are
//! jobs-invariant by the determinism contract, so `--jobs` belongs to
//! the wall tier. `(fingerprint, git_rev)` keys the trend series.
//!
//! ## Append-only semantics
//!
//! [`append_records`] never rewrites or reorders existing lines. A record
//! whose `(fingerprint, git_rev, det_hash)` triple already appears in the
//! ledger is a re-run of identical work and is deduplicated (skipped)
//! instead of double-appended; a record differing in *any* deterministic
//! byte gets a fresh line. Readers ([`read_ledger`]) verify every line by
//! canonical round-trip: parse, re-serialize *in the line's own schema
//! layout*, compare bytes — a corrupt or truncated trailing line is a
//! hard [`LedgerError::Corrupt`], never silently skipped (surfaced as
//! exit 2 by `repro trend`, the shared usage/config-error code).
//!
//! Because history is append-only, a schema bump never orphans old
//! lines: op-count classes are only ever appended to [`OpCounts`], so a
//! v1 `ops` block is a prefix of today's and parses with the new classes
//! at zero. New lines are always written in the current schema.

use std::collections::BTreeSet;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

use bgpscale_simkernel::rng::{hash64_bytes, hash64_pair};

use crate::costmodel::OpCounts;
use crate::SCHEMA_VERSION;

/// Which subcommand produced a record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RunKind {
    /// `repro bench` — the wall-clock scaling sweep.
    Bench,
    /// `repro perf` — the exact op-count regression gate.
    Perf,
    /// `repro profile` — one observed cell with a phase profile.
    Profile,
}

impl RunKind {
    /// The serialized name.
    pub fn name(self) -> &'static str {
        match self {
            RunKind::Bench => "bench",
            RunKind::Perf => "perf",
            RunKind::Profile => "profile",
        }
    }

    /// Parses a serialized name.
    pub fn from_name(name: &str) -> Option<RunKind> {
        match name {
            "bench" => Some(RunKind::Bench),
            "perf" => Some(RunKind::Perf),
            "profile" => Some(RunKind::Profile),
            _ => None,
        }
    }
}

impl fmt::Display for RunKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Content hashes of the deterministic artifacts a run produced, when it
/// produced them ([`hash64_bytes`] over the serialized bytes). Byte
/// identity of an artifact across commits is checkable after the fact by
/// comparing these 64-bit values — without storing the artifacts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArtifactHashes {
    /// Hash of `metrics.json` bytes (`MetricsRegistry::to_json`).
    pub metrics: Option<u64>,
    /// Hash of `timeseries.json` bytes.
    pub timeseries: Option<u64>,
    /// Hash of `costmodel.json` bytes (`CostModel::to_json`).
    pub costmodel: Option<u64>,
}

/// Wall-side measurements of one run. Integer units only: microseconds,
/// bytes, and centi-percent (1 cpct = 0.01%), so this file satisfies the
/// detlint `[integer-only]` tier while still carrying signed overhead
/// readings. Never hashed, never deduplicated on, never deterministic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WallSide {
    /// Wall time of the cell in microseconds.
    pub wall_us: u64,
    /// Effective worker count the run used.
    pub jobs: u64,
    /// Peak resident set size in bytes (`None` off-Linux).
    pub peak_rss_bytes: Option<u64>,
    /// Observer metrics-only overhead in centi-percent, unclamped (may be
    /// negative: scheduling noise). `None` when the run measured none.
    pub metrics_overhead_cpct: Option<i64>,
    /// Observer full-trace overhead in centi-percent, unclamped.
    pub trace_overhead_cpct: Option<i64>,
}

/// One ledger record: the deterministic identity and results of a run
/// plus its wall-side context. See the module docs for the tier split.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LedgerRecord {
    /// The ledger schema version the record was written under — the
    /// current [`SCHEMA_VERSION`] for fresh records, the wire version for
    /// parsed ones. Op classes are append-only, so an older record's
    /// trailing op fields are zero-filled; consumers comparing op counts
    /// across records (the trend gates) must not treat that padding as
    /// measured data.
    pub schema: u32,
    /// Which subcommand produced this record.
    pub kind: RunKind,
    /// Git revision of the producing tree (`"unknown"` outside a repo).
    pub git_rev: String,
    /// Growth-scenario name (e.g. `"BASELINE"`).
    pub scenario: String,
    /// Network size of the cell.
    pub n: u64,
    /// MRAI mode label (`"NO-WRATE"` / `"WRATE"`).
    pub mode: String,
    /// Master seed.
    pub seed: u64,
    /// C-events per cell.
    pub events: u64,
    /// Exact op counts of the cell (grand totals per class).
    pub ops: OpCounts,
    /// Content hashes of the deterministic artifacts.
    pub artifacts: ArtifactHashes,
    /// Wall-side measurements.
    pub wall: WallSide,
}

impl LedgerRecord {
    /// The config fingerprint: a stable hash of
    /// `(scenario, n, mode, seed, events)` via the simkernel hash chain.
    /// Worker count is excluded by design (results are jobs-invariant).
    pub fn fingerprint(&self) -> u64 {
        config_fingerprint(&self.scenario, self.n, &self.mode, self.seed, self.events)
    }

    /// The canonical deterministic block. Everything here is a pure
    /// function of `(config, seed, code)`; byte-identical across `--jobs`.
    pub fn det_json(&self) -> String {
        self.det_json_with(OpCounts::FIELD_COUNT)
    }

    /// [`LedgerRecord::det_json`] truncated to the first `field_count` op
    /// classes — the serialization an older schema wrote. Op classes are
    /// only ever appended, so every historical `ops` block is a prefix of
    /// the current one.
    fn det_json_with(&self, field_count: usize) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"kind\":\"{}\",\"git_rev\":\"{}\",\"fingerprint\":\"{:016x}\",\
             \"scenario\":\"{}\",\"n\":{},\"mode\":\"{}\",\"seed\":{},\"events\":{},",
            self.kind,
            self.git_rev,
            self.fingerprint(),
            self.scenario,
            self.n,
            self.mode,
            self.seed,
            self.events
        );
        s.push_str("\"ops\":{");
        for (i, (name, value)) in self.ops.fields().iter().take(field_count).enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(s, "{sep}\"{name}\":{value}");
        }
        s.push_str("},\"artifacts\":{");
        let _ = write!(
            s,
            "\"metrics\":{},\"timeseries\":{},\"costmodel\":{}",
            opt_hex(self.artifacts.metrics),
            opt_hex(self.artifacts.timeseries),
            opt_hex(self.artifacts.costmodel)
        );
        s.push_str("}}");
        s
    }

    /// Content hash of the deterministic block — the dedup key component
    /// and the reader's integrity check.
    pub fn det_hash(&self) -> u64 {
        hash64_bytes(self.det_json().as_bytes())
    }

    /// Serializes the full record as one canonical JSON line (no trailing
    /// newline). Parsing and re-serializing a valid line reproduces it
    /// byte-for-byte; [`parse_line`] relies on that for integrity.
    pub fn to_line(&self) -> String {
        self.to_line_with(SCHEMA_VERSION, OpCounts::FIELD_COUNT)
    }

    /// [`LedgerRecord::to_line`] in a historical schema's exact layout.
    /// Used by [`parse_line`] to round-trip-verify old lines: the
    /// `det_hash` on the wire covers the det block *as that schema wrote
    /// it*, so the hash is recomputed over the truncated field set.
    fn to_line_with(&self, schema: u32, field_count: usize) -> String {
        let det = self.det_json_with(field_count);
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"schema_version\":{},\"det\":{},\"det_hash\":\"{:016x}\",\"wall\":{{",
            schema,
            det,
            hash64_bytes(det.as_bytes())
        );
        let _ = write!(
            s,
            "\"wall_us\":{},\"jobs\":{},\"peak_rss_bytes\":{},\
             \"metrics_overhead_cpct\":{},\"trace_overhead_cpct\":{}}}}}",
            self.wall.wall_us,
            self.wall.jobs,
            opt_u64(self.wall.peak_rss_bytes),
            opt_i64(self.wall.metrics_overhead_cpct),
            opt_i64(self.wall.trace_overhead_cpct)
        );
        s
    }
}

/// The stable config fingerprint; see [`LedgerRecord::fingerprint`].
pub fn config_fingerprint(scenario: &str, n: u64, mode: &str, seed: u64, events: u64) -> u64 {
    let mut h = hash64_bytes(scenario.as_bytes());
    h = hash64_pair(h, n);
    h = hash64_pair(h, hash64_bytes(mode.as_bytes()));
    h = hash64_pair(h, seed);
    hash64_pair(h, events)
}

fn opt_hex(v: Option<u64>) -> String {
    match v {
        Some(v) => format!("\"{v:016x}\""),
        None => "null".to_string(),
    }
}

fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

fn opt_i64(v: Option<i64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

/// What went wrong while reading or appending the ledger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LedgerError {
    /// Filesystem failure (path and the io error's rendering).
    Io(String),
    /// A line failed to parse or round-trip — corruption or truncation.
    /// `line` is 1-based.
    Corrupt { line: usize, reason: String },
    /// A line carries a schema version this reader does not understand
    /// (newer than the code, or never shipped).
    Schema { line: usize, found: u64 },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::Io(msg) => write!(f, "ledger io error: {msg}"),
            LedgerError::Corrupt { line, reason } => {
                write!(f, "ledger corrupt at line {line}: {reason}")
            }
            LedgerError::Schema { line, found } => write!(
                f,
                "ledger line {line} has schema_version {found}, this reader understands 1..={SCHEMA_VERSION}"
            ),
        }
    }
}

/// Extracts `"key":<unsigned integer>` from a compact JSON line.
fn json_u64(doc: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = &doc[at..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key":<signed integer or null>`.
fn json_opt_i64(doc: &str, key: &str) -> Option<Option<i64>> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = &doc[at..];
    if rest.starts_with("null") {
        return Some(None);
    }
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok().map(Some)
}

/// Extracts `"key":<unsigned integer or null>`.
fn json_opt_u64(doc: &str, key: &str) -> Option<Option<u64>> {
    match json_opt_i64(doc, key)? {
        None => Some(None),
        Some(v) if v >= 0 => Some(Some(v as u64)),
        Some(_) => None,
    }
}

/// Extracts `"key":"<string>"`.
fn json_str<'a>(doc: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let at = doc.find(&needle)? + needle.len();
    doc[at..].split('"').next()
}

/// Extracts `"key":"<16 hex digits>"` or `"key":null`.
fn json_opt_hex(doc: &str, key: &str) -> Option<Option<u64>> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = &doc[at..];
    if rest.starts_with("null") {
        return Some(None);
    }
    let hex = rest.strip_prefix('"')?.split('"').next()?;
    u64::from_str_radix(hex, 16).ok().map(Some)
}

/// Parses one canonical ledger line back into a record.
///
/// # Errors
/// [`LedgerError::Schema`] on a foreign schema version;
/// [`LedgerError::Corrupt`] when a field is missing/malformed or when the
/// parsed record does not re-serialize to the exact input bytes (which
/// catches truncation and any in-place edit, including a det/wall value
/// flip that individual field parses would miss).
pub fn parse_line(line: &str, line_no: usize) -> Result<LedgerRecord, LedgerError> {
    let corrupt = |reason: &str| LedgerError::Corrupt {
        line: line_no,
        reason: reason.to_string(),
    };
    let schema = json_u64(line, "schema_version").ok_or_else(|| corrupt("missing schema_version"))?;
    // The ledger is append-only history: every schema this file was ever
    // written in stays readable. Op classes are append-only, so an older
    // line simply populates a prefix of today's OpCounts (the rest is 0).
    let field_count = match schema {
        1 => OpCounts::FIELD_COUNT_V1,
        v if v == u64::from(SCHEMA_VERSION) => OpCounts::FIELD_COUNT,
        _ => {
            return Err(LedgerError::Schema {
                line: line_no,
                found: schema,
            })
        }
    };
    let kind = json_str(line, "kind")
        .and_then(RunKind::from_name)
        .ok_or_else(|| corrupt("missing or unknown kind"))?;
    let git_rev = json_str(line, "git_rev")
        .ok_or_else(|| corrupt("missing git_rev"))?
        .to_string();
    let scenario = json_str(line, "scenario")
        .ok_or_else(|| corrupt("missing scenario"))?
        .to_string();
    let mode = json_str(line, "mode")
        .ok_or_else(|| corrupt("missing mode"))?
        .to_string();
    let n = json_u64(line, "n").ok_or_else(|| corrupt("missing n"))?;
    let seed = json_u64(line, "seed").ok_or_else(|| corrupt("missing seed"))?;
    let events = json_u64(line, "events").ok_or_else(|| corrupt("missing events"))?;
    let mut fields = OpCounts::default().fields();
    for (name, value) in fields.iter_mut().take(field_count) {
        *value = json_u64(line, name).ok_or_else(|| corrupt(&format!("missing op class {name}")))?;
    }
    let ops = OpCounts::from_fields(&fields);
    let artifacts = ArtifactHashes {
        metrics: json_opt_hex(line, "metrics").ok_or_else(|| corrupt("bad metrics hash"))?,
        timeseries: json_opt_hex(line, "timeseries")
            .ok_or_else(|| corrupt("bad timeseries hash"))?,
        costmodel: json_opt_hex(line, "costmodel").ok_or_else(|| corrupt("bad costmodel hash"))?,
    };
    let wall = WallSide {
        wall_us: json_u64(line, "wall_us").ok_or_else(|| corrupt("missing wall_us"))?,
        jobs: json_u64(line, "jobs").ok_or_else(|| corrupt("missing jobs"))?,
        peak_rss_bytes: json_opt_u64(line, "peak_rss_bytes")
            .ok_or_else(|| corrupt("bad peak_rss_bytes"))?,
        metrics_overhead_cpct: json_opt_i64(line, "metrics_overhead_cpct")
            .ok_or_else(|| corrupt("bad metrics_overhead_cpct"))?,
        trace_overhead_cpct: json_opt_i64(line, "trace_overhead_cpct")
            .ok_or_else(|| corrupt("bad trace_overhead_cpct"))?,
    };
    let record = LedgerRecord {
        schema: schema as u32,
        kind,
        git_rev,
        scenario,
        n,
        mode,
        seed,
        events,
        ops,
        artifacts,
        wall,
    };
    // Canonical round-trip: a healthy line re-serializes byte-for-byte
    // *in its own schema's layout* (this also re-derives and thereby
    // verifies det_hash and the fingerprint). Anything else is
    // corruption or truncation.
    if record.to_line_with(schema as u32, field_count) != line {
        return Err(corrupt(
            "record does not round-trip canonically (truncated or edited line)",
        ));
    }
    Ok(record)
}

/// Reads and verifies the whole ledger. A missing file is an empty
/// ledger; an unreadable or corrupt one is a hard error.
///
/// # Errors
/// [`LedgerError::Io`] on filesystem failure, [`LedgerError::Corrupt`] /
/// [`LedgerError::Schema`] from [`parse_line`] — including a truncated
/// trailing line, which is reported (with its line number), not skipped.
pub fn read_ledger(path: &Path) -> Result<Vec<LedgerRecord>, LedgerError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(LedgerError::Io(format!("{}: {e}", path.display()))),
    };
    parse_ledger(&text)
}

/// [`read_ledger`] on in-memory text (the testable core).
///
/// # Errors
/// As [`read_ledger`], minus the io cases.
pub fn parse_ledger(text: &str) -> Result<Vec<LedgerRecord>, LedgerError> {
    let mut records = Vec::new();
    let lines: Vec<&str> = text.split('\n').collect();
    for (i, line) in lines.iter().enumerate() {
        if line.is_empty() {
            if i + 1 == lines.len() {
                break; // the normal trailing newline
            }
            return Err(LedgerError::Corrupt {
                line: i + 1,
                reason: "empty line inside the ledger".to_string(),
            });
        }
        records.push(parse_line(line, i + 1)?);
    }
    Ok(records)
}

/// The result of one [`append_records`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AppendOutcome {
    /// Records written as fresh lines.
    pub appended: usize,
    /// Records skipped because an identical `(fingerprint, git_rev,
    /// det_hash)` line already exists — a re-run of identical work.
    pub deduped: usize,
}

/// Appends `records` to the ledger at `path`, creating the file (and its
/// parent directory) on first use. Existing lines are never rewritten.
/// Records whose `(fingerprint, git_rev, det_hash)` already appears —
/// in the file or earlier in `records` — are deduplicated.
///
/// # Errors
/// Any [`LedgerError`] from reading the existing ledger (appending to a
/// corrupt ledger would bury the corruption) or from the write itself.
pub fn append_records(path: &Path, records: &[LedgerRecord]) -> Result<AppendOutcome, LedgerError> {
    let existing = read_ledger(path)?;
    let mut seen: BTreeSet<(u64, String, u64)> = existing
        .iter()
        .map(|r| (r.fingerprint(), r.git_rev.clone(), r.det_hash()))
        .collect();
    let mut outcome = AppendOutcome::default();
    let mut block = String::new();
    for record in records {
        let key = (record.fingerprint(), record.git_rev.clone(), record.det_hash());
        if seen.contains(&key) {
            outcome.deduped += 1;
            continue;
        }
        seen.insert(key);
        block.push_str(&record.to_line());
        block.push('\n');
        outcome.appended += 1;
    }
    if outcome.appended == 0 {
        return Ok(outcome);
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| LedgerError::Io(format!("{}: {e}", parent.display())))?;
        }
    }
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| LedgerError::Io(format!("{}: {e}", path.display())))?;
    file.write_all(block.as_bytes())
        .map_err(|e| LedgerError::Io(format!("{}: {e}", path.display())))?;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64, rev: &str) -> LedgerRecord {
        let ops = OpCounts {
            queue_pushes: 100 * n,
            deliveries: 10 * n,
            decision_runs: 5 * n,
            ..OpCounts::default()
        };
        LedgerRecord {
            schema: SCHEMA_VERSION,
            kind: RunKind::Bench,
            git_rev: rev.to_string(),
            scenario: "BASELINE".to_string(),
            n,
            mode: "NO-WRATE".to_string(),
            seed: 7,
            events: 5,
            ops,
            artifacts: ArtifactHashes {
                metrics: Some(0xABCD),
                timeseries: None,
                costmodel: Some(0x1234_5678_9ABC_DEF0),
            },
            wall: WallSide {
                wall_us: 1_234,
                jobs: 4,
                peak_rss_bytes: Some(20 << 20),
                metrics_overhead_cpct: Some(-451),
                trace_overhead_cpct: Some(2062),
            },
        }
    }

    fn tmpfile(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bgpscale_ledger_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("runs.jsonl")
    }

    #[test]
    fn line_round_trips_exactly() {
        let rec = sample(300, "deadbeef");
        let line = rec.to_line();
        assert!(line.starts_with(&format!("{{\"schema_version\":{SCHEMA_VERSION},\"det\":{{")));
        assert!(!line.contains('\n'));
        let parsed = parse_line(&line, 1).unwrap();
        assert_eq!(parsed, rec);
        assert_eq!(parsed.to_line(), line);
    }

    #[test]
    fn fingerprint_covers_config_but_not_wall_side() {
        let a = sample(300, "r1");
        let mut b = a.clone();
        b.wall.wall_us = 999_999;
        b.wall.jobs = 8;
        b.git_rev = "r2".to_string();
        assert_eq!(a.fingerprint(), b.fingerprint(), "wall side and rev excluded");
        let mut c = a.clone();
        c.n = 301;
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = a.clone();
        d.mode = "WRATE".to_string();
        assert_ne!(a.fingerprint(), d.fingerprint());
        let mut e = a.clone();
        e.seed = 8;
        assert_ne!(a.fingerprint(), e.fingerprint());
    }

    #[test]
    fn det_hash_ignores_wall_but_sees_every_det_field() {
        let a = sample(300, "r1");
        let mut b = a.clone();
        b.wall.peak_rss_bytes = None;
        assert_eq!(a.det_hash(), b.det_hash(), "wall side never hashed");
        let mut c = a.clone();
        c.ops.deliveries += 1;
        assert_ne!(a.det_hash(), c.det_hash());
        let mut d = a.clone();
        d.artifacts.costmodel = Some(1);
        assert_ne!(a.det_hash(), d.det_hash());
        let mut e = a.clone();
        e.git_rev = "r2".to_string();
        assert_ne!(a.det_hash(), e.det_hash(), "rev is a det field");
    }

    #[test]
    fn append_then_read_preserves_order_and_content() {
        let path = tmpfile("roundtrip");
        std::fs::remove_file(&path).ok();
        let recs = vec![sample(300, "r1"), sample(600, "r1")];
        let out = append_records(&path, &recs).unwrap();
        assert_eq!(out, AppendOutcome { appended: 2, deduped: 0 });
        let more = vec![sample(300, "r2")];
        append_records(&path, &more).unwrap();
        let read = read_ledger(&path).unwrap();
        assert_eq!(read.len(), 3);
        assert_eq!(read[0], recs[0]);
        assert_eq!(read[1], recs[1]);
        assert_eq!(read[2], more[0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn identical_rerun_dedupes_instead_of_double_appending() {
        let path = tmpfile("dedupe");
        std::fs::remove_file(&path).ok();
        let rec = sample(300, "r1");
        append_records(&path, std::slice::from_ref(&rec)).unwrap();
        // Same config + rev + results, different wall numbers: dedupe.
        let mut rerun = rec.clone();
        rerun.wall.wall_us = 777;
        let out = append_records(&path, &[rerun]).unwrap();
        assert_eq!(out, AppendOutcome { appended: 0, deduped: 1 });
        // Same config + rev but drifted counts: a fresh line (the drift
        // is exactly what the trend gate wants to see).
        let mut drifted = rec.clone();
        drifted.ops.deliveries += 1;
        let out = append_records(&path, &[drifted]).unwrap();
        assert_eq!(out, AppendOutcome { appended: 1, deduped: 0 });
        // New rev, identical results: a fresh line keyed to that rev.
        let mut newrev = rec.clone();
        newrev.git_rev = "r2".to_string();
        let out = append_records(&path, &[newrev]).unwrap();
        assert_eq!(out, AppendOutcome { appended: 1, deduped: 0 });
        assert_eq!(read_ledger(&path).unwrap().len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dedupe_also_applies_within_one_batch() {
        let path = tmpfile("batch");
        std::fs::remove_file(&path).ok();
        let rec = sample(300, "r1");
        let out = append_records(&path, &[rec.clone(), rec]).unwrap();
        assert_eq!(out, AppendOutcome { appended: 1, deduped: 1 });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_trailing_line_is_reported_not_skipped() {
        let a = sample(300, "r1").to_line();
        let b = sample(600, "r1").to_line();
        let mut text = format!("{a}\n{b}\n");
        text.truncate(text.len() - 20); // chop the tail of line 2
        match parse_ledger(&text) {
            Err(LedgerError::Corrupt { line: 2, .. }) => {}
            other => panic!("truncation must be Corrupt at line 2, got {other:?}"),
        }
    }

    #[test]
    fn edited_line_fails_the_canonical_round_trip() {
        let line = sample(300, "r1").to_line();
        // Flip one op-count digit without touching structure.
        let edited = line.replacen("\"queue_pushes\":30000", "\"queue_pushes\":30001", 1);
        assert_ne!(line, edited, "test must actually edit the line");
        match parse_line(&edited, 1) {
            Err(LedgerError::Corrupt { .. }) => {}
            other => panic!("edited line must be Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn foreign_schema_version_is_rejected() {
        let line = sample(300, "r1").to_line();
        let bumped = line.replacen(
            &format!("\"schema_version\":{SCHEMA_VERSION}"),
            "\"schema_version\":999",
            1,
        );
        match parse_line(&bumped, 3) {
            Err(LedgerError::Schema { line: 3, found: 999 }) => {}
            other => panic!("foreign schema must be Schema, got {other:?}"),
        }
    }

    #[test]
    fn v1_lines_stay_readable_and_round_trip_in_their_own_layout() {
        // A v1 line carries only the first FIELD_COUNT_V1 op classes and a
        // det_hash over that truncated block. It must still parse — the
        // ledger is append-only history — with the appended v2 classes
        // reading as zero.
        let rec = sample(300, "r1");
        let v1 = rec.to_line_with(1, OpCounts::FIELD_COUNT_V1);
        assert!(v1.starts_with("{\"schema_version\":1,\"det\":{"));
        assert!(!v1.contains("queue_cascades"), "v1 stops at mrai_coalesced");
        assert!(!v1.contains("arena_bytes_reserved"));
        let parsed = parse_line(&v1, 1).unwrap();
        assert_eq!(parsed.ops.queue_cascades, 0);
        assert_eq!(parsed.ops.arena_bytes_reserved, 0);
        assert_eq!(parsed.schema, 1, "parsed records remember their wire schema");
        assert_eq!(
            parsed,
            LedgerRecord { schema: 1, ..rec },
            "sample sets no v2-only class"
        );
        // Mixed-schema ledgers read end to end, in order.
        let v2 = sample(600, "r2").to_line();
        let all = parse_ledger(&format!("{v1}\n{v2}\n")).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].n, 300);
        assert_eq!(all[1].n, 600);
        // An edited v1 line still fails its canonical round-trip.
        let edited = v1.replacen("\"queue_pushes\":30000", "\"queue_pushes\":30001", 1);
        assert_ne!(edited, v1);
        assert!(matches!(parse_line(&edited, 1), Err(LedgerError::Corrupt { .. })));
    }

    #[test]
    fn missing_file_reads_as_empty_and_blank_interior_line_is_corrupt() {
        let path = tmpfile("missing");
        std::fs::remove_file(&path).ok();
        assert_eq!(read_ledger(&path).unwrap(), Vec::new());
        let a = sample(300, "r1").to_line();
        let text = format!("{a}\n\n{a}\n");
        match parse_ledger(&text) {
            Err(LedgerError::Corrupt { line: 2, .. }) => {}
            other => panic!("blank interior line must be Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn errors_render_with_position_and_advice() {
        let e = LedgerError::Corrupt {
            line: 7,
            reason: "truncated".to_string(),
        };
        assert!(e.to_string().contains("line 7"));
        let s = LedgerError::Schema { line: 1, found: 9 };
        assert!(s.to_string().contains("schema_version 9"));
    }
}
