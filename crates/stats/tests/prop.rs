//! Property-based tests for the statistics toolkit.

use bgpscale_stats::descriptive::{confidence_interval_95, mean, std_dev};
use bgpscale_stats::dist::{normal_cdf, normal_quantile};
use bgpscale_stats::mann_kendall::{mann_kendall, sens_slope};
use bgpscale_stats::regression::{fit_linear, fit_quadratic};
use proptest::prelude::*;

proptest! {
    /// Kendall's tau is always in [−1, 1]; strictly monotone series reach
    /// the endpoints.
    #[test]
    fn tau_bounded(xs in prop::collection::vec(-1e6f64..1e6, 3..100)) {
        let mk = mann_kendall(&xs);
        prop_assert!((-1.0..=1.0).contains(&mk.tau));
        prop_assert!(mk.var_s > 0.0 || xs.iter().all(|&x| x == xs[0]));
        prop_assert!((0.0..=1.0).contains(&mk.p_value));
    }

    /// Adding a positive constant to a strictly increasing ramp keeps
    /// tau = 1; reversing flips the sign of S.
    #[test]
    fn tau_symmetry_under_reversal(xs in prop::collection::vec(-1e6f64..1e6, 3..60)) {
        let mk = mann_kendall(&xs);
        let mut rev = xs.clone();
        rev.reverse();
        let mk_rev = mann_kendall(&rev);
        prop_assert_eq!(mk.s, -mk_rev.s);
    }

    /// Sen's slope lies between the extreme pairwise slopes.
    #[test]
    fn sen_slope_bounded_by_extremes(xs in prop::collection::vec(-1e6f64..1e6, 2..50)) {
        let slope = sens_slope(&xs);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for i in 0..xs.len() {
            for j in (i + 1)..xs.len() {
                let s = (xs[j] - xs[i]) / (j - i) as f64;
                min = min.min(s);
                max = max.max(s);
            }
        }
        prop_assert!(slope >= min - 1e-9 && slope <= max + 1e-9);
    }

    /// Sen's slope is equivariant: scaling the data scales the slope.
    #[test]
    fn sen_slope_scale_equivariant(
        xs in prop::collection::vec(-1e3f64..1e3, 2..40),
        k in 0.1f64..10.0,
    ) {
        let scaled: Vec<f64> = xs.iter().map(|x| k * x).collect();
        let a = sens_slope(&xs) * k;
        let b = sens_slope(&scaled);
        prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
    }

    /// R² of a linear fit is ≤ 1 and the residual of a quadratic fit on
    /// the same data is never worse (the model nests the linear one).
    #[test]
    fn quadratic_nests_linear(
        ys in prop::collection::vec(-1e3f64..1e3, 4..40),
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let lin = fit_linear(&xs, &ys);
        let quad = fit_quadratic(&xs, &ys);
        prop_assert!(lin.r_squared <= 1.0 + 1e-9);
        prop_assert!(quad.r_squared <= 1.0 + 1e-9);
        prop_assert!(quad.r_squared >= lin.r_squared - 1e-6,
            "quadratic fit ({}) worse than nested linear fit ({})",
            quad.r_squared, lin.r_squared);
    }

    /// Fitting recovers any exact line.
    #[test]
    fn linear_fit_exact_recovery(a in -100f64..100.0, b in -100f64..100.0) {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| a + b * x).collect();
        let f = fit_linear(&xs, &ys);
        prop_assert!((f.intercept - a).abs() < 1e-6);
        prop_assert!((f.slope - b).abs() < 1e-7);
    }

    /// The normal CDF is monotone and the quantile inverts it.
    #[test]
    fn cdf_monotone_and_inverted(x in -5.0f64..5.0, y in -5.0f64..5.0) {
        if x < y {
            prop_assert!(normal_cdf(x) <= normal_cdf(y));
        }
        let p = normal_cdf(x).clamp(1e-9, 1.0 - 1e-9);
        let back = normal_quantile(p);
        prop_assert!((back - x).abs() < 1e-3, "Φ⁻¹(Φ({x})) = {back}");
    }

    /// Mean/std/CI sanity: the mean lies in [min, max]; the CI shrinks
    /// when the data is duplicated (n doubles, s fixed).
    #[test]
    fn descriptive_sanity(xs in prop::collection::vec(-1e6f64..1e6, 2..60)) {
        let m = mean(&xs);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= min - 1e-9 && m <= max + 1e-9);
        prop_assert!(std_dev(&xs) >= 0.0);
        let doubled: Vec<f64> = xs.iter().chain(&xs).copied().collect();
        prop_assert!(confidence_interval_95(&doubled) <= confidence_interval_95(&xs) + 1e-9);
    }
}
