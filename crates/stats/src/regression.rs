//! Ordinary least squares: linear and quadratic fits with R².
//!
//! Used to reproduce the paper's growth-model claims — §4.2 reports that
//! `Up(T)` grows approximately linearly (R² = 0.95) while `Uc(T)` grows
//! quadratically (R² = 0.92) under the Baseline model.

/// A fitted line `y = intercept + slope·x`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Intercept `β₀`.
    pub intercept: f64,
    /// Slope `β₁`.
    pub slope: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

/// A fitted parabola `y = a + b·x + c·x²`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuadraticFit {
    /// Constant term `a`.
    pub a: f64,
    /// Linear coefficient `b`.
    pub b: f64,
    /// Quadratic coefficient `c`.
    pub c: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

fn r_squared(ys: &[f64], predicted: impl Fn(usize) -> f64) -> f64 {
    let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
    let ss_tot: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = ys
        .iter()
        .enumerate()
        .map(|(i, y)| (y - predicted(i)).powi(2))
        .sum();
    if ss_tot == 0.0 {
        // A constant series is fit perfectly by any model that can
        // represent a constant.
        if ss_res < 1e-12 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Fits `y = β₀ + β₁·x` by least squares.
///
/// # Panics
/// Panics with fewer than 2 points, mismatched lengths, or degenerate
/// (constant) x.
pub fn fit_linear(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    assert!(xs.len() >= 2, "need at least 2 points");
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "degenerate x values");
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let r2 = r_squared(ys, |i| intercept + slope * xs[i]);
    LinearFit {
        intercept,
        slope,
        r_squared: r2,
    }
}

/// Fits `y = a + b·x + c·x²` by least squares (normal equations solved
/// with Gaussian elimination on the 3×3 system).
///
/// # Panics
/// Panics with fewer than 3 points, mismatched lengths, or a singular
/// design (e.g. fewer than 3 distinct x values).
pub fn fit_quadratic(xs: &[f64], ys: &[f64]) -> QuadraticFit {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    assert!(xs.len() >= 3, "need at least 3 points");
    // Build the normal equations Σ X^T X β = X^T y for X = [1, x, x²].
    let mut s = [0.0f64; 5]; // Σ x^k for k = 0..4
    let mut t = [0.0f64; 3]; // Σ y·x^k for k = 0..2
    for (&x, &y) in xs.iter().zip(ys) {
        let mut xp = 1.0;
        for sk in s.iter_mut() {
            *sk += xp;
            xp *= x;
        }
        let mut xp = 1.0;
        for tk in t.iter_mut() {
            *tk += y * xp;
            xp *= x;
        }
    }
    let mut m = [
        [s[0], s[1], s[2], t[0]],
        [s[1], s[2], s[3], t[1]],
        [s[2], s[3], s[4], t[2]],
    ];
    // Gaussian elimination with partial pivoting.
    for col in 0..3 {
        let pivot = (col..3)
            .max_by(|&a, &b| m[a][col].abs().partial_cmp(&m[b][col].abs()).unwrap())
            .unwrap();
        m.swap(col, pivot);
        assert!(m[col][col].abs() > 1e-12, "singular design matrix");
        for row in 0..3 {
            if row != col {
                let f = m[row][col] / m[col][col];
                let pivot_row = m[col];
                for (k, cell) in m[row].iter_mut().enumerate().skip(col) {
                    *cell -= f * pivot_row[k];
                }
            }
        }
    }
    let a = m[0][3] / m[0][0];
    let b = m[1][3] / m[1][1];
    let c = m[2][3] / m[2][2];
    let r2 = r_squared(ys, |i| a + b * xs[i] + c * xs[i] * xs[i]);
    QuadraticFit {
        a,
        b,
        c,
        r_squared: r2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovers_coefficients() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let f = fit_linear(&xs, &ys);
        assert!((f.intercept - 3.0).abs() < 1e-9);
        assert!((f.slope - 2.0).abs() < 1e-9);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_high_but_imperfect_r2() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        // Deterministic "noise".
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 1.0 + 0.5 * x + if (*x as i64) % 2 == 0 { 0.8 } else { -0.8 })
            .collect();
        let f = fit_linear(&xs, &ys);
        assert!((f.slope - 0.5).abs() < 0.02);
        assert!(f.r_squared > 0.95 && f.r_squared < 1.0);
    }

    #[test]
    fn exact_parabola_recovers_coefficients() {
        let xs: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 - 2.0 * x + 0.3 * x * x).collect();
        let f = fit_quadratic(&xs, &ys);
        assert!((f.a - 1.0).abs() < 1e-6, "a = {}", f.a);
        assert!((f.b + 2.0).abs() < 1e-6, "b = {}", f.b);
        assert!((f.c - 0.3).abs() < 1e-8, "c = {}", f.c);
        assert!((f.r_squared - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quadratic_beats_linear_on_quadratic_data() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64 * 1000.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x / 1000.0).powi(2)).collect();
        let lin = fit_linear(&xs, &ys);
        let quad = fit_quadratic(&xs, &ys);
        assert!(quad.r_squared > lin.r_squared);
        assert!(quad.r_squared > 0.9999);
    }

    #[test]
    fn constant_series_r2_is_one() {
        let xs: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let ys = vec![4.0; 5];
        assert_eq!(fit_linear(&xs, &ys).r_squared, 1.0);
        assert_eq!(fit_quadratic(&xs, &ys).r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        fit_linear(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "degenerate x")]
    fn constant_x_rejected() {
        fit_linear(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn quadratic_needs_three_distinct_x() {
        fit_quadratic(&[1.0, 1.0, 2.0, 2.0], &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least 3 points")]
    fn quadratic_needs_three_points() {
        fit_quadratic(&[1.0, 2.0], &[1.0, 2.0]);
    }
}
