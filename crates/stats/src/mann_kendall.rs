//! The Mann–Kendall trend test and Sen's slope estimator.
//!
//! The paper's Fig. 1 analysis: *"Due to the high variability, we used the
//! Mann-Kendall test to estimate the trend in churn growth."* The test is
//! non-parametric — it counts concordant vs discordant pairs — which makes
//! it robust to the extreme burstiness of BGP update counts.

use crate::dist::two_sided_p;

/// Direction of a detected monotonic trend.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Trend {
    /// Significantly increasing at the requested level.
    Increasing,
    /// Significantly decreasing.
    Decreasing,
    /// No significant monotonic trend.
    None,
}

/// Result of the Mann–Kendall test.
#[derive(Clone, Copy, Debug)]
pub struct MannKendall {
    /// The S statistic: #concordant − #discordant pairs.
    pub s: i64,
    /// Variance of S under H₀, with the tie correction.
    pub var_s: f64,
    /// The standardized statistic Z.
    pub z: f64,
    /// Two-sided p-value (normal approximation).
    pub p_value: f64,
    /// Kendall's tau: `S / (n(n−1)/2)`.
    pub tau: f64,
}

impl MannKendall {
    /// Classifies the trend at significance level `alpha`.
    pub fn trend(&self, alpha: f64) -> Trend {
        if self.p_value < alpha {
            if self.s > 0 {
                Trend::Increasing
            } else {
                Trend::Decreasing
            }
        } else {
            Trend::None
        }
    }
}

/// Runs the Mann–Kendall test on an evenly spaced series.
///
/// # Panics
/// Panics with fewer than 3 observations (the test is undefined).
pub fn mann_kendall(xs: &[f64]) -> MannKendall {
    let n = xs.len();
    assert!(n >= 3, "Mann–Kendall needs at least 3 observations");
    let mut s: i64 = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            s += match xs[j].partial_cmp(&xs[i]).expect("NaN in series") {
                std::cmp::Ordering::Greater => 1,
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
            };
        }
    }

    // Tie correction: group the series by equal values.
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut tie_term = 0.0;
    let mut run = 1usize;
    for k in 1..=n {
        if k < n && sorted[k] == sorted[k - 1] {
            run += 1;
        } else {
            if run > 1 {
                let t = run as f64;
                tie_term += t * (t - 1.0) * (2.0 * t + 5.0);
            }
            run = 1;
        }
    }
    let nf = n as f64;
    let var_s = (nf * (nf - 1.0) * (2.0 * nf + 5.0) - tie_term) / 18.0;

    // Continuity-corrected Z.
    let z = if s > 0 {
        (s as f64 - 1.0) / var_s.sqrt()
    } else if s < 0 {
        (s as f64 + 1.0) / var_s.sqrt()
    } else {
        0.0
    };
    MannKendall {
        s,
        var_s,
        z,
        p_value: two_sided_p(z),
        tau: s as f64 / (nf * (nf - 1.0) / 2.0),
    }
}

/// Sen's slope: the median of all pairwise slopes `(x_j − x_i)/(j − i)`.
/// A robust estimate of the per-step trend magnitude; the paper's "grew
/// approximately by a total of 200% over these three years" is this slope
/// times the series length, relative to the starting level.
///
/// # Panics
/// Panics with fewer than 2 observations.
pub fn sens_slope(xs: &[f64]) -> f64 {
    let n = xs.len();
    assert!(n >= 2, "Sen's slope needs at least 2 observations");
    let mut slopes = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            slopes.push((xs[j] - xs[i]) / (j - i) as f64);
        }
    }
    slopes.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let m = slopes.len();
    if m % 2 == 1 {
        slopes[m / 2]
    } else {
        (slopes[m / 2 - 1] + slopes[m / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strictly_increasing_series_detected() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mk = mann_kendall(&xs);
        assert_eq!(mk.s, (50 * 49 / 2) as i64, "all pairs concordant");
        assert!((mk.tau - 1.0).abs() < 1e-12);
        assert!(mk.p_value < 1e-6);
        assert_eq!(mk.trend(0.05), Trend::Increasing);
    }

    #[test]
    fn strictly_decreasing_series_detected() {
        let xs: Vec<f64> = (0..50).map(|i| -(i as f64)).collect();
        let mk = mann_kendall(&xs);
        assert_eq!(mk.trend(0.05), Trend::Decreasing);
        assert!((mk.tau + 1.0).abs() < 1e-12);
    }

    #[test]
    fn alternating_series_has_no_trend() {
        let xs: Vec<f64> = (0..60).map(|i| if i % 2 == 0 { 1.0 } else { 2.0 }).collect();
        let mk = mann_kendall(&xs);
        assert_eq!(mk.trend(0.05), Trend::None, "p = {}", mk.p_value);
    }

    #[test]
    fn noisy_trend_still_detected() {
        // Linear trend with deterministic sawtooth noise much larger than
        // the per-step increment.
        let xs: Vec<f64> = (0..200)
            .map(|i| i as f64 * 0.5 + ((i * 37) % 17) as f64)
            .collect();
        let mk = mann_kendall(&xs);
        assert_eq!(mk.trend(0.05), Trend::Increasing);
    }

    #[test]
    fn ties_reduce_variance_correctly() {
        // A series that is constant except one rise: heavy ties.
        let mut xs = vec![5.0; 30];
        for (i, x) in xs.iter_mut().enumerate().skip(25) {
            *x = 6.0 + i as f64;
        }
        let mk = mann_kendall(&xs);
        // Variance must be smaller than the tie-free formula.
        let n = 30.0f64;
        let untied = n * (n - 1.0) * (2.0 * n + 5.0) / 18.0;
        assert!(mk.var_s < untied);
        assert_eq!(mk.trend(0.05), Trend::Increasing);
    }

    #[test]
    fn sens_slope_of_exact_line() {
        let xs: Vec<f64> = (0..40).map(|i| 3.0 + 2.5 * i as f64).collect();
        assert!((sens_slope(&xs) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn sens_slope_robust_to_outliers() {
        let mut xs: Vec<f64> = (0..40).map(|i| 1.0 * i as f64).collect();
        xs[20] = 1e6; // single wild outlier
        let slope = sens_slope(&xs);
        assert!((slope - 1.0).abs() < 0.1, "slope {slope} not robust");
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_short_series_rejected() {
        mann_kendall(&[1.0, 2.0]);
    }
}
