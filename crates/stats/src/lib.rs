//! # bgpscale-stats
//!
//! The statistics toolkit behind the reproduction's analyses:
//!
//! * [`descriptive`] — means, variances, confidence intervals.
//! * [`dist`] — the standard normal distribution (erf, Φ, Φ⁻¹),
//!   implemented locally with well-known rational approximations.
//! * [`regression`] — ordinary least squares for linear and quadratic
//!   models with R² (the paper reports R² = 0.95 for the linear growth of
//!   `Up(T)` and R² = 0.92 for the quadratic growth of `Uc(T)`).
//! * [`mann_kendall`](mod@mann_kendall) — the Mann–Kendall trend test and Sen's slope
//!   estimator, the method the paper uses on the RIPE monitor series of
//!   Fig. 1.
//! * [`powerlaw`] — discrete power-law exponent fitting (Clauset-style
//!   MLE), used to check the generator's degree distributions.

#![forbid(unsafe_code)]

pub mod descriptive;
pub mod dist;
pub mod mann_kendall;
pub mod powerlaw;
pub mod regression;

pub use descriptive::{confidence_interval_95, gini, mean, std_dev, Summary};
pub use mann_kendall::{mann_kendall, sens_slope, MannKendall, Trend};
pub use regression::{fit_linear, fit_quadratic, LinearFit, QuadraticFit};
