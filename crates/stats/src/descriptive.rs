//! Descriptive statistics: means, deviations, confidence intervals.

use crate::dist::normal_quantile;

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Median of an integer sample, `None` when empty. Exact: an even-length
/// sample averages the two middle values with floor division, so the
/// result stays integral — suitable for comparing op-count histories
/// without introducing order-sensitive float arithmetic.
pub fn median_u64(xs: &[u64]) -> Option<u64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_unstable();
    let mid = sorted.len() / 2;
    Some(if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        let lo = sorted[mid - 1];
        let hi = sorted[mid];
        lo + (hi - lo) / 2
    })
}

/// Sample variance (n − 1 denominator); 0 with fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Half-width of the normal-approximation 95% confidence interval of the
/// mean: `z₀.₉₇₅ · s/√n`. With the paper's 100-event samples the normal
/// approximation is accurate to well under a percent versus Student's t.
pub fn confidence_interval_95(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    normal_quantile(0.975) * std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Gini coefficient of a non-negative sample: 0 = perfectly even,
/// → 1 = maximally concentrated. Used to quantify how unevenly churn is
/// distributed across ASes (Broido et al. observed that a small fraction
/// of ASes accounts for most Internet churn).
///
/// # Panics
/// Panics on negative values.
pub fn gini(xs: &[f64]) -> f64 {
    assert!(xs.iter().all(|&x| x >= 0.0), "gini requires non-negative data");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let total: f64 = sorted.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    // G = (2 Σ i·x_i) / (n Σ x_i) − (n + 1)/n  with 1-based ranks.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i + 1) as f64 * x)
        .sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

/// Five-number-style summary used in experiment reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// 95% CI half-width of the mean.
    pub ci95: f64,
}

impl Summary {
    /// Computes the summary; an empty slice yields all-zero fields.
    pub fn of(xs: &[f64]) -> Summary {
        Summary {
            n: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min).min(f64::INFINITY),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max).max(f64::NEG_INFINITY),
            ci95: confidence_interval_95(xs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_data() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        // Population variance is 4; sample variance = 32/7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn median_u64_is_exact_and_total() {
        assert_eq!(median_u64(&[]), None);
        assert_eq!(median_u64(&[7]), Some(7));
        assert_eq!(median_u64(&[3, 1, 2]), Some(2));
        // Even length: midpoint with floor division, overflow-safe form.
        assert_eq!(median_u64(&[1, 4]), Some(2));
        assert_eq!(median_u64(&[u64::MAX, u64::MAX - 2]), Some(u64::MAX - 1));
        assert_eq!(median_u64(&[10, 0, 10, 0]), Some(5));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(confidence_interval_95(&[3.0]), 0.0);
    }

    #[test]
    fn ci_is_z_times_standard_error() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ci = confidence_interval_95(&xs);
        let expected = 1.959964 * std_dev(&xs) / 10.0;
        assert!((ci - expected).abs() < 1e-4);
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        let small: Vec<f64> = (0..10).map(|i| (i % 3) as f64).collect();
        let large: Vec<f64> = (0..1000).map(|i| (i % 3) as f64).collect();
        assert!(confidence_interval_95(&large) < confidence_interval_95(&small));
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(s.ci95 > 0.0);
    }

    #[test]
    fn gini_of_equal_values_is_zero() {
        assert!(gini(&[5.0; 10]).abs() < 1e-12);
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[3.0]), 0.0);
    }

    #[test]
    fn gini_of_total_concentration_approaches_one() {
        let mut xs = vec![0.0; 100];
        xs[0] = 1_000.0;
        let g = gini(&xs);
        assert!(g > 0.98, "gini {g}");
    }

    #[test]
    fn gini_orders_by_inequality() {
        let even = gini(&[1.0, 1.0, 1.0, 1.0]);
        let mild = gini(&[1.0, 2.0, 3.0, 4.0]);
        let wild = gini(&[0.0, 0.0, 1.0, 9.0]);
        assert!(even < mild && mild < wild);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn gini_rejects_negative_values() {
        gini(&[1.0, -2.0]);
    }

    #[test]
    fn summary_of_empty_slice() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }
}
