//! Discrete power-law fitting.
//!
//! Used to check the generator's "power-law degree distribution" property
//! (§3). Follows Clauset, Shalizi & Newman (2009): for a discrete
//! power-law `p(k) ∝ k^(−α)` with `k ≥ k_min`, the MLE of the exponent is
//! approximately
//!
//! ```text
//! α ≈ 1 + n · [ Σ ln( k_i / (k_min − ½) ) ]⁻¹
//! ```
//!
//! together with a Kolmogorov–Smirnov distance between the empirical and
//! fitted CCDFs as a goodness indicator.

/// A fitted discrete power law.
#[derive(Clone, Copy, Debug)]
pub struct PowerLawFit {
    /// Estimated exponent α.
    pub alpha: f64,
    /// The cutoff used.
    pub k_min: usize,
    /// Number of samples at or above the cutoff.
    pub tail_n: usize,
    /// KS distance between the empirical tail CCDF and the fitted one.
    pub ks: f64,
}

/// Fits the tail `k ≥ k_min` of a degree sample to a power law.
///
/// # Panics
/// Panics if `k_min` is 0 or no sample reaches the cutoff.
pub fn fit_power_law(degrees: &[usize], k_min: usize) -> PowerLawFit {
    assert!(k_min >= 1, "k_min must be positive");
    let tail: Vec<usize> = degrees.iter().copied().filter(|&k| k >= k_min).collect();
    assert!(!tail.is_empty(), "no samples ≥ k_min = {k_min}");
    let n = tail.len() as f64;
    let log_sum: f64 = tail
        .iter()
        .map(|&k| (k as f64 / (k_min as f64 - 0.5)).ln())
        .sum();
    let alpha = 1.0 + n / log_sum;

    // KS distance between empirical and model CCDF on the tail.
    let mut sorted = tail.clone();
    sorted.sort_unstable();
    let model_ccdf = |k: usize| -> f64 {
        // P(K ≥ k | K ≥ k_min) for the continuous approximation.
        ((k as f64 - 0.5) / (k_min as f64 - 0.5)).powf(1.0 - alpha)
    };
    // Evaluate only at distinct values: the empirical CCDF at value k is
    // the fraction of samples ≥ k, i.e. it is anchored at the *first*
    // occurrence of k in the sorted order (ties share one CCDF point).
    let mut ks = 0.0f64;
    let mut i = 0;
    while i < sorted.len() {
        let k = sorted[i];
        let emp = (sorted.len() - i) as f64 / n;
        ks = ks.max((emp - model_ccdf(k)).abs());
        while i < sorted.len() && sorted[i] == k {
            i += 1;
        }
    }
    PowerLawFit {
        alpha,
        k_min,
        tail_n: tail.len(),
        ks,
    }
}

/// Chooses `k_min` by scanning candidates and keeping the fit with the
/// smallest KS distance (the Clauset et al. heuristic), requiring at
/// least `min_tail` samples in the tail.
pub fn fit_power_law_auto(degrees: &[usize], min_tail: usize) -> Option<PowerLawFit> {
    let max_k = *degrees.iter().max()?;
    let mut best: Option<PowerLawFit> = None;
    for k_min in 1..=max_k {
        let tail_n = degrees.iter().filter(|&&k| k >= k_min).count();
        if tail_n < min_tail {
            break;
        }
        let fit = fit_power_law(degrees, k_min);
        if best.as_ref().is_none_or(|b| fit.ks < b.ks) {
            best = Some(fit);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpscale_simkernel::rng::{Rng, Xoshiro256StarStar};

    /// Samples a discrete power law via inverse-transform on the
    /// continuous approximation (good enough for testing the estimator).
    fn sample_power_law(alpha: f64, k_min: usize, count: usize, seed: u64) -> Vec<usize> {
        let mut rng = Xoshiro256StarStar::new(seed);
        (0..count)
            .map(|_| {
                let u = rng.next_f64();
                let x = (k_min as f64 - 0.5) * (1.0 - u).powf(-1.0 / (alpha - 1.0));
                x.round() as usize
            })
            .collect()
    }

    #[test]
    fn recovers_known_exponent() {
        // The MLE formula is the continuous approximation, accurate for
        // k_min ≳ 6 (Clauset et al. §3.5); test in its validity regime.
        for alpha in [2.1, 2.5, 3.0] {
            let sample = sample_power_law(alpha, 6, 20_000, 42);
            let fit = fit_power_law(&sample, 6);
            assert!(
                (fit.alpha - alpha).abs() < 0.1,
                "α = {alpha}: estimated {}",
                fit.alpha
            );
            assert!(fit.ks < 0.05, "KS = {}", fit.ks);
        }
    }

    #[test]
    fn cutoff_restricts_to_tail() {
        let sample = vec![1, 1, 1, 1, 5, 6, 7, 8, 9, 10];
        let fit = fit_power_law(&sample, 5);
        assert_eq!(fit.tail_n, 6);
        assert_eq!(fit.k_min, 5);
    }

    #[test]
    fn auto_cutoff_finds_reasonable_fit() {
        // Power-law tail with a non-power-law head of small degrees.
        let mut sample = vec![1usize; 5_000];
        sample.extend(sample_power_law(2.4, 3, 10_000, 7));
        let fit = fit_power_law_auto(&sample, 500).expect("fit exists");
        assert!(fit.k_min >= 2, "cutoff should skip the head, got {}", fit.k_min);
        assert!((fit.alpha - 2.4).abs() < 0.25, "α = {}", fit.alpha);
    }

    #[test]
    fn geometric_distribution_fits_badly() {
        // An exponential-tailed distribution must yield a clearly larger
        // KS distance than a true power law at the same size.
        let mut rng = Xoshiro256StarStar::new(9);
        let geometric: Vec<usize> = (0..10_000)
            .map(|_| {
                let u = rng.next_f64();
                (1.0 + (1.0 - u).ln() / (0.5f64.ln())).floor() as usize
            })
            .collect();
        let pl = sample_power_law(2.5, 3, 10_000, 10);
        let fit_geo = fit_power_law(&geometric, 3);
        let fit_pl = fit_power_law(&pl, 3);
        assert!(
            fit_geo.ks > 2.0 * fit_pl.ks,
            "geo KS {} vs pl KS {}",
            fit_geo.ks,
            fit_pl.ks
        );
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_tail_rejected() {
        fit_power_law(&[1, 2, 3], 10);
    }
}
