//! The standard normal distribution.
//!
//! Implemented locally (no external special-function crates) with two
//! classic approximations:
//!
//! * `erf` — Abramowitz & Stegun 7.1.26 with |ε| ≤ 1.5·10⁻⁷, extended to
//!   full `f64` accuracy needs by symmetry;
//! * `normal_quantile` — Acklam's rational approximation for Φ⁻¹ with
//!   relative error below 1.15·10⁻⁹.
//!
//! These tolerances are far tighter than anything the churn analyses
//! require (p-values and 95% CIs on 100-sample series).

/// The error function `erf(x)` (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    // Coefficients of the A&S 7.1.26 approximation.
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal CDF `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Two-sided p-value for a standard-normal test statistic.
pub fn two_sided_p(z: f64) -> f64 {
    2.0 * (1.0 - normal_cdf(z.abs()))
}

/// Standard normal quantile `Φ⁻¹(p)` (Acklam's algorithm).
///
/// # Panics
/// Panics unless `0 < p < 1`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1.5e-7, "A&S 7.1.26 error bound");
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6, "odd symmetry");
        assert!(erf(5.0) > 0.9999999);
    }

    #[test]
    fn cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-4);
        assert!((normal_cdf(1.0) - 0.8413447).abs() < 1e-5);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999] {
            let x = normal_quantile(p);
            assert!(
                (normal_cdf(x) - p).abs() < 1e-6,
                "Φ(Φ⁻¹({p})) = {}",
                normal_cdf(x)
            );
        }
    }

    #[test]
    fn quantile_known_values() {
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-5);
    }

    #[test]
    fn two_sided_p_values() {
        assert!((two_sided_p(1.96) - 0.05).abs() < 1e-3);
        assert!((two_sided_p(0.0) - 1.0).abs() < 1e-6);
        assert!(two_sided_p(10.0) < 1e-12);
        assert_eq!(two_sided_p(-1.96), two_sided_p(1.96), "symmetric");
    }

    #[test]
    #[should_panic(expected = "0 < p < 1")]
    fn quantile_rejects_out_of_range() {
        normal_quantile(1.0);
    }
}
