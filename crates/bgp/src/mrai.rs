//! The per-interface MRAI output queue.
//!
//! Each neighbor session has one [`OutQueue`] implementing the rate
//! limiting of §2: *"two route announcements from an AS to the same
//! neighbor must be separated in time by at least one MRAI timer
//! interval"*, implemented per interface as router vendors do (not per
//! prefix as RFC 4271 suggests).
//!
//! State machine per queue:
//!
//! * **Timer idle** → an announcement is sent immediately and arms the
//!   timer. (Invariant: the pending map is empty whenever the timer is
//!   idle.)
//! * **Timer armed** → updates are *queued*; a newer update for the same
//!   prefix replaces the queued one ("if a queued update becomes invalid
//!   by a new update, the former is removed from the output queue").
//! * **Timer expiry** → all still-valid pending updates are flushed; the
//!   timer re-arms iff something was sent.
//!
//! Withdrawals depend on the [`MraiMode`]:
//!
//! * **NO-WRATE** (RFC 1771): withdrawals bypass the queue entirely — sent
//!   at once, never arming the timer — and invalidate any queued
//!   announcement for the prefix.
//! * **WRATE** (RFC 4271): withdrawals queue exactly like announcements.
//!
//! The queue also maintains the **Adj-RIB-out** (`sent`): the last update
//! actually transmitted per prefix. Flushes and submissions are suppressed
//! when they would repeat what the neighbor already knows, which both
//! matches real BGP implementations and keeps the paper's update counts
//! honest.

use bgpscale_obs::Provenance;

use crate::config::{MraiMode, MraiScope};
use crate::message::{AsPath, Prefix, Update, UpdateKind};

/// Result of submitting an update to an [`OutQueue`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Submit {
    /// Send the update on the wire now. If `arm_timer` is true the caller
    /// must schedule a (jittered) MRAI expiry for this queue.
    SendNow {
        /// The message to transmit.
        update: Update,
        /// Whether this transmission arms the MRAI timer.
        arm_timer: bool,
    },
    /// The update was queued behind the running MRAI timer.
    Queued,
    /// The update was redundant (the neighbor already has, or will get,
    /// equivalent state) and was dropped.
    Suppressed,
}

/// One neighbor session's rate-limited output queue plus Adj-RIB-out.
#[derive(Clone, Debug)]
pub struct OutQueue {
    scope: MraiScope,
    /// Per-interface scope: the single session timer.
    timer_armed: bool,
    /// Per-prefix scope: the prefixes whose timers are armed (sorted).
    armed_prefixes: Vec<Prefix>,
    /// Updates waiting for a timer, sorted by prefix; at most one per
    /// prefix, each with the provenance it will carry when flushed. When a
    /// newer update replaces a queued one, the stamps coalesce (root sets
    /// union) so attribution survives rate-limiting. Sorted-`Vec` storage
    /// keeps the flush order identical to the former `BTreeMap` while
    /// staying dense — queues hold a handful of entries at a time.
    pending: Vec<(Prefix, UpdateKind, Provenance)>,
    /// Adj-RIB-out: the path last actually sent, per prefix (sorted).
    /// Absent means the neighbor holds no route from us (withdrawn or
    /// never announced). Entries share the export path's `Arc` with the
    /// node's Loc-RIB — an Adj-RIB-out write is a refcount bump.
    sent: Vec<(Prefix, AsPath)>,
    /// Cost-model tally: Adj-RIB-out mutations (inserts plus successful
    /// removes). Monotone over the queue's lifetime — survives resets so
    /// phase-boundary snapshots can be diffed (see `obs::costmodel`).
    rib_out_writes: u64,
    /// Cost-model tally: pending updates displaced by a newer update for
    /// the same prefix while a timer was running (MRAI coalescing).
    coalesced: u64,
}

impl Default for OutQueue {
    fn default() -> Self {
        OutQueue::new()
    }
}

impl OutQueue {
    /// Creates an idle queue with the paper's per-interface timer scope.
    pub fn new() -> Self {
        OutQueue::with_scope(MraiScope::PerInterface)
    }

    /// Creates an idle queue with an explicit timer scope.
    pub fn with_scope(scope: MraiScope) -> Self {
        OutQueue {
            scope,
            timer_armed: false,
            armed_prefixes: Vec::new(),
            pending: Vec::new(),
            sent: Vec::new(),
            rib_out_writes: 0,
            coalesced: 0,
        }
    }

    // Sorted-Vec primitives for the three per-prefix collections. All
    // lookups are binary searches; inserts keep the sort.

    // detflow::allow(panic-surface, reason = "binary_search's Ok index is inside the searched Vec by contract")
    fn sent_get(&self, prefix: Prefix) -> Option<&AsPath> {
        self.sent
            .binary_search_by_key(&prefix, |&(p, _)| p)
            .ok()
            .map(|i| &self.sent[i].1)
    }

    // detflow::allow(panic-surface, reason = "on Ok the index is a hit inside sent; on Err it is the sorted insertion point")
    fn sent_insert(&mut self, prefix: Prefix, path: AsPath) {
        match self.sent.binary_search_by_key(&prefix, |&(p, _)| p) {
            Ok(i) => self.sent[i].1 = path,
            Err(i) => self.sent.insert(i, (prefix, path)),
        }
    }

    fn sent_remove(&mut self, prefix: Prefix) -> Option<AsPath> {
        self.sent
            .binary_search_by_key(&prefix, |&(p, _)| p)
            .ok()
            .map(|i| self.sent.remove(i).1)
    }

    fn pending_remove(&mut self, prefix: Prefix) -> Option<(UpdateKind, Provenance)> {
        self.pending
            .binary_search_by_key(&prefix, |e| e.0)
            .ok()
            .map(|i| {
                let (_, kind, stamp) = self.pending.remove(i);
                (kind, stamp)
            })
    }

    /// Cost-model tally: Adj-RIB-out mutations so far (monotone).
    pub fn rib_out_writes(&self) -> u64 {
        self.rib_out_writes
    }

    /// Cost-model tally: MRAI-coalesced pending updates so far (monotone).
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// The timer granularity of this queue.
    pub fn scope(&self) -> MraiScope {
        self.scope
    }

    /// True while an MRAI expiry is outstanding that governs `prefix`.
    pub fn is_armed(&self, prefix: Prefix) -> bool {
        match self.scope {
            MraiScope::PerInterface => self.timer_armed,
            MraiScope::PerPrefix => self.armed_prefixes.binary_search(&prefix).is_ok(),
        }
    }

    fn set_armed(&mut self, prefix: Prefix) {
        match self.scope {
            MraiScope::PerInterface => self.timer_armed = true,
            MraiScope::PerPrefix => {
                if let Err(i) = self.armed_prefixes.binary_search(&prefix) {
                    self.armed_prefixes.insert(i, prefix);
                }
            }
        }
    }

    /// True while any MRAI expiry for this queue is outstanding.
    pub fn timer_armed(&self) -> bool {
        match self.scope {
            MraiScope::PerInterface => self.timer_armed,
            MraiScope::PerPrefix => !self.armed_prefixes.is_empty(),
        }
    }

    /// Number of armed timers this queue holds (0 or 1 for the
    /// per-interface scope; one per armed prefix otherwise). Each armed
    /// timer corresponds to exactly one outstanding expiry event.
    pub fn armed_count(&self) -> usize {
        match self.scope {
            MraiScope::PerInterface => usize::from(self.timer_armed),
            MraiScope::PerPrefix => self.armed_prefixes.len(),
        }
    }

    /// Number of queued (pending) updates.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The path the neighbor currently holds from us for `prefix`
    /// (Adj-RIB-out), ignoring anything still queued.
    pub fn advertised(&self, prefix: Prefix) -> Option<&AsPath> {
        self.sent_get(prefix)
    }

    /// What the neighbor will believe once the queue drains: the queued
    /// intent if any, else the Adj-RIB-out.
    // detflow::allow(panic-surface, reason = "binary_search's Ok index is inside pending by contract")
    pub fn intent(&self, prefix: Prefix) -> Option<&AsPath> {
        match self.pending.binary_search_by_key(&prefix, |e| e.0) {
            Ok(i) => match &self.pending[i].1 {
                UpdateKind::Announce(p) => Some(p),
                UpdateKind::Withdraw => None,
            },
            Err(_) => self.sent_get(prefix),
        }
    }

    /// Queues `kind` behind the timer, folding the stamp of any update it
    /// displaces into `cause` so no root loses its attribution.
    // detflow::allow(panic-surface, reason = "on Ok the index is a hit inside pending; on Err it is the sorted insertion point")
    fn queue_pending(&mut self, prefix: Prefix, kind: UpdateKind, cause: &Provenance) {
        let mut stamp = cause.clone();
        match self.pending.binary_search_by_key(&prefix, |e| e.0) {
            Ok(i) => {
                stamp.coalesce_with(&self.pending[i].2);
                self.coalesced += 1;
                self.pending[i].1 = kind;
                self.pending[i].2 = stamp;
            }
            Err(i) => self.pending.insert(i, (prefix, kind, stamp)),
        }
    }

    /// Submits a new intent for `prefix`: `Some(path)` to announce, `None`
    /// to withdraw. `cause` is the provenance stamp the resulting update
    /// carries (pass [`Provenance::none`] when attribution is not
    /// wanted — it never changes what is sent, queued, or suppressed).
    /// Returns what the caller must do.
    pub fn submit(
        &mut self,
        prefix: Prefix,
        intent: Option<AsPath>,
        mode: MraiMode,
        cause: &Provenance,
    ) -> Submit {
        // Drop no-ops against the eventual neighbor state.
        if self.intent(prefix) == intent.as_ref() {
            return Submit::Suppressed;
        }
        match intent {
            None => self.submit_withdraw(prefix, mode, cause),
            Some(path) => self.submit_announce(prefix, path, cause),
        }
    }

    fn submit_withdraw(&mut self, prefix: Prefix, mode: MraiMode, cause: &Provenance) -> Submit {
        // A queued announcement that never went out is invalidated: if the
        // neighbor holds nothing, removing it finishes the job silently.
        self.pending_remove(prefix);
        if self.sent_get(prefix).is_none() {
            return Submit::Suppressed;
        }
        match mode {
            MraiMode::NoWrate => {
                // RFC 1771: withdrawals are never rate-limited and do not
                // arm the timer.
                self.sent_remove(prefix);
                self.rib_out_writes += 1;
                Submit::SendNow {
                    update: Update::withdraw(prefix).stamped(cause.clone()),
                    arm_timer: false,
                }
            }
            MraiMode::Wrate => {
                if self.is_armed(prefix) {
                    self.queue_pending(prefix, UpdateKind::Withdraw, cause);
                    Submit::Queued
                } else {
                    self.sent_remove(prefix);
                    self.rib_out_writes += 1;
                    self.set_armed(prefix);
                    Submit::SendNow {
                        update: Update::withdraw(prefix).stamped(cause.clone()),
                        arm_timer: true,
                    }
                }
            }
        }
    }

    fn submit_announce(&mut self, prefix: Prefix, path: AsPath, cause: &Provenance) -> Submit {
        if self.is_armed(prefix) {
            self.queue_pending(prefix, UpdateKind::Announce(path), cause);
            Submit::Queued
        } else {
            debug_assert!(
                self.pending.binary_search_by_key(&prefix, |e| e.0).is_err(),
                "pending update with an idle timer"
            );
            self.sent_insert(prefix, path.clone());
            self.rib_out_writes += 1;
            self.set_armed(prefix);
            Submit::SendNow {
                update: Update::announce(prefix, path).stamped(cause.clone()),
                arm_timer: true,
            }
        }
    }

    /// Handles an MRAI expiry: drains pending updates governed by the
    /// expired timer (skipping any that have become no-ops against the
    /// Adj-RIB-out), and reports whether that timer re-arms. When the
    /// returned flag is `true` the caller must schedule the next expiry;
    /// the returned updates go on the wire now.
    ///
    /// `trigger` identifies the timer: `None` for the per-interface
    /// session timer, `Some(prefix)` for a per-prefix timer.
    ///
    /// # Panics
    /// Panics (in debug builds) if `trigger` does not match the queue's
    /// scope.
    pub fn flush(&mut self, trigger: Option<Prefix>) -> (Vec<Update>, bool) {
        match (self.scope, trigger) {
            (MraiScope::PerInterface, None) => {
                debug_assert!(self.timer_armed, "flush on an idle queue");
                // The Vec is sorted by prefix, so the drain emits in the
                // same prefix order the BTreeMap-backed queue did.
                let pending = std::mem::take(&mut self.pending);
                let mut out = Vec::with_capacity(pending.len());
                for (prefix, kind, stamp) in pending {
                    if let Some(u) = self.emit(prefix, kind, stamp) {
                        out.push(u);
                    }
                }
                let rearm = !out.is_empty();
                self.timer_armed = rearm;
                (out, rearm)
            }
            (MraiScope::PerPrefix, Some(prefix)) => {
                debug_assert!(
                    self.armed_prefixes.binary_search(&prefix).is_ok(),
                    "flush on an idle per-prefix timer"
                );
                let out: Vec<Update> = self
                    .pending_remove(prefix)
                    .and_then(|(kind, stamp)| self.emit(prefix, kind, stamp))
                    .into_iter()
                    .collect();
                let rearm = !out.is_empty();
                if !rearm {
                    if let Ok(i) = self.armed_prefixes.binary_search(&prefix) {
                        self.armed_prefixes.remove(i);
                    }
                }
                (out, rearm)
            }
            (scope, trigger) => {
                debug_assert!(false, "flush trigger {trigger:?} does not match scope {scope:?}");
                (Vec::new(), false)
            }
        }
    }

    /// Emits one pending update unless it is a no-op against the
    /// Adj-RIB-out, updating the Adj-RIB-out on emission. The stored
    /// (possibly coalesced) stamp rides out on the message.
    fn emit(&mut self, prefix: Prefix, kind: UpdateKind, stamp: Provenance) -> Option<Update> {
        match kind {
            UpdateKind::Announce(path) => {
                if self.sent_get(prefix) == Some(&path) {
                    return None; // neighbor already has it
                }
                self.sent_insert(prefix, path.clone());
                self.rib_out_writes += 1;
                Some(Update::announce(prefix, path).stamped(stamp))
            }
            UpdateKind::Withdraw => {
                let removed = self.sent_remove(prefix);
                if removed.is_some() {
                    self.rib_out_writes += 1;
                }
                removed.map(|_| Update::withdraw(prefix).stamped(stamp))
            }
        }
    }

    /// Clears all routing state (Adj-RIB-out, pending updates).
    ///
    /// # Panics
    /// Panics if the timer is still armed — resetting with an outstanding
    /// expiry event would desynchronize the simulator.
    pub fn reset(&mut self) {
        assert!(!self.timer_armed(), "reset with an armed MRAI timer");
        self.pending.clear();
        self.sent.clear();
    }

    /// Transmits `path` immediately, bypassing the rate limiter — used
    /// only for the initial full-table exchange of a freshly established
    /// session, which real BGP does not MRAI-limit (the timer governs
    /// *subsequent* advertisements). Returns the message to send, or
    /// `None` if the neighbor already holds an identical route. The
    /// caller arms the timer once afterwards via [`OutQueue::arm_timer`].
    ///
    /// # Panics
    /// Panics if the timer is armed (a fresh session starts idle).
    pub fn send_unlimited(
        &mut self,
        prefix: Prefix,
        path: AsPath,
        cause: &Provenance,
    ) -> Option<Update> {
        assert!(!self.timer_armed(), "initial exchange on a rate-limited session");
        if self.sent_get(prefix) == Some(&path) {
            return None;
        }
        self.sent_insert(prefix, path.clone());
        self.rib_out_writes += 1;
        Some(Update::announce(prefix, path).stamped(cause.clone()))
    }

    /// Arms a timer without sending (used after an initial table
    /// exchange): the per-interface session timer when `prefix` is
    /// `None`, a per-prefix timer otherwise. The caller must schedule the
    /// matching expiry.
    pub fn arm_timer(&mut self, prefix: Option<Prefix>) {
        match (self.scope, prefix) {
            (MraiScope::PerInterface, None) => self.timer_armed = true,
            (MraiScope::PerPrefix, Some(p)) => {
                if let Err(i) = self.armed_prefixes.binary_search(&p) {
                    self.armed_prefixes.insert(i, p);
                }
            }
            (scope, prefix) => {
                debug_assert!(false, "arm_timer {prefix:?} does not match scope {scope:?}");
            }
        }
    }

    /// Clears all state unconditionally, disarming the timer — used on a
    /// **session reset** (the TCP session to the neighbor dropped, so the
    /// neighbor has discarded everything we sent and any queued updates
    /// are moot). The caller must ignore or invalidate any outstanding
    /// expiry event for this queue (the simulator uses an epoch counter).
    pub fn force_reset(&mut self) {
        self.timer_armed = false;
        self.armed_prefixes.clear();
        self.pending.clear();
        self.sent.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpscale_topology::AsId;

    const P: Prefix = Prefix(1);
    const Q: Prefix = Prefix(2);

    fn path(ids: &[u32]) -> AsPath {
        ids.iter().map(|&i| AsId(i)).collect()
    }

    fn none() -> Provenance {
        Provenance::none()
    }

    #[test]
    fn first_announcement_sends_and_arms() {
        let mut q = OutQueue::new();
        let r = q.submit(P, Some(path(&[1, 2])), MraiMode::NoWrate, &none());
        assert_eq!(
            r,
            Submit::SendNow {
                update: Update::announce(P, path(&[1, 2])),
                arm_timer: true
            }
        );
        assert!(q.timer_armed());
        assert_eq!(q.advertised(P), Some(&path(&[1, 2])));
    }

    #[test]
    fn second_announcement_queues_behind_timer() {
        let mut q = OutQueue::new();
        q.submit(P, Some(path(&[1])), MraiMode::NoWrate, &none());
        let r = q.submit(P, Some(path(&[1, 3])), MraiMode::NoWrate, &none());
        assert_eq!(r, Submit::Queued);
        assert_eq!(q.pending_len(), 1);
        // Adj-RIB-out still shows the transmitted route; intent shows the
        // queued one.
        assert_eq!(q.advertised(P), Some(&path(&[1])));
        assert_eq!(q.intent(P), Some(&path(&[1, 3])));
    }

    #[test]
    fn newer_update_replaces_queued_one() {
        let mut q = OutQueue::new();
        q.submit(P, Some(path(&[1])), MraiMode::NoWrate, &none());
        q.submit(P, Some(path(&[1, 3])), MraiMode::NoWrate, &none());
        q.submit(P, Some(path(&[1, 4])), MraiMode::NoWrate, &none());
        assert_eq!(q.pending_len(), 1, "replaced, not accumulated");
        let (sent, rearm) = q.flush(None);
        assert_eq!(sent, vec![Update::announce(P, path(&[1, 4]))]);
        assert!(rearm);
    }

    #[test]
    fn duplicate_announcement_is_suppressed() {
        let mut q = OutQueue::new();
        q.submit(P, Some(path(&[1])), MraiMode::NoWrate, &none());
        let r = q.submit(P, Some(path(&[1])), MraiMode::NoWrate, &none());
        assert_eq!(r, Submit::Suppressed);
        assert_eq!(q.pending_len(), 0);
    }

    #[test]
    fn flush_skips_updates_that_became_noops() {
        // Send A; queue B; queue A again (flap back). At expiry the
        // neighbor already holds A → nothing goes out, timer idles.
        let mut q = OutQueue::new();
        q.submit(P, Some(path(&[1])), MraiMode::NoWrate, &none());
        q.submit(P, Some(path(&[2])), MraiMode::NoWrate, &none());
        q.submit(P, Some(path(&[1])), MraiMode::NoWrate, &none());
        let (sent, rearm) = q.flush(None);
        assert!(sent.is_empty());
        assert!(!rearm);
        assert!(!q.timer_armed());
    }

    #[test]
    fn no_wrate_withdrawal_bypasses_timer() {
        let mut q = OutQueue::new();
        q.submit(P, Some(path(&[1])), MraiMode::NoWrate, &none());
        assert!(q.timer_armed());
        let r = q.submit(P, None, MraiMode::NoWrate, &none());
        assert_eq!(
            r,
            Submit::SendNow {
                update: Update::withdraw(P),
                arm_timer: false
            }
        );
        assert_eq!(q.advertised(P), None);
        // Timer stays armed from the earlier announcement.
        assert!(q.timer_armed());
    }

    #[test]
    fn no_wrate_withdrawal_cancels_queued_announcement_silently() {
        // Announce A (sent), queue announcement for Q, then withdraw Q
        // before it ever goes out: the neighbor never learned Q, so no
        // withdrawal is needed at all.
        let mut q = OutQueue::new();
        q.submit(P, Some(path(&[1])), MraiMode::NoWrate, &none());
        q.submit(Q, Some(path(&[2])), MraiMode::NoWrate, &none());
        let r = q.submit(Q, None, MraiMode::NoWrate, &none());
        assert_eq!(r, Submit::Suppressed);
        let (sent, _) = q.flush(None);
        assert!(sent.is_empty(), "queued announcement must be invalidated");
    }

    #[test]
    fn wrate_withdrawal_queues_behind_timer() {
        let mut q = OutQueue::new();
        q.submit(P, Some(path(&[1])), MraiMode::Wrate, &none());
        let r = q.submit(P, None, MraiMode::Wrate, &none());
        assert_eq!(r, Submit::Queued);
        let (sent, rearm) = q.flush(None);
        assert_eq!(sent, vec![Update::withdraw(P)]);
        assert!(rearm, "a transmitted withdrawal re-arms under WRATE");
    }

    #[test]
    fn wrate_withdrawal_sends_immediately_when_idle_and_arms() {
        let mut q = OutQueue::new();
        q.submit(P, Some(path(&[1])), MraiMode::Wrate, &none());
        let (_, rearm) = q.flush(None);
        assert!(!rearm);
        let r = q.submit(P, None, MraiMode::Wrate, &none());
        assert_eq!(
            r,
            Submit::SendNow {
                update: Update::withdraw(P),
                arm_timer: true
            }
        );
    }

    #[test]
    fn withdraw_of_never_announced_prefix_is_suppressed() {
        let mut q = OutQueue::new();
        assert_eq!(q.submit(P, None, MraiMode::NoWrate, &none()), Submit::Suppressed);
        assert_eq!(q.submit(P, None, MraiMode::Wrate, &none()), Submit::Suppressed);
    }

    #[test]
    fn announce_after_queued_withdraw_restores_without_traffic() {
        // A sent; withdraw queued (WRATE); re-announce identical A. The
        // queued withdraw is replaced by Announce(A), which the flush then
        // suppresses against the Adj-RIB-out.
        let mut q = OutQueue::new();
        q.submit(P, Some(path(&[1])), MraiMode::Wrate, &none());
        q.submit(P, None, MraiMode::Wrate, &none());
        let r = q.submit(P, Some(path(&[1])), MraiMode::Wrate, &none());
        assert_eq!(r, Submit::Queued);
        let (sent, rearm) = q.flush(None);
        assert!(sent.is_empty());
        assert!(!rearm);
        assert_eq!(q.advertised(P), Some(&path(&[1])));
    }

    #[test]
    fn multiple_prefixes_flush_together_in_prefix_order() {
        let mut q = OutQueue::new();
        q.submit(P, Some(path(&[1])), MraiMode::NoWrate, &none()); // sends, arms
        q.submit(Q, Some(path(&[2])), MraiMode::NoWrate, &none()); // queues
        q.submit(Prefix(0), Some(path(&[3])), MraiMode::NoWrate, &none()); // queues
        let (sent, rearm) = q.flush(None);
        assert_eq!(
            sent,
            vec![
                Update::announce(Prefix(0), path(&[3])),
                Update::announce(Q, path(&[2])),
            ]
        );
        assert!(rearm);
    }

    #[test]
    fn timer_lifecycle_idle_after_empty_flush() {
        let mut q = OutQueue::new();
        q.submit(P, Some(path(&[1])), MraiMode::NoWrate, &none());
        let (sent, rearm) = q.flush(None);
        assert!(sent.is_empty());
        assert!(!rearm);
        // Next announcement goes straight out again.
        let r = q.submit(P, Some(path(&[9])), MraiMode::NoWrate, &none());
        assert!(matches!(r, Submit::SendNow { .. }));
    }

    #[test]
    fn reset_clears_state_when_idle() {
        let mut q = OutQueue::new();
        q.submit(P, Some(path(&[1])), MraiMode::NoWrate, &none());
        q.flush(None);
        q.reset();
        assert_eq!(q.advertised(P), None);
        assert_eq!(q.pending_len(), 0);
    }

    #[test]
    fn per_prefix_scope_does_not_couple_prefixes() {
        // Under PerPrefix, announcing P must not rate-limit Q.
        let mut q = OutQueue::with_scope(MraiScope::PerPrefix);
        assert!(matches!(
            q.submit(P, Some(path(&[1])), MraiMode::NoWrate, &none()),
            Submit::SendNow { .. }
        ));
        assert!(
            matches!(
                q.submit(Q, Some(path(&[2])), MraiMode::NoWrate, &none()),
                Submit::SendNow { .. }
            ),
            "a different prefix must not queue behind P's timer"
        );
        // But a second update for P itself queues.
        assert_eq!(
            q.submit(P, Some(path(&[1, 3])), MraiMode::NoWrate, &none()),
            Submit::Queued
        );
        assert!(q.is_armed(P));
        assert!(q.is_armed(Q));
        assert!(!q.is_armed(Prefix(99)));
    }

    #[test]
    fn per_prefix_flush_only_touches_its_prefix() {
        let mut q = OutQueue::with_scope(MraiScope::PerPrefix);
        q.submit(P, Some(path(&[1])), MraiMode::NoWrate, &none());
        q.submit(Q, Some(path(&[2])), MraiMode::NoWrate, &none());
        q.submit(P, Some(path(&[1, 3])), MraiMode::NoWrate, &none()); // queued
        q.submit(Q, Some(path(&[2, 4])), MraiMode::NoWrate, &none()); // queued
        let (sent, rearm) = q.flush(Some(P));
        assert_eq!(sent, vec![Update::announce(P, path(&[1, 3]))]);
        assert!(rearm);
        // Q's pending update is untouched.
        assert_eq!(q.pending_len(), 1);
        assert_eq!(q.intent(Q), Some(&path(&[2, 4])));
        let (sent_q, _) = q.flush(Some(Q));
        assert_eq!(sent_q, vec![Update::announce(Q, path(&[2, 4]))]);
    }

    #[test]
    fn per_prefix_timer_idles_after_empty_flush() {
        let mut q = OutQueue::with_scope(MraiScope::PerPrefix);
        q.submit(P, Some(path(&[1])), MraiMode::NoWrate, &none());
        let (sent, rearm) = q.flush(Some(P));
        assert!(sent.is_empty());
        assert!(!rearm);
        assert!(!q.is_armed(P));
        assert!(!q.timer_armed());
    }

    #[test]
    fn per_prefix_wrate_withdrawal_queues_only_its_prefix() {
        let mut q = OutQueue::with_scope(MraiScope::PerPrefix);
        q.submit(P, Some(path(&[1])), MraiMode::Wrate, &none());
        assert_eq!(q.submit(P, None, MraiMode::Wrate, &none()), Submit::Queued);
        // An idle prefix's withdrawal goes straight out.
        q.submit(Q, Some(path(&[2])), MraiMode::Wrate, &none());
        let (s2, _) = q.flush(Some(Q));
        assert!(s2.is_empty());
        let r = q.submit(Q, None, MraiMode::Wrate, &none());
        assert!(matches!(r, Submit::SendNow { arm_timer: true, .. }));
    }

    #[test]
    #[should_panic(expected = "armed MRAI timer")]
    fn reset_rejects_armed_timer() {
        let mut q = OutQueue::new();
        q.submit(P, Some(path(&[1])), MraiMode::NoWrate, &none());
        q.reset();
    }

    #[test]
    fn coalesced_flush_carries_the_union_of_contributing_roots() {
        // Root 1 sends the first announcement (arming the timer), then
        // roots 2 and 3 each replace the queued update. The flushed
        // message must answer for roots 2 and 3 — the displaced intents —
        // with the depth of the newest one.
        let mut q = OutQueue::new();
        let first = q.submit(P, Some(path(&[1])), MraiMode::NoWrate, &Provenance::root(1));
        match first {
            Submit::SendNow { update, .. } => assert_eq!(update.provenance.roots(), &[1]),
            other => panic!("expected SendNow, got {other:?}"),
        }
        q.submit(P, Some(path(&[2])), MraiMode::NoWrate, &Provenance::root(2));
        q.submit(P, Some(path(&[3])), MraiMode::NoWrate, &Provenance::root(3).child());
        let (sent, _) = q.flush(None);
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].provenance.roots(), &[2, 3], "displaced root kept");
        assert_eq!(sent[0].provenance.depth(), 1, "newest intent's depth");
    }

    #[test]
    fn cost_counters_tally_rib_writes_and_coalescing() {
        let mut q = OutQueue::new();
        q.submit(P, Some(path(&[1])), MraiMode::NoWrate, &none()); // sends: 1 write
        q.submit(P, Some(path(&[2])), MraiMode::NoWrate, &none()); // queues
        q.submit(P, Some(path(&[3])), MraiMode::NoWrate, &none()); // displaces: coalesce
        assert_eq!(q.rib_out_writes(), 1);
        assert_eq!(q.coalesced(), 1);
        let (sent, _) = q.flush(None); // emits the announce: 1 more write
        assert_eq!(sent.len(), 1);
        assert_eq!(q.rib_out_writes(), 2);
        // A withdrawal that reaches the wire is a write too.
        q.submit(P, None, MraiMode::NoWrate, &none());
        assert_eq!(q.rib_out_writes(), 3);
        // Counters are monotone across a forced reset.
        q.force_reset();
        assert_eq!(q.rib_out_writes(), 3);
        assert_eq!(q.coalesced(), 1);
    }

    #[test]
    fn armed_count_matches_scope() {
        let mut q = OutQueue::new();
        assert_eq!(q.armed_count(), 0);
        q.submit(P, Some(path(&[1])), MraiMode::NoWrate, &none());
        assert_eq!(q.armed_count(), 1);
        let mut pp = OutQueue::with_scope(MraiScope::PerPrefix);
        pp.submit(P, Some(path(&[1])), MraiMode::NoWrate, &none());
        pp.submit(Q, Some(path(&[2])), MraiMode::NoWrate, &none());
        assert_eq!(pp.armed_count(), 2);
    }
}
