//! Route Flap Damping (RFC 2439) — an optional receiver-side mechanism
//! the paper lists as future work ("other BGP mechanisms and
//! configurations, such as Route Flap Dampening").
//!
//! Each (neighbor session, prefix) pair accumulates a **figure of merit**
//! (penalty): withdrawals and re-advertisements add to it, and it decays
//! exponentially with a configurable half-life. While the penalty exceeds
//! the suppress threshold the route is **damped** — stored but ineligible
//! for the decision process — until decay brings it below the reuse
//! threshold.
//!
//! The implementation uses lazy decay (the penalty is brought current
//! whenever it is touched), so no periodic timer is needed; only a single
//! *reuse* wake-up per suppressed route, which the host simulator
//! schedules through [`crate::node::Actions::rfd_wakeups`].

use bgpscale_simkernel::{SimDuration, SimTime};

/// Damping parameters. Defaults follow the common vendor configuration
/// (Cisco-style): withdrawal penalty 1000, re-advertisement 1000,
/// attribute change 500, suppress at 2000, reuse at 750, 15-minute
/// half-life, penalty ceiling from a 60-minute maximum suppress time.
#[derive(Clone, Debug)]
pub struct RfdConfig {
    /// Penalty added when the neighbor withdraws the route.
    pub withdraw_penalty: f64,
    /// Penalty added when the neighbor re-advertises after a withdrawal.
    pub readvertise_penalty: f64,
    /// Penalty added when an advertisement changes the route's path.
    pub attribute_change_penalty: f64,
    /// Suppress the route when the penalty exceeds this.
    pub suppress_threshold: f64,
    /// Un-suppress when decay brings the penalty below this.
    pub reuse_threshold: f64,
    /// Exponential decay half-life.
    pub half_life: SimDuration,
    /// Upper bound on the accumulated penalty (bounds suppression time).
    pub max_penalty: f64,
}

impl Default for RfdConfig {
    fn default() -> Self {
        RfdConfig {
            withdraw_penalty: 1_000.0,
            readvertise_penalty: 1_000.0,
            attribute_change_penalty: 500.0,
            suppress_threshold: 2_000.0,
            reuse_threshold: 750.0,
            half_life: SimDuration::from_secs(15 * 60),
            // reuse × 2^(max_suppress / half_life) with 60-min max
            // suppress: 750 × 2⁴.
            max_penalty: 12_000.0,
        }
    }
}

impl RfdConfig {
    /// Validates threshold ordering and positivity.
    ///
    /// # Errors
    /// Returns a description of the first invalid field.
    pub fn check(&self) -> Result<(), String> {
        if self.reuse_threshold <= 0.0 || !self.reuse_threshold.is_finite() {
            return Err("reuse_threshold must be positive".into());
        }
        if self.suppress_threshold <= self.reuse_threshold {
            return Err(format!(
                "suppress_threshold {} must exceed reuse_threshold {}",
                self.suppress_threshold, self.reuse_threshold
            ));
        }
        if self.max_penalty < self.suppress_threshold {
            return Err("max_penalty must be at least suppress_threshold".into());
        }
        if self.half_life.is_zero() {
            return Err("half_life must be positive".into());
        }
        for (name, v) in [
            ("withdraw_penalty", self.withdraw_penalty),
            ("readvertise_penalty", self.readvertise_penalty),
            ("attribute_change_penalty", self.attribute_change_penalty),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and ≥ 0"));
            }
        }
        Ok(())
    }
}

/// The kind of event being charged to the figure of merit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlapKind {
    /// The neighbor withdrew the route.
    Withdrawal,
    /// The neighbor re-advertised a previously withdrawn route.
    Readvertisement,
    /// The neighbor advertised the route with a changed path.
    AttributeChange,
}

/// Per-(session, prefix) damping state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DampState {
    /// The figure of merit at `updated_at`.
    pub penalty: f64,
    /// When `penalty` was last brought current.
    pub updated_at: SimTime,
    /// True while the route is suppressed.
    pub suppressed: bool,
}

impl DampState {
    /// The penalty decayed to time `now`.
    pub fn penalty_at(&self, now: SimTime, cfg: &RfdConfig) -> f64 {
        let dt = now.saturating_since(self.updated_at).as_secs_f64();
        let half_lives = dt / cfg.half_life.as_secs_f64();
        self.penalty * 0.5f64.powf(half_lives)
    }

    /// Brings the penalty current and charges one flap event. Returns the
    /// new suppression state.
    pub fn charge(&mut self, kind: FlapKind, now: SimTime, cfg: &RfdConfig) -> bool {
        let add = match kind {
            FlapKind::Withdrawal => cfg.withdraw_penalty,
            FlapKind::Readvertisement => cfg.readvertise_penalty,
            FlapKind::AttributeChange => cfg.attribute_change_penalty,
        };
        self.penalty = (self.penalty_at(now, cfg) + add).min(cfg.max_penalty);
        self.updated_at = now;
        if self.penalty > cfg.suppress_threshold {
            self.suppressed = true;
        }
        self.suppressed
    }

    /// Re-checks suppression at `now` (used at reuse wake-ups): if the
    /// decayed penalty fell below the reuse threshold the route becomes
    /// eligible again. Returns true if the state changed.
    pub fn maybe_reuse(&mut self, now: SimTime, cfg: &RfdConfig) -> bool {
        if !self.suppressed {
            return false;
        }
        let current = self.penalty_at(now, cfg);
        if current <= cfg.reuse_threshold {
            self.penalty = current;
            self.updated_at = now;
            self.suppressed = false;
            true
        } else {
            false
        }
    }

    /// The earliest time at which the decayed penalty reaches the reuse
    /// threshold (when suppressed; `None` otherwise).
    pub fn reuse_time(&self, cfg: &RfdConfig) -> Option<SimTime> {
        if !self.suppressed {
            return None;
        }
        if self.penalty <= cfg.reuse_threshold {
            return Some(self.updated_at);
        }
        // penalty × 0.5^(t/half_life) = reuse  ⇒  t = half_life · log2(penalty/reuse).
        // A millisecond of slack guards against the wake-up firing a
        // float-rounding hair *before* the penalty crosses the threshold.
        let half_lives = (self.penalty / cfg.reuse_threshold).log2();
        let dt = cfg.half_life.as_secs_f64() * half_lives;
        Some(self.updated_at + SimDuration::from_secs_f64(dt) + SimDuration::from_millis(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RfdConfig {
        RfdConfig::default()
    }

    #[test]
    fn default_config_validates() {
        cfg().check().unwrap();
    }

    #[test]
    fn config_rejects_inverted_thresholds() {
        let mut c = cfg();
        c.reuse_threshold = 3_000.0;
        assert!(c.check().is_err());
        let mut c = cfg();
        c.max_penalty = 100.0;
        assert!(c.check().is_err());
        let mut c = cfg();
        c.half_life = SimDuration::ZERO;
        assert!(c.check().is_err());
    }

    #[test]
    fn one_withdrawal_does_not_suppress() {
        let mut s = DampState::default();
        let suppressed = s.charge(FlapKind::Withdrawal, SimTime::ZERO, &cfg());
        assert!(!suppressed);
        assert_eq!(s.penalty, 1_000.0);
    }

    #[test]
    fn rapid_flaps_suppress() {
        let mut s = DampState::default();
        let c = cfg();
        let t = SimTime::from_secs(1);
        s.charge(FlapKind::Withdrawal, t, &c);
        s.charge(FlapKind::Readvertisement, t, &c);
        assert!(!s.suppressed, "2000 does not exceed the threshold");
        let suppressed = s.charge(FlapKind::Withdrawal, t, &c);
        assert!(suppressed, "third flap crosses 2000");
    }

    #[test]
    fn penalty_decays_with_half_life() {
        let mut s = DampState::default();
        let c = cfg();
        s.charge(FlapKind::Withdrawal, SimTime::ZERO, &c);
        let after_one_half_life = s.penalty_at(SimTime::ZERO + c.half_life, &c);
        assert!((after_one_half_life - 500.0).abs() < 1e-9);
        let after_two = s.penalty_at(
            SimTime::ZERO + c.half_life + c.half_life,
            &c,
        );
        assert!((after_two - 250.0).abs() < 1e-9);
    }

    #[test]
    fn penalty_is_capped() {
        let mut s = DampState::default();
        let c = cfg();
        for _ in 0..100 {
            s.charge(FlapKind::Withdrawal, SimTime::ZERO, &c);
        }
        assert_eq!(s.penalty, c.max_penalty);
    }

    #[test]
    fn reuse_time_matches_decay() {
        let mut s = DampState::default();
        let c = cfg();
        let t0 = SimTime::from_secs(100);
        for _ in 0..3 {
            s.charge(FlapKind::Withdrawal, t0, &c);
        }
        assert!(s.suppressed);
        let reuse_at = s.reuse_time(&c).unwrap();
        // Penalty 3000 → 750 takes exactly 2 half-lives (plus the 1 ms
        // float-rounding guard).
        let expected = t0 + SimDuration::from_secs(2 * 15 * 60) + SimDuration::from_millis(1);
        assert_eq!(reuse_at, expected);
        // Just before: still suppressed; at the time: reusable.
        assert!(!s.clone().maybe_reuse(t0 + c.half_life, &c));
        let mut s2 = s.clone();
        assert!(s2.maybe_reuse(reuse_at + SimDuration::from_micros(1), &c));
        assert!(!s2.suppressed);
    }

    #[test]
    fn reuse_is_noop_when_not_suppressed() {
        let mut s = DampState::default();
        let c = cfg();
        s.charge(FlapKind::AttributeChange, SimTime::ZERO, &c);
        assert!(!s.maybe_reuse(SimTime::from_secs(10_000), &c));
        assert_eq!(s.reuse_time(&c), None);
    }

    #[test]
    fn attribute_changes_cost_less_than_withdrawals() {
        let c = cfg();
        let mut a = DampState::default();
        let mut w = DampState::default();
        a.charge(FlapKind::AttributeChange, SimTime::ZERO, &c);
        w.charge(FlapKind::Withdrawal, SimTime::ZERO, &c);
        assert!(a.penalty < w.penalty);
    }
}
